// §7.5 ablation: the contended-escape policy extension.
//
// racyInc is hybrid tracking's worst case: true data races keep triggering
// contended pessimistic transitions (coordination anyway), so the pessimistic
// transfer only adds cost — the paper measures 4300% vs optimistic's 1200%
// and suggests "modifying the adaptive policy to switch a pessimistic object
// back to optimistic states if accesses to it trigger coordination
// frequently". This bench implements that suggestion and checks it recovers
// (roughly) optimistic-level performance on racyInc without hurting syncInc.
#include <cstdio>
#include <vector>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/microbench.hpp"

using namespace ht;

namespace {

constexpr int kThreads = 8;

template <typename Body>
void bench_one(const char* name, std::uint64_t iters, int trials, Body&& body) {
  const RunStats base = run_trials(trials, [&] {
    MicrobenchData data;
    Runtime rt;
    NullTracker trk(rt);
    return run_microbench(
        kThreads, data,
        [&](ThreadId) { return DirectApi<NullTracker>(rt, trk); },
        [&](auto& api, ThreadId) { return body(api, data, iters); });
  });

  std::vector<Overhead> row;
  row.push_back(overhead_vs(base, run_trials(trials, [&] {
    MicrobenchData data;
    Runtime rt;
    OptimisticTracker<> trk(rt);
    return run_microbench(
        kThreads, data,
        [&](ThreadId) { return DirectApi<OptimisticTracker<>>(rt, trk); },
        [&](auto& api, ThreadId) { return body(api, data, iters); });
  })));
  row.push_back(overhead_vs(base, run_trials(trials, [&] {
    MicrobenchData data;
    Runtime rt;
    HybridTracker<> trk(rt, HybridConfig{});
    return run_microbench(
        kThreads, data,
        [&](ThreadId) { return DirectApi<HybridTracker<>>(rt, trk); },
        [&](auto& api, ThreadId) { return body(api, data, iters); });
  })));
  row.push_back(overhead_vs(base, run_trials(trials, [&] {
    MicrobenchData data;
    Runtime rt;
    HybridConfig hc;
    hc.policy = PolicyConfig::with_escape(8);
    HybridTracker<> trk(rt, hc);
    return run_microbench(
        kThreads, data,
        [&](ThreadId) { return DirectApi<HybridTracker<>>(rt, trk); },
        [&](auto& api, ThreadId) { return body(api, data, iters); });
  })));
  print_overhead_row(name, row);
}

}  // namespace

int main() {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  const auto iters = static_cast<std::uint64_t>(4'000 * scale);

  std::printf("== §7.5 ablation: contended-escape policy extension ==\n\n");
  print_overhead_header({"Optimistic", "Hybrid", "Hybrid+escape"});
  bench_one("syncInc", iters, trials,
            [](auto& api, MicrobenchData& d, std::uint64_t n) {
              return sync_inc_body(api, d, n);
            });
  bench_one("racyInc", iters, trials,
            [](auto& api, MicrobenchData& d, std::uint64_t n) {
              return racy_inc_body(api, d, n);
            });
  std::printf("\nexpected: Hybrid+escape ~ Hybrid on syncInc (escape never "
              "triggers there) and\nHybrid+escape << Hybrid on racyInc "
              "(racy objects return to optimistic states).\n");
  return 0;
}
