// §7.3 ablation: adaptive-policy parameter sensitivity.
//
// The paper: "larger values of Cutoff_confl have little impact (except for
// avrora9)"; "performance is not very sensitive to the other parameters;
// various values for K_confl (20-1,600) and Inertia (20-1,600) are
// effective". This bench sweeps each parameter on one high-conflict
// synchronized profile (xalan6), one spread-conflict profile (avrora9), and
// one low-conflict profile (lusearch9), reporting overhead and how many
// conflicting transitions survive.
#include <cstdio>
#include <string>
#include <vector>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

namespace {

void sweep(const char* profile_name, double scale, int trials) {
  const WorkloadConfig cfg = profile_by_name(profile_name, scale);
  WorkloadData data(cfg);

  const RunStats base = run_trials(trials, [&] {
    Runtime rt;
    NullTracker trk(rt);
    return run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<NullTracker>(rt, trk);
    });
  });

  struct Variant {
    std::string label;
    PolicyConfig policy;
  };
  std::vector<Variant> variants;
  for (std::uint32_t cutoff : {1u, 4u, 16u, 64u}) {
    PolicyConfig p;
    p.cutoff_confl = cutoff;
    variants.push_back({"cutoff=" + std::to_string(cutoff), p});
  }
  variants.push_back({"cutoff=inf", PolicyConfig::infinite()});
  for (std::uint32_t k : {20u, 200u, 1600u}) {
    PolicyConfig p;
    p.k_confl = k;
    variants.push_back({"K=" + std::to_string(k), p});
  }
  for (std::uint32_t inertia : {20u, 100u, 1600u}) {
    PolicyConfig p;
    p.inertia = inertia;
    variants.push_back({"inertia=" + std::to_string(inertia), p});
  }

  std::printf("--- %s ---\n", cfg.name);
  std::printf("%-14s %10s %14s %12s %10s %10s\n", "variant", "overhead",
              "opt-confl", "pess-unc", "opt->pess", "pess->opt");

  for (const Variant& v : variants) {
    HybridConfig hc;
    hc.policy = v.policy;

    RunStats times;
    TransitionStats stats;
    for (int i = 0; i < trials; ++i) {
      Runtime rt;
      HybridTracker<true> trk(rt, hc);
      const auto r = run_workload(cfg, data, [&](ThreadId) {
        return DirectApi<HybridTracker<true>>(rt, trk);
      });
      times.add(r.seconds);
      if (i == 0) stats = r.stats;
    }
    const Overhead o = overhead_vs(base, times);
    std::printf("%-14s %9.1f%% %14llu %12llu %10llu %10llu\n", v.label.c_str(),
                o.median_pct,
                static_cast<unsigned long long>(stats.opt_conflicting()),
                static_cast<unsigned long long>(stats.pess_uncontended),
                static_cast<unsigned long long>(stats.opt_to_pess),
                static_cast<unsigned long long>(stats.pess_to_opt));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  // Optional argv: profile names to sweep instead of the default trio.
  std::vector<const char*> profiles = {"xalan6", "avrora9", "lusearch9"};
  if (argc > 1) {
    profiles.assign(argv + 1, argv + argc);
    for (const char* name : profiles) {
      if (!find_profile(name).has_value()) {
        std::fprintf(stderr, "%s\n", unknown_profile_message(name).c_str());
        return 1;
      }
    }
  }
  std::printf("== §7.3 ablation: adaptive-policy parameters "
              "(defaults: Cutoff_confl=4, K_confl=200, Inertia=100) ==\n\n");
  for (const char* name : profiles) sweep(name, scale, trials);
  std::printf("expected shapes: xalan6 insensitive beyond cutoff<=16 but "
              "degrades at cutoff=inf;\navrora9 sensitive to cutoff (Fig 6 "
              "exception); lusearch9 flat everywhere.\n");
  return 0;
}
