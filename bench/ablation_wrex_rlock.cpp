// §7.1 ablation: extraneous contention from omitting WrExRLock.
//
// The paper's 32-bit prototype lacks bit patterns for WrExRLock, so a read
// of WrExPess_T by T write-locks the object; a second concurrent reader then
// triggers spurious coordination even though no object-level race exists.
// Our 64-bit state word supports all three §7.1 configurations:
//   full      — WrExPess_T read by T -> WrExRLock_T (complete model)
//   prototype — -> WrExWLock_T (the paper's shipped configuration)
//   unsound   — -> RdExRLock_T (loses the write; "provided no performance
//               benefit", i.e. the prototype was not suffering in practice)
//
// The workload is write-then-read-shared: each hot object is written by its
// owner under a lock, then read by everyone — the exact pattern where
// WrExRLock matters.
#include <cstdio>
#include <vector>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"

using namespace ht;

int main() {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();

  // Hot objects are written under their lock by one thread, then read by
  // everyone — the exact pattern where a same-thread read of WrExPess decides
  // between WrExRLock (second readers share) and WrExWLock (they contend).
  WorkloadConfig cfg;
  cfg.name = "write-then-readshare";
  cfg.threads = 8;
  cfg.ops_per_thread = static_cast<std::uint64_t>(100'000 * scale);
  cfg.hotsync_p100k = 800;
  cfg.readshare_p100k = 10'000;
  cfg.readshare_write_pct = 0;
  cfg.sharedgen_p100k = 0;
  cfg.write_pct = 50;
  cfg.hot_objects = 16;
  WorkloadData data(cfg);

  const RunStats base = run_trials(trials, [&] {
    Runtime rt;
    NullTracker trk(rt);
    return run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<NullTracker>(rt, trk);
    });
  });

  struct Mode {
    const char* label;
    WrExReadMode mode;
  };
  const Mode modes[] = {
      {"full (WrExRLock)", WrExReadMode::kFull},
      {"prototype (WrExWLock)", WrExReadMode::kOmitWrExRLock},
      {"unsound (RdExRLock)", WrExReadMode::kUnsoundDowngrade},
  };

  std::printf("== §7.1 ablation: WrExRLock configuration modes ==\n\n");
  std::printf("%-24s %10s %12s %12s %8s\n", "mode", "overhead", "pess-unc",
              "pess-cont", "%reen");
  print_table_rule(72);

  for (const Mode& m : modes) {
    HybridConfig hc;
    hc.wr_ex_read_mode = m.mode;
    RunStats times;
    TransitionStats stats;
    for (int i = 0; i < trials; ++i) {
      Runtime rt;
      HybridTracker<true> trk(rt, hc);
      const auto r = run_workload(cfg, data, [&](ThreadId) {
        return DirectApi<HybridTracker<true>>(rt, trk);
      });
      times.add(r.seconds);
      if (i == 0) stats = r.stats;
    }
    const Overhead o = overhead_vs(base, times);
    std::printf("%-24s %9.1f%% %12llu %12llu %7.0f%%\n", m.label,
                o.median_pct,
                static_cast<unsigned long long>(stats.pess_uncontended),
                static_cast<unsigned long long>(stats.pess_contended),
                100.0 * stats.reentrant_fraction());
  }

  std::printf("\nexpected: the prototype mode shows extra contended "
              "transitions vs the full model;\nthe paper found this spurious "
              "contention insignificant in its workloads (§7.1).\n");
  return 0;
}
