// contended_transfer: the batched-coordination contention suite
// (DESIGN.md §13). T threads each own a group of K hot objects and
// repeatedly take over a peer's group, ring-style: at round r every thread
// claims the group (tid + 1 + r mod (T-1)) places over — a rotation, so each
// group has exactly one taker per round and one coherent previous owner.
// Every takeover conflicts with that owner, so an unbatched transfer pays K
// explicit coordination round trips while a batched transfer posts ONE
// coordinate_batch mailbox round for the whole group.
//
// Sweeps thread count x objects-per-owner x handoff rate and emits
// machine-independent gate metrics next to the wall-time series:
//
//   speedup_median       unbatched_median_s / batched_median_s
//                        (the 8x16 dense profile gates at >= 1.10)
//   batch_objects_mean   coord_batch_objects / coord_batch_rounds
//                        (gates at > 1.5: batches actually amortize)
//   rounds_per_transfer  coordination_rounds / total transfers, per config
//
// The optimistic tracker is the measured configuration: its objects never
// settle pessimistic, so every transfer exercises the coordination protocol
// the batching layer amortizes. The hybrid tracker rides along on the gate
// profile as a sanity row (its adaptive policy may park the group
// pessimistic, which is also a fine outcome — just not the one under test).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"

using namespace ht;

namespace {

constexpr std::size_t kMaxGroup = 16;

struct TransferData {
  TrackedArray<std::uint64_t> hot;  // T groups of K: thread t homes [t*K, t*K+K)
  std::vector<std::unique_ptr<TrackedArray<std::uint64_t>>> priv;
  std::size_t k;

  TransferData(int threads, std::size_t group)
      : hot(static_cast<std::size_t>(threads) * group), k(group) {
    for (int t = 0; t < threads; ++t) {
      priv.push_back(std::make_unique<TrackedArray<std::uint64_t>>(64));
    }
  }

  template <typename Tracker>
  void init_for_thread(Tracker& tracker, ThreadContext& ctx) {
    // Each thread initializes its home group, so the very first ring
    // takeover already crosses an ownership boundary.
    for (std::size_t i = 0; i < k; ++i) {
      hot[ctx.id * k + i].init(tracker, ctx, 0);
    }
    if (ctx.id < priv.size()) priv[ctx.id]->init_all(tracker, ctx, 0);
  }
};

// One thread's run: `transfers` ring takeovers of a peer's K-object group,
// with handoff_every-1 private filler stores between takeovers (handoff
// rate). Yields every transfer so takeovers interleave across threads on a
// single-core host.
template <typename Api>
std::uint64_t transfer_body(Api& api, TransferData& d, ThreadId tid,
                            int threads, std::uint64_t transfers,
                            std::size_t k, std::uint32_t handoff_every,
                            bool batched) {
  TrackedVar<std::uint64_t>* ptrs[kMaxGroup];
  std::uint64_t vals[kMaxGroup];
  TrackedArray<std::uint64_t>& mine = *d.priv[tid];
  std::uint64_t step = 0;
  for (std::uint64_t t = 0; t < transfers; ++t) {
    for (std::uint32_t f = 1; f < handoff_every; ++f) {
      api.store(mine[step % mine.size()], step);
      ++step;
      api.poll();
    }
    // Rotation: every thread adds the same offset this round, so no two
    // threads claim the same group and every group changes hands.
    const std::size_t target =
        (tid + 1 + (t % static_cast<std::uint64_t>(threads - 1))) %
        static_cast<std::size_t>(threads);
    for (std::size_t i = 0; i < k; ++i) {
      ptrs[i] = &d.hot[target * k + i];
      vals[i] = t * k + i;
    }
    if (batched) {
      api.store_batch(ptrs, vals, k);
    } else {
      for (std::size_t i = 0; i < k; ++i) api.store(*ptrs[i], vals[i]);
    }
    api.poll();
    schedule::cadence_point(t, 1);
  }
  return step;
}

struct Profile {
  const char* name;
  int threads;
  std::size_t group;       // objects per owner (K)
  std::uint32_t handoff;   // takeover every Nth region (1 = dense)
  bool gate;               // the profile the CI perf gate reads
};

template <typename Tracker, typename MakeTracker>
TrialSeries measure(const Profile& p, std::uint64_t transfers, int trials,
                    bool batched, MakeTracker&& make_tracker,
                    TransitionStats& agg) {
  return run_trial_series(trials, [&] {
    TransferData data(p.threads, p.group);
    Runtime rt;
    Tracker trk = make_tracker(rt);
    WorkloadRunResult r = run_threads(
        p.threads, [&](ThreadId) { return DirectApi<Tracker>(rt, trk); },
        [&data](auto& api, ThreadId tid) { api.init_data(data, tid); },
        [&](auto& api, ThreadId tid) {
          return transfer_body(api, data, tid, p.threads, transfers, p.group,
                               p.handoff, batched);
        });
    agg += r.stats;
    return r;
  });
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  const auto transfers =
      static_cast<std::uint64_t>(32 * scale) > 0
          ? static_cast<std::uint64_t>(32 * scale)
          : 1;
  const std::string json_path = json_path_from_args(argc, argv);

  const Profile profiles[] = {
      {"t2_k4_h1", 2, 4, 1, false},
      {"t4_k8_h1", 4, 8, 1, false},
      {"t8_k16_h1", 8, 16, 1, true},  // the CI gate profile
      {"t8_k16_h4", 8, 16, 4, false},
  };

  BenchJsonReport report("contended_transfer");
  report.set_meta("trials", json::Value(trials));
  report.set_meta("scale", json::Value(scale));
  report.set_meta("transfers_per_thread", json::Value(transfers));

  std::printf("== contended_transfer: batched vs unbatched ownership "
              "handoffs (median of %d trials, %llu transfers/thread) ==\n\n",
              trials, static_cast<unsigned long long>(transfers));
  std::printf("%-12s %12s %12s %9s %11s %11s\n", "profile", "unbatched_s",
              "batched_s", "speedup", "batch_mean", "rpt_batched");

  using Opt = OptimisticTracker<true>;
  const auto make_opt = [](Runtime& rt) { return Opt(rt); };

  bool gate_seen = false;
  for (const Profile& p : profiles) {
    const std::uint64_t total_transfers =
        static_cast<std::uint64_t>(p.threads) * transfers *
        static_cast<std::uint64_t>(trials + 1);  // +1: the discarded warm-up

    TransitionStats un_stats;
    const TrialSeries unbatched =
        measure<Opt>(p, transfers, trials, false, make_opt, un_stats);
    report.add_series(p.name, "unbatched", unbatched);
    report.add_stats(p.name, "unbatched", un_stats);
    report.add_value(p.name, "unbatched", "rounds_per_transfer",
                     json::Value(ratio(un_stats.coordination_rounds,
                                       total_transfers)));

    TransitionStats ba_stats;
    const TrialSeries batched =
        measure<Opt>(p, transfers, trials, true, make_opt, ba_stats);
    report.add_series(p.name, "batched", batched);
    report.add_stats(p.name, "batched", ba_stats);

    const double speedup = batched.seconds.median() > 0
                               ? unbatched.seconds.median() /
                                     batched.seconds.median()
                               : 0.0;
    const double batch_mean =
        ratio(ba_stats.coord_batch_objects, ba_stats.coord_batch_rounds);
    const double rpt =
        ratio(ba_stats.coordination_rounds, total_transfers);
    report.add_value(p.name, "batched", "speedup_median",
                     json::Value(speedup));
    report.add_value(p.name, "batched", "batch_objects_mean",
                     json::Value(batch_mean));
    report.add_value(p.name, "batched", "rounds_per_transfer",
                     json::Value(rpt));

    std::printf("%-12s %12.4f %12.4f %8.2fx %11.2f %11.2f\n", p.name,
                unbatched.seconds.median(), batched.seconds.median(), speedup,
                batch_mean, rpt);
    gate_seen |= p.gate;

    if (p.gate) {
      // Hybrid sanity rows on the gate profile only (adaptive policy may
      // take the group pessimistic; the row documents what it did).
      using Hyb = HybridTracker<true>;
      const auto make_hyb = [](Runtime& rt) {
        return Hyb(rt, HybridConfig{});
      };
      TransitionStats hu_stats;
      const TrialSeries hyb_un =
          measure<Hyb>(p, transfers, trials, false, make_hyb, hu_stats);
      report.add_series(p.name, "hybrid_unbatched", hyb_un);
      report.add_stats(p.name, "hybrid_unbatched", hu_stats);
      TransitionStats hb_stats;
      const TrialSeries hyb_ba =
          measure<Hyb>(p, transfers, trials, true, make_hyb, hb_stats);
      report.add_series(p.name, "hybrid_batched", hyb_ba);
      report.add_stats(p.name, "hybrid_batched", hb_stats);
      const double hyb_speedup =
          hyb_ba.seconds.median() > 0
              ? hyb_un.seconds.median() / hyb_ba.seconds.median()
              : 0.0;
      report.add_value(p.name, "hybrid_batched", "speedup_median",
                       json::Value(hyb_speedup));
      std::printf("%-12s %12.4f %12.4f %8.2fx %11.2f %11s  (hybrid)\n",
                  p.name, hyb_un.seconds.median(), hyb_ba.seconds.median(),
                  hyb_speedup,
                  ratio(hb_stats.coord_batch_objects,
                        hb_stats.coord_batch_rounds),
                  "-");
    }
  }

  std::printf("\nshape to check: speedup grows with group size (a batch "
              "collapses K round trips into 1); batch_objects_mean well "
              "above 1 on every dense profile\n");
  if (!gate_seen) return 2;
  if (!json_path.empty() && !report.write(json_path)) return 5;
  return 0;
}
