// §2.2 cost table: CPU cycles per state-transition kind.
//
// Paper (32-core Xeon, Jikes RVM):
//     Pessimistic   Opt same-state   Opt conflicting (explicit)   (implicit)
//     150 cycles    47 cycles        9,200 cycles                 360 cycles
//
// Shapes to reproduce: optimistic same-state is the cheapest (no atomics);
// pessimistic costs an atomic-op multiple of that; explicit coordination is
// 2-3 orders of magnitude above same-state (it pays a cross-thread round
// trip — on this container, a scheduler round trip); implicit coordination
// is within an order of magnitude of a pessimistic transition.
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/cycle_timer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"
#include "workload/harness.hpp"

using namespace ht;

namespace {

constexpr int kIters = 200'000;

double pessimistic_same_state_cycles() {
  Runtime rt;
  PessimisticTracker<> tracker(rt);
  ThreadContext& ctx = rt.register_thread();
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  const std::uint64_t t0 = read_cycles();
  for (int i = 0; i < kIters; ++i) {
    var.store(tracker, ctx, static_cast<std::uint64_t>(i));
  }
  return static_cast<double>(read_cycles() - t0) / kIters;
}

double optimistic_same_state_cycles() {
  Runtime rt;
  OptimisticTracker<> tracker(rt);
  ThreadContext& ctx = rt.register_thread();
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  const std::uint64_t t0 = read_cycles();
  for (int i = 0; i < kIters; ++i) {
    var.store(tracker, ctx, static_cast<std::uint64_t>(i));
  }
  return static_cast<double>(read_cycles() - t0) / kIters;
}

// Explicit coordination: the requester conflicts with a *running* owner that
// reaches safe points in its poll loop. Each iteration alternates ownership,
// so every tracked store is a conflicting transition.
double explicit_conflict_cycles() {
  Runtime rt;
  OptimisticTracker<> tracker(rt);
  TrackedVar<std::uint64_t> var;

  constexpr int kConflicts = 2'000;
  std::atomic<bool> stop{false};
  std::atomic<ThreadContext*> owner_ctx{nullptr};

  std::thread owner([&] {
    ThreadContext& ctx = rt.register_thread();
    var.init(tracker, ctx, 0);
    owner_ctx.store(&ctx);
    while (!stop.load(std::memory_order_relaxed)) {
      rt.poll(ctx);
      std::this_thread::yield();
    }
    rt.unregister_thread(ctx);
  });
  while (owner_ctx.load() == nullptr) std::this_thread::yield();

  ThreadContext& me = rt.register_thread();
  double cycles;
  {
    const std::uint64_t t0 = read_cycles();
    for (int i = 0; i < kConflicts; ++i) {
      // Every store conflicts: reset ownership to the remote owner between
      // measured operations (bench-only direct metadata write).
      var.meta().store_state(StateWord::wr_ex_opt(owner_ctx.load()->id));
      var.store(tracker, me, static_cast<std::uint64_t>(i));
    }
    cycles = static_cast<double>(read_cycles() - t0) / kConflicts;
  }
  stop.store(true);
  owner.join();
  return cycles;
}

// Implicit coordination: the owner is parked at a blocking safe point.
double implicit_conflict_cycles() {
  Runtime rt;
  OptimisticTracker<> tracker(rt);
  ThreadContext& owner = rt.register_thread();
  TrackedVar<std::uint64_t> var;
  var.init(tracker, owner, 0);
  rt.begin_blocking(owner);

  ThreadContext& me = rt.register_thread();
  constexpr int kConflicts = 100'000;
  const std::uint64_t t0 = read_cycles();
  for (int i = 0; i < kConflicts; ++i) {
    var.meta().store_state(StateWord::wr_ex_opt(owner.id));
    var.store(tracker, me, static_cast<std::uint64_t>(i));
  }
  const double cycles =
      static_cast<double>(read_cycles() - t0) / kConflicts;
  rt.end_blocking(owner);
  return cycles;
}

// Hybrid pessimistic uncontended transition (lock + buffer append), the unit
// the cost-benefit model prices as Tpess.
double hybrid_pess_uncontended_cycles() {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));
  constexpr int kOps = 100'000;
  const std::uint64_t t0 = read_cycles();
  for (int i = 0; i < kOps; ++i) {
    var.store(tracker, ctx, static_cast<std::uint64_t>(i));  // lock (1st) /
    rt.psro(ctx);                                            // unlock
  }
  const double cycles = static_cast<double>(read_cycles() - t0) / kOps;
  return cycles;
}

}  // namespace

int main() {
  std::printf("== §2.2 cost table: CPU cycles per transition kind ==\n");
  std::printf("(paper: pessimistic 150, opt same-state 47, explicit 9,200, "
              "implicit 360)\n\n");
  const double pess = pessimistic_same_state_cycles();
  const double same = optimistic_same_state_cycles();
  const double impl = implicit_conflict_cycles();
  const double expl = explicit_conflict_cycles();
  const double hyb_pess = hybrid_pess_uncontended_cycles();

  std::printf("%-42s %12.0f\n", "Pessimistic (per access, CAS + unlock):", pess);
  std::printf("%-42s %12.0f\n", "Optimistic same state (fast path):", same);
  std::printf("%-42s %12.0f\n", "Optimistic conflicting, explicit:", expl);
  std::printf("%-42s %12.0f\n", "Optimistic conflicting, implicit:", impl);
  std::printf("%-42s %12.0f\n", "Hybrid pess uncontended (+PSRO unlock):",
              hyb_pess);

  std::printf("\nratios (paper in parentheses):\n");
  std::printf("  pessimistic / opt-same : %8.1fx  (3.2x)\n", pess / same);
  std::printf("  explicit    / opt-same : %8.1fx  (196x)\n", expl / same);
  std::printf("  explicit    / pess     : %8.1fx  (61x)\n", expl / pess);
  std::printf("  implicit    / pess     : %8.1fx  (2.4x)\n", impl / pess);

  const double k_confl = (expl - pess) / (pess - same);
  std::printf("\nimplied K_confl = (Tconfl - Tpess)/(Tpess - TnonConfl) = %.0f"
              "  (paper uses 200)\n", k_confl);
  return 0;
}
