// Extension bench: cost of the FastTrack-style race detector (src/raceck/),
// the paper's §2 "detect" runtime-support example, built on pessimistic
// instrumentation atomicity.
//
// Reported: overhead of race-checked accesses over raw accesses for three
// access patterns (thread-private, lock-synchronized shared, racy shared) —
// illustrating §2.1's point that pessimistic-style clients pay on every
// access regardless of conflict rate, the motivation for hybrid tracking.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cycle_timer.hpp"
#include "common/stats.hpp"
#include "raceck/race_detector.hpp"
#include "runtime/runtime.hpp"
#include "workload/harness.hpp"

using namespace ht;

namespace {

constexpr int kThreads = 4;

template <typename Body>
double run_timed(Body&& body) {
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  WallTimer timer;
  std::atomic<double> seconds{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      if (i == 0) timer.reset();
      body(i);
      if (i == 0) seconds.store(timer.elapsed_seconds());
    });
  }
  for (auto& t : threads) t.join();
  return seconds.load();
}

struct Pattern {
  const char* name;
  bool shared;
  bool locked;
};

void bench_pattern(const Pattern& p, std::uint64_t iters, int trials) {
  RunStats base, checked;
  std::uint64_t races = 0;

  for (int trial = 0; trial < trials; ++trial) {
    // Baseline: raw atomic accesses with the same loop structure.
    {
      std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> slots;
      for (int i = 0; i < kThreads; ++i)
        slots.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
      std::mutex mu;
      base.add(run_timed([&](int t) {
        auto& slot = *slots[p.shared ? 0 : static_cast<std::size_t>(t)];
        for (std::uint64_t j = 0; j < iters; ++j) {
          if (p.locked) mu.lock();
          slot.store(slot.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
          if (p.locked) mu.unlock();
          if (j % 64 == 0) std::this_thread::yield();
        }
      }));
    }
    // Race-checked.
    {
      Runtime rt;
      RaceDetector rd(kThreads);
      std::vector<std::unique_ptr<RaceCheckedVar<std::uint64_t>>> slots;
      for (int i = 0; i < kThreads; ++i)
        slots.push_back(std::make_unique<RaceCheckedVar<std::uint64_t>>());
      std::mutex mu;
      std::vector<ThreadContext*> ctxs(kThreads, nullptr);
      std::mutex reg_mu;
      checked.add(run_timed([&](int t) {
        ThreadContext* ctx;
        {
          std::lock_guard<std::mutex> g(reg_mu);
          ctx = &rt.register_thread();
          rd.attach_thread(*ctx);
          ctxs[static_cast<std::size_t>(t)] = ctx;
        }
        auto& slot = *slots[p.shared ? 0 : static_cast<std::size_t>(t)];
        for (std::uint64_t j = 0; j < iters; ++j) {
          if (p.locked) {
            mu.lock();
            rd.on_acquire(*ctx, &mu);
          }
          slot.store(rd, *ctx, slot.load(rd, *ctx) + 1);
          if (p.locked) {
            rd.on_release(*ctx, &mu);
            mu.unlock();
          }
          if (j % 64 == 0) std::this_thread::yield();
        }
      }));
      races = rd.total_report(kThreads).total();
    }
  }

  const Overhead o = overhead_vs(base, checked);
  std::printf("%-18s %9.1f%% (±%5.1f%%)   races reported: %llu\n", p.name,
              o.median_pct, o.ci_half_pct,
              static_cast<unsigned long long>(races));
}

}  // namespace

int main() {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  const auto iters = static_cast<std::uint64_t>(30'000 * scale);

  std::printf("== extension: FastTrack-style race detector overhead "
              "(%d threads x %llu ops, median of %d) ==\n\n",
              kThreads, static_cast<unsigned long long>(iters), trials);
  bench_pattern({"private", false, false}, iters, trials);
  bench_pattern({"shared+locked", true, true}, iters, trials);
  bench_pattern({"shared+racy", true, false}, iters, trials);
  std::printf("\nnote: per-access analysis cost is paid even for the "
              "conflict-free private pattern —\nthe pessimistic-client cost "
              "structure that motivates hybrid tracking (§1, §2.1).\n");
  return 0;
}
