// Fig 6: adaptive-policy limit study — cumulative distribution of optimistic
// conflicting transitions (explicit coordination only) per object.
//
// For each x, y(x) = conflicting transitions that were among the first x
// conflicts of their object, as a percentage of ALL accesses. The paper's
// reading: each object's first few conflicts are an insignificant fraction
// of accesses, so per-object profiling with a small Cutoff_confl catches
// nearly all conflicting transitions — except avrora9, whose conflicts are
// spread across many objects.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

int main(int argc, char** argv) {
  const double scale = scale_from_env();
  const std::string json_path = json_path_from_args(argc, argv);
  const std::vector<std::uint64_t> xs = {1, 2, 4, 8, 16, 32, 64, 128, 256,
                                         512, 1024};

  BenchJsonReport report("fig6_limit_study");
  report.set_meta("scale", json::Value(scale));
  {
    json::Array cutoffs;
    for (auto x : xs) cutoffs.emplace_back(x);
    report.set_meta("cutoffs", json::Value(std::move(cutoffs)));
  }

  std::printf("== Fig 6: cumulative conflicting transitions per object "
              "(optimistic tracking, explicit only) ==\n");
  std::printf("y = %% of all accesses that are conflicts among the first x "
              "conflicts of their object\n\n");
  std::printf("%-12s", "workload");
  for (auto x : xs) std::printf(" x<=%-7llu", static_cast<unsigned long long>(x));
  std::printf(" max-y\n");
  print_table_rule(12 + 11 * static_cast<int>(xs.size()) + 8);

  for (const WorkloadConfig& cfg : paper_profiles(scale)) {
    WorkloadData data(cfg);
    Runtime rt;
    OptimisticTracker<true> trk(rt);
    trk.enable_conflict_census();
    const auto r = run_workload(cfg, data, [&](ThreadId) {
      return DirectApi<OptimisticTracker<true>>(rt, trk);
    });

    const std::vector<std::uint32_t> counts = data.per_object_conflict_counts();
    const double total_accesses = static_cast<double>(r.stats.accesses());

    // Paper convention: exclude programs with conflict rate < 0.0001%.
    const std::uint64_t total_conflicts = r.stats.opt_confl_explicit;
    if (total_conflicts / total_accesses < 1e-6) {
      std::printf("%-12s (conflict rate < 0.0001%%, excluded as in Fig 6)\n",
                  cfg.name);
      report.add_value(cfg.name, "optimistic", "excluded", json::Value(true));
      continue;
    }

    json::Array coverage;
    std::printf("%-12s", cfg.name);
    for (const std::uint64_t x : xs) {
      std::uint64_t covered = 0;
      for (const std::uint32_t c : counts) {
        covered += std::min<std::uint64_t>(c, x);
      }
      const double pct =
          100.0 * static_cast<double>(covered) / total_accesses;
      coverage.emplace_back(pct);
      std::printf(" %9.5f%%", pct);
    }
    const double max_y =
        100.0 * static_cast<double>(total_conflicts) / total_accesses;
    std::printf(" %9.5f%%\n", max_y);
    report.add_value(cfg.name, "optimistic", "coverage_pct",
                     json::Value(std::move(coverage)));
    report.add_value(cfg.name, "optimistic", "max_y_pct", json::Value(max_y));
    report.add_value(cfg.name, "optimistic", "excluded", json::Value(false));
  }
  if (!json_path.empty() && !report.write(json_path)) return 5;
  std::printf("\nreading: if y at x=4 is well below max-y for high-conflict "
              "programs, Cutoff_confl=4 catches\nmost conflicts — the basis "
              "for §7.3's parameter choice.\n");
  return 0;
}
