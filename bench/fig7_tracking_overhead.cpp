// Fig 7: run-time overhead of dependence tracking alone — Pessimistic,
// Optimistic, Hybrid w/infinite cutoff, Hybrid, and the unsound Ideal bound,
// over the no-tracking baseline, for all 13 workload profiles.
//
// Paper shapes to reproduce:
//   * pessimistic is by far the most expensive everywhere;
//   * optimistic is cheap for low-conflict profiles but blows up for
//     high-conflict ones (xalan6, pjbb2005);
//   * hybrid w/infinite cutoff costs only a little more than optimistic;
//   * hybrid recovers most of the gap between optimistic and Ideal on the
//     high-conflict profiles and roughly ties optimistic elsewhere;
//   * geomean: hybrid < optimistic < pessimistic.
#include <cstdio>
#include <string>
#include <vector>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

namespace {

template <typename MakeTrackerAndRun>
TrialSeries measure(int trials, MakeTrackerAndRun&& once) {
  return run_trial_series(trials, once);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  const std::string json_path = json_path_from_args(argc, argv);

  BenchJsonReport report("fig7_tracking_overhead");
  report.set_meta("trials", json::Value(trials));
  report.set_meta("scale", json::Value(scale));

  std::printf("== Fig 7: run-time overhead of tracking alone (median of %d "
              "trials, ±95%% CI) ==\n\n", trials);
  const std::vector<std::string> configs = {
      "Pessimistic", "Optimistic", "Hybrid w/inf cutoff", "Hybrid", "Ideal"};
  print_overhead_header(configs);

  std::vector<std::vector<double>> medians(configs.size());

  for (const WorkloadConfig& cfg : paper_profiles(scale)) {
    WorkloadData data(cfg);

    const TrialSeries base = measure(trials, [&] {
      Runtime rt;
      NullTracker trk(rt);
      return run_workload(cfg, data, [&](ThreadId) {
        return DirectApi<NullTracker>(rt, trk);
      });
    });
    report.add_series(cfg.name, "base", base);

    std::vector<Overhead> row;
    const auto add = [&](const char* name, const TrialSeries& s) {
      report.add_series(cfg.name, name, s);
      const Overhead o = overhead_vs(base.seconds, s.seconds);
      report.add_value(cfg.name, name, "overhead_median_pct",
                       json::Value(o.median_pct));
      row.push_back(o);
    };

    add("pessimistic", measure(trials, [&] {
          Runtime rt;
          PessimisticTracker<> trk(rt);
          return run_workload(cfg, data, [&](ThreadId) {
            return DirectApi<PessimisticTracker<>>(rt, trk);
          });
        }));

    add("optimistic", measure(trials, [&] {
          Runtime rt;
          OptimisticTracker<> trk(rt);
          return run_workload(cfg, data, [&](ThreadId) {
            return DirectApi<OptimisticTracker<>>(rt, trk);
          });
        }));

    add("hybrid_inf", measure(trials, [&] {
          Runtime rt;
          HybridConfig hc;
          hc.policy = PolicyConfig::infinite();
          HybridTracker<> trk(rt, hc);
          return run_workload(cfg, data, [&](ThreadId) {
            return DirectApi<HybridTracker<>>(rt, trk);
          });
        }));

    add("hybrid", measure(trials, [&] {
          Runtime rt;
          HybridTracker<> trk(rt, HybridConfig{});
          return run_workload(cfg, data, [&](ThreadId) {
            return DirectApi<HybridTracker<>>(rt, trk);
          });
        }));

    add("ideal", measure(trials, [&] {
          Runtime rt;
          IdealTracker<> trk(rt);
          return run_workload(cfg, data, [&](ThreadId) {
            return DirectApi<IdealTracker<>>(rt, trk);
          });
        }));

    print_overhead_row(cfg.name, row);
    for (std::size_t i = 0; i < row.size(); ++i) {
      medians[i].push_back(row[i].median_pct);
    }
  }

  print_geomean_row(medians);
  if (!json_path.empty() && !report.write(json_path)) return 5;
  std::printf("\npaper geomeans: pessimistic 340%%, optimistic 28%%, hybrid "
              "w/inf 30%%, hybrid 22%%, ideal 14%%\n");
  std::printf("(absolute values differ on this 1-core container — compare "
              "orderings and per-profile shapes; see EXPERIMENTS.md)\n");
  return 0;
}
