// Fig 8: stress microbenchmarks syncInc and racyInc — eight threads
// incrementing one global counter, with and without a global program lock.
//
// Paper shapes:
//   syncInc — optimistic tracking is catastrophic (~1200%: every increment
//   conflicts and coordinates); hybrid eliminates nearly all coordination
//   via deferred unlocking (84%); pessimistic sits near hybrid.
//   racyInc — everything is expensive (pess/opt ~1200%); hybrid is WORST
//   (4300%): every conflict is a true data race, so pessimistic locking
//   keeps triggering contended coordination. The §7.5 escape extension
//   (ablation_contended_escape) addresses exactly this.
#include <cstdio>
#include <string>
#include <vector>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/microbench.hpp"

using namespace ht;

namespace {

constexpr int kThreads = 8;  // as in the paper

template <typename Body>
void bench_one(const char* name, std::uint64_t iters, int trials, Body&& body,
               BenchJsonReport& report) {
  const TrialSeries base = run_trial_series(trials, [&] {
    MicrobenchData data;
    Runtime rt;
    NullTracker trk(rt);
    return run_microbench(
        kThreads, data,
        [&](ThreadId) { return DirectApi<NullTracker>(rt, trk); },
        [&](auto& api, ThreadId) { return body(api, data, iters); });
  });
  report.add_series(name, "base", base);

  std::vector<Overhead> row;
  const auto add = [&](const char* config, const TrialSeries& s) {
    report.add_series(name, config, s);
    const Overhead o = overhead_vs(base.seconds, s.seconds);
    report.add_value(name, config, "overhead_median_pct",
                     json::Value(o.median_pct));
    row.push_back(o);
  };

  add("pessimistic", run_trial_series(trials, [&] {
        MicrobenchData data;
        Runtime rt;
        PessimisticTracker<> trk(rt);
        return run_microbench(
            kThreads, data,
            [&](ThreadId) { return DirectApi<PessimisticTracker<>>(rt, trk); },
            [&](auto& api, ThreadId) { return body(api, data, iters); });
      }));

  add("optimistic", run_trial_series(trials, [&] {
        MicrobenchData data;
        Runtime rt;
        OptimisticTracker<> trk(rt);
        return run_microbench(
            kThreads, data,
            [&](ThreadId) { return DirectApi<OptimisticTracker<>>(rt, trk); },
            [&](auto& api, ThreadId) { return body(api, data, iters); });
      }));

  add("hybrid", run_trial_series(trials, [&] {
        MicrobenchData data;
        Runtime rt;
        HybridTracker<> trk(rt, HybridConfig{});
        return run_microbench(
            kThreads, data,
            [&](ThreadId) { return DirectApi<HybridTracker<>>(rt, trk); },
            [&](auto& api, ThreadId) { return body(api, data, iters); });
      }));

  print_overhead_row(name, row);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  const auto iters = static_cast<std::uint64_t>(4'000 * scale);
  const std::string json_path = json_path_from_args(argc, argv);

  BenchJsonReport report("fig8_microbench");
  report.set_meta("trials", json::Value(trials));
  report.set_meta("scale", json::Value(scale));
  report.set_meta("threads", json::Value(kThreads));
  report.set_meta("iters", json::Value(iters));

  std::printf("== Fig 8: microbenchmark overhead, %d threads x %llu "
              "increments (median of %d trials) ==\n\n",
              kThreads, static_cast<unsigned long long>(iters), trials);
  print_overhead_header({"Pessimistic", "Optimistic", "Hybrid"});

  bench_one("syncInc", iters, trials,
            [](auto& api, MicrobenchData& d, std::uint64_t n) {
              return sync_inc_body(api, d, n);
            },
            report);
  bench_one("racyInc", iters, trials,
            [](auto& api, MicrobenchData& d, std::uint64_t n) {
              return racy_inc_body(api, d, n);
            },
            report);

  std::printf("\npaper: syncInc pess ~1200%%, opt ~1200%%, hybrid 84%%;"
              "  racyInc pess ~1200%%, opt ~1200%%, hybrid 4300%%\n");
  std::printf("shape to check: hybrid wins big on syncInc, loses on racyInc "
              "(true races force contended coordination)\n");
  if (!json_path.empty() && !report.write(json_path)) return 5;
  return 0;
}
