// Fig 9(a): run-time overhead of the dependence recorders and replayers —
// optimistic recorder/replayer (prior work [10]) vs hybrid recorder/replayer
// (§4.2) — over the no-tracking baseline, on the 12 recorder profiles
// (eclipse6 excluded, §7.6).
//
// Paper shapes:
//   * the hybrid recorder beats the optimistic recorder on high-conflict
//     profiles (xalan6/9, pjbb2005) and is comparable elsewhere
//     (geomean 46% -> 41%);
//   * replay is cheaper than record (20% / 24%) and can even beat the
//     baseline on lock-dominated profiles, because replay elides program
//     synchronization;
//   * the hybrid replayer is slightly slower than the optimistic replayer
//     (release-counter maintenance; dependences cannot be reduced).
#include <cstdio>
#include <vector>

#include "recorder/recorder.hpp"
#include "recorder/replayer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

namespace {

// One record trial + one replay trial for the given tracker family; returns
// {record stats, replay stats} pair appended into the RunStats accumulators.
template <template <bool, typename> class TrackerT>
void record_and_replay_once(const WorkloadConfig& cfg, WorkloadData& data,
                            RunStats& record_stats, RunStats& replay_stats) {
  Runtime rt;
  DependenceRecorder recorder(rt);
  using Tracker = TrackerT<false, DependenceRecorder>;
  Tracker tracker = [&] {
    if constexpr (std::is_constructible_v<Tracker, Runtime&, HybridConfig,
                                          DependenceRecorder*>) {
      return Tracker(rt, HybridConfig{}, &recorder);
    } else {
      return Tracker(rt, &recorder);
    }
  }();

  const WorkloadRunResult rec = run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, tracker, &recorder);
  });
  record_stats.add(rec.seconds);

  const Recording recording =
      recorder.take_recording(static_cast<ThreadId>(cfg.threads));
  Replayer replayer(recording);
  const WorkloadRunResult rep = run_workload(
      cfg, data, [&](ThreadId) { return ReplayApi(replayer); });
  replay_stats.add(rep.seconds);
}

}  // namespace

int main() {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();

  std::printf("== Fig 9(a): dependence recorder & replayer overhead (median "
              "of %d trials) ==\n\n", trials);
  print_overhead_header(
      {"Opt. recorder", "Opt. replayer", "Hybrid recorder", "Hybrid replayer"});

  std::vector<std::vector<double>> medians(4);

  for (const WorkloadConfig& cfg : recorder_profiles(scale)) {
    WorkloadData data(cfg);

    const RunStats base = run_trials(trials, [&] {
      Runtime rt;
      NullTracker trk(rt);
      return run_workload(cfg, data, [&](ThreadId) {
        return DirectApi<NullTracker>(rt, trk);
      });
    });

    RunStats opt_rec, opt_rep, hyb_rec, hyb_rep;
    for (int i = 0; i < trials; ++i) {
      record_and_replay_once<OptimisticTracker>(cfg, data, opt_rec, opt_rep);
      record_and_replay_once<HybridTracker>(cfg, data, hyb_rec, hyb_rep);
    }

    const std::vector<Overhead> row = {
        overhead_vs(base, opt_rec), overhead_vs(base, opt_rep),
        overhead_vs(base, hyb_rec), overhead_vs(base, hyb_rep)};
    print_overhead_row(cfg.name, row);
    for (std::size_t i = 0; i < row.size(); ++i) {
      medians[i].push_back(row[i].median_pct);
    }
  }

  print_geomean_row(medians);
  std::printf("\npaper geomeans: opt recorder 46%%, opt replayer 20%%, hybrid "
              "recorder 41%%, hybrid replayer 24%%\n");
  return 0;
}
