// Fig 9(a): run-time overhead of the dependence recorders and replayers —
// optimistic recorder/replayer (prior work [10]) vs hybrid recorder/replayer
// (§4.2) — over the no-tracking baseline, on the 12 recorder profiles
// (eclipse6 excluded, §7.6).
//
// Paper shapes:
//   * the hybrid recorder beats the optimistic recorder on high-conflict
//     profiles (xalan6/9, pjbb2005) and is comparable elsewhere
//     (geomean 46% -> 41%);
//   * replay is cheaper than record (20% / 24%) and can even beat the
//     baseline on lock-dominated profiles, because replay elides program
//     synchronization;
//   * the hybrid replayer is slightly slower than the optimistic replayer
//     (release-counter maintenance; dependences cannot be reduced).
#include <cstdio>
#include <string>
#include <vector>

#include "recorder/recorder.hpp"
#include "recorder/replayer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

namespace {

void add_result(TrialSeries& series, const WorkloadRunResult& r) {
  series.seconds.add(r.seconds);
  series.cycles.add(static_cast<double>(r.cycles));
  series.join_skew.add(r.join_skew_seconds);
}

// One record trial + one replay trial for the given tracker family; returns
// {record stats, replay stats} pair appended into the trial-series
// accumulators.
template <template <bool, typename> class TrackerT>
void record_and_replay_once(const WorkloadConfig& cfg, WorkloadData& data,
                            TrialSeries& record_stats,
                            TrialSeries& replay_stats) {
  Runtime rt;
  DependenceRecorder recorder(rt);
  using Tracker = TrackerT<false, DependenceRecorder>;
  Tracker tracker = [&] {
    if constexpr (std::is_constructible_v<Tracker, Runtime&, HybridConfig,
                                          DependenceRecorder*>) {
      return Tracker(rt, HybridConfig{}, &recorder);
    } else {
      return Tracker(rt, &recorder);
    }
  }();

  const WorkloadRunResult rec = run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, tracker, &recorder);
  });
  add_result(record_stats, rec);

  const Recording recording =
      recorder.take_recording(static_cast<ThreadId>(cfg.threads));
  Replayer replayer(recording);
  const WorkloadRunResult rep = run_workload(
      cfg, data, [&](ThreadId) { return ReplayApi(replayer); });
  add_result(replay_stats, rep);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  const std::string json_path = json_path_from_args(argc, argv);

  BenchJsonReport report("fig9a_recorder");
  report.set_meta("trials", json::Value(trials));
  report.set_meta("scale", json::Value(scale));

  std::printf("== Fig 9(a): dependence recorder & replayer overhead (median "
              "of %d trials) ==\n\n", trials);
  print_overhead_header(
      {"Opt. recorder", "Opt. replayer", "Hybrid recorder", "Hybrid replayer"});

  std::vector<std::vector<double>> medians(4);

  for (const WorkloadConfig& cfg : recorder_profiles(scale)) {
    WorkloadData data(cfg);

    const TrialSeries base = run_trial_series(trials, [&] {
      Runtime rt;
      NullTracker trk(rt);
      return run_workload(cfg, data, [&](ThreadId) {
        return DirectApi<NullTracker>(rt, trk);
      });
    });
    report.add_series(cfg.name, "base", base);

    TrialSeries opt_rec, opt_rep, hyb_rec, hyb_rep;
    for (int i = 0; i < trials; ++i) {
      record_and_replay_once<OptimisticTracker>(cfg, data, opt_rec, opt_rep);
      record_and_replay_once<HybridTracker>(cfg, data, hyb_rec, hyb_rep);
    }
    report.add_series(cfg.name, "opt_recorder", opt_rec);
    report.add_series(cfg.name, "opt_replayer", opt_rep);
    report.add_series(cfg.name, "hybrid_recorder", hyb_rec);
    report.add_series(cfg.name, "hybrid_replayer", hyb_rep);

    const std::vector<Overhead> row = {
        overhead_vs(base.seconds, opt_rec.seconds),
        overhead_vs(base.seconds, opt_rep.seconds),
        overhead_vs(base.seconds, hyb_rec.seconds),
        overhead_vs(base.seconds, hyb_rep.seconds)};
    print_overhead_row(cfg.name, row);
    for (std::size_t i = 0; i < row.size(); ++i) {
      medians[i].push_back(row[i].median_pct);
    }
  }

  print_geomean_row(medians);
  if (!json_path.empty() && !report.write(json_path)) return 5;
  std::printf("\npaper geomeans: opt recorder 46%%, opt replayer 20%%, hybrid "
              "recorder 41%%, hybrid replayer 24%%\n");
  return 0;
}
