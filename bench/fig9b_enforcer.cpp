// Fig 9(b): run-time overhead of enforcing statically bounded region
// serializability with the optimistic enforcer [36] vs the hybrid enforcer
// (§5.2), over the no-tracking baseline, for all 13 profiles.
//
// Paper shapes: the hybrid enforcer substantially improves xalan6, xalan9
// and pjbb2005 and roughly ties elsewhere (geomean 39% -> 34%) — mirroring
// the tracking-alone comparison, since the enforcer uses the trackers in
// essentially the same way.
#include <cstdio>
#include <vector>

#include "enforcer/rs_enforcer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

int main() {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();

  std::printf("== Fig 9(b): region-serializability enforcer overhead (median "
              "of %d trials) ==\n\n", trials);
  print_overhead_header({"Opt. RS enforcer", "Hybrid RS enforcer"});

  std::vector<std::vector<double>> medians(2);

  for (const WorkloadConfig& cfg : paper_profiles(scale)) {
    WorkloadData data(cfg);

    const RunStats base = run_trials(trials, [&] {
      Runtime rt;
      NullTracker trk(rt);
      return run_workload(cfg, data, [&](ThreadId) {
        return DirectApi<NullTracker>(rt, trk);
      });
    });

    const RunStats opt = run_trials(trials, [&] {
      Runtime rt;
      OptimisticTracker<> trk(rt);
      RsEnforcer<OptimisticTracker<>> enf(rt, trk);
      return run_workload(cfg, data, [&](ThreadId) {
        return EnforcerApi<OptimisticTracker<>>(rt, enf);
      });
    });

    const RunStats hyb = run_trials(trials, [&] {
      Runtime rt;
      HybridTracker<> trk(rt, HybridConfig{});
      RsEnforcer<HybridTracker<>> enf(rt, trk);
      return run_workload(cfg, data, [&](ThreadId) {
        return EnforcerApi<HybridTracker<>>(rt, enf);
      });
    });

    const std::vector<Overhead> row = {overhead_vs(base, opt),
                                       overhead_vs(base, hyb)};
    print_overhead_row(cfg.name, row);
    medians[0].push_back(row[0].median_pct);
    medians[1].push_back(row[1].median_pct);
  }

  print_geomean_row(medians);
  std::printf("\npaper geomeans: optimistic enforcer 39%%, hybrid enforcer "
              "34%%\n");
  return 0;
}
