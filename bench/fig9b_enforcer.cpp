// Fig 9(b): run-time overhead of enforcing statically bounded region
// serializability with the optimistic enforcer [36] vs the hybrid enforcer
// (§5.2), over the no-tracking baseline, for all 13 profiles.
//
// Paper shapes: the hybrid enforcer substantially improves xalan6, xalan9
// and pjbb2005 and roughly ties elsewhere (geomean 39% -> 34%) — mirroring
// the tracking-alone comparison, since the enforcer uses the trackers in
// essentially the same way.
#include <cstdio>
#include <string>
#include <vector>

#include "enforcer/rs_enforcer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

int main(int argc, char** argv) {
  const int trials = trials_from_env(3);
  const double scale = scale_from_env();
  const std::string json_path = json_path_from_args(argc, argv);

  BenchJsonReport report("fig9b_enforcer");
  report.set_meta("trials", json::Value(trials));
  report.set_meta("scale", json::Value(scale));

  std::printf("== Fig 9(b): region-serializability enforcer overhead (median "
              "of %d trials) ==\n\n", trials);
  print_overhead_header({"Opt. RS enforcer", "Hybrid RS enforcer"});

  std::vector<std::vector<double>> medians(2);

  for (const WorkloadConfig& cfg : paper_profiles(scale)) {
    WorkloadData data(cfg);

    const TrialSeries base = run_trial_series(trials, [&] {
      Runtime rt;
      NullTracker trk(rt);
      return run_workload(cfg, data, [&](ThreadId) {
        return DirectApi<NullTracker>(rt, trk);
      });
    });
    report.add_series(cfg.name, "base", base);

    const TrialSeries opt = run_trial_series(trials, [&] {
      Runtime rt;
      OptimisticTracker<> trk(rt);
      RsEnforcer<OptimisticTracker<>> enf(rt, trk);
      return run_workload(cfg, data, [&](ThreadId) {
        return EnforcerApi<OptimisticTracker<>>(rt, enf);
      });
    });
    report.add_series(cfg.name, "opt_enforcer", opt);

    const TrialSeries hyb = run_trial_series(trials, [&] {
      Runtime rt;
      HybridTracker<> trk(rt, HybridConfig{});
      RsEnforcer<HybridTracker<>> enf(rt, trk);
      return run_workload(cfg, data, [&](ThreadId) {
        return EnforcerApi<HybridTracker<>>(rt, enf);
      });
    });
    report.add_series(cfg.name, "hybrid_enforcer", hyb);

    const std::vector<Overhead> row = {overhead_vs(base.seconds, opt.seconds),
                                       overhead_vs(base.seconds, hyb.seconds)};
    print_overhead_row(cfg.name, row);
    medians[0].push_back(row[0].median_pct);
    medians[1].push_back(row[1].median_pct);
  }

  print_geomean_row(medians);
  if (!json_path.empty() && !report.write(json_path)) return 5;
  std::printf("\npaper geomeans: optimistic enforcer 39%%, hybrid enforcer "
              "34%%\n");
  return 0;
}
