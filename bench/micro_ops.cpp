// Google-benchmark micro-operation suite: per-operation costs of the
// building blocks — tracker fast paths, state-word encode/decode, profile
// updates, lock-buffer flushes — complementing costs_table's transition-level
// measurements with ns/op precision and automatic iteration control.
#include <benchmark/benchmark.h>

#include "metadata/state_word.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

void BM_StateWordEncodeDecode(benchmark::State& state) {
  std::uint64_t acc = 0;
  ThreadId t = 0;
  for (auto _ : state) {
    const StateWord w = StateWord::rd_sh_rlock(static_cast<std::uint32_t>(acc),
                                               (t & 0xFF) + 1);
    acc += w.counter() + w.rdlock_count() + static_cast<int>(w.kind());
    ++t;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_StateWordEncodeDecode);

void BM_ProfileWordUpdate(benchmark::State& state) {
  AtomicProfile p;
  for (auto _ : state) {
    p.update([](ProfileWord w) { return w.with_pess_non_confl_inc(); });
  }
  benchmark::DoNotOptimize(p.load().raw());
}
BENCHMARK(BM_ProfileWordUpdate);

template <typename Tracker, typename... Args>
void bench_store_fast_path(benchmark::State& state, Args&&... args) {
  Runtime rt;
  Tracker tracker(rt, std::forward<Args>(args)...);
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    var.store(tracker, ctx, ++i);
  }
  benchmark::DoNotOptimize(var.raw_load());
}

void BM_StoreFastPath_Null(benchmark::State& s) {
  bench_store_fast_path<NullTracker>(s);
}
BENCHMARK(BM_StoreFastPath_Null);

void BM_StoreFastPath_Pessimistic(benchmark::State& s) {
  bench_store_fast_path<PessimisticTracker<>>(s);
}
BENCHMARK(BM_StoreFastPath_Pessimistic);

void BM_StoreFastPath_Optimistic(benchmark::State& s) {
  bench_store_fast_path<OptimisticTracker<>>(s);
}
BENCHMARK(BM_StoreFastPath_Optimistic);

void BM_StoreFastPath_Hybrid(benchmark::State& s) {
  bench_store_fast_path<HybridTracker<>>(s, HybridConfig{});
}
BENCHMARK(BM_StoreFastPath_Hybrid);

void BM_StoreFastPath_Ideal(benchmark::State& s) {
  bench_store_fast_path<IdealTracker<>>(s);
}
BENCHMARK(BM_StoreFastPath_Ideal);

// Pessimistic uncontended lock/unlock cycle in the hybrid model: one locked
// store plus the flush that unlocks it (the Tpess unit of §6.1).
void BM_HybridPessLockUnlockCycle(benchmark::State& state) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));
  std::uint64_t i = 0;
  for (auto _ : state) {
    var.store(tracker, ctx, ++i);
    tracker.flush(ctx);
  }
}
BENCHMARK(BM_HybridPessLockUnlockCycle);

// Reentrant pessimistic accesses: lock once, then hammer (no atomics).
void BM_HybridPessReentrantStore(benchmark::State& state) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));
  var.store(tracker, ctx, 1);  // acquire the write lock once
  std::uint64_t i = 0;
  for (auto _ : state) {
    var.store(tracker, ctx, ++i);
  }
  tracker.flush(ctx);
}
BENCHMARK(BM_HybridPessReentrantStore);

void BM_SafepointPollNoRequests(benchmark::State& state) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  for (auto _ : state) {
    rt.poll(ctx);
  }
}
BENCHMARK(BM_SafepointPollNoRequests);

void BM_PsroEmptyBuffer(benchmark::State& state) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  for (auto _ : state) {
    rt.psro(ctx);
  }
}
BENCHMARK(BM_PsroEmptyBuffer);

}  // namespace
}  // namespace ht

BENCHMARK_MAIN();
