// Google-benchmark micro-operation suite: per-operation costs of the
// building blocks — tracker fast paths, state-word encode/decode, profile
// updates, lock-buffer flushes — complementing costs_table's transition-level
// measurements with ns/op precision and automatic iteration control.
//
// With `--json <path>` the binary instead runs the barrier-elision A/B
// scenario (DESIGN.md §15): a single-owner reentrant held-lock hot loop
// timed with the ownership cache on vs off, reporting
// `values.speedup_median` for tools/bench_gate to check against
// bench/baselines/micro_ops.json (the ≥1.5x elision win is a gated
// property of the build, not a hope).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "common/cycle_timer.hpp"
#include "common/stats.hpp"
#include "metadata/state_word.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"
#include "workload/harness.hpp"

namespace ht {
namespace {

void BM_StateWordEncodeDecode(benchmark::State& state) {
  std::uint64_t acc = 0;
  ThreadId t = 0;
  for (auto _ : state) {
    const StateWord w = StateWord::rd_sh_rlock(static_cast<std::uint32_t>(acc),
                                               (t & 0xFF) + 1);
    acc += w.counter() + w.rdlock_count() + static_cast<int>(w.kind());
    ++t;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_StateWordEncodeDecode);

void BM_ProfileWordUpdate(benchmark::State& state) {
  AtomicProfile p;
  for (auto _ : state) {
    p.update([](ProfileWord w) { return w.with_pess_non_confl_inc(); });
  }
  benchmark::DoNotOptimize(p.load().raw());
}
BENCHMARK(BM_ProfileWordUpdate);

template <typename Tracker, typename... Args>
void bench_store_fast_path(benchmark::State& state, Args&&... args) {
  Runtime rt;
  Tracker tracker(rt, std::forward<Args>(args)...);
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    var.store(tracker, ctx, ++i);
  }
  benchmark::DoNotOptimize(var.raw_load());
}

void BM_StoreFastPath_Null(benchmark::State& s) {
  bench_store_fast_path<NullTracker>(s);
}
BENCHMARK(BM_StoreFastPath_Null);

void BM_StoreFastPath_Pessimistic(benchmark::State& s) {
  bench_store_fast_path<PessimisticTracker<>>(s);
}
BENCHMARK(BM_StoreFastPath_Pessimistic);

void BM_StoreFastPath_Optimistic(benchmark::State& s) {
  bench_store_fast_path<OptimisticTracker<>>(s);
}
BENCHMARK(BM_StoreFastPath_Optimistic);

void BM_StoreFastPath_Hybrid(benchmark::State& s) {
  bench_store_fast_path<HybridTracker<>>(s, HybridConfig{});
}
BENCHMARK(BM_StoreFastPath_Hybrid);

void BM_StoreFastPath_Ideal(benchmark::State& s) {
  bench_store_fast_path<IdealTracker<>>(s);
}
BENCHMARK(BM_StoreFastPath_Ideal);

// Pessimistic uncontended lock/unlock cycle in the hybrid model: one locked
// store plus the flush that unlocks it (the Tpess unit of §6.1).
void BM_HybridPessLockUnlockCycle(benchmark::State& state) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));
  std::uint64_t i = 0;
  for (auto _ : state) {
    var.store(tracker, ctx, ++i);
    tracker.flush(ctx);
  }
}
BENCHMARK(BM_HybridPessLockUnlockCycle);

// Reentrant pessimistic accesses: lock once, then hammer (no atomics).
// Elision is forced off so this keeps measuring the tracker's reentrant
// slow path itself; BM_HybridElidedStore below measures the cache-hit path.
void BM_HybridPessReentrantStore(benchmark::State& state) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  ctx.elision_on.store(false, std::memory_order_relaxed);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));
  var.store(tracker, ctx, 1);  // acquire the write lock once
  std::uint64_t i = 0;
  for (auto _ : state) {
    var.store(tracker, ctx, ++i);
  }
  tracker.flush(ctx);
}
BENCHMARK(BM_HybridPessReentrantStore);

// Same loop with the ownership cache live: after the first (inserting)
// store every iteration is one cache probe (DESIGN.md §15).
void BM_HybridElidedStore(benchmark::State& state) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));
  var.store(tracker, ctx, 1);  // acquire the write lock once
  std::uint64_t i = 0;
  for (auto _ : state) {
    var.store(tracker, ctx, ++i);
  }
  tracker.flush(ctx);
}
BENCHMARK(BM_HybridElidedStore);

void BM_SafepointPollNoRequests(benchmark::State& state) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  for (auto _ : state) {
    rt.poll(ctx);
  }
}
BENCHMARK(BM_SafepointPollNoRequests);

void BM_PsroEmptyBuffer(benchmark::State& state) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  for (auto _ : state) {
    rt.psro(ctx);
  }
}
BENCHMARK(BM_PsroEmptyBuffer);

// --- barrier-elision A/B scenario (--json mode) ------------------------------

// One timed pass of the single-owner reentrant held-lock hot loop: the
// object sits in WrExWLock(self) for the whole loop, each store is a
// reentrant no-transition access, and the thread polls every 64 stores
// (no requests ever arrive, so the poll never flushes the cache). This is
// the access shape barrier elision targets; `elision` toggles only the
// per-thread kill switch, everything else is identical.
double time_reentrant_hot_loop(bool elision, std::uint64_t iters) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  if (!elision) ctx.elision_on.store(false, std::memory_order_relaxed);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));
  var.store(tracker, ctx, 1);  // acquire the write lock once
  std::uint64_t v = 0;
  WallTimer timer;
  for (std::uint64_t i = 0; i < iters; ++i) {
    var.store(tracker, ctx, ++v);
    if ((i & 63u) == 0) rt.poll(ctx);
  }
  const double secs = timer.elapsed_seconds();
  benchmark::DoNotOptimize(var.raw_load());
  tracker.flush(ctx);
  return secs;
}

int run_elision_ab(const std::string& json_path) {
  const int trials = trials_from_env(7);
  const double scale = scale_from_env();
  const auto iters =
      static_cast<std::uint64_t>(2'000'000 * (scale > 0 ? scale : 1.0));

  // Interleaved off/on trials so frequency drift hits both arms equally;
  // one discarded warm-up pair covers governor ramp-up.
  (void)time_reentrant_hot_loop(false, iters);
  (void)time_reentrant_hot_loop(true, iters);
  RunStats off, on;
  for (int t = 0; t < trials; ++t) {
    off.add(time_reentrant_hot_loop(false, iters));
    on.add(time_reentrant_hot_loop(true, iters));
  }
  const double speedup = on.median() > 0 ? off.median() / on.median() : 0.0;

  BenchJsonReport report("micro_ops");
  report.set_meta("trials", json::Value(trials));
  report.set_meta("iters", json::Value(iters));
  report.add_value("elision_ab", "hybrid", "seconds_on", run_stats_json(on));
  report.add_value("elision_ab", "hybrid", "seconds_off", run_stats_json(off));
  report.add_value("elision_ab", "hybrid", "speedup_median",
                   json::Value(speedup));
  std::printf(
      "elision_ab   hybrid   off %.4fs  on %.4fs  speedup_median %.2fx "
      "(%d trials, %llu iters)\n",
      off.median(), on.median(), speedup, trials,
      static_cast<unsigned long long>(iters));
  if (!report.write(json_path)) return 5;
  std::printf("json report -> %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ht

int main(int argc, char** argv) {
  const std::string json_path = ht::json_path_from_args(argc, argv);
  if (!json_path.empty()) return ht::run_elision_ab(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
