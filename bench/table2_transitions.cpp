// Table 2: state transitions under hybrid tracking, with optimistic-alone
// counts in parentheses, for every workload profile.
//
// Columns (as in the paper): optimistic same-state and conflicting
// transitions, pessimistic uncontended (with % reentrant) and contended
// transitions, and object transfers Opt->Pess / Pess->Opt. Shapes to check
// against the paper: high-conflict synchronized profiles (xalan6/9,
// pjbb2005) show large reductions in conflicting transitions; racy profiles
// (avrora9, pjbb2005) retain contended transitions; low-conflict profiles
// are essentially untouched.
#include <cstdio>
#include <string>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/harness.hpp"
#include "workload/profiles.hpp"

using namespace ht;

int main(int argc, char** argv) {
  const double scale = scale_from_env();
  const std::string json_path = json_path_from_args(argc, argv);

  BenchJsonReport report("table2_transitions");
  report.set_meta("scale", json::Value(scale));

  std::printf("== Table 2: state transitions, hybrid tracking "
              "(optimistic-alone in parentheses) ==\n\n");
  std::printf("%-12s %12s %22s %10s %6s %10s %9s %9s\n", "workload",
              "opt-same", "opt-conflicting", "pess-unc", "%reen", "pess-cont",
              "opt->pess", "pess->opt");
  print_table_rule(100);

  for (const WorkloadConfig& cfg : paper_profiles(scale)) {
    WorkloadData data(cfg);

    TransitionStats opt;
    {
      Runtime rt;
      OptimisticTracker<true> trk(rt);
      opt = run_workload(cfg, data, [&](ThreadId) {
              return DirectApi<OptimisticTracker<true>>(rt, trk);
            }).stats;
    }
    TransitionStats hyb;
    {
      Runtime rt;
      HybridTracker<true> trk(rt, HybridConfig{});
      hyb = run_workload(cfg, data, [&](ThreadId) {
              return DirectApi<HybridTracker<true>>(rt, trk);
            }).stats;
    }

    report.add_stats(cfg.name, "optimistic", opt);
    report.add_stats(cfg.name, "hybrid", hyb);

    char confl_cell[40];
    std::snprintf(confl_cell, sizeof confl_cell, "(%s) %s",
                  format_sci(static_cast<double>(opt.opt_conflicting())).c_str(),
                  format_sci(static_cast<double>(hyb.opt_conflicting())).c_str());
    std::printf("%-12s %12s %22s %10s %5.0f%% %10s %9s %9s\n", cfg.name,
                format_sci(static_cast<double>(hyb.opt_same)).c_str(),
                confl_cell,
                format_sci(static_cast<double>(hyb.pess_uncontended)).c_str(),
                100.0 * hyb.reentrant_fraction(),
                format_sci(static_cast<double>(hyb.pess_contended)).c_str(),
                format_sci(static_cast<double>(hyb.opt_to_pess)).c_str(),
                format_sci(static_cast<double>(hyb.pess_to_opt)).c_str());
  }
  std::printf("\n(run with HT_SCALE>1 for counts closer to the paper's "
              "1e9-1e10 access range)\n");
  if (!json_path.empty() && !report.write(json_path)) return 5;
  return 0;
}
