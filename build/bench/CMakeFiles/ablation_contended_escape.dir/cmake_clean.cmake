file(REMOVE_RECURSE
  "CMakeFiles/ablation_contended_escape.dir/ablation_contended_escape.cpp.o"
  "CMakeFiles/ablation_contended_escape.dir/ablation_contended_escape.cpp.o.d"
  "ablation_contended_escape"
  "ablation_contended_escape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_contended_escape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
