# Empty dependencies file for ablation_contended_escape.
# This may be replaced when dependencies are built.
