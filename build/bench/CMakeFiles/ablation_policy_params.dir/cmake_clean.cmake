file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_params.dir/ablation_policy_params.cpp.o"
  "CMakeFiles/ablation_policy_params.dir/ablation_policy_params.cpp.o.d"
  "ablation_policy_params"
  "ablation_policy_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
