# Empty compiler generated dependencies file for ablation_policy_params.
# This may be replaced when dependencies are built.
