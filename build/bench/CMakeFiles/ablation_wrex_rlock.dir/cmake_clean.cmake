file(REMOVE_RECURSE
  "CMakeFiles/ablation_wrex_rlock.dir/ablation_wrex_rlock.cpp.o"
  "CMakeFiles/ablation_wrex_rlock.dir/ablation_wrex_rlock.cpp.o.d"
  "ablation_wrex_rlock"
  "ablation_wrex_rlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wrex_rlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
