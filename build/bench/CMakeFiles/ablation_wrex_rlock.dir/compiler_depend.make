# Empty compiler generated dependencies file for ablation_wrex_rlock.
# This may be replaced when dependencies are built.
