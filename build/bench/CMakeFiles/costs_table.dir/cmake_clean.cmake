file(REMOVE_RECURSE
  "CMakeFiles/costs_table.dir/costs_table.cpp.o"
  "CMakeFiles/costs_table.dir/costs_table.cpp.o.d"
  "costs_table"
  "costs_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costs_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
