file(REMOVE_RECURSE
  "CMakeFiles/ext_race_detector.dir/ext_race_detector.cpp.o"
  "CMakeFiles/ext_race_detector.dir/ext_race_detector.cpp.o.d"
  "ext_race_detector"
  "ext_race_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_race_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
