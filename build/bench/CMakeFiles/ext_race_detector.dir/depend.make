# Empty dependencies file for ext_race_detector.
# This may be replaced when dependencies are built.
