file(REMOVE_RECURSE
  "CMakeFiles/fig6_limit_study.dir/fig6_limit_study.cpp.o"
  "CMakeFiles/fig6_limit_study.dir/fig6_limit_study.cpp.o.d"
  "fig6_limit_study"
  "fig6_limit_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_limit_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
