# Empty dependencies file for fig6_limit_study.
# This may be replaced when dependencies are built.
