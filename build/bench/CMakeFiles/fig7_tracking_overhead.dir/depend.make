# Empty dependencies file for fig7_tracking_overhead.
# This may be replaced when dependencies are built.
