file(REMOVE_RECURSE
  "CMakeFiles/fig8_microbench.dir/fig8_microbench.cpp.o"
  "CMakeFiles/fig8_microbench.dir/fig8_microbench.cpp.o.d"
  "fig8_microbench"
  "fig8_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
