# Empty compiler generated dependencies file for fig8_microbench.
# This may be replaced when dependencies are built.
