file(REMOVE_RECURSE
  "CMakeFiles/fig9a_recorder.dir/fig9a_recorder.cpp.o"
  "CMakeFiles/fig9a_recorder.dir/fig9a_recorder.cpp.o.d"
  "fig9a_recorder"
  "fig9a_recorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
