# Empty dependencies file for fig9a_recorder.
# This may be replaced when dependencies are built.
