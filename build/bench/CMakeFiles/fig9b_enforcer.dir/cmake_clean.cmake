file(REMOVE_RECURSE
  "CMakeFiles/fig9b_enforcer.dir/fig9b_enforcer.cpp.o"
  "CMakeFiles/fig9b_enforcer.dir/fig9b_enforcer.cpp.o.d"
  "fig9b_enforcer"
  "fig9b_enforcer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_enforcer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
