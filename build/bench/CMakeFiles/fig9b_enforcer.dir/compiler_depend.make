# Empty compiler generated dependencies file for fig9b_enforcer.
# This may be replaced when dependencies are built.
