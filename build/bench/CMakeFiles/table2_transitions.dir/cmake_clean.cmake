file(REMOVE_RECURSE
  "CMakeFiles/table2_transitions.dir/table2_transitions.cpp.o"
  "CMakeFiles/table2_transitions.dir/table2_transitions.cpp.o.d"
  "table2_transitions"
  "table2_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
