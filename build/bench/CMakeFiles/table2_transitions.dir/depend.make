# Empty dependencies file for table2_transitions.
# This may be replaced when dependencies are built.
