file(REMOVE_RECURSE
  "CMakeFiles/adaptive_policy_explorer.dir/adaptive_policy_explorer.cpp.o"
  "CMakeFiles/adaptive_policy_explorer.dir/adaptive_policy_explorer.cpp.o.d"
  "adaptive_policy_explorer"
  "adaptive_policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
