# Empty dependencies file for adaptive_policy_explorer.
# This may be replaced when dependencies are built.
