file(REMOVE_RECURSE
  "CMakeFiles/hb_graph_export.dir/hb_graph_export.cpp.o"
  "CMakeFiles/hb_graph_export.dir/hb_graph_export.cpp.o.d"
  "hb_graph_export"
  "hb_graph_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_graph_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
