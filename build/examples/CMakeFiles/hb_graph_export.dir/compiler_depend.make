# Empty compiler generated dependencies file for hb_graph_export.
# This may be replaced when dependencies are built.
