file(REMOVE_RECURSE
  "CMakeFiles/record_replay_demo.dir/record_replay_demo.cpp.o"
  "CMakeFiles/record_replay_demo.dir/record_replay_demo.cpp.o.d"
  "record_replay_demo"
  "record_replay_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_replay_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
