# Empty compiler generated dependencies file for record_replay_demo.
# This may be replaced when dependencies are built.
