file(REMOVE_RECURSE
  "CMakeFiles/region_serializability_demo.dir/region_serializability_demo.cpp.o"
  "CMakeFiles/region_serializability_demo.dir/region_serializability_demo.cpp.o.d"
  "region_serializability_demo"
  "region_serializability_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_serializability_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
