# Empty compiler generated dependencies file for region_serializability_demo.
# This may be replaced when dependencies are built.
