
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/ht.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/ht.dir/common/stats.cpp.o.d"
  "/root/repo/src/recorder/dependence_log.cpp" "src/CMakeFiles/ht.dir/recorder/dependence_log.cpp.o" "gcc" "src/CMakeFiles/ht.dir/recorder/dependence_log.cpp.o.d"
  "/root/repo/src/recorder/recording_analysis.cpp" "src/CMakeFiles/ht.dir/recorder/recording_analysis.cpp.o" "gcc" "src/CMakeFiles/ht.dir/recorder/recording_analysis.cpp.o.d"
  "/root/repo/src/recorder/recording_io.cpp" "src/CMakeFiles/ht.dir/recorder/recording_io.cpp.o" "gcc" "src/CMakeFiles/ht.dir/recorder/recording_io.cpp.o.d"
  "/root/repo/src/recorder/recording_validate.cpp" "src/CMakeFiles/ht.dir/recorder/recording_validate.cpp.o" "gcc" "src/CMakeFiles/ht.dir/recorder/recording_validate.cpp.o.d"
  "/root/repo/src/recorder/replayer.cpp" "src/CMakeFiles/ht.dir/recorder/replayer.cpp.o" "gcc" "src/CMakeFiles/ht.dir/recorder/replayer.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/ht.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/ht.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/sync.cpp" "src/CMakeFiles/ht.dir/runtime/sync.cpp.o" "gcc" "src/CMakeFiles/ht.dir/runtime/sync.cpp.o.d"
  "/root/repo/src/runtime/thread_context.cpp" "src/CMakeFiles/ht.dir/runtime/thread_context.cpp.o" "gcc" "src/CMakeFiles/ht.dir/runtime/thread_context.cpp.o.d"
  "/root/repo/src/runtime/thread_registry.cpp" "src/CMakeFiles/ht.dir/runtime/thread_registry.cpp.o" "gcc" "src/CMakeFiles/ht.dir/runtime/thread_registry.cpp.o.d"
  "/root/repo/src/tracking/tracker_name.cpp" "src/CMakeFiles/ht.dir/tracking/tracker_name.cpp.o" "gcc" "src/CMakeFiles/ht.dir/tracking/tracker_name.cpp.o.d"
  "/root/repo/src/tracking/transition_stats.cpp" "src/CMakeFiles/ht.dir/tracking/transition_stats.cpp.o" "gcc" "src/CMakeFiles/ht.dir/tracking/transition_stats.cpp.o.d"
  "/root/repo/src/workload/harness.cpp" "src/CMakeFiles/ht.dir/workload/harness.cpp.o" "gcc" "src/CMakeFiles/ht.dir/workload/harness.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/CMakeFiles/ht.dir/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/ht.dir/workload/profiles.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/ht.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/ht.dir/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
