file(REMOVE_RECURSE
  "CMakeFiles/ht.dir/common/stats.cpp.o"
  "CMakeFiles/ht.dir/common/stats.cpp.o.d"
  "CMakeFiles/ht.dir/recorder/dependence_log.cpp.o"
  "CMakeFiles/ht.dir/recorder/dependence_log.cpp.o.d"
  "CMakeFiles/ht.dir/recorder/recording_analysis.cpp.o"
  "CMakeFiles/ht.dir/recorder/recording_analysis.cpp.o.d"
  "CMakeFiles/ht.dir/recorder/recording_io.cpp.o"
  "CMakeFiles/ht.dir/recorder/recording_io.cpp.o.d"
  "CMakeFiles/ht.dir/recorder/recording_validate.cpp.o"
  "CMakeFiles/ht.dir/recorder/recording_validate.cpp.o.d"
  "CMakeFiles/ht.dir/recorder/replayer.cpp.o"
  "CMakeFiles/ht.dir/recorder/replayer.cpp.o.d"
  "CMakeFiles/ht.dir/runtime/runtime.cpp.o"
  "CMakeFiles/ht.dir/runtime/runtime.cpp.o.d"
  "CMakeFiles/ht.dir/runtime/sync.cpp.o"
  "CMakeFiles/ht.dir/runtime/sync.cpp.o.d"
  "CMakeFiles/ht.dir/runtime/thread_context.cpp.o"
  "CMakeFiles/ht.dir/runtime/thread_context.cpp.o.d"
  "CMakeFiles/ht.dir/runtime/thread_registry.cpp.o"
  "CMakeFiles/ht.dir/runtime/thread_registry.cpp.o.d"
  "CMakeFiles/ht.dir/tracking/tracker_name.cpp.o"
  "CMakeFiles/ht.dir/tracking/tracker_name.cpp.o.d"
  "CMakeFiles/ht.dir/tracking/transition_stats.cpp.o"
  "CMakeFiles/ht.dir/tracking/transition_stats.cpp.o.d"
  "CMakeFiles/ht.dir/workload/harness.cpp.o"
  "CMakeFiles/ht.dir/workload/harness.cpp.o.d"
  "CMakeFiles/ht.dir/workload/profiles.cpp.o"
  "CMakeFiles/ht.dir/workload/profiles.cpp.o.d"
  "CMakeFiles/ht.dir/workload/workload.cpp.o"
  "CMakeFiles/ht.dir/workload/workload.cpp.o.d"
  "libht.a"
  "libht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
