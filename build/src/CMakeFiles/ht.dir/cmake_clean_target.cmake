file(REMOVE_RECURSE
  "libht.a"
)
