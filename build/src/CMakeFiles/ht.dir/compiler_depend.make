# Empty compiler generated dependencies file for ht.
# This may be replaced when dependencies are built.
