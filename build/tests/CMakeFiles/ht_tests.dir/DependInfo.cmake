
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_policy.cpp" "tests/CMakeFiles/ht_tests.dir/test_adaptive_policy.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_adaptive_policy.cpp.o.d"
  "/root/repo/tests/test_apis.cpp" "tests/CMakeFiles/ht_tests.dir/test_apis.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_apis.cpp.o.d"
  "/root/repo/tests/test_chaos.cpp" "tests/CMakeFiles/ht_tests.dir/test_chaos.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_chaos.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/ht_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_coordination_edge_cases.cpp" "tests/CMakeFiles/ht_tests.dir/test_coordination_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_coordination_edge_cases.cpp.o.d"
  "/root/repo/tests/test_enforcer.cpp" "tests/CMakeFiles/ht_tests.dir/test_enforcer.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_enforcer.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/ht_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hybrid_tracker.cpp" "tests/CMakeFiles/ht_tests.dir/test_hybrid_tracker.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_hybrid_tracker.cpp.o.d"
  "/root/repo/tests/test_optimistic_tracker.cpp" "tests/CMakeFiles/ht_tests.dir/test_optimistic_tracker.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_optimistic_tracker.cpp.o.d"
  "/root/repo/tests/test_pessimistic_tracker.cpp" "tests/CMakeFiles/ht_tests.dir/test_pessimistic_tracker.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_pessimistic_tracker.cpp.o.d"
  "/root/repo/tests/test_profile_word.cpp" "tests/CMakeFiles/ht_tests.dir/test_profile_word.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_profile_word.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/ht_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_race_detector.cpp" "tests/CMakeFiles/ht_tests.dir/test_race_detector.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_race_detector.cpp.o.d"
  "/root/repo/tests/test_record_replay.cpp" "tests/CMakeFiles/ht_tests.dir/test_record_replay.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_record_replay.cpp.o.d"
  "/root/repo/tests/test_recorder_units.cpp" "tests/CMakeFiles/ht_tests.dir/test_recorder_units.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_recorder_units.cpp.o.d"
  "/root/repo/tests/test_recording_io.cpp" "tests/CMakeFiles/ht_tests.dir/test_recording_io.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_recording_io.cpp.o.d"
  "/root/repo/tests/test_recording_validate.cpp" "tests/CMakeFiles/ht_tests.dir/test_recording_validate.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_recording_validate.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/ht_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_state_word.cpp" "tests/CMakeFiles/ht_tests.dir/test_state_word.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_state_word.cpp.o.d"
  "/root/repo/tests/test_sync_and_undo.cpp" "tests/CMakeFiles/ht_tests.dir/test_sync_and_undo.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_sync_and_undo.cpp.o.d"
  "/root/repo/tests/test_table3_matrix.cpp" "tests/CMakeFiles/ht_tests.dir/test_table3_matrix.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_table3_matrix.cpp.o.d"
  "/root/repo/tests/test_tracked_object.cpp" "tests/CMakeFiles/ht_tests.dir/test_tracked_object.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_tracked_object.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/ht_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_workload.cpp.o.d"
  "/root/repo/tests/test_workload_data.cpp" "tests/CMakeFiles/ht_tests.dir/test_workload_data.cpp.o" "gcc" "tests/CMakeFiles/ht_tests.dir/test_workload_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ht.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
