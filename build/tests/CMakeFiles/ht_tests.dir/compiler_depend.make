# Empty compiler generated dependencies file for ht_tests.
# This may be replaced when dependencies are built.
