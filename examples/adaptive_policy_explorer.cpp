// Adaptive-policy explorer: watch one object's life under the cost-benefit
// policy (§6) — optimistic birth, transfer to pessimistic states after
// Cutoff_confl explicit conflicts, profiling while pessimistic, and the
// Eq. 5 return to optimistic once conflicts stop.
//
//   build/examples/adaptive_policy_explorer [cutoff k_confl inertia]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/tracked_var.hpp"

using namespace ht;

namespace {

void show(const char* what, const TrackedVar<std::uint64_t>& var) {
  const ProfileWord p = var.meta().profile().load();
  std::printf("%-44s state=%-18s optConfl=%-3u pessNonConfl=%-5u pessConfl=%-3u"
              " wasPess=%d mustStayOpt=%d\n",
              what, var.meta().load_state().to_string().c_str(),
              p.opt_conflicts(), p.pess_non_confl(), p.pess_confl(),
              p.was_pess() ? 1 : 0, p.must_stay_opt() ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  PolicyConfig policy;
  if (argc >= 4) {
    policy.cutoff_confl = static_cast<std::uint32_t>(std::atoi(argv[1]));
    policy.k_confl = static_cast<std::uint32_t>(std::atoi(argv[2]));
    policy.inertia = static_cast<std::uint32_t>(std::atoi(argv[3]));
  } else {
    policy.inertia = 20;  // small inertia so the demo's phase 3 is short
  }
  std::printf("policy: Cutoff_confl=%u K_confl=%u Inertia=%u\n\n",
              policy.cutoff_confl, policy.k_confl, policy.inertia);

  Runtime rt;
  HybridConfig hc;
  hc.policy = policy;
  HybridTracker<true> tracker(rt, hc);

  ThreadContext& t0 = rt.register_thread();
  tracker.attach_thread(t0);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, t0, 0);
  show("born (allocated by T0):", var);

  // Phase 1: explicit conflicts — T1 takes the object from a *running* T0
  // (driven from a second OS thread while T0 polls), then hands it back.
  ThreadContext& t1 = rt.register_thread();
  tracker.attach_thread(t1);
  std::printf("\nphase 1: ping-pong writes between two running threads\n");
  for (std::uint32_t round = 1; round <= policy.cutoff_confl; ++round) {
    std::atomic<bool> done{false};
    std::thread other([&] {
      var.store(tracker, t1, round);  // conflicting, explicit
      rt.psro(t1);                    // unlock if it went pessimistic
      done.store(true);
    });
    while (!done.load()) {
      rt.poll(t0);
      std::this_thread::yield();
    }
    other.join();
    char label[64];
    std::snprintf(label, sizeof label, "  after explicit conflict #%u:", round);
    show(label, var);
    if (round < policy.cutoff_confl) {
      // T0 takes it back (another explicit conflict is avoided by doing it
      // while T1 is quiescent... it still conflicts and counts).
      std::atomic<bool> back{false};
      std::thread taker([&] {
        var.store(tracker, t0, 0);
        rt.psro(t0);
        back.store(true);
      });
      while (!back.load()) {
        rt.poll(t1);
        std::this_thread::yield();
      }
      taker.join();
      std::snprintf(label, sizeof label,
                    "  after explicit conflict #%u (take-back):", round);
      show(label, var);
    }
  }

  // Phase 2: the object is now pessimistic and conflict-free — T1 works on
  // it alone; every access is a cheap pessimistic transition. Eq. 5 needs
  // NnonConfl >= K_confl * Nconfl + Inertia, so run exactly past that point.
  std::printf("\nphase 2: conflicts stop; owner works alone "
              "(pessimistic transitions accumulate)\n");
  const std::uint64_t confl_so_far =
      var.meta().profile().load().pess_confl();
  const std::uint64_t needed =
      static_cast<std::uint64_t>(policy.k_confl) * confl_so_far +
      policy.inertia + 16;
  std::printf("  (Eq. 5 needs >= %llu non-conflicting transitions: "
              "K*%llu + Inertia)\n",
              static_cast<unsigned long long>(needed),
              static_cast<unsigned long long>(confl_so_far));
  for (std::uint64_t i = 0; i < needed; ++i) {
    var.store(tracker, t1, i);
    if (i % 8 == 7) {
      rt.psro(t1);  // PSRO: flush; policy re-evaluates Eq. 5 at each unlock
    }
    if (var.meta().load_state().is_optimistic()) break;
  }
  rt.psro(t1);
  show("after conflict-free pessimistic phase:", var);

  std::printf("\nphase 3: the object is pinned optimistic; further conflicts "
              "never re-transfer (§6.2)\n");
  for (int i = 0; i < 10; ++i) {
    std::atomic<bool> done{false};
    std::thread other([&] {
      var.store(tracker, t0, 1);
      done.store(true);
    });
    while (!done.load()) {
      rt.poll(t1);
      std::this_thread::yield();
    }
    other.join();
    std::thread other2([&] {
      var.store(tracker, t1, 1);
      done.store(false);
    });
    while (done.load()) {
      rt.poll(t0);
      std::this_thread::yield();
    }
    other2.join();
  }
  show("after 20 more explicit conflicts:", var);

  rt.unregister_thread(t1);
  rt.unregister_thread(t0);
  return 0;
}
