// Happens-before graph export: record a small high-conflict execution,
// validate the recording, print its structural analysis, and write the HB
// graph as Graphviz DOT.
//
//   build/examples/hb_graph_export [out.dot]
//   dot -Tsvg out.dot -o hb.svg        # render (graphviz not required here)
#include <cstdio>
#include <fstream>

#include "recorder/recorder.hpp"
#include "recorder/recording_analysis.hpp"
#include "recorder/recording_validate.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

using namespace ht;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "/tmp/ht_hb_graph.dot";

  // A tiny, conflict-dense run so the graph stays readable.
  WorkloadConfig cfg;
  cfg.name = "hb-export";
  cfg.threads = 3;
  cfg.ops_per_thread = 600;
  cfg.hotsync_p100k = 20'000;
  cfg.hot_objects = 2;
  cfg.readshare_p100k = 0;
  WorkloadData data(cfg);

  Runtime rt;
  DependenceRecorder recorder(rt);
  using Tracker = HybridTracker<false, DependenceRecorder>;
  Tracker tracker(rt, HybridConfig{}, &recorder);
  (void)run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, tracker, &recorder);
  });
  const Recording recording =
      recorder.take_recording(static_cast<ThreadId>(cfg.threads));

  const ValidationResult v = validate_recording(recording);
  std::printf("validation: %s\n", v.to_string().c_str());
  if (!v.ok()) return 1;

  const RecordingAnalysis a = analyze_recording(recording);
  std::printf("analysis:   %s\n", a.summary().c_str());
  for (std::size_t t = 0; t < a.threads; ++t) {
    std::printf("  T%zu: %zu edges out (waits), %zu edges in (sources)\n", t,
                a.edges_out[t], a.edges_in[t]);
  }

  const std::string dot = recording_to_dot(recording, /*max_edges=*/200);
  std::ofstream out(out_path);
  out << dot;
  if (!out.good()) {
    std::printf("failed to write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %zu-byte DOT graph to %s (render with: dot -Tsvg %s)\n",
              dot.size(), out_path, out_path);
  return 0;
}
