// Quickstart: track cross-thread dependences in a small multithreaded
// program with hybrid tracking, and inspect what the tracker observed.
//
//   build/examples/quickstart
//
// Four threads share a queue-like counter protected by a program lock, plus
// a read-mostly configuration table and per-thread scratch data. The example
// prints the transition statistics — the same categories as the paper's
// Table 2 — showing the adaptive policy moving the hot counter into
// pessimistic states while everything else stays on the optimistic fast path.
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/sync.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/tracked_var.hpp"

using namespace ht;

int main() {
  Runtime runtime;
  HybridTracker</*kStats=*/true> tracker(runtime, HybridConfig{});

  // Shared state: one hot counter (lock-protected), a config table that is
  // written once and then only read, and per-thread scratch slots.
  TrackedVar<std::uint64_t> hot_counter;
  TrackedArray<std::uint64_t> config_table(64);
  TrackedArray<std::uint64_t> scratch(4 * 128);  // 128 slots per thread
  ProgramLock counter_lock;

  constexpr int kThreads = 4;
  constexpr int kIters = 50'000;

  std::vector<std::thread> threads;
  std::vector<TransitionStats> stats(kThreads);
  std::atomic<int> ready{0};

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext& ctx = runtime.register_thread();
      tracker.attach_thread(ctx);
      if (t == 0) {
        hot_counter.init(tracker, ctx, 0);
        config_table.init_all(tracker, ctx, 7);
        scratch.init_all(tracker, ctx, 0);
      }
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        runtime.poll(ctx);
        std::this_thread::yield();
      }

      std::uint64_t local = 0;
      for (int i = 0; i < kIters; ++i) {
        // Mostly-private work: the optimistic fast path, no atomics at all.
        auto& slot = scratch[static_cast<std::size_t>(t) * 128 + (i % 128)];
        slot.store(tracker, ctx, local);
        local += slot.load(tracker, ctx) + 1;

        // Occasional read of shared configuration: settles into read-shared
        // states that all threads read without synchronization.
        if (i % 64 == 0) {
          local += config_table[i % 64].load(tracker, ctx);
        }

        // Rarely, a synchronized update of the hot counter: high-conflict
        // but race-free — after a few conflicts the adaptive policy moves it
        // to pessimistic states and coordination disappears.
        if (i % 256 == 0) {
          ProgramLock::Scope guard(counter_lock, ctx);
          hot_counter.store(tracker, ctx,
                            hot_counter.load(tracker, ctx) + 1);
        }
        runtime.poll(ctx);  // loop back edge = safe point
        // Interleave finely: this container has one core, and without yields
        // each thread would run a whole scheduler quantum alone (see
        // WorkloadConfig::yield_every_regions).
        if (i % 16 == 0) std::this_thread::yield();
      }
      stats[static_cast<std::size_t>(t)] = ctx.stats;
      runtime.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();

  TransitionStats total;
  for (const auto& s : stats) total += s;

  std::printf("hot counter final value: %llu (expected %d)\n\n",
              static_cast<unsigned long long>(hot_counter.raw_load()),
              kThreads * (kIters / 256 + (kIters % 256 ? 1 : 0)));
  std::printf("transition profile (cf. paper Table 2):\n");
  std::printf("  optimistic same-state      : %12llu  <- fast path, no sync\n",
              static_cast<unsigned long long>(total.opt_same));
  std::printf("  optimistic upgrading/fence : %12llu\n",
              static_cast<unsigned long long>(total.opt_upgrading +
                                              total.opt_fence));
  std::printf("  optimistic conflicting     : %12llu  (explicit %llu, implicit %llu)\n",
              static_cast<unsigned long long>(total.opt_conflicting()),
              static_cast<unsigned long long>(total.opt_confl_explicit),
              static_cast<unsigned long long>(total.opt_confl_implicit));
  std::printf("  pessimistic uncontended    : %12llu  (%.0f%% reentrant)\n",
              static_cast<unsigned long long>(total.pess_uncontended),
              100.0 * total.reentrant_fraction());
  std::printf("  pessimistic contended      : %12llu\n",
              static_cast<unsigned long long>(total.pess_contended));
  std::printf("  objects opt->pess          : %12llu\n",
              static_cast<unsigned long long>(total.opt_to_pess));
  std::printf("  objects pess->opt          : %12llu\n",
              static_cast<unsigned long long>(total.pess_to_opt));
  std::printf("\nthe hot counter's state is now: %s\n",
              hot_counter.meta().load_state().to_string().c_str());
  return 0;
}
