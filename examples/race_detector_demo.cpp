// Race-detector demo (extension client): find the data races in a small
// producer/consumer program, then fix them with a lock and watch the reports
// disappear.
//
//   build/examples/race_detector_demo
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "raceck/race_detector.hpp"
#include "runtime/runtime.hpp"

using namespace ht;

namespace {

constexpr int kThreads = 4;
constexpr int kIters = 10'000;

RaceReport run_variant(bool synchronized_version) {
  Runtime rt;
  RaceDetector rd(kThreads);
  RaceCheckedVar<std::uint64_t> queue_head;
  RaceCheckedVar<std::uint64_t> items_produced;
  std::mutex mu;

  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      ThreadContext& ctx = rt.register_thread();
      rd.attach_thread(ctx);
      if (ctx.id == 0) {
        queue_head.init(rd, ctx, 0);
        items_produced.init(rd, ctx, 0);
      }
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();

      for (int j = 0; j < kIters; ++j) {
        if (synchronized_version) {
          mu.lock();
          rd.on_acquire(ctx, &mu);
        }
        // "Produce": bump the head and the counter — two writes that must
        // be atomic together.
        queue_head.store(rd, ctx, queue_head.load(rd, ctx) + 1);
        items_produced.store(rd, ctx, items_produced.load(rd, ctx) + 1);
        if (synchronized_version) {
          rd.on_release(ctx, &mu);
          mu.unlock();
        }
        if (j % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  return rd.total_report(kThreads);
}

}  // namespace

int main() {
  const RaceReport racy = run_variant(/*synchronized_version=*/false);
  std::printf("racy version:         %llu races "
              "(w-w %llu, w-r %llu, r-w %llu)\n",
              static_cast<unsigned long long>(racy.total()),
              static_cast<unsigned long long>(racy.write_write),
              static_cast<unsigned long long>(racy.write_read),
              static_cast<unsigned long long>(racy.read_write));

  const RaceReport fixed = run_variant(/*synchronized_version=*/true);
  std::printf("synchronized version: %llu races\n",
              static_cast<unsigned long long>(fixed.total()));

  if (racy.total() == 0) {
    std::printf("(scheduling produced no observable races this run — rare "
                "but possible)\n");
  }
  if (fixed.total() != 0) {
    std::printf("ERROR: false positives on the synchronized version\n");
    return 1;
  }
  std::printf("\nthe detector is the paper's §2 'detect' runtime-support "
              "example (FastTrack-style,\nbuilt on pessimistic "
              "instrumentation atomicity); see src/raceck/.\n");
  return 0;
}
