// Record & replay demo: record a racy producer/consumer-style execution
// with the hybrid dependence recorder, then replay it deterministically —
// twice — showing that every replay observes the exact same (racy!) values
// the recorded run did.
//
//   build/examples/record_replay_demo
#include <cstdio>

#include "recorder/recorder.hpp"
#include "recorder/recording_analysis.hpp"
#include "recorder/recording_io.hpp"
#include "recorder/replayer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

using namespace ht;

int main() {
  // A deliberately racy workload: hot objects written with no locks at all,
  // so the recorded values depend entirely on the scheduling interleaving.
  WorkloadConfig cfg;
  cfg.name = "racy-demo";
  cfg.threads = 4;
  cfg.ops_per_thread = 20'000;
  cfg.hotracy_p100k = 2'000;
  cfg.hotsync_p100k = 1'000;
  cfg.hot_objects = 8;
  WorkloadData data(cfg);

  // ---- record ----------------------------------------------------------------
  Runtime rt;
  DependenceRecorder recorder(rt);
  using Tracker = HybridTracker<false, DependenceRecorder>;
  Tracker tracker(rt, HybridConfig{}, &recorder);

  const WorkloadRunResult recorded = run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, tracker, &recorder);
  });
  const Recording recording =
      recorder.take_recording(static_cast<ThreadId>(cfg.threads));

  std::printf("recorded: %s in %.1f ms\n", recording.summary().c_str(),
              recorded.seconds * 1e3);
  std::printf("per-thread load checksums (these encode every racy value the "
              "threads observed):\n");
  for (int t = 0; t < cfg.threads; ++t) {
    std::printf("  thread %d: %016llx\n", t,
                static_cast<unsigned long long>(
                    recorded.checksums[static_cast<std::size_t>(t)]));
  }

  // ---- persist and analyze -----------------------------------------------------
  const char* path = "/tmp/ht_demo_recording.bin";
  if (!save_recording(recording, path)) {
    std::printf("failed to save the recording\n");
    return 1;
  }
  const RecordingLoadResult load = load_recording_ex(path);
  if (!load.recording.has_value()) {
    std::printf("failed to reload the recording: %s\n",
                recording_load_error_name(load.error));
    return 1;
  }
  if (!load.complete()) {
    // A torn file still loads its longest valid prefix, but this demo just
    // wrote the file — a partial load here means the disk is lying to us.
    std::printf("recording reloaded only partially (%s); not replaying it\n",
                recording_load_error_name(load.error));
    return 1;
  }
  const auto& reloaded = load.recording;
  std::printf("\nsaved + reloaded %s (%zu chunks); analysis: %s\n", path,
              load.chunks_loaded, analyze_recording(*reloaded).summary().c_str());

  // ---- replay (twice, from the reloaded file — determinism must hold) -----------
  for (int round = 1; round <= 2; ++round) {
    Replayer replayer(*reloaded);
    const WorkloadRunResult replayed = run_workload(
        cfg, data, [&](ThreadId) { return ReplayApi(replayer); });

    bool all_equal = true;
    for (int t = 0; t < cfg.threads; ++t) {
      all_equal &= replayed.checksums[static_cast<std::size_t>(t)] ==
                   recorded.checksums[static_cast<std::size_t>(t)];
    }
    std::printf("replay #%d: %.1f ms, %llu edges had to block, values %s\n",
                round, replayed.seconds * 1e3,
                static_cast<unsigned long long>(replayer.blocking_waits()),
                all_equal ? "IDENTICAL to the recording"
                          : "DIVERGED (recorder bug!)");
    if (!all_equal) return 1;
  }

  std::printf("\nnote: replay runs no tracking and elides program locks — it "
              "only enforces the\nrecorded happens-before edges, which is why "
              "it can outrun the original (§7.6).\n");
  return 0;
}
