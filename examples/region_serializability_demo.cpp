// Region-serializability demo: a racy bank with an invariant that plain
// execution breaks and the hybrid RS enforcer preserves.
//
//   build/examples/region_serializability_demo
//
// Accounts are organized in pairs; transfers move money within a pair, with
// NO program locks. Each transfer and each pair-audit runs as one
// statically-bounded region (SBRS regions are small by construction — they
// end at loop back edges and calls, §5.1, so a region touches one pair, not
// the whole bank). Under the enforcer every region is serializable: each
// pair's sum is invariant and audits can never observe a torn transfer.
#include <cstdio>
#include <vector>

#include "enforcer/rs_enforcer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

using namespace ht;

namespace {

constexpr int kPairs = 8;
constexpr std::uint64_t kInitialBalance = 1'000;
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 6'000;

struct Bank {
  std::vector<TrackedVar<std::uint64_t>> accounts{2 * kPairs};

  template <typename Tracker>
  void init_for_thread(Tracker& trk, ThreadContext& ctx) {
    if (ctx.id != 0) return;
    for (auto& a : accounts) a.init(trk, ctx, kInitialBalance);
  }
  void raw_reset_values() {}

  std::uint64_t raw_total() const {
    std::uint64_t sum = 0;
    for (const auto& a : accounts) sum += a.raw_load();
    return sum;
  }
};

// Returns the number of audits that observed a violated pair invariant.
template <typename Api>
std::uint64_t run_teller(Api& api, Bank& bank, ThreadId tid) {
  Xoshiro256 rng(1000 + tid);
  std::uint64_t inconsistent_audits = 0;
  for (int i = 0; i < kOpsPerThread; ++i) {
    const std::size_t pair = rng.next_below(kPairs);
    auto& left = bank.accounts[2 * pair];
    auto& right = bank.accounts[2 * pair + 1];
    const std::uint64_t amount = 1 + rng.next_below(5);

    if (i % 8 == 0) {
      // Audit region: the pair's sum must always be 2 * kInitialBalance.
      std::uint64_t a = 0, b = 0;
      api.region([&] {
        a = api.load(left);
        b = api.load(right);
      });
      if (a + b != 2 * kInitialBalance) ++inconsistent_audits;
    } else {
      // Transfer region: debit + credit within the pair must be atomic.
      api.region([&] {
        const std::uint64_t f = api.load(left);
        if (f >= amount) {
          api.store(left, f - amount);
          api.store(right, api.load(right) + amount);
        } else {
          api.store(right, api.load(right) - amount);
          api.store(left, api.load(left) + amount);
        }
      });
    }
    api.poll();
    if (i % 16 == 0) std::this_thread::yield();
  }
  return inconsistent_audits;
}

template <typename MakeApi>
void run_bank(const char* label, MakeApi&& make_api, Runtime& rt, Bank& bank,
              bool expect_sound) {
  const auto r = run_threads(
      kThreads, std::forward<MakeApi>(make_api),
      [&](auto& api, ThreadId tid) { api.init_data(bank, tid); },
      [&](auto& api, ThreadId tid) { return run_teller(api, bank, tid); });
  (void)rt;
  std::uint64_t bad_audits = 0;
  for (auto c : r.checksums) bad_audits += c;
  const std::uint64_t expect_total = 2 * kPairs * kInitialBalance;
  std::printf("%-22s total=%llu (%s), inconsistent audits=%llu, "
              "region restarts=%llu, %.1f ms\n",
              label, static_cast<unsigned long long>(bank.raw_total()),
              bank.raw_total() == expect_total ? "conserved" : "VIOLATED",
              static_cast<unsigned long long>(bad_audits),
              static_cast<unsigned long long>(r.stats.region_restarts),
              r.seconds * 1e3);
  if (expect_sound && (bad_audits != 0 || bank.raw_total() != expect_total)) {
    std::printf("ERROR: the enforcer failed to serialize regions\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  {
    Bank bank;
    Runtime rt;
    HybridTracker<> tracker(rt, HybridConfig{});
    run_bank("without enforcement:",
             [&](ThreadId) { return DirectApi<HybridTracker<>>(rt, tracker); },
             rt, bank, /*expect_sound=*/false);
  }
  {
    Bank bank;
    Runtime rt;
    HybridTracker<> tracker(rt, HybridConfig{});
    RsEnforcer<HybridTracker<>> enforcer(rt, tracker);
    run_bank("hybrid RS enforcer:",
             [&](ThreadId) {
               return EnforcerApi<HybridTracker<>>(rt, enforcer);
             },
             rt, bank, /*expect_sound=*/true);
  }
  std::printf("\nregions are racy on purpose — serializability comes from "
              "the enforcer's two-phase\nlocking of object states plus "
              "rollback-and-restart on mid-region responses (§5).\n");
  return 0;
}
