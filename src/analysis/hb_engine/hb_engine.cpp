#include "analysis/hb_engine/hb_engine.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "recorder/recording_validate.hpp"

namespace ht::analysis {

namespace {

struct AccessRef {
  NodeRef node;
  std::uint64_t seq = 0;
  int obj = -1;
  bool write = false;
};

std::vector<AccessRef> collect_accesses(const Trace& trace) {
  std::vector<AccessRef> out;
  for (std::size_t t = 0; t < trace.thread_count(); ++t) {
    for (std::size_t i = 0; i < trace.threads[t].size(); ++i) {
      const TraceEvent& e = trace.threads[t][i];
      if (!e.is_access()) continue;
      out.push_back({NodeRef{static_cast<ThreadId>(t), i}, e.seq, e.obj,
                     e.kind == TraceEventKind::kWrite});
    }
  }
  // Observed schedule order, so witnesses and conflict arcs are reported
  // the way the run serialized them.
  std::sort(out.begin(), out.end(),
            [](const AccessRef& a, const AccessRef& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace

// --- predictive race detection -----------------------------------------------

PredictiveRaceReport predictive_races(const Trace& trace, const HbOrder& hb) {
  PredictiveRaceReport rep;
  rep.applicable = trace.annotated;
  if (!rep.applicable || !hb.acyclic()) return rep;

  std::map<int, std::vector<AccessRef>> by_obj;
  for (const AccessRef& a : collect_accesses(trace)) {
    by_obj[a.obj].push_back(a);
  }
  for (const auto& [obj, accesses] : by_obj) {
    bool reported = false;
    for (std::size_t i = 0; i < accesses.size() && !reported; ++i) {
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        const AccessRef& a = accesses[i];
        const AccessRef& b = accesses[j];
        if (a.node.thread == b.node.thread) continue;
        if (!a.write && !b.write) continue;
        ++rep.pairs_checked;
        if (!hb.concurrent(a.node, b.node)) continue;
        rep.races.push_back(
            {obj, a.node, b.node, a.write && b.write});
        if (obj >= 0 && obj < 64) rep.racy_object_mask |= 1ULL << obj;
        reported = true;  // one witness per object
        break;
      }
    }
  }
  return rep;
}

// --- region serializability ---------------------------------------------------

namespace {

bool ends_region(const TraceEvent& e) {
  return e.kind == TraceEventKind::kBump ||
         e.kind == TraceEventKind::kAcquire ||
         e.kind == TraceEventKind::kRelease;
}

}  // namespace

RegionSerializabilityReport check_region_serializability(const Trace& trace,
                                                         const HbOrder& hb) {
  RegionSerializabilityReport rep;
  const std::size_t n = trace.thread_count();

  // Region index per event: the count of boundary events strictly before it
  // in its thread (a boundary event belongs to the region it ends).
  std::vector<std::vector<std::size_t>> region_of(n);
  std::vector<std::size_t> region_count(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    region_of[t].resize(trace.threads[t].size());
    std::size_t r = 0;
    for (std::size_t i = 0; i < trace.threads[t].size(); ++i) {
      region_of[t][i] = r;
      if (ends_region(trace.threads[t][i])) ++r;
    }
    region_count[t] = trace.threads[t].empty() ? 0 : region_of[t].back() + 1;
  }
  std::vector<std::size_t> offset(n + 1, 0);
  for (std::size_t t = 0; t < n; ++t) offset[t + 1] = offset[t] + region_count[t];
  const std::size_t regions = offset[n];
  rep.regions = regions;

  std::vector<std::vector<std::size_t>> succ(regions);
  std::vector<std::size_t> indegree(regions, 0);
  const auto add_arc = [&](std::size_t u, std::size_t v) {
    if (u == v) return;
    succ[u].push_back(v);
    ++indegree[v];
  };

  // Program order between a thread's consecutive regions.
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t r = 0; r + 1 < region_count[t]; ++r) {
      add_arc(offset[t] + r, offset[t] + r + 1);
    }
  }
  // Event-graph cross arcs, projected onto regions.
  for (const HbOrder::Arc& a : hb.cross_arcs()) {
    add_arc(offset[a.from.thread] + region_of[a.from.thread][a.from.index],
            offset[a.to.thread] + region_of[a.to.thread][a.to.index]);
    ++rep.region_arcs;
  }
  // Observed-order conflict arcs between regions (annotated traces): two
  // conflicting accesses in different regions must keep their observed
  // order in any serialization, whether or not synchronization orders them.
  if (trace.annotated) {
    std::map<int, std::vector<AccessRef>> by_obj;
    for (const AccessRef& acc : collect_accesses(trace)) {
      by_obj[acc.obj].push_back(acc);  // already seq-sorted
    }
    for (const auto& [obj, accesses] : by_obj) {
      for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i + 1; j < accesses.size(); ++j) {
          const AccessRef& a = accesses[i];
          const AccessRef& b = accesses[j];
          if (a.node.thread == b.node.thread) continue;
          if (!a.write && !b.write) continue;
          add_arc(
              offset[a.node.thread] + region_of[a.node.thread][a.node.index],
              offset[b.node.thread] + region_of[b.node.thread][b.node.index]);
          ++rep.conflict_arcs;
        }
      }
    }
  }

  // Kahn: a serial region order exists iff the graph is acyclic.
  std::vector<std::size_t> ready;
  std::vector<std::size_t> remaining = indegree;
  for (std::size_t u = 0; u < regions; ++u) {
    if (remaining[u] == 0) ready.push_back(u);
  }
  std::size_t sorted = 0;
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    ++sorted;
    for (std::size_t v : succ[u]) {
      if (--remaining[v] == 0) ready.push_back(v);
    }
  }
  if (sorted != regions) {
    rep.serializable = false;
    for (std::size_t t = 0; t < n; ++t) {
      for (std::size_t r = 0; r < region_count[t]; ++r) {
        if (remaining[offset[t] + r] > 0) {
          rep.violating.push_back(RegionRef{static_cast<ThreadId>(t), r});
        }
      }
    }
  }
  return rep;
}

// --- analytics ----------------------------------------------------------------

TraceAnalytics analyze_trace(const Trace& trace, const HbOrder& hb) {
  TraceAnalytics a;
  a.threads = trace.thread_count();
  a.events = trace.total_events();
  a.cross_arcs = hb.cross_arc_count();
  a.critical_path = hb.critical_path_length();
  a.cross_arc_density =
      a.events == 0 ? 0.0
                    : static_cast<double>(a.cross_arcs) /
                          static_cast<double>(a.events);
  a.parallelism = a.critical_path == 0
                      ? 0.0
                      : static_cast<double>(a.events) /
                            static_cast<double>(a.critical_path);
  a.edges_out.assign(a.threads, 0);
  a.edges_in.assign(a.threads, 0);
  for (const HbOrder::Arc& arc : hb.cross_arcs()) {
    ++a.edges_out[arc.from.thread];
    ++a.edges_in[arc.to.thread];
  }
  if (trace.annotated) {
    std::map<int, ObjectConflictStat> stats;
    std::map<int, std::vector<AccessRef>> by_obj;
    for (const AccessRef& acc : collect_accesses(trace)) {
      by_obj[acc.obj].push_back(acc);
    }
    for (const auto& [obj, accesses] : by_obj) {
      ObjectConflictStat& s = stats[obj];
      s.obj = obj;
      for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i + 1; j < accesses.size(); ++j) {
          const AccessRef& x = accesses[i];
          const AccessRef& y = accesses[j];
          if (x.node.thread == y.node.thread) continue;
          if (!x.write && !y.write) continue;
          ++s.conflicting_pairs;
          if (hb.acyclic() && hb.concurrent(x.node, y.node)) ++s.racy_pairs;
        }
      }
    }
    for (auto& [obj, s] : stats) a.object_ranking.push_back(s);
    std::sort(a.object_ranking.begin(), a.object_ranking.end(),
              [](const ObjectConflictStat& x, const ObjectConflictStat& y) {
                if (x.conflicting_pairs != y.conflicting_pairs) {
                  return x.conflicting_pairs > y.conflicting_pairs;
                }
                return x.obj < y.obj;
              });
  }
  return a;
}

json::Value TraceAnalytics::to_json() const {
  json::Object o;
  o["threads"] = json::Value(static_cast<std::uint64_t>(threads));
  o["events"] = json::Value(static_cast<std::uint64_t>(events));
  o["cross_arcs"] = json::Value(static_cast<std::uint64_t>(cross_arcs));
  o["critical_path"] = json::Value(static_cast<std::uint64_t>(critical_path));
  o["cross_arc_density"] = json::Value(cross_arc_density);
  o["parallelism"] = json::Value(parallelism);
  json::Array out_arr, in_arr;
  for (std::size_t v : edges_out) {
    out_arr.push_back(json::Value(static_cast<std::uint64_t>(v)));
  }
  for (std::size_t v : edges_in) {
    in_arr.push_back(json::Value(static_cast<std::uint64_t>(v)));
  }
  o["edges_out"] = json::Value(std::move(out_arr));
  o["edges_in"] = json::Value(std::move(in_arr));
  json::Array ranking;
  for (const ObjectConflictStat& s : object_ranking) {
    json::Object e;
    e["obj"] = json::Value(s.obj);
    e["conflicting_pairs"] =
        json::Value(static_cast<std::uint64_t>(s.conflicting_pairs));
    e["racy_pairs"] = json::Value(static_cast<std::uint64_t>(s.racy_pairs));
    ranking.push_back(json::Value(std::move(e)));
  }
  o["object_ranking"] = json::Value(std::move(ranking));
  return json::Value(std::move(o));
}

// --- whole-file driver ----------------------------------------------------------

RecordingAnalysisReport analyze_recording_file(const std::string& path) {
  RecordingAnalysisReport rep;
  rep.load = load_recording_ex(path);
  if (!rep.load.recording.has_value()) return rep;
  rep.lint = lint_recording(*rep.load.recording, rep.load.partial);
  // The graph stages assume only structural well-formedness (in-order logs,
  // in-range sources); they run even when the lint found value issues, so a
  // forged file with a dependence cycle gets the more specific
  // "unserializable" verdict rather than a bare lint failure.
  if (!rep.lint.structure.ok()) return rep;

  const Trace trace = trace_from_recording(*rep.load.recording);
  const HbOrder hb = HbOrder::build(trace);
  rep.hb_acyclic = hb.acyclic();
  rep.rs = check_region_serializability(trace, hb);
  rep.analytics = analyze_trace(trace, hb);
  return rep;
}

int RecordingAnalysisReport::exit_code() const {
  if (!load.complete()) return exit_code_for(load.error);
  if (!lint.structure.ok()) return kExitStructure;
  // A cyclic dependence graph (or a region conflict cycle) is the most
  // specific verdict this tool can give — the recording admits no serial
  // order — so it outranks the remaining per-thread lint findings.
  if (!hb_acyclic || !rs.serializable) return kExitUnserializable;
  if (!lint.ok()) return kExitLint;
  return kExitOk;
}

std::string RecordingAnalysisReport::to_string() const {
  std::ostringstream os;
  if (!load.recording.has_value()) {
    os << "load failed: " << load.to_string();
    return os.str();
  }
  if (!lint.structure.ok()) {
    os << "lint failed: " << lint.to_string();
    return os.str();
  }
  os << "hb: " << analytics.events << " event(s), " << analytics.cross_arcs
     << " cross-thread arc(s), "
     << (hb_acyclic ? "acyclic" : "CYCLIC (corrupt or unserializable)")
     << "; critical path " << analytics.critical_path << "; regions "
     << rs.regions << ", "
     << (rs.serializable ? "serializable" : "NOT serializable");
  if (!rs.serializable && !rs.violating.empty()) {
    os << " (";
    for (std::size_t i = 0; i < rs.violating.size() && i < 8; ++i) {
      if (i != 0) os << ", ";
      os << "T" << rs.violating[i].thread << "#" << rs.violating[i].index;
    }
    if (rs.violating.size() > 8) os << ", ...";
    os << " in a conflict cycle)";
  }
  if (!lint.ok()) os << "; " << lint.to_string();
  if (load.partial) os << " [salvaged prefix]";
  return os.str();
}

json::Value RecordingAnalysisReport::to_json() const {
  json::Object o;
  o["loaded"] = json::Value(load.recording.has_value());
  o["complete"] = json::Value(load.complete());
  o["lint_ok"] = json::Value(load.recording.has_value() && lint.ok());
  o["hb_acyclic"] = json::Value(hb_acyclic);
  o["serializable"] = json::Value(rs.serializable);
  o["regions"] = json::Value(static_cast<std::uint64_t>(rs.regions));
  o["region_arcs"] = json::Value(static_cast<std::uint64_t>(rs.region_arcs));
  o["exit_code"] = json::Value(exit_code());
  o["analytics"] = analytics.to_json();
  return json::Value(std::move(o));
}

}  // namespace ht::analysis
