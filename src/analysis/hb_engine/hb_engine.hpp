// The offline happens-before engine (DESIGN.md §12): the three analyses the
// ISSUE's tentpole names, all running over one HbOrder built from a Trace.
//
//   * Predictive race detection (annotated traces): conflicting access
//     pairs — same object, different threads, at least one write — that the
//     happens-before order leaves unordered. The HB relation is
//     sync-preserving (program order + every lock release->acquire pair in
//     the observed schedule), so an unordered pair really can execute
//     adjacently in some schedule that preserves the observed
//     synchronization: reports are sound, not schedule-luck. Cross-validated
//     against the runtime FastTrack detector and exhaustive exploration
//     (test_hb_predictive.cpp).
//
//   * Region-serializability checking (RegionTrack-style): map events onto
//     enforcer regions (a release-counter bump or a lock operation ends the
//     executing thread's current region), project the event graph's
//     cross-thread arcs onto regions, add observed-order conflict arcs
//     between regions (annotated traces), and look for a cycle: one region
//     order consistent with program order and every conflict exists iff the
//     graph is acyclic. A cycle is a violation the SBRS enforcer should have
//     restarted.
//
//   * Dependence-graph analytics: critical-path length, cross-thread arc
//     density, per-thread fan-in/out, per-object conflict ranking — exported
//     as deterministic JSON to seed the adaptive policy's initial
//     pessimistic set.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/hb_engine/hb_order.hpp"
#include "analysis/hb_engine/hb_trace.hpp"
#include "analysis/trace_lint.hpp"
#include "common/json.hpp"
#include "recorder/recording_io.hpp"

namespace ht::analysis {

// --- predictive race detection -----------------------------------------------

struct PredictiveRace {
  int obj = -1;
  NodeRef first;   // witness pair, first in the observed schedule
  NodeRef second;
  bool write_write = false;  // both sides writes (else at least one read)
};

struct PredictiveRaceReport {
  // One witness per racy object (the first unordered conflicting pair in
  // observed order); bit o of the mask is set iff object o < 64 raced.
  std::vector<PredictiveRace> races;
  std::uint64_t racy_object_mask = 0;
  std::size_t pairs_checked = 0;
  bool applicable = false;  // false for sync-only traces (no access events)
};

PredictiveRaceReport predictive_races(const Trace& trace, const HbOrder& hb);

// --- region serializability ---------------------------------------------------

// Region r of thread t: the t-th thread's events between its (r-1)-th and
// r-th boundary events (bumps and lock operations), boundary included.
struct RegionRef {
  ThreadId thread = kNoThread;
  std::size_t index = 0;

  bool operator==(const RegionRef&) const = default;
};

struct RegionSerializabilityReport {
  std::size_t regions = 0;
  std::size_t region_arcs = 0;     // cross-thread arcs after projection
  std::size_t conflict_arcs = 0;   // observed-order conflict arcs (annotated)
  bool serializable = true;
  // Regions stuck in the conflict cycle (the violation witness).
  std::vector<RegionRef> violating;
};

RegionSerializabilityReport check_region_serializability(const Trace& trace,
                                                         const HbOrder& hb);

// --- analytics ----------------------------------------------------------------

struct ObjectConflictStat {
  int obj = -1;
  std::size_t conflicting_pairs = 0;  // HB-ordered or not: contention proxy
  std::size_t racy_pairs = 0;         // HB-unordered conflicting pairs
};

struct TraceAnalytics {
  std::size_t threads = 0;
  std::size_t events = 0;
  std::size_t cross_arcs = 0;
  std::size_t critical_path = 0;
  double cross_arc_density = 0;  // cross_arcs / events
  double parallelism = 0;        // events / critical_path
  std::vector<std::size_t> edges_out;  // per-thread cross-arc sources
  std::vector<std::size_t> edges_in;   // per-thread cross-arc sinks
  // Annotated traces: objects ranked by conflicting pairs, descending — the
  // adaptive policy's initial-pessimistic-set seed.
  std::vector<ObjectConflictStat> object_ranking;

  json::Value to_json() const;
};

TraceAnalytics analyze_trace(const Trace& trace, const HbOrder& hb);

// --- whole-file driver ----------------------------------------------------------

// Everything trace_analyze reports for one recording file: load status,
// structural lint, HB reconstruction, region serializability, analytics.
struct RecordingAnalysisReport {
  RecordingLoadResult load;
  LintResult lint;   // meaningful only when load.recording exists
  bool hb_acyclic = false;
  RegionSerializabilityReport rs;
  TraceAnalytics analytics;

  // The trace_analyze exit code this report maps to (ToolExitCode).
  int exit_code() const;
  std::string to_string() const;
  json::Value to_json() const;
};

RecordingAnalysisReport analyze_recording_file(const std::string& path);

}  // namespace ht::analysis
