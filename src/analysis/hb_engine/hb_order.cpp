#include "analysis/hb_engine/hb_order.hpp"

#include <algorithm>
#include <map>

namespace ht::analysis {

NodeRef HbOrder::unflat(std::size_t id) const {
  // offsets_ is small (one entry per thread); linear scan is fine.
  ThreadId t = 0;
  while (t + 1 < offsets_.size() - 1 && offsets_[t + 1] <= id) ++t;
  return NodeRef{t, id - offsets_[t]};
}

HbOrder HbOrder::build(const Trace& trace) {
  HbOrder o;
  const std::size_t n = trace.thread_count();
  o.offsets_.assign(n + 1, 0);
  for (std::size_t t = 0; t < n; ++t) {
    o.offsets_[t + 1] = o.offsets_[t] + trace.threads[t].size();
  }
  o.nodes_ = o.offsets_[n];

  std::vector<std::vector<std::size_t>> succ(o.nodes_);
  std::vector<std::size_t> indegree(o.nodes_, 0);
  const auto add_arc = [&](std::size_t u, std::size_t v) {
    succ[u].push_back(v);
    ++indegree[v];
  };

  // Program order.
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i + 1 < trace.threads[t].size(); ++i) {
      add_arc(o.offsets_[t] + i, o.offsets_[t] + i + 1);
    }
  }

  // Stamped bumps per thread, in program order (stamps of a genuine trace
  // are strictly increasing; the lint checks that before building).
  std::vector<std::vector<std::size_t>> bump_index(n);
  std::vector<std::vector<std::uint64_t>> bump_stamp(n);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < trace.threads[t].size(); ++i) {
      const TraceEvent& e = trace.threads[t][i];
      if (e.is_bump() && e.value != 0) {
        bump_index[t].push_back(i);
        bump_stamp[t].push_back(e.value);
      }
    }
  }

  // Dependence anchoring: edge (t, i) needing (src, v) <- last bump of src
  // stamped <= v.
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < trace.threads[t].size(); ++i) {
      const TraceEvent& e = trace.threads[t][i];
      if (e.kind != TraceEventKind::kEdge) continue;
      if (e.src >= n) continue;  // structural validation's job; stay safe
      const auto& stamps = bump_stamp[e.src];
      auto it = std::upper_bound(stamps.begin(), stamps.end(), e.value);
      if (it == stamps.begin()) continue;  // satisfied by unlogged bumps
      const std::size_t j = bump_index[e.src][(it - stamps.begin()) - 1];
      add_arc(o.offsets_[e.src] + j, o.offsets_[t] + i);
      ++o.cross_arcs_;
      o.cross_list_.push_back({NodeRef{e.src, j},
                               NodeRef{static_cast<ThreadId>(t), i}});
    }
  }

  // Lock synchronization (annotated traces): per lock, release -> next
  // acquire in the observed global order.
  if (trace.annotated) {
    struct LockEvent {
      std::uint64_t seq;
      std::size_t node;
      bool release;
    };
    std::map<int, std::vector<LockEvent>> per_lock;
    for (std::size_t t = 0; t < n; ++t) {
      for (std::size_t i = 0; i < trace.threads[t].size(); ++i) {
        const TraceEvent& e = trace.threads[t][i];
        if (e.kind == TraceEventKind::kAcquire ||
            e.kind == TraceEventKind::kRelease) {
          per_lock[e.lock].push_back(
              {e.seq, o.offsets_[t] + i,
               e.kind == TraceEventKind::kRelease});
        }
      }
    }
    for (auto& [lock, evs] : per_lock) {
      std::sort(evs.begin(), evs.end(),
                [](const LockEvent& a, const LockEvent& b) {
                  return a.seq < b.seq;
                });
      for (std::size_t k = 0; k < evs.size(); ++k) {
        if (!evs[k].release) continue;
        for (std::size_t m = k + 1; m < evs.size(); ++m) {
          if (!evs[m].release) {
            add_arc(evs[k].node, evs[m].node);
            ++o.cross_arcs_;
            o.cross_list_.push_back(
                {o.unflat(evs[k].node), o.unflat(evs[m].node)});
            break;
          }
        }
      }
    }
  }

  // Kahn sort; vector clocks and chain depths computed along the way (every
  // predecessor is finalized before its successors pop).
  o.clocks_.assign(o.nodes_, VectorClock(n));
  std::vector<std::size_t> depth(o.nodes_, 0);
  std::vector<std::size_t> ready;
  std::vector<std::size_t> remaining = indegree;
  for (std::size_t u = 0; u < o.nodes_; ++u) {
    if (remaining[u] == 0) ready.push_back(u);
  }
  std::size_t sorted = 0;
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    ++sorted;
    const NodeRef r = o.unflat(u);
    o.clocks_[u].set(r.thread, r.index + 1);
    depth[u] += 1;
    o.critical_path_ = std::max(o.critical_path_, depth[u]);
    for (std::size_t v : succ[u]) {
      o.clocks_[v].join(o.clocks_[u]);
      depth[v] = std::max(depth[v], depth[u]);
      if (--remaining[v] == 0) ready.push_back(v);
    }
  }
  o.unsorted_ = o.nodes_ - sorted;
  if (o.unsorted_ != 0) {
    o.critical_path_ = 0;  // meaningless through a cycle
    for (std::size_t u = 0; u < o.nodes_; ++u) {
      if (remaining[u] > 0) {
        o.first_cyclic_ = o.unflat(u);
        break;
      }
    }
  }
  return o;
}

}  // namespace ht::analysis
