// Offline happens-before partial order over a Trace (DESIGN.md §12.2).
//
// The event graph contains one node per trace event and two arc families:
//
//   * program order — consecutive events of the same thread;
//   * cross-thread arcs —
//       - dependence anchoring (sync traces): an edge event requiring source
//         S to reach counter v gets an arc from the LAST bump of S stamped
//         <= v. A bump stamped w <= v happened in real time before any
//         access that waited for S's counter to reach v, so real-time order
//         contains the arc (the anchor is sound); with kRegionEnd marks
//         every bump is logged and the anchor is exact (stamp == v).
//         Zero-stamped bumps (legacy recordings) are "unknown": they never
//         anchor an arc and the edge falls back to the last earlier stamp.
//       - lock synchronization (annotated traces): each release of lock L is
//         ordered before the next acquire of L in the observed global order
//         — exactly the sync the runtime FastTrack detector tracks, so the
//         offline and runtime HB relations agree by construction.
//
// A Kahn topological sort proves acyclicity (a genuine trace's graph embeds
// in real time, so a cycle proves corruption — or, at region granularity, a
// serializability violation). Per-event vector clocks are then computed once
// in topological order, making every subsequent happens_before query an O(1)
// component comparison: clock(e)[t] counts the events of thread t ordered
// at-or-before e, so a strictly-before b iff clock(b)[a.thread] > a.index.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "analysis/hb_engine/hb_trace.hpp"
#include "common/vector_clock.hpp"

namespace ht::analysis {

// Position of an event in a Trace: threads[thread][index].
struct NodeRef {
  ThreadId thread = kNoThread;
  std::size_t index = 0;

  bool operator==(const NodeRef&) const = default;
};

class HbOrder {
 public:
  // Builds the event graph, runs the topological sort, and (when acyclic)
  // computes the per-event vector clocks. The trace must outlive the order.
  static HbOrder build(const Trace& trace);

  bool acyclic() const { return unsorted_ == 0; }
  std::size_t node_count() const { return nodes_; }
  std::size_t cross_arc_count() const { return cross_arcs_; }
  std::size_t unsorted_count() const { return unsorted_; }
  // A node stuck in a cycle (lowest thread, then program order) — the lint's
  // diagnosability anchor. Empty when acyclic.
  std::optional<NodeRef> first_cyclic() const { return first_cyclic_; }

  // Strict happens-before between two events. Meaningful only on acyclic
  // orders (clocks are not computed through cycles).
  bool happens_before(NodeRef a, NodeRef b) const {
    if (a == b) return false;
    return clock(b).get(a.thread) > a.index;
  }
  bool concurrent(NodeRef a, NodeRef b) const {
    return !(a == b) && !happens_before(a, b) && !happens_before(b, a);
  }

  const VectorClock& clock(NodeRef n) const {
    return clocks_[flat(n)];
  }

  // Longest chain in the DAG, counted in events — the replay-parallelism
  // limit: no execution respecting the recorded order can finish in fewer
  // than this many sequential steps. 0 for empty traces or cyclic graphs.
  std::size_t critical_path_length() const { return critical_path_; }

  // The cross-thread arcs (dependence anchors + lock sync), for analyses
  // that need the graph itself rather than the order it induces (the region
  // serializability checker maps these onto enforcer regions).
  struct Arc {
    NodeRef from;
    NodeRef to;
  };
  const std::vector<Arc>& cross_arcs() const { return cross_list_; }

 private:
  std::size_t flat(NodeRef n) const {
    return offsets_[n.thread] + n.index;
  }
  NodeRef unflat(std::size_t id) const;

  std::size_t nodes_ = 0;
  std::size_t cross_arcs_ = 0;
  std::size_t unsorted_ = 0;
  std::size_t critical_path_ = 0;
  std::optional<NodeRef> first_cyclic_;
  std::vector<std::size_t> offsets_;  // per-thread flat-id base, + sentinel
  std::vector<VectorClock> clocks_;   // per flat id; empty clocks if cyclic
  std::vector<Arc> cross_list_;
};

}  // namespace ht::analysis
