#include "analysis/hb_engine/hb_trace.hpp"

namespace ht::analysis {

Trace trace_from_recording(const Recording& recording) {
  Trace tr;
  tr.threads.resize(recording.threads.size());
  for (std::size_t t = 0; t < recording.threads.size(); ++t) {
    auto& out = tr.threads[t];
    out.reserve(recording.threads[t].events.size());
    for (const LogEvent& e : recording.threads[t].events) {
      TraceEvent ev;
      ev.thread = static_cast<ThreadId>(t);
      ev.point = e.point;
      ev.value = e.value;
      if (e.type == LogEventType::kEdge) {
        ev.kind = TraceEventKind::kEdge;
        ev.src = e.src;
      } else {
        ev.kind = TraceEventKind::kBump;
      }
      out.push_back(ev);
    }
  }
  return tr;
}

TraceBuilder::TraceBuilder(int nthreads)
    : bump_counts_(static_cast<std::size_t>(nthreads), 0) {
  trace_.threads.resize(static_cast<std::size_t>(nthreads));
  trace_.annotated = true;
}

void TraceBuilder::on_op(std::uint64_t seq, int slot, const OpView& op) {
  auto& out = trace_.threads[static_cast<std::size_t>(slot)];
  TraceEvent ev;
  ev.thread = static_cast<ThreadId>(slot);
  ev.point = seq;
  ev.seq = seq;
  switch (op.kind) {
    case OpView::Kind::kLoad:
      ev.kind = TraceEventKind::kRead;
      ev.obj = op.obj;
      break;
    case OpView::Kind::kStore:
      ev.kind = TraceEventKind::kWrite;
      ev.obj = op.obj;
      break;
    case OpView::Kind::kLockAcquire:
      ev.kind = TraceEventKind::kAcquire;
      ev.lock = op.lock;
      break;
    case OpView::Kind::kLockRelease:
      ev.kind = TraceEventKind::kRelease;
      ev.lock = op.lock;
      break;
    case OpView::Kind::kPsro:
    case OpView::Kind::kBlockWindow:
      // Both bump the executing thread's release counter (BlockWindow bumps
      // on entry; the exit epoch tick is not a bump). Stamp with the
      // post-bump count, mirroring the recorder's stamping discipline.
      ev.kind = TraceEventKind::kBump;
      ev.value = ++bump_counts_[static_cast<std::size_t>(slot)];
      break;
    case OpView::Kind::kOther:
      return;  // no HB-relevant footprint at this layer
  }
  out.push_back(ev);
}

Trace TraceBuilder::take() { return std::move(trace_); }

}  // namespace ht::analysis
