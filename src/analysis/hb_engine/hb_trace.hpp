// The offline analysis event model (DESIGN.md §12): a flat, per-thread-
// ordered list of TraceEvents that every hb_engine analysis runs over.
//
// Two builders produce traces at different fidelity:
//
//   * trace_from_recording — sync-only traces from v2 recordings. A
//     recording contains dependence edges and release-counter bumps but no
//     access identity, so these traces support HB reconstruction, region-
//     serializability checking over the dependence structure, and the
//     dependence-graph analytics — but not predictive race detection.
//
//   * TraceBuilder — access-annotated traces fed by the virtual scheduler's
//     RunConfig::on_op observer. These carry reads/writes/lock ops with
//     object identity and a global serialization order, enabling the full
//     predictive race analysis (cross-validated against the runtime
//     FastTrack detector and exhaustive exploration).
//
// The two sources deliberately share one event vocabulary: an analysis
// written against Trace works on either, degrading gracefully when access
// annotations are absent.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "metadata/state_word.hpp"
#include "recorder/dependence_log.hpp"

namespace ht::analysis {

enum class TraceEventKind : std::uint8_t {
  kBump,     // release-counter bump (region boundary); stamp = post-bump
             // counter, 0 = unknown (legacy recordings)
  kEdge,     // cross-thread dependence: wait until src's counter >= value
  kRead,     // annotated traces only
  kWrite,    // annotated traces only
  kAcquire,  // annotated traces only: program lock acquire
  kRelease,  // annotated traces only: program lock release
};

constexpr std::uint64_t kNoSeq = std::numeric_limits<std::uint64_t>::max();

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kBump;
  ThreadId thread = kNoThread;
  std::uint64_t point = 0;  // recorder instrumentation-point index (sync
                            // traces) or the op's global seq (annotated)
  // kBump: post-bump release counter (0 = unknown).
  // kEdge: required source release-counter value.
  std::uint64_t value = 0;
  ThreadId src = kNoThread;  // kEdge only
  int obj = -1;              // kRead/kWrite: object index
  int lock = -1;             // kAcquire/kRelease: lock index
  // Global serialization index when the source observed one (annotated
  // traces); kNoSeq for recordings, where only per-thread order and the
  // recorded dependences order events.
  std::uint64_t seq = kNoSeq;

  bool is_bump() const { return kind == TraceEventKind::kBump; }
  bool is_access() const {
    return kind == TraceEventKind::kRead || kind == TraceEventKind::kWrite;
  }
};

struct Trace {
  // events[t] is thread t's event list in program order.
  std::vector<std::vector<TraceEvent>> threads;
  bool annotated = false;  // carries access/lock events with global seq

  std::size_t thread_count() const { return threads.size(); }
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.size();
    return n;
  }
};

// Sync-only trace from a loaded recording: kEdge events map 1:1, kResponse
// and kRegionEnd events both become kBump (the HB order cares that the
// counter bumped, not why).
Trace trace_from_recording(const Recording& recording);

// Access-annotated trace builder for virtual-scheduler runs. Wire it up as
//   TraceBuilder tb(nthreads);
//   explorer.run_config().on_op = tb.observer();
// then run a schedule and call take(). Release-counter bumps are derived
// from the ops themselves (each PSRO/BlockWindow/terminal coordination bumps
// the executing thread's counter), mirroring the runtime's bump discipline
// closely enough for offline HB: lock acquire/release pairs carry the
// program-synchronization order, and every op carries its global seq.
class TraceBuilder {
 public:
  explicit TraceBuilder(int nthreads);

  // Appends the events for one completed op. Called from the scheduler's
  // observer context (mutually exclusive, globally ordered).
  void on_op(std::uint64_t seq, int slot, const struct OpView& op);

  Trace take();

 private:
  Trace trace_;
  std::vector<std::uint64_t> bump_counts_;
};

// Minimal structural view of a schedule Op, so this header does not depend
// on schedule/program.hpp (the analysis library is layered below the
// schedule library).
struct OpView {
  enum class Kind : std::uint8_t {
    kLoad,
    kStore,
    kPsro,
    kBlockWindow,
    kLockAcquire,
    kLockRelease,
    kOther,
  };
  Kind kind = Kind::kOther;
  int obj = 0;
  int lock = 0;
};

}  // namespace ht::analysis
