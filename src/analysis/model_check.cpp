#include "analysis/model_check.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ht::analysis {

namespace {

using SK = StateKind;

bool is_locked(SK k) {
  return k == SK::kWrExWLock || k == SK::kWrExRLock || k == SK::kRdExRLock ||
         k == SK::kRdShRLock;
}

bool is_read_locked(SK k) {
  return k == SK::kWrExRLock || k == SK::kRdExRLock || k == SK::kRdShRLock;
}

bool is_rd_sh(SK k) {
  return k == SK::kRdShOpt || k == SK::kRdShPess || k == SK::kRdShRLock;
}

bool has_owner_field(SK k) {
  return k == SK::kWrExOpt || k == SK::kRdExOpt || k == SK::kWrExPess ||
         k == SK::kRdExPess || k == SK::kWrExWLock || k == SK::kWrExRLock ||
         k == SK::kRdExRLock;
}

bool in_universe(const std::vector<SK>& universe, SK k) {
  return std::find(universe.begin(), universe.end(), k) != universe.end();
}

void fail(ModelCheckResult& res, const TransitionKey& key, const Outcome& o,
          const std::string& what) {
  std::ostringstream os;
  os << tracker_family_name(res.family) << ": [" << key.to_string() << "] "
     << o.to_string() << ": " << what;
  res.violations.push_back(os.str());
}

// Invariants over a single resolved key.
void check_key(ModelCheckResult& res, const std::vector<SK>& universe,
               const TransitionKey& k, const Outcome& o, bool opt_family) {
  switch (o.kind) {
    case OutcomeKind::kIllegal:
      ++res.illegal_keys;
      // Totality: a program may attempt any read or write against any state,
      // so only unlock keys may be illegal.
      if (k.access != AccessKind::kUnlock)
        fail(res, k, o, "read/write key has no outcome (totality)");
      return;

    case OutcomeKind::kContended:
      ++res.contended_keys;
      // Contention only arises from someone else's lock or an in-flight
      // coordination: Int or a locked state held by another thread.
      if (k.from != SK::kInt && !is_locked(k.from))
        fail(res, k, o, "contended outcome from an unlocked state");
      if (k.access == AccessKind::kUnlock)
        fail(res, k, o, "unlock can never contend (flush holds the lock)");
      return;

    case OutcomeKind::kTransition:
      break;
  }
  ++res.legal_transitions;

  // Closure: successors stay inside the family's state universe.
  if (!in_universe(universe, o.to))
    fail(res, k, o, "successor outside the family's state universe");

  // Mechanism discipline.
  if ((o.mechanism == Mechanism::kFastPath || o.mechanism == Mechanism::kFence)
      && o.to != k.from)
    fail(res, k, o, "fast-path/fence row changes the state word");
  if (o.begins_coordination != (o.mechanism == Mechanism::kCoordination))
    fail(res, k, o, "coordination <=> routed through Int mismatch");
  if (o.mechanism == Mechanism::kWait)
    fail(res, k, o, "wait mechanism on a committed transition");

  // Ownership: owner-bearing successors always name the actor (the relation
  // never installs a state on another thread's behalf), and only they do.
  if (o.to_owned_by_actor != has_owner_field(o.to))
    fail(res, k, o, "ownership flag disagrees with successor's owner field");

  // RdSh epoch-counter effects appear exactly on RdSh successors.
  if ((o.counter != CounterEffect::kNone) != is_rd_sh(o.to))
    fail(res, k, o, "counter effect disagrees with RdSh successor");
  if (o.counter == CounterEffect::kKeep && !is_rd_sh(k.from))
    fail(res, k, o, "keep-counter from a state that carries no counter");

  // Holder-count effects appear exactly on RdShRLock successors.
  if (o.holders != HolderEffect::kNone && o.to != SK::kRdShRLock)
    fail(res, k, o, "holder effect on a non-RdShRLock successor");
  if (o.to == SK::kRdShRLock) {
    if (k.from != SK::kRdShRLock &&
        o.holders != HolderEffect::kOne && o.holders != HolderEffect::kTwo)
      fail(res, k, o, "RdShRLock formation without an initial holder count");
    if (k.from == SK::kRdShRLock && o.mechanism != Mechanism::kFastPath &&
        o.holders != HolderEffect::kIncrement &&
        o.holders != HolderEffect::kDecrement)
      fail(res, k, o, "RdShRLock-to-RdShRLock CAS without a holder delta");
  }

  // ---- Deferred-unlocking invariants (§3.1) -------------------------------
  if (opt_family) {
    if (o.enters_lock_buffer || o.enters_rd_set || o.requires_lock_buffer ||
        o.requires_rd_set || k.access == AccessKind::kUnlock)
      fail(res, k, o, "optimistic-only family touches deferred-unlock state");
    return;
  }
  // A locked successor means the actor holds a buffered lock: freshly pushed
  // (enters) or held from an earlier access (requires).
  if (is_locked(o.to) && !o.enters_lock_buffer && !o.requires_lock_buffer)
    fail(res, k, o, "locked successor without a lock-buffer entry");
  if ((o.enters_lock_buffer || o.requires_lock_buffer) && !is_locked(o.to) &&
      k.access != AccessKind::kUnlock)
    fail(res, k, o, "lock-buffer bookkeeping on an unlocked successor");
  // Leaving the locked region happens only via the owner's unlock flush.
  if (is_locked(k.from) && !is_locked(o.to)) {
    if (k.access != AccessKind::kUnlock)
      fail(res, k, o, "locked state left by a plain access, not a flush");
  }
  if (k.access == AccessKind::kUnlock) {
    if (!is_locked(k.from))
      fail(res, k, o, "unlock of a state that is not locked");
    if (k.rel != ActorRel::kOwner)
      fail(res, k, o, "unlock by a thread that does not hold the lock");
    if (!o.requires_lock_buffer)
      fail(res, k, o, "unlock row without lock-buffer membership");
    if (o.enters_lock_buffer || o.enters_rd_set)
      fail(res, k, o, "unlock inserts into deferred-unlock structures");
  }
  // Read locks imply read-set membership (how reentrancy and sole-holder
  // upgrades are detected); write locks never insert into the read set.
  if (o.enters_rd_set && !is_read_locked(o.to))
    fail(res, k, o, "read-set insert without a read-locked successor");
  if (is_read_locked(o.to) && !o.enters_rd_set && !o.requires_rd_set)
    fail(res, k, o, "read-locked successor without read-set membership");
}

}  // namespace

ModelCheckResult check_model(TrackerFamily family) {
  ModelCheckResult res;
  res.family = family;
  const std::vector<SK>& universe = family_states(family);
  const std::vector<TransitionRule>& rules = transition_rules(family);
  const bool opt_family = family == TrackerFamily::kOptimistic ||
                          family == TrackerFamily::kIdeal;

  // Rule-table sanity: every rule's pattern lies inside the universe (a rule
  // that can never match is a typo, not a legal-but-unused row).
  std::vector<std::size_t> rule_hits(rules.size(), 0);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!in_universe(universe, rules[i].from)) {
      std::ostringstream os;
      os << tracker_family_name(family) << ": rule " << i
         << " matches a state outside the family universe ("
         << state_kind_name(rules[i].from) << ")";
      res.violations.push_back(os.str());
    }
  }

  for (const TransitionKey& key : enumerate_keys(family)) {
    ++res.keys_checked;
    // Determinism: at most one rule may match any concrete key.
    std::size_t matches = 0;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].matches(key)) {
        ++matches;
        ++rule_hits[i];
      }
    }
    if (matches > 1) {
      fail(res, key, transition_outcome(family, key),
           "matches " + std::to_string(matches) + " rules (determinism)");
    }
    check_key(res, universe, key, transition_outcome(family, key), opt_family);
  }

  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rule_hits[i] == 0) {
      std::ostringstream os;
      os << tracker_family_name(family) << ": rule " << i << " ("
         << state_kind_name(rules[i].from) << " / "
         << access_kind_name(rules[i].access) << ") matches no key (dead row)";
      res.violations.push_back(os.str());
    }
  }

  // Closure, reachability half: every universe state is reachable from the
  // initial state through legal transitions. Int is the transient stop of
  // every coordination-routed rule, so those rules make it reachable.
  std::set<SK> reachable{family_initial_state(family)};
  for (bool grew = true; grew;) {
    grew = false;
    for (const TransitionKey& key : enumerate_keys(family)) {
      if (!reachable.count(key.from)) continue;
      const Outcome o = transition_outcome(family, key);
      if (o.kind != OutcomeKind::kTransition) continue;
      if (reachable.insert(o.to).second) grew = true;
      if (o.begins_coordination && reachable.insert(SK::kInt).second)
        grew = true;
    }
  }
  for (SK s : universe) {
    if (!reachable.count(s)) {
      std::ostringstream os;
      os << tracker_family_name(family) << ": state " << state_kind_name(s)
         << " unreachable from " << state_kind_name(family_initial_state(family));
      res.violations.push_back(os.str());
    }
  }
  return res;
}

std::vector<ModelCheckResult> check_all_models() {
  return {check_model(TrackerFamily::kHybrid),
          check_model(TrackerFamily::kOptimistic),
          check_model(TrackerFamily::kIdeal),
          check_model(TrackerFamily::kPessAlone)};
}

}  // namespace ht::analysis
