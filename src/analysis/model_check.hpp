// Offline exhaustive check of the transition model (analysis layer, part 1).
//
// Enumerates the FULL key space of each tracker family — every (state,
// access kind, owner/other, sole-holder, policy, WrExRLock mode) tuple from
// enumerate_keys() — and verifies the properties the paper's soundness
// argument rests on:
//
//   closure        every legal successor state is in the family's universe,
//                  and every universe state is reachable from the initial
//                  state through legal transitions;
//   determinism    no key matches more than one rule, so the relation is a
//                  function of the key (the paper's tables are unambiguous);
//   totality       every read/write key resolves to a transition or a
//                  contended wait — a program may attempt any access against
//                  any state, so no read/write may be illegal;
//   deferred       lock-buffer/read-set bookkeeping is consistent: locked
//   unlocking      states are entered only with a buffered lock, left only
//                  by an unlock flush by the holder, read locks imply
//                  read-set membership, and optimistic families never touch
//                  either structure (§3.1);
//   mechanisms     fast paths never change the state word, coordination is
//                  exactly the rules routed through Int, and RdSh epoch /
//                  holder-count effects appear exactly on RdSh successors.
//
// This runs in tests (tier 1) and is cheap: the largest family has 432 keys.
#pragma once

#include <string>
#include <vector>

#include "analysis/transition_model.hpp"

namespace ht::analysis {

struct ModelCheckResult {
  TrackerFamily family{};
  std::size_t keys_checked = 0;
  std::size_t legal_transitions = 0;
  std::size_t contended_keys = 0;
  std::size_t illegal_keys = 0;
  std::vector<std::string> violations;  // empty iff the model is consistent

  bool ok() const { return violations.empty(); }
};

// Checks one family's relation exhaustively.
ModelCheckResult check_model(TrackerFamily family);

// Checks all four families; concatenates violations.
std::vector<ModelCheckResult> check_all_models();

}  // namespace ht::analysis
