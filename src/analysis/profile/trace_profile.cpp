#include "analysis/profile/trace_profile.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

#include "common/json.hpp"
#include "metadata/state_word.hpp"

namespace ht::analysis::profile {

using telemetry::Event;
using telemetry::EventKind;
using telemetry::ThreadTrace;
using telemetry::TraceSnapshot;

const char* category_name(Category c) {
  switch (c) {
    case Category::kAppCompute: return "app_compute";
    case Category::kCoordWait: return "coord_wait";
    case Category::kPessLockWait: return "pess_lock_wait";
    case Category::kDeferredFlush: return "deferred_flush";
    case Category::kRegionRestart: return "region_restart";
    case Category::kResilience: return "resilience";
  }
  return "unknown";
}

const char* residency_name(Residency r) {
  switch (r) {
    case Residency::kWrEx: return "WrEx";
    case Residency::kRdEx: return "RdEx";
    case Residency::kRdSh: return "RdSh";
    case Residency::kPess: return "Pess";
    case Residency::kInt: return "Int";
  }
  return "unknown";
}

Residency residency_of_kind(unsigned state_kind) {
  switch (static_cast<StateKind>(state_kind)) {
    case StateKind::kWrExOpt: return Residency::kWrEx;
    case StateKind::kRdExOpt: return Residency::kRdEx;
    case StateKind::kRdShOpt: return Residency::kRdSh;
    case StateKind::kInt: return Residency::kInt;
    default: return Residency::kPess;  // all pessimistic flavors + sentinel
  }
}

namespace {

// True when scalar ticket `t` falls in the half-open watermark range
// (before, after] — all three compared in the low 32 bits the response
// events carry, wrap-safe.
bool ticket_answered(std::uint32_t t, std::uint32_t before,
                     std::uint32_t after) {
  return static_cast<std::uint32_t>(t - before - 1) <
         static_cast<std::uint32_t>(after - before);
}

bool is_response_kind(EventKind k) {
  return k == EventKind::kSafePointResponse || k == EventKind::kPsro ||
         k == EventKind::kBlockingEnter || k == EventKind::kThreadExit;
}

struct RespEvent {
  std::uint64_t tsc = 0;
  std::uint32_t before = 0;  // arg2: watermark before the publish
  std::uint32_t after = 0;   // arg1: watermark after it
};

struct Interval {
  std::uint64_t s = 0;
  std::uint64_t e = 0;
  Category cat = Category::kAppCompute;
};

// Innermost-active-wins sweep: divides [first,last] among the wait
// intervals; at any instant the active interval with the latest start (tie:
// earliest end, i.e. the more tightly nested one) owns the time. Waits
// genuinely nest here — a region-restart interval covers the coordination
// round trips the attempt performed — and the innermost cause is the one
// the cycles should be charged to.
void sweep_intervals(std::vector<Interval> ivs, std::uint64_t first,
                     std::uint64_t last,
                     std::uint64_t by_category[kCategoryCount]) {
  std::vector<std::uint64_t> bounds;
  for (Interval& iv : ivs) {
    iv.s = std::max(iv.s, first);
    iv.e = std::min(iv.e, last);
  }
  ivs.erase(std::remove_if(ivs.begin(), ivs.end(),
                           [](const Interval& iv) { return iv.s >= iv.e; }),
            ivs.end());
  for (const Interval& iv : ivs) {
    bounds.push_back(iv.s);
    bounds.push_back(iv.e);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) { return a.s < b.s; });

  struct InnermostFirst {
    bool operator()(const Interval& a, const Interval& b) const {
      if (a.s != b.s) return a.s > b.s;  // latest start first
      if (a.e != b.e) return a.e < b.e;  // then earliest end
      return a.cat < b.cat;
    }
  };
  std::multiset<Interval, InnermostFirst> active;
  std::size_t next = 0;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const std::uint64_t a = bounds[i];
    const std::uint64_t b = bounds[i + 1];
    while (next < ivs.size() && ivs[next].s <= a) active.insert(ivs[next++]);
    for (auto it = active.begin(); it != active.end();) {
      if (it->e <= a) {
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    if (!active.empty()) {
      by_category[static_cast<std::size_t>(active.begin()->cat)] += b - a;
    }
  }
}

}  // namespace

double ProfileReport::attribution_error() const {
  if (total_cycles == 0) return 0.0;
  std::uint64_t sum = 0;
  for (std::uint64_t c : category_cycles) sum += c;
  const std::uint64_t diff =
      sum > total_cycles ? sum - total_cycles : total_cycles - sum;
  return static_cast<double>(diff) / static_cast<double>(total_cycles);
}

ProfileReport build_profile(const TraceSnapshot& snap) {
  ProfileReport r;
  r.cycles_per_second = snap.cycles_per_second;

  // --- span stitching ------------------------------------------------------
  std::map<std::uint16_t, std::vector<RespEvent>> responses;  // by owner tid
  // Batch drains keyed by (requester tid, span id): first drain wins (a
  // span is drained exactly once; re-drained rings after a clear() restart
  // the id space, which per-trial snapshots never mix).
  std::unordered_map<std::uint64_t, std::uint64_t> drains;
  auto drain_key = [](std::uint16_t requester, std::uint64_t span_id) {
    return (span_id << 16) | requester;
  };

  for (const ThreadTrace& t : snap.threads) {
    // Open requests awaiting their closing round trip, FIFO per owner.
    // Coordination is synchronous per thread and batches group by owner, so
    // at most one request per (requester, owner) is ever outstanding.
    std::map<std::uint16_t, std::vector<std::size_t>> open;
    for (const Event& e : t.events) {
      const auto kind = static_cast<EventKind>(e.kind);
      switch (kind) {
        case EventKind::kCoordRequest: {
          Span sp;
          sp.requester = e.tid;
          sp.owner = static_cast<std::uint16_t>(e.arg1);
          sp.span_id = e.arg0;
          sp.request_tsc = e.tsc;
          sp.batched = e.arg2 != 0;
          open[sp.owner].push_back(r.spans.size());
          r.spans.push_back(sp);
          (sp.batched ? r.spans_batch : r.spans_scalar)++;
          break;
        }
        case EventKind::kCoordRoundTrip: {
          auto it = open.find(static_cast<std::uint16_t>(e.arg1));
          if (it != open.end() && !it->second.empty()) {
            Span& sp = r.spans[it->second.front()];
            it->second.erase(it->second.begin());
            sp.close_tsc = e.tsc;
            sp.implicit = e.arg2 != 0;
            ++r.spans_closed;
          }
          // No open request: the round trip resolved implicitly before a
          // ticket/post was needed — it is self-contained, not a span.
          break;
        }
        case EventKind::kCoordBatchDrain:
          drains.emplace(drain_key(static_cast<std::uint16_t>(e.arg1), e.arg0),
                         e.tsc);
          break;
        default:
          break;
      }
      if (is_response_kind(kind)) {
        RespEvent re;
        re.tsc = e.tsc;
        re.before = e.arg2;
        re.after = e.arg1;
        if (re.after != re.before) responses[e.tid].push_back(re);
      }
    }
  }

  // Scalar spans join the owner-side response whose watermark range covers
  // the ticket. Watermarks are monotone per owner, so sorting the spans by
  // ticket lets one cursor pass over the response list serve them all.
  std::map<std::uint16_t, std::vector<std::size_t>> scalar_by_owner;
  for (std::size_t i = 0; i < r.spans.size(); ++i) {
    Span& sp = r.spans[i];
    if (sp.batched) {
      auto it = drains.find(drain_key(sp.requester, sp.span_id));
      if (it != drains.end()) {
        sp.response_tsc = it->second;
        ++r.spans_response_matched;
      }
    } else {
      scalar_by_owner[sp.owner].push_back(i);
    }
  }
  for (auto& [owner, idxs] : scalar_by_owner) {
    std::sort(idxs.begin(), idxs.end(), [&](std::size_t a, std::size_t b) {
      return r.spans[a].span_id < r.spans[b].span_id;
    });
    const std::vector<RespEvent>& resp = responses[owner];
    std::size_t cur = 0;
    for (std::size_t i : idxs) {
      Span& sp = r.spans[i];
      const auto t32 = static_cast<std::uint32_t>(sp.span_id);
      while (cur < resp.size() &&
             static_cast<std::int32_t>(resp[cur].after - t32) < 0) {
        ++cur;
      }
      if (cur < resp.size() &&
          ticket_answered(t32, resp[cur].before, resp[cur].after)) {
        sp.response_tsc = resp[cur].tsc;
        ++r.spans_response_matched;
      }
      // Otherwise the ticket was answered by a watermark jump with no ring
      // event (quarantine release) or the response was dropped: unmatched.
    }
  }

  // --- attribution ---------------------------------------------------------
  for (const ThreadTrace& t : snap.threads) {
    if (t.events.empty()) continue;
    ThreadAttribution ta;
    ta.tid = t.tid;
    ta.first_tsc = t.events.front().tsc;
    ta.last_tsc = t.events.back().tsc;
    ta.window_cycles = ta.last_tsc - ta.first_tsc;

    std::vector<Interval> ivs;
    for (const Event& e : t.events) {
      std::uint64_t dur = 0;
      Category cat = Category::kAppCompute;
      switch (static_cast<EventKind>(e.kind)) {
        case EventKind::kCoordRoundTrip:
          dur = e.arg0;
          cat = Category::kCoordWait;
          break;
        case EventKind::kPessWait:
          dur = e.arg0;
          cat = Category::kPessLockWait;
          break;
        case EventKind::kRegionRestart:
          dur = e.arg0;
          cat = Category::kRegionRestart;
          break;
        case EventKind::kSeizure:
          dur = e.arg0;
          cat = Category::kResilience;
          break;
        case EventKind::kDeferredFlush:
          dur = e.arg1;  // unlock-loop cycles, low 32 bits
          cat = Category::kDeferredFlush;
          break;
        default:
          continue;
      }
      if (dur == 0) continue;
      Interval iv;
      iv.e = e.tsc;
      iv.s = e.tsc - std::min(dur, e.tsc);
      iv.cat = cat;
      ivs.push_back(iv);
    }
    sweep_intervals(std::move(ivs), ta.first_tsc, ta.last_tsc,
                    ta.by_category);

    std::uint64_t waits = 0;
    for (std::size_t c = 1; c < kCategoryCount; ++c) {
      waits += ta.by_category[c];
    }
    ta.by_category[0] = ta.window_cycles - std::min(waits, ta.window_cycles);
    r.total_cycles += ta.window_cycles;
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      r.category_cycles[c] += ta.by_category[c];
    }
    r.threads.push_back(ta);
  }

  // --- state dwell ---------------------------------------------------------
  const std::vector<Event> merged = snap.merged();
  const std::uint64_t max_tsc = merged.empty() ? 0 : merged.back().tsc;
  std::map<std::uint32_t, ObjectDwell> agg;
  struct OpenState {
    std::uint64_t tsc = 0;
    Residency cls = Residency::kWrEx;
  };
  std::map<std::uint32_t, OpenState> open_state;
  for (const Event& e : merged) {
    if (static_cast<EventKind>(e.kind) == EventKind::kElisionFlush) {
      ++r.elision_flushes;
      r.elision_hits += e.arg0;
      r.elision_misses += e.arg1;
      continue;
    }
    if (static_cast<EventKind>(e.kind) != EventKind::kStateTransition) {
      continue;
    }
    const unsigned to_k = telemetry::transition_to_kind(e.arg0);
    ObjectDwell& d = agg[e.arg1];
    d.object = e.arg1;
    ++d.transitions;
    ++r.transitions_total;
    ++r.dwell_entries[static_cast<std::size_t>(residency_of_kind(to_k))];
    auto it = open_state.find(e.arg1);
    if (it != open_state.end() && e.tsc > it->second.tsc) {
      d.residency[static_cast<std::size_t>(it->second.cls)] +=
          e.tsc - it->second.tsc;
    }
    open_state[e.arg1] = OpenState{e.tsc, residency_of_kind(to_k)};
  }
  for (const auto& [obj, os] : open_state) {
    if (max_tsc > os.tsc) {
      agg[obj].residency[static_cast<std::size_t>(os.cls)] +=
          max_tsc - os.tsc;
    }
  }
  r.dwell.reserve(agg.size());
  for (const auto& [obj, d] : agg) {
    for (std::size_t c = 0; c < kResidencyCount; ++c) {
      r.dwell_cycles[c] += d.residency[c];
    }
    r.dwell.push_back(d);
  }
  std::stable_sort(r.dwell.begin(), r.dwell.end(),
                   [](const ObjectDwell& a, const ObjectDwell& b) {
                     return a.occupied() > b.occupied();
                   });

  // --- critical path -------------------------------------------------------
  if (!r.threads.empty()) {
    std::map<std::uint16_t, const ThreadAttribution*> by_tid;
    const ThreadAttribution* start = &r.threads.front();
    for (const ThreadAttribution& ta : r.threads) {
      by_tid[ta.tid] = &ta;
      if (ta.last_tsc > start->last_tsc) start = &ta;
    }
    // Closed spans per requester, ordered by close time for binary search.
    std::map<std::uint16_t, std::vector<const Span*>> closed;
    for (const Span& sp : r.spans) {
      if (sp.close_tsc != 0) closed[sp.requester].push_back(&sp);
    }
    for (auto& [tid, v] : closed) {
      std::sort(v.begin(), v.end(), [](const Span* a, const Span* b) {
        return a->close_tsc < b->close_tsc;
      });
    }

    std::uint16_t tid = start->tid;
    std::uint64_t cursor = start->last_tsc;
    for (int hops = 0; hops < 64; ++hops) {
      const ThreadAttribution* ta = by_tid.count(tid) ? by_tid[tid] : nullptr;
      const std::uint64_t first = ta != nullptr ? ta->first_tsc : 0;
      const Span* sp = nullptr;
      auto it = closed.find(tid);
      if (it != closed.end()) {
        // Latest span on this thread closing at or before the cursor.
        auto pos = std::upper_bound(
            it->second.begin(), it->second.end(), cursor,
            [](std::uint64_t c, const Span* s) { return c < s->close_tsc; });
        if (pos != it->second.begin()) sp = *std::prev(pos);
      }
      if (sp == nullptr || sp->close_tsc <= first) {
        if (cursor > first) {
          r.critical_path.push_back(
              CriticalHop{tid, Category::kAppCompute, 0, first, cursor});
        }
        break;
      }
      if (cursor > sp->close_tsc) {
        r.critical_path.push_back(CriticalHop{
            tid, Category::kAppCompute, 0, sp->close_tsc, cursor});
      }
      r.critical_path.push_back(CriticalHop{tid, Category::kCoordWait,
                                            sp->owner, sp->request_tsc,
                                            sp->close_tsc});
      if (sp->response_tsc == 0 || !by_tid.count(sp->owner)) {
        // Unstitched (dropped response or quarantine release): continue on
        // the requester before the request was made.
        cursor = sp->request_tsc;
      } else {
        tid = sp->owner;
        cursor = sp->response_tsc;
      }
    }
  }

  return r;
}

namespace {

std::string u64s(std::uint64_t v) { return std::to_string(v); }

double fraction(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(part) /
                                static_cast<double>(total);
}

}  // namespace

std::string profile_to_json(const ProfileReport& r, std::size_t max_objects) {
  std::string out = "{\"cycles_per_second\":";
  out += json::number(r.cycles_per_second);
  out += ",\"total_cycles\":" + u64s(r.total_cycles);
  out += ",\"attribution\":{\"categories\":{";
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    if (c != 0) out.push_back(',');
    out.push_back('"');
    out += category_name(static_cast<Category>(c));
    out += "\":{\"cycles\":" + u64s(r.category_cycles[c]);
    out += ",\"fraction\":" +
           json::number(fraction(r.category_cycles[c], r.total_cycles));
    out.push_back('}');
  }
  out += "},\"error\":" + json::number(r.attribution_error());
  out += ",\"threads\":[";
  for (std::size_t i = 0; i < r.threads.size(); ++i) {
    const ThreadAttribution& ta = r.threads[i];
    if (i != 0) out.push_back(',');
    out += "{\"tid\":" + u64s(ta.tid);
    out += ",\"window_cycles\":" + u64s(ta.window_cycles);
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      out += ",\"";
      out += category_name(static_cast<Category>(c));
      out += "\":" + u64s(ta.by_category[c]);
    }
    out.push_back('}');
  }
  out += "]},\"spans\":{\"total\":" + u64s(r.spans.size());
  out += ",\"scalar\":" + u64s(r.spans_scalar);
  out += ",\"batch\":" + u64s(r.spans_batch);
  out += ",\"responses_matched\":" + u64s(r.spans_response_matched);
  out += ",\"closed\":" + u64s(r.spans_closed);
  out += "},\"dwell\":{\"transitions_total\":" + u64s(r.transitions_total);
  out += ",\"state_cycles\":{";
  for (std::size_t c = 0; c < kResidencyCount; ++c) {
    if (c != 0) out.push_back(',');
    out.push_back('"');
    out += residency_name(static_cast<Residency>(c));
    out += "\":" + u64s(r.dwell_cycles[c]);
  }
  out += "},\"entries\":{";
  for (std::size_t c = 0; c < kResidencyCount; ++c) {
    if (c != 0) out.push_back(',');
    out.push_back('"');
    out += residency_name(static_cast<Residency>(c));
    out += "\":" + u64s(r.dwell_entries[c]);
  }
  out += "},\"objects\":[";
  const std::size_t n_obj = std::min(max_objects, r.dwell.size());
  for (std::size_t i = 0; i < n_obj; ++i) {
    const ObjectDwell& d = r.dwell[i];
    if (i != 0) out.push_back(',');
    out += "{\"object\":" + u64s(d.object);
    out += ",\"transitions\":" + u64s(d.transitions);
    for (std::size_t c = 0; c < kResidencyCount; ++c) {
      out += ",\"";
      out += residency_name(static_cast<Residency>(c));
      out += "\":" + u64s(d.residency[c]);
    }
    out.push_back('}');
  }
  out += "]},\"elision\":{\"hits\":" + u64s(r.elision_hits);
  out += ",\"misses\":" + u64s(r.elision_misses);
  out += ",\"flushes\":" + u64s(r.elision_flushes);
  out += ",\"hit_rate\":" + json::number(r.elision_hit_rate());
  out += "},\"critical_path\":[";
  for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
    const CriticalHop& h = r.critical_path[i];
    if (i != 0) out.push_back(',');
    out += "{\"tid\":" + u64s(h.tid);
    out += ",\"kind\":\"";
    out += category_name(h.category);
    out.push_back('"');
    if (h.category == Category::kCoordWait) {
      out += ",\"via\":" + u64s(h.via);
    }
    out += ",\"cycles\":" + u64s(h.cycles());
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string profile_to_collapsed(const ProfileReport& r) {
  std::string out;
  for (const ThreadAttribution& ta : r.threads) {
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      if (ta.by_category[c] == 0) continue;
      out += "T" + u64s(ta.tid);
      out.push_back(';');
      out += category_name(static_cast<Category>(c));
      out.push_back(' ');
      out += u64s(ta.by_category[c]);
      out.push_back('\n');
    }
  }
  for (const CriticalHop& h : r.critical_path) {
    if (h.cycles() == 0) continue;
    out += "critical;T" + u64s(h.tid);
    out.push_back(';');
    out += category_name(h.category);
    if (h.category == Category::kCoordWait) {
      out += ";T" + u64s(h.via);
    }
    out.push_back(' ');
    out += u64s(h.cycles());
    out.push_back('\n');
  }
  return out;
}

std::string attribution_report(const ProfileReport& r) {
  std::string out;
  char buf[160];
  const double cps = r.cycles_per_second;
  std::snprintf(buf, sizeof buf,
                "where the cycles went (%llu thread-window cycles, %zu "
                "threads):\n",
                static_cast<unsigned long long>(r.total_cycles),
                r.threads.size());
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-16s %16s %10s %12s\n", "category",
                "cycles", "percent", "ms");
  out += buf;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    const std::uint64_t cy = r.category_cycles[c];
    const double ms = cps > 0 ? static_cast<double>(cy) / cps * 1e3 : 0.0;
    std::snprintf(buf, sizeof buf, "  %-16s %16llu %9.2f%% %12.3f\n",
                  category_name(static_cast<Category>(c)),
                  static_cast<unsigned long long>(cy),
                  100.0 * fraction(cy, r.total_cycles), ms);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "spans: %zu (%llu scalar, %llu batch), %llu responses "
                "stitched, %llu closed\n",
                r.spans.size(),
                static_cast<unsigned long long>(r.spans_scalar),
                static_cast<unsigned long long>(r.spans_batch),
                static_cast<unsigned long long>(r.spans_response_matched),
                static_cast<unsigned long long>(r.spans_closed));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "dwell: %llu transitions across %zu objects\n",
                static_cast<unsigned long long>(r.transitions_total),
                r.dwell.size());
  out += buf;
  std::uint64_t dwell_total = 0;
  for (std::uint64_t c : r.dwell_cycles) dwell_total += c;
  for (std::size_t c = 0; c < kResidencyCount; ++c) {
    std::snprintf(buf, sizeof buf, "  %-6s %16llu cycles %9.2f%%\n",
                  residency_name(static_cast<Residency>(c)),
                  static_cast<unsigned long long>(r.dwell_cycles[c]),
                  100.0 * fraction(r.dwell_cycles[c], dwell_total));
    out += buf;
  }
  if (r.elision_flushes > 0) {
    std::snprintf(buf, sizeof buf,
                  "elision: %llu hits / %llu misses (%.2f%% hit rate), "
                  "%llu cache flushes\n",
                  static_cast<unsigned long long>(r.elision_hits),
                  static_cast<unsigned long long>(r.elision_misses),
                  100.0 * r.elision_hit_rate(),
                  static_cast<unsigned long long>(r.elision_flushes));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "critical path: %zu hops\n",
                r.critical_path.size());
  out += buf;
  return out;
}

}  // namespace ht::analysis::profile
