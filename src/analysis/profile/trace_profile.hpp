// Offline time-weighted critical-path profiler (DESIGN.md §14).
//
// Consumes a drained HTEL trace and answers "where do the cycles go":
//   1. Span stitching — every kCoordRequest (scalar ticket or batched
//      mailbox post) is joined to the owner-side event that answered it
//      (watermark-range match for scalar tickets, span-id match for batch
//      drains) and to the requester's own closing kCoordRoundTrip.
//   2. Attribution — each thread's window (first to last ring event) is
//      divided among wait categories by an innermost-active-wins interval
//      sweep over the latency-carrying events; the residual is application
//      compute, so the categories sum to the window by construction.
//   3. State dwell — kStateTransition events are folded, in merged
//      timestamp order, into per-object and per-class residency (cycles an
//      object spent WrEx / RdEx / RdSh / pessimistic / Int).
//   4. Critical path — a backwards walk from the last event in the trace
//      that crosses threads through stitched spans: inside a coordination
//      wait the walk jumps to the owner's response and continues there.
//
// Everything here is offline analysis over an immutable snapshot; nothing
// is called from instrumented hot paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ht::analysis::profile {

// Attribution categories. kAppCompute is the residual (window minus every
// swept wait interval), which is what makes the per-thread rows sum to the
// thread's window exactly.
enum class Category : std::uint8_t {
  kAppCompute = 0,
  kCoordWait,       // kCoordRoundTrip intervals (explicit and implicit)
  kPessLockWait,    // kPessWait intervals
  kDeferredFlush,   // kDeferredFlush unlock-loop cycles (arg1)
  kRegionRestart,   // kRegionRestart burned-attempt intervals
  kResilience,      // kSeizure intervals (quarantine recovery work)
};
inline constexpr std::size_t kCategoryCount = 6;
const char* category_name(Category c);

// Residency classes folding metadata/state_word.hpp StateKind (12 kinds)
// into the five the dwell report distinguishes.
enum class Residency : std::uint8_t {
  kWrEx = 0,  // WrExOpt
  kRdEx,      // RdExOpt
  kRdSh,      // RdShOpt
  kPess,      // all pessimistic flavors, locked or not, incl. the sentinel
  kInt,       // coordination intermediate
};
inline constexpr std::size_t kResidencyCount = 5;
const char* residency_name(Residency r);
Residency residency_of_kind(unsigned state_kind);

// One stitched coordination span (request on the requester's ring joined to
// the owner-side answer and the requester-side close).
struct Span {
  std::uint16_t requester = 0;
  std::uint16_t owner = 0;
  std::uint64_t span_id = 0;       // scalar ticket, or batch span id
  std::uint64_t request_tsc = 0;   // kCoordRequest
  std::uint64_t response_tsc = 0;  // owner-side answering event; 0 unmatched
  std::uint64_t close_tsc = 0;     // requester's kCoordRoundTrip; 0 unclosed
  bool batched = false;
  bool implicit = false;  // the closing round trip resolved implicitly
};

struct ThreadAttribution {
  std::uint16_t tid = 0;
  std::uint64_t first_tsc = 0;
  std::uint64_t last_tsc = 0;
  std::uint64_t window_cycles = 0;  // last_tsc - first_tsc
  std::uint64_t by_category[kCategoryCount] = {};
};

struct ObjectDwell {
  std::uint32_t object = 0;
  std::uint64_t transitions = 0;  // kStateTransition events for this object
  std::uint64_t residency[kResidencyCount] = {};  // cycles per class
  std::uint64_t occupied() const {
    std::uint64_t n = 0;
    for (std::uint64_t r : residency) n += r;
    return n;
  }
};

// One step of the backwards critical-path walk (reverse chronological:
// hops[0] ends at the last event in the trace). kAppCompute hops are run
// segments on one thread; kCoordWait hops cross to `via` (the owner).
struct CriticalHop {
  std::uint16_t tid = 0;
  Category category = Category::kAppCompute;
  std::uint16_t via = 0;  // owner tid for kCoordWait hops
  std::uint64_t start_tsc = 0;
  std::uint64_t end_tsc = 0;
  std::uint64_t cycles() const { return end_tsc - start_tsc; }
};

struct ProfileReport {
  double cycles_per_second = 0;
  std::uint64_t total_cycles = 0;  // sum of per-thread windows
  std::uint64_t category_cycles[kCategoryCount] = {};
  std::vector<ThreadAttribution> threads;

  std::vector<Span> spans;
  std::uint64_t spans_scalar = 0;
  std::uint64_t spans_batch = 0;
  std::uint64_t spans_response_matched = 0;
  std::uint64_t spans_closed = 0;

  std::vector<ObjectDwell> dwell;  // occupied() descending
  std::uint64_t dwell_cycles[kResidencyCount] = {};
  // Transitions *into* each class (== the per-class event count; the Int row
  // equals the trackers' conflicting-transition count on a clean run).
  std::uint64_t dwell_entries[kResidencyCount] = {};
  std::uint64_t transitions_total = 0;

  std::vector<CriticalHop> critical_path;

  // Barrier-elision totals (DESIGN.md §15), summed over the kElisionFlush
  // events in the snapshot. Deltas are per-flush, so the sums are run totals
  // for the traced window; all zero when elision is compiled out or off.
  std::uint64_t elision_hits = 0;
  std::uint64_t elision_misses = 0;
  std::uint64_t elision_flushes = 0;
  double elision_hit_rate() const {
    const std::uint64_t probes = elision_hits + elision_misses;
    return probes == 0
               ? 0.0
               : static_cast<double>(elision_hits) / static_cast<double>(probes);
  }

  // |sum of category cycles - total_cycles| / total_cycles. Zero by
  // construction unless the sweep itself is broken — the CLI turns a value
  // above its tolerance into exit code 6 so CI can assert it cheaply.
  double attribution_error() const;
};

ProfileReport build_profile(const telemetry::TraceSnapshot& snap);

// Machine-readable report: attribution, span statistics, dwell (top
// `max_objects` objects), and the critical path.
std::string profile_to_json(const ProfileReport& r, std::size_t max_objects = 20);

// Folded-stack output (flamegraph.pl / inferno / speedscope): one line per
// thread x category, `T<tid>;<category> <cycles>`, plus the critical path
// as `critical;T<a>;coord_wait;T<b>;... <cycles>` frames.
std::string profile_to_collapsed(const ProfileReport& r);

// Human "where do the cycles go" table for the CLI default output.
std::string attribution_report(const ProfileReport& r);

}  // namespace ht::analysis::profile
