#include "analysis/trace_lint.hpp"

#include <sstream>

#include "analysis/hb_engine/hb_order.hpp"
#include "analysis/hb_engine/hb_trace.hpp"
#include "recorder/recording_io.hpp"

namespace ht::analysis {

namespace {

void issue(LintResult& res, std::size_t thread, std::size_t event,
           std::string message) {
  res.issues.push_back(
      {static_cast<ThreadId>(thread), event, std::move(message)});
}

// Stamped bumps (kResponse / kRegionEnd with a nonzero stamp) of one thread,
// in program order. A zero stamp is the legacy "unknown" sentinel — the
// event is still a real bump (it counts toward `ordinal`) but its stamp
// participates in no value check.
struct StampedBumps {
  std::vector<std::size_t> index;     // event index in the thread's log
  std::vector<std::uint64_t> value;   // post-bump counter stamps
  std::vector<std::size_t> ordinal;   // 1-based position among ALL bumps
};

StampedBumps collect_bumps(const ThreadLog& log) {
  StampedBumps r;
  std::size_t bumps = 0;
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    const LogEvent& e = log.events[i];
    if (!e.is_bump()) continue;
    ++bumps;
    if (e.value == 0) continue;  // unknown stamp: skip monotonicity for it
    r.index.push_back(i);
    r.value.push_back(e.value);
    r.ordinal.push_back(bumps);
  }
  return r;
}

}  // namespace

LintResult lint_recording(const Recording& recording, bool salvaged) {
  LintResult res;
  res.salvaged_prefix = salvaged;
  res.structure = validate_recording(recording);
  // The graph checks assume in-order logs and in-range source threads;
  // structural corruption already fails the lint, so stop here.
  if (!res.structure.ok()) return res;

  const std::size_t n = recording.threads.size();
  bool stamps_consistent = true;
  for (std::size_t t = 0; t < n; ++t) {
    const ThreadLog& log = recording.threads[t];
    const StampedBumps r = collect_bumps(log);
    // Release counters are bumped monotonically and each logged bump event
    // is itself a bump, so stamped values are strictly increasing, and the
    // k-th logged bump — counting every bump event, stamped or not — has a
    // post-bump counter of at least k. Both hold in mixed legacy/v2 logs:
    // unknown (zero) stamps skip the value checks but still count as bumps.
    for (std::size_t k = 0; k < r.value.size(); ++k) {
      if (k > 0 && r.value[k] <= r.value[k - 1]) {
        issue(res, t, r.index[k],
              "response counter stamp not strictly increasing");
        stamps_consistent = false;
      }
      if (r.value[k] < r.ordinal[k]) {
        issue(res, t, r.index[k],
              "response counter stamp below the response count (counter "
              "not monotone)");
        stamps_consistent = false;
      }
    }
    // For a fixed (sink, source) pair, edge values are reads of the
    // source's monotone counter taken at program-ordered moments, so they
    // are non-decreasing along the sink's log.
    std::vector<std::uint64_t> last_value(n, 0);
    for (std::size_t i = 0; i < log.events.size(); ++i) {
      const LogEvent& e = log.events[i];
      if (e.type != LogEventType::kEdge) continue;
      if (e.value < last_value[e.src]) {
        issue(res, t, i,
              "edge value decreases for the same source thread (source "
              "release counter not monotone)");
      }
      last_value[e.src] = e.value;
    }
  }
  // Inconsistent stamps would make the dependence graph meaningless; the
  // lint already failed above.
  if (!stamps_consistent) return res;

  // ---- Cross-thread dependence graph --------------------------------------
  // Shared with the offline happens-before engine (hb_engine/hb_order.hpp):
  // nodes are log events, program order chains each thread's log, and each
  // edge event requiring (S, v) gets an arc from the last stamped bump of S
  // <= v. Real-time order contains every arc, so a genuine recording's graph
  // is acyclic; a cycle proves the file was corrupted, spliced, or forged.
  const Trace trace = trace_from_recording(recording);
  const HbOrder hb = HbOrder::build(trace);
  res.graph_nodes = hb.node_count();
  res.graph_arcs = hb.cross_arc_count();
  if (!hb.acyclic()) {
    const NodeRef cyc = hb.first_cyclic().value_or(NodeRef{});
    std::ostringstream os;
    os << "cross-thread dependence graph has a cycle ("
       << hb.unsorted_count()
       << " event(s) unorderable; no topological order exists)";
    issue(res, cyc.thread, cyc.index, os.str());
  }
  return res;
}

std::string LintResult::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "lint OK: " << graph_nodes << " event(s), " << graph_arcs
       << " cross-thread arc(s), topological order exists";
  } else if (!structure.ok()) {
    os << "structure: " << structure.to_string();
  } else {
    os << issues.size() << " lint issue(s):";
    for (const LintIssue& i : issues)
      os << "\n  T" << i.thread << " event " << i.event << ": " << i.message;
  }
  if (salvaged_prefix)
    os << " [salvaged prefix: file was truncated or corrupted]";
  return os.str();
}

std::string FileLintResult::to_string() const {
  std::ostringstream os;
  os << load.to_string();
  if (load.recording.has_value()) os << "; " << lint.to_string();
  return os.str();
}

FileLintResult lint_recording_file(const std::string& path) {
  FileLintResult r;
  r.load = load_recording_ex(path);
  if (r.load.recording.has_value())
    r.lint = lint_recording(*r.load.recording, r.load.partial);
  return r;
}

}  // namespace ht::analysis
