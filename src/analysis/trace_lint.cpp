#include "analysis/trace_lint.hpp"

#include <algorithm>
#include <sstream>

#include "recorder/recording_io.hpp"

namespace ht::analysis {

namespace {

void issue(LintResult& res, std::size_t thread, std::size_t event,
           std::string message) {
  res.issues.push_back(
      {static_cast<ThreadId>(thread), event, std::move(message)});
}

// Stamped (nonzero-value) responses of one thread, in program order.
struct StampedResponses {
  std::vector<std::size_t> index;   // event index in the thread's log
  std::vector<std::uint64_t> value; // post-bump counter stamps
  bool fully_stamped = true;        // no zero-valued responses seen
};

StampedResponses collect_responses(const ThreadLog& log) {
  StampedResponses r;
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    const LogEvent& e = log.events[i];
    if (e.type != LogEventType::kResponse) continue;
    if (e.value == 0) {
      r.fully_stamped = false;  // pre-stamping recording (or legacy v1)
      continue;
    }
    r.index.push_back(i);
    r.value.push_back(e.value);
  }
  return r;
}

}  // namespace

LintResult lint_recording(const Recording& recording, bool salvaged) {
  LintResult res;
  res.salvaged_prefix = salvaged;
  res.structure = validate_recording(recording);
  // The graph checks assume in-order logs and in-range source threads;
  // structural corruption already fails the lint, so stop here.
  if (!res.structure.ok()) return res;

  const std::size_t n = recording.threads.size();
  std::vector<StampedResponses> responses(n);
  bool stamps_consistent = true;
  for (std::size_t t = 0; t < n; ++t) {
    const ThreadLog& log = recording.threads[t];
    responses[t] = collect_responses(log);
    const StampedResponses& r = responses[t];
    // Release counters are bumped monotonically and each logged response is
    // itself a bump, so stamps are strictly increasing and (when every
    // response carries a stamp) the k-th is at least k.
    for (std::size_t k = 0; k < r.value.size(); ++k) {
      if (k > 0 && r.value[k] <= r.value[k - 1]) {
        issue(res, t, r.index[k],
              "response counter stamp not strictly increasing");
        stamps_consistent = false;
      }
      if (r.fully_stamped && r.value[k] < k + 1) {
        issue(res, t, r.index[k],
              "response counter stamp below the response count (counter "
              "not monotone)");
        stamps_consistent = false;
      }
    }
    // For a fixed (sink, source) pair, edge values are reads of the
    // source's monotone counter taken at program-ordered moments, so they
    // are non-decreasing along the sink's log.
    std::vector<std::uint64_t> last_value(n, 0);
    for (std::size_t i = 0; i < log.events.size(); ++i) {
      const LogEvent& e = log.events[i];
      if (e.type != LogEventType::kEdge) continue;
      if (e.value < last_value[e.src]) {
        issue(res, t, i,
              "edge value decreases for the same source thread (source "
              "release counter not monotone)");
      }
      last_value[e.src] = e.value;
    }
  }
  // Inconsistent stamps would make the dependence graph meaningless; the
  // lint already failed above.
  if (!stamps_consistent) return res;

  // ---- Cross-thread dependence graph --------------------------------------
  // Nodes: every log event. Arcs: program order within each thread, plus,
  // for each edge event (t, i) requiring source s to reach counter v, an arc
  // from the LAST response of s stamped <= v (earlier ones follow through
  // s's program order). A response stamped w <= v happened in real time
  // before any access that waited for s's counter to reach v, so real-time
  // order contains every arc: a genuine recording's graph is acyclic, and
  // acyclicity (a successful Kahn sort) is exactly "every recorded wr->rd
  // edge is consistent with a topological order".
  std::vector<std::size_t> offset(n + 1, 0);
  for (std::size_t t = 0; t < n; ++t)
    offset[t + 1] = offset[t] + recording.threads[t].events.size();
  const std::size_t nodes = offset[n];
  res.graph_nodes = nodes;
  std::vector<std::vector<std::size_t>> succ(nodes);
  std::vector<std::size_t> indegree(nodes, 0);
  auto add_arc = [&](std::size_t u, std::size_t v) {
    succ[u].push_back(v);
    ++indegree[v];
  };
  for (std::size_t t = 0; t < n; ++t) {
    const ThreadLog& log = recording.threads[t];
    for (std::size_t i = 0; i + 1 < log.events.size(); ++i)
      add_arc(offset[t] + i, offset[t] + i + 1);
    for (std::size_t i = 0; i < log.events.size(); ++i) {
      const LogEvent& e = log.events[i];
      if (e.type != LogEventType::kEdge) continue;
      const StampedResponses& src = responses[e.src];
      // Last stamp <= e.value (stamps are strictly increasing here).
      auto it = std::upper_bound(src.value.begin(), src.value.end(), e.value);
      if (it == src.value.begin()) continue;  // satisfied by unlogged bumps
      const std::size_t j = src.index[(it - src.value.begin()) - 1];
      add_arc(offset[e.src] + j, offset[t] + i);
      ++res.graph_arcs;
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t u = 0; u < nodes; ++u)
    if (indegree[u] == 0) ready.push_back(u);
  std::size_t sorted = 0;
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    ++sorted;
    for (std::size_t v : succ[u])
      if (--indegree[v] == 0) ready.push_back(v);
  }
  if (sorted != nodes) {
    // Report the first event stuck in a cycle for diagnosability.
    for (std::size_t t = 0; t < n; ++t) {
      bool found = false;
      for (std::size_t i = 0; i < recording.threads[t].events.size(); ++i) {
        if (indegree[offset[t] + i] > 0) {
          std::ostringstream os;
          os << "cross-thread dependence graph has a cycle ("
             << (nodes - sorted)
             << " event(s) unorderable; no topological order exists)";
          issue(res, t, i, os.str());
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  return res;
}

std::string LintResult::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "lint OK: " << graph_nodes << " event(s), " << graph_arcs
       << " cross-thread arc(s), topological order exists";
  } else if (!structure.ok()) {
    os << "structure: " << structure.to_string();
  } else {
    os << issues.size() << " lint issue(s):";
    for (const LintIssue& i : issues)
      os << "\n  T" << i.thread << " event " << i.event << ": " << i.message;
  }
  if (salvaged_prefix)
    os << " [salvaged prefix: file was truncated or corrupted]";
  return os.str();
}

std::string FileLintResult::to_string() const {
  std::ostringstream os;
  os << load.to_string();
  if (load.recording.has_value()) os << "; " << lint.to_string();
  return os.str();
}

FileLintResult lint_recording_file(const std::string& path) {
  FileLintResult r;
  r.load = load_recording_ex(path);
  if (r.load.recording.has_value())
    r.lint = lint_recording(*r.load.recording, r.load.partial);
  return r;
}

}  // namespace ht::analysis
