// Recorded-trace lint (analysis layer, part 3): offline static checks over a
// dependence recording, beyond the structural well-formedness that
// validate_recording already enforces. Everything here must hold of ANY
// genuine recording regardless of the recorded program, because each check
// follows from two facts the recorder guarantees:
//
//   (1) a thread's release counter is bumped monotonically, and edge values
//       are reads of that counter taken at program-ordered moments — so for
//       a fixed (sink thread, source thread) pair, edge values are
//       non-decreasing in the sink's program order;
//   (2) bump events (kResponse and kRegionEnd) are stamped with the
//       post-bump counter, so a thread's stamped values are strictly
//       increasing, the k-th logged bump has a stamp of at least k, and a
//       bump of S stamped w happened in real time before any access that
//       waited for S's counter to reach v >= w. A zero stamp is the legacy
//       "unknown" sentinel (pre-stamping recordings): the event still
//       counts as a bump, but its value participates in no check.
//
// Fact (2) turns the recording into a cross-thread dependence graph — built
// by the shared offline happens-before core (hb_engine/hb_order.hpp): nodes
// are log events, program order chains each thread's log, and each edge
// event (T, i) requiring (S, v) gets an arc from the last bump of S
// stamped <= v. Real-time order contains every arc, so a genuine recording's
// graph is acyclic and its wr->rd edges are consistent with any topological
// order of it; a cycle proves the file was corrupted, spliced, or
// hand-forged. Recordings made before response stamping (all-zero values)
// degrade gracefully: no bumps participate and the graph checks pass
// vacuously.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "recorder/dependence_log.hpp"
#include "recorder/recording_validate.hpp"

namespace ht::analysis {

struct LintIssue {
  ThreadId thread;    // log the issue was found in
  std::size_t event;  // index into that log (0 for whole-recording issues)
  std::string message;
};

struct LintResult {
  // Structural validation result (validate_recording), run first: the graph
  // checks assume in-order logs and in-range sources.
  ValidationResult structure;
  std::vector<LintIssue> issues;   // lint findings beyond structure
  bool salvaged_prefix = false;    // input was a partial (salvaged) file
  std::size_t graph_nodes = 0;
  std::size_t graph_arcs = 0;      // cross-thread arcs (program order excluded)

  bool ok() const { return structure.ok() && issues.empty(); }
  std::string to_string() const;
};

// Lints an in-memory recording. `salvaged` marks the result as coming from a
// partial file (the checks still apply: every prefix of a genuine recording
// is genuine, but callers must surface the flag).
LintResult lint_recording(const Recording& recording, bool salvaged = false);

// Loads `path` via recording_io and lints whatever was recoverable. The
// load result is returned so callers can map failures to exit codes.
struct FileLintResult {
  RecordingLoadResult load;
  LintResult lint;  // meaningful only when load.recording exists

  bool ok() const { return load.complete() && lint.ok(); }
  std::string to_string() const;
};

FileLintResult lint_recording_file(const std::string& path);

}  // namespace ht::analysis
