#include "analysis/transition_checker.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ht::analysis {

namespace {

std::atomic<std::uint64_t> g_checks{0};
std::atomic<std::uint64_t> g_violations{0};
std::atomic<bool> g_abort{true};

TransitionKey key_of(const TransitionObs& obs) {
  TransitionKey k;
  k.from = obs.from.kind();
  k.access = obs.access;
  k.rel = obs.rel;
  k.sole_holder = obs.sole_holder;
  k.policy = obs.policy;
  k.mode = obs.mode;
  return k;
}

void report(const TransitionObs& obs, const Outcome& outcome,
            const char* what) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  const TransitionKey key = key_of(obs);
  std::ostringstream os;
  os << "=== transition-conformance violation ===\n"
     << "  tracker : " << tracker_family_name(obs.family) << "\n"
     << "  thread  : T" << obs.actor << "\n"
     << "  object  : " << obs.object << "\n"
     << "  key     : " << key.to_string() << "\n"
     << "  from    : " << obs.from.to_string() << "\n"
     << "  to      : " << obs.to.to_string() << "\n"
     << "  taken   : " << mechanism_name(obs.taken)
     << (obs.in_lock_buffer ? " [in lock buffer]" : "")
     << (obs.in_rd_set ? " [in rd set]" : "") << "\n"
     << "  model   : " << outcome.to_string() << "\n"
     << "  problem : " << what << "\n";
  const std::string text = os.str();
  std::fputs(text.c_str(), stderr);
  std::fflush(stderr);
  if (g_abort.load(std::memory_order_relaxed)) std::abort();
}

}  // namespace

void check_transition(const TransitionObs& obs) {
  g_checks.fetch_add(1, std::memory_order_relaxed);
  const Outcome o = transition_outcome(obs.family, key_of(obs));
  if (o.kind == OutcomeKind::kIllegal)
    return report(obs, o, "tracker took a transition the model calls illegal");
  if (o.kind == OutcomeKind::kContended)
    return report(obs, o,
                  "tracker installed a state where the model requires "
                  "coordinate-and-retry");
  if (obs.to.kind() != o.to)
    return report(obs, o, "successor state kind disagrees with the model");
  if (obs.taken != o.mechanism)
    return report(obs, o, "mechanism disagrees with the model");
  if (o.to_owned_by_actor && obs.to.has_owner() && obs.to.tid() != obs.actor)
    return report(obs, o, "successor owned by a different thread");
  switch (o.counter) {
    case CounterEffect::kNone:
      break;
    case CounterEffect::kKeep:
      if (obs.to.counter() != obs.from.counter())
        return report(obs, o, "RdSh epoch changed on a keep-counter row");
      break;
    case CounterEffect::kFresh:
      // Fresh epochs come off a monotone global counter that starts at 1.
      if (obs.to.counter() < 1)
        return report(obs, o, "fresh RdSh epoch is zero");
      if (obs.from.is_rd_sh() && obs.to.counter() <= obs.from.counter())
        return report(obs, o, "fresh RdSh epoch not newer than the old one");
      break;
  }
  switch (o.holders) {
    case HolderEffect::kNone:
      break;
    case HolderEffect::kOne:
      if (obs.to.rdlock_count() != 1)
        return report(obs, o, "holder count != 1 on a formation row");
      break;
    case HolderEffect::kTwo:
      if (obs.to.rdlock_count() != 2)
        return report(obs, o, "holder count != 2 on a join row");
      break;
    case HolderEffect::kIncrement:
      if (obs.to.rdlock_count() != obs.from.rdlock_count() + 1)
        return report(obs, o, "holder count did not increment");
      break;
    case HolderEffect::kDecrement:
      if (obs.to.rdlock_count() + 1 != obs.from.rdlock_count())
        return report(obs, o, "holder count did not decrement");
      break;
  }
  if ((o.enters_lock_buffer || o.requires_lock_buffer) && !obs.in_lock_buffer)
    return report(obs, o, "object missing from the actor's lock buffer");
  if ((o.enters_rd_set || o.requires_rd_set) && !obs.in_rd_set)
    return report(obs, o, "object missing from the actor's read set");
}

void check_contended(const TransitionObs& obs) {
  g_checks.fetch_add(1, std::memory_order_relaxed);
  const Outcome o = transition_outcome(obs.family, key_of(obs));
  if (o.kind != OutcomeKind::kContended)
    report(obs, o,
           "tracker is waiting where the model expects an uncontended "
           "transition");
}

std::uint64_t transition_checks() {
  return g_checks.load(std::memory_order_relaxed);
}

std::uint64_t transition_violations() {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_transition_counters() {
  g_checks.store(0, std::memory_order_relaxed);
  g_violations.store(0, std::memory_order_relaxed);
}

void set_abort_on_violation(bool abort_on_violation) {
  g_abort.store(abort_on_violation, std::memory_order_relaxed);
}

}  // namespace ht::analysis
