// Runtime shadow checker (analysis layer, part 2): validates every
// transition the trackers actually take against the conformance model.
//
// Built only under -DHT_CHECK_TRANSITIONS=ON (which defines
// HT_CHECK_TRANSITIONS_ENABLED); the HT_CHECK_TRANSITION /
// HT_CHECK_CONTENDED macros in tracking/tracker_common.hpp expand to
// nothing otherwise, so release builds pay zero cost — the observation
// structs are never even constructed.
//
// Call sites hand the checker what the model needs and what they already
// know: the state word they observed, the word they installed, the access
// kind, the actor's relation to the old state, the policy branch taken, and
// post-transition lock-buffer/read-set membership. The checker resolves the
// model's outcome for that key and cross-checks successor kind, mechanism,
// ownership, RdSh epoch/holder arithmetic, and deferred-unlock bookkeeping.
// A violation prints a full thread/object/state diagnostic and (by default)
// aborts, so a nonconforming tracker cannot pass the test suite quietly.
#pragma once

#include <cstdint>

#include "analysis/transition_model.hpp"
#include "metadata/state_word.hpp"

namespace ht::analysis {

struct TransitionObs {
  TrackerFamily family = TrackerFamily::kHybrid;
  ThreadId actor = kNoThread;
  const void* object = nullptr;
  StateWord from{};
  StateWord to{};  // ignored by check_contended
  AccessKind access = AccessKind::kRead;
  ActorRel rel = ActorRel::kOwner;
  bool sole_holder = false;
  PolicyChoice policy = PolicyChoice::kOpt;
  WrExReadMode mode = WrExReadMode::kFull;
  Mechanism taken = Mechanism::kFastPath;
  bool in_lock_buffer = false;  // membership AFTER the transition's bookkeeping
  bool in_rd_set = false;
};

// Validates a committed transition; prints diagnostics and aborts (or just
// counts, see set_abort_on_violation) if the model disagrees.
void check_transition(const TransitionObs& obs);

// Validates that the model classifies this key as contended (the caller is
// about to coordinate-and-retry rather than install a state).
void check_contended(const TransitionObs& obs);

// Total checks performed / violations observed, for tests and reporting.
std::uint64_t transition_checks();
std::uint64_t transition_violations();
void reset_transition_counters();

// Tests exercise the reporter by disabling the abort; default is true.
void set_abort_on_violation(bool abort_on_violation);

// Membership helpers call sites inline into HT_CHECK_TRANSITION arguments,
// so the (linear) lock-buffer scan happens only in checking builds.
// Templated to keep this header free of runtime/thread-context includes.
template <typename Ctx, typename Obj>
bool lb_member(const Ctx& ctx, const Obj* m) {
  for (const auto* p : ctx.lock_buffer)
    if (p == m) return true;
  return false;
}

template <typename Ctx, typename Obj>
bool rs_member(const Ctx& ctx, const Obj* m) {
  return ctx.rd_set.contains(m);
}

}  // namespace ht::analysis
