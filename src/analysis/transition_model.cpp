#include "analysis/transition_model.hpp"

#include <sstream>

namespace ht::analysis {

const char* tracker_family_name(TrackerFamily f) {
  switch (f) {
    case TrackerFamily::kHybrid: return "hybrid";
    case TrackerFamily::kOptimistic: return "optimistic";
    case TrackerFamily::kIdeal: return "ideal";
    case TrackerFamily::kPessAlone: return "pessimistic";
  }
  return "?";
}

const char* access_kind_name(AccessKind a) {
  switch (a) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kUnlock: return "unlock";
  }
  return "?";
}

const char* mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kFastPath: return "fast-path";
    case Mechanism::kFence: return "fence";
    case Mechanism::kCas: return "cas";
    case Mechanism::kStore: return "store";
    case Mechanism::kCoordination: return "coordination";
    case Mechanism::kWait: return "wait";
  }
  return "?";
}

std::string Outcome::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case OutcomeKind::kIllegal:
      os << "illegal";
      break;
    case OutcomeKind::kContended:
      os << "contended";
      break;
    case OutcomeKind::kTransition:
      os << "-> " << state_kind_name(to) << " via " << mechanism_name(mechanism);
      if (to_owned_by_actor) os << " [actor-owned]";
      if (counter == CounterEffect::kKeep) os << " [keep-counter]";
      if (counter == CounterEffect::kFresh) os << " [fresh-counter]";
      switch (holders) {
        case HolderEffect::kNone: break;
        case HolderEffect::kOne: os << " [holders=1]"; break;
        case HolderEffect::kTwo: os << " [holders=2]"; break;
        case HolderEffect::kIncrement: os << " [holders+1]"; break;
        case HolderEffect::kDecrement: os << " [holders-1]"; break;
      }
      if (enters_lock_buffer) os << " [+lock-buffer]";
      if (enters_rd_set) os << " [+rd-set]";
      if (requires_lock_buffer) os << " [needs-lock-buffer]";
      if (requires_rd_set) os << " [needs-rd-set]";
      if (begins_coordination) os << " [via Int]";
      break;
  }
  if (note[0] != '\0') os << " (" << note << ")";
  return os.str();
}

std::string TransitionKey::to_string() const {
  std::ostringstream os;
  os << state_kind_name(from) << " / " << access_kind_name(access) << " by "
     << (rel == ActorRel::kOwner ? "owner" : "other");
  if (from == StateKind::kRdShRLock) os << (sole_holder ? " (sole)" : " (n>1)");
  os << " / policy=" << (policy == PolicyChoice::kOpt ? "opt" : "pess");
  switch (mode) {
    case WrExReadMode::kFull: break;
    case WrExReadMode::kOmitWrExRLock: os << " / mode=omit-wrexrlock"; break;
    case WrExReadMode::kUnsoundDowngrade: os << " / mode=unsound-downgrade"; break;
  }
  return os.str();
}

bool TransitionRule::matches(const TransitionKey& k) const {
  if (from != k.from || access != k.access) return false;
  if (rel >= 0 && static_cast<ActorRel>(rel) != k.rel) return false;
  if (sole >= 0 && (sole != 0) != k.sole_holder) return false;
  if (policy >= 0 && static_cast<PolicyChoice>(policy) != k.policy) return false;
  if (mode >= 0 && static_cast<WrExReadMode>(mode) != k.mode) return false;
  return true;
}

namespace {

using SK = StateKind;
using AK = AccessKind;
using MK = Mechanism;
using CE = CounterEffect;
using HE = HolderEffect;

constexpr std::int8_t kAny = -1;
constexpr std::int8_t kOwner = static_cast<std::int8_t>(ActorRel::kOwner);
constexpr std::int8_t kOther = static_cast<std::int8_t>(ActorRel::kOther);
constexpr std::int8_t kOpt = static_cast<std::int8_t>(PolicyChoice::kOpt);
constexpr std::int8_t kPess = static_cast<std::int8_t>(PolicyChoice::kPess);
constexpr std::int8_t kModeFull =
    static_cast<std::int8_t>(WrExReadMode::kFull);
constexpr std::int8_t kModeOmit =
    static_cast<std::int8_t>(WrExReadMode::kOmitWrExRLock);
constexpr std::int8_t kModeUnsound =
    static_cast<std::int8_t>(WrExReadMode::kUnsoundDowngrade);

// Shorthand constructors so the tables below read like the paper's tables.
Outcome same(SK to, MK mech, bool owned, CE counter = CE::kNone,
             const char* note = "") {
  Outcome o;
  o.kind = OutcomeKind::kTransition;
  o.to = to;
  o.mechanism = mech;
  o.to_owned_by_actor = owned;
  o.counter = counter;
  o.note = note;
  return o;
}

Outcome contended(const char* note = "") {
  Outcome o;
  o.kind = OutcomeKind::kContended;
  o.mechanism = Mechanism::kWait;
  o.note = note;
  return o;
}

struct Fx {
  CE counter = CE::kNone;
  HE holders = HE::kNone;
  bool lb = false;        // enters lock buffer
  bool rs = false;        // enters read set
  bool needs_lb = false;  // already in lock buffer
  bool needs_rs = false;  // already in read set
  bool via_int = false;   // routed through the Int state + coordination
};

Outcome go(SK to, MK mech, bool owned, Fx fx, const char* note = "") {
  Outcome o;
  o.kind = OutcomeKind::kTransition;
  o.to = to;
  o.mechanism = mech;
  o.to_owned_by_actor = owned;
  o.counter = fx.counter;
  o.holders = fx.holders;
  o.enters_lock_buffer = fx.lb;
  o.enters_rd_set = fx.rs;
  o.requires_lock_buffer = fx.needs_lb;
  o.requires_rd_set = fx.needs_rs;
  o.begins_coordination = fx.via_int;
  o.note = note;
  return o;
}

std::vector<TransitionRule> build_hybrid() {
  std::vector<TransitionRule> r;
  // ---- WrExOpt_T (Table 1 rows + Table 3 conflict landing) -----------------
  r.push_back({SK::kWrExOpt, AK::kWrite, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kFastPath, true)});
  r.push_back({SK::kWrExOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kFastPath, true)});
  r.push_back({SK::kWrExOpt, AK::kWrite, kOther, kAny, kOpt, kAny,
               go(SK::kWrExOpt, MK::kCoordination, true, {.via_int = true},
                  "conflicting write, stay optimistic")});
  r.push_back({SK::kWrExOpt, AK::kWrite, kOther, kAny, kPess, kAny,
               go(SK::kWrExWLock, MK::kCoordination, true,
                  {.lb = true, .via_int = true},
                  "conflicting write, go pessimistic")});
  r.push_back({SK::kWrExOpt, AK::kRead, kOther, kAny, kOpt, kAny,
               go(SK::kRdExOpt, MK::kCoordination, true, {.via_int = true},
                  "conflicting read, stay optimistic")});
  r.push_back({SK::kWrExOpt, AK::kRead, kOther, kAny, kPess, kAny,
               go(SK::kRdExRLock, MK::kCoordination, true,
                  {.lb = true, .rs = true, .via_int = true},
                  "conflicting read, go pessimistic")});

  // ---- RdExOpt_T -----------------------------------------------------------
  r.push_back({SK::kRdExOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kRdExOpt, MK::kFastPath, true)});
  r.push_back({SK::kRdExOpt, AK::kWrite, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kCas, true, CE::kNone, "upgrading")});
  r.push_back({SK::kRdExOpt, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShOpt, MK::kCas, false, {.counter = CE::kFresh},
                  "upgrading: second reader shares")});
  r.push_back({SK::kRdExOpt, AK::kWrite, kOther, kAny, kOpt, kAny,
               go(SK::kWrExOpt, MK::kCoordination, true, {.via_int = true})});
  r.push_back({SK::kRdExOpt, AK::kWrite, kOther, kAny, kPess, kAny,
               go(SK::kWrExWLock, MK::kCoordination, true,
                  {.lb = true, .via_int = true})});

  // ---- RdShOpt_c (rel kOwner = rdShCount up to date, kOther = stale) -------
  r.push_back({SK::kRdShOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kRdShOpt, MK::kFastPath, false, CE::kKeep)});
  r.push_back({SK::kRdShOpt, AK::kRead, kOther, kAny, kAny, kAny,
               same(SK::kRdShOpt, MK::kFence, false, CE::kKeep,
                    "fence transition: first read of this epoch")});
  r.push_back({SK::kRdShOpt, AK::kWrite, kAny, kAny, kOpt, kAny,
               go(SK::kWrExOpt, MK::kCoordination, true, {.via_int = true},
                  "coordinate with all others (footnote 4)")});
  r.push_back({SK::kRdShOpt, AK::kWrite, kAny, kAny, kPess, kAny,
               go(SK::kWrExWLock, MK::kCoordination, true,
                  {.lb = true, .via_int = true})});

  // ---- Int_T: only the installer advances it; everyone else waits ----------
  r.push_back({SK::kInt, AK::kRead, kAny, kAny, kAny, kAny,
               contended("respond while waiting, Fig 1 line 18")});
  r.push_back({SK::kInt, AK::kWrite, kAny, kAny, kAny, kAny,
               contended("respond while waiting, Fig 1 line 18")});

  // ---- WrExPess_T (unlocked; uncontended CAS acquires, Table 3) ------------
  r.push_back({SK::kWrExPess, AK::kWrite, kAny, kAny, kAny, kAny,
               go(SK::kWrExWLock, MK::kCas, true, {.lb = true})});
  r.push_back({SK::kWrExPess, AK::kRead, kOwner, kAny, kAny, kModeFull,
               go(SK::kWrExRLock, MK::kCas, true, {.lb = true, .rs = true},
                  "full model read-locks the owner's WrEx (s7.1)")});
  r.push_back({SK::kWrExPess, AK::kRead, kOwner, kAny, kAny, kModeOmit,
               go(SK::kWrExWLock, MK::kCas, true, {.lb = true},
                  "32-bit prototype write-locks instead")});
  r.push_back({SK::kWrExPess, AK::kRead, kOwner, kAny, kAny, kModeUnsound,
               go(SK::kRdExRLock, MK::kCas, true, {.lb = true, .rs = true},
                  "unsound alternate downgrades to RdEx")});
  r.push_back({SK::kWrExPess, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdExRLock, MK::kCas, true, {.lb = true, .rs = true})});

  // ---- RdExPess_T ----------------------------------------------------------
  r.push_back({SK::kRdExPess, AK::kWrite, kAny, kAny, kAny, kAny,
               go(SK::kWrExWLock, MK::kCas, true, {.lb = true})});
  r.push_back({SK::kRdExPess, AK::kRead, kOwner, kAny, kAny, kAny,
               go(SK::kRdExRLock, MK::kCas, true, {.lb = true, .rs = true})});
  r.push_back({SK::kRdExPess, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShRLock, MK::kCas, false,
                  {.counter = CE::kFresh, .holders = HE::kOne, .lb = true,
                   .rs = true},
                  "second reader: fresh shared epoch, one lock holder")});

  // ---- RdShPess_c (no owner/member distinction in the state word) ----------
  r.push_back({SK::kRdShPess, AK::kWrite, kAny, kAny, kAny, kAny,
               go(SK::kWrExWLock, MK::kCas, true, {.lb = true})});
  r.push_back({SK::kRdShPess, AK::kRead, kAny, kAny, kAny, kAny,
               go(SK::kRdShRLock, MK::kCas, false,
                  {.counter = CE::kKeep, .holders = HE::kOne, .lb = true,
                   .rs = true})});

  // ---- WrExWLock_T (exclusive write lock) ----------------------------------
  r.push_back({SK::kWrExWLock, AK::kWrite, kOwner, kAny, kAny, kAny,
               go(SK::kWrExWLock, MK::kFastPath, true, {.needs_lb = true},
                  "reentrant")});
  r.push_back({SK::kWrExWLock, AK::kRead, kOwner, kAny, kAny, kAny,
               go(SK::kWrExWLock, MK::kFastPath, true, {.needs_lb = true},
                  "reentrant")});
  r.push_back({SK::kWrExWLock, AK::kWrite, kOther, kAny, kAny, kAny,
               contended()});
  r.push_back({SK::kWrExWLock, AK::kRead, kOther, kAny, kAny, kAny,
               contended()});
  r.push_back({SK::kWrExWLock, AK::kUnlock, kOwner, kAny, kOpt, kAny,
               go(SK::kWrExOpt, MK::kStore, true, {.needs_lb = true},
                  "flush; policy sends the object optimistic")});
  r.push_back({SK::kWrExWLock, AK::kUnlock, kOwner, kAny, kPess, kAny,
               go(SK::kWrExPess, MK::kStore, true, {.needs_lb = true})});

  // ---- WrExRLock_T (owner read-locked its own WrEx state) ------------------
  r.push_back({SK::kWrExRLock, AK::kRead, kOwner, kAny, kAny, kAny,
               go(SK::kWrExRLock, MK::kFastPath, true,
                  {.needs_lb = true, .needs_rs = true}, "reentrant")});
  r.push_back({SK::kWrExRLock, AK::kWrite, kOwner, kAny, kAny, kAny,
               go(SK::kWrExWLock, MK::kCas, true,
                  {.needs_lb = true, .needs_rs = true},
                  "upgrade own read lock; already buffered")});
  r.push_back({SK::kWrExRLock, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShRLock, MK::kCas, false,
                  {.counter = CE::kFresh, .holders = HE::kTwo, .lb = true,
                   .rs = true},
                  "join: prior holder's flush will decrement")});
  r.push_back({SK::kWrExRLock, AK::kWrite, kOther, kAny, kAny, kAny,
               contended()});
  r.push_back({SK::kWrExRLock, AK::kUnlock, kOwner, kAny, kOpt, kAny,
               go(SK::kWrExOpt, MK::kCas, true,
                  {.needs_lb = true, .needs_rs = true},
                  "cas: a reader may join concurrently")});
  r.push_back({SK::kWrExRLock, AK::kUnlock, kOwner, kAny, kPess, kAny,
               go(SK::kWrExPess, MK::kCas, true,
                  {.needs_lb = true, .needs_rs = true})});

  // ---- RdExRLock_T ---------------------------------------------------------
  r.push_back({SK::kRdExRLock, AK::kRead, kOwner, kAny, kAny, kAny,
               go(SK::kRdExRLock, MK::kFastPath, true,
                  {.needs_lb = true, .needs_rs = true}, "reentrant")});
  r.push_back({SK::kRdExRLock, AK::kWrite, kOwner, kAny, kAny, kAny,
               go(SK::kWrExWLock, MK::kCas, true,
                  {.needs_lb = true, .needs_rs = true},
                  "upgrade own read lock; already buffered")});
  r.push_back({SK::kRdExRLock, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShRLock, MK::kCas, false,
                  {.counter = CE::kFresh, .holders = HE::kTwo, .lb = true,
                   .rs = true})});
  r.push_back({SK::kRdExRLock, AK::kWrite, kOther, kAny, kAny, kAny,
               contended()});
  r.push_back({SK::kRdExRLock, AK::kUnlock, kOwner, kAny, kOpt, kAny,
               go(SK::kRdExOpt, MK::kCas, true,
                  {.needs_lb = true, .needs_rs = true})});
  r.push_back({SK::kRdExRLock, AK::kUnlock, kOwner, kAny, kPess, kAny,
               go(SK::kRdExPess, MK::kCas, true,
                  {.needs_lb = true, .needs_rs = true})});

  // ---- RdShRLock(c, n) (rel kOwner = read-set member) ----------------------
  r.push_back({SK::kRdShRLock, AK::kRead, kOwner, kAny, kAny, kAny,
               go(SK::kRdShRLock, MK::kFastPath, false,
                  {.counter = CE::kKeep, .needs_lb = true, .needs_rs = true},
                  "reentrant")});
  r.push_back({SK::kRdShRLock, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShRLock, MK::kCas, false,
                  {.counter = CE::kKeep, .holders = HE::kIncrement,
                   .lb = true, .rs = true},
                  "join an existing read share")});
  r.push_back({SK::kRdShRLock, AK::kWrite, kOwner, 1, kAny, kAny,
               go(SK::kWrExWLock, MK::kCas, true,
                  {.needs_lb = true, .needs_rs = true},
                  "sole holder upgrades in place")});
  r.push_back({SK::kRdShRLock, AK::kWrite, kOwner, 0, kAny, kAny,
               contended("other holders must flush first")});
  r.push_back({SK::kRdShRLock, AK::kWrite, kOther, kAny, kAny, kAny,
               contended("holders unknown: coordinate with all others")});
  r.push_back({SK::kRdShRLock, AK::kUnlock, kOwner, 1, kOpt, kAny,
               go(SK::kRdShOpt, MK::kCas, false,
                  {.counter = CE::kKeep, .needs_lb = true, .needs_rs = true},
                  "last holder out; keep the epoch")});
  r.push_back({SK::kRdShRLock, AK::kUnlock, kOwner, 1, kPess, kAny,
               go(SK::kRdShPess, MK::kCas, false,
                  {.counter = CE::kKeep, .needs_lb = true, .needs_rs = true})});
  r.push_back({SK::kRdShRLock, AK::kUnlock, kOwner, 0, kAny, kAny,
               go(SK::kRdShRLock, MK::kCas, false,
                  {.counter = CE::kKeep, .holders = HE::kDecrement,
                   .needs_lb = true, .needs_rs = true})});
  return r;
}

std::vector<TransitionRule> build_optimistic() {
  std::vector<TransitionRule> r;
  r.push_back({SK::kWrExOpt, AK::kWrite, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kFastPath, true)});
  r.push_back({SK::kWrExOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kFastPath, true)});
  r.push_back({SK::kWrExOpt, AK::kWrite, kOther, kAny, kAny, kAny,
               go(SK::kWrExOpt, MK::kCoordination, true, {.via_int = true},
                  "conflicting")});
  r.push_back({SK::kWrExOpt, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdExOpt, MK::kCoordination, true, {.via_int = true},
                  "conflicting")});
  r.push_back({SK::kRdExOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kRdExOpt, MK::kFastPath, true)});
  r.push_back({SK::kRdExOpt, AK::kWrite, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kCas, true, CE::kNone, "upgrading")});
  r.push_back({SK::kRdExOpt, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShOpt, MK::kCas, false, {.counter = CE::kFresh},
                  "upgrading")});
  r.push_back({SK::kRdExOpt, AK::kWrite, kOther, kAny, kAny, kAny,
               go(SK::kWrExOpt, MK::kCoordination, true, {.via_int = true},
                  "conflicting")});
  r.push_back({SK::kRdShOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kRdShOpt, MK::kFastPath, false, CE::kKeep)});
  r.push_back({SK::kRdShOpt, AK::kRead, kOther, kAny, kAny, kAny,
               same(SK::kRdShOpt, MK::kFence, false, CE::kKeep,
                    "fence transition")});
  r.push_back({SK::kRdShOpt, AK::kWrite, kAny, kAny, kAny, kAny,
               go(SK::kWrExOpt, MK::kCoordination, true, {.via_int = true},
                  "conflicting; coordinate with all others")});
  r.push_back({SK::kInt, AK::kRead, kAny, kAny, kAny, kAny, contended()});
  r.push_back({SK::kInt, AK::kWrite, kAny, kAny, kAny, kAny, contended()});
  return r;
}

std::vector<TransitionRule> build_ideal() {
  std::vector<TransitionRule> r;
  r.push_back({SK::kWrExOpt, AK::kWrite, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kFastPath, true)});
  r.push_back({SK::kWrExOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kFastPath, true)});
  r.push_back({SK::kWrExOpt, AK::kWrite, kOther, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kCas, true, CE::kNone,
                    "conflicting with coordination elided (unsound)")});
  r.push_back({SK::kWrExOpt, AK::kRead, kOther, kAny, kAny, kAny,
               same(SK::kRdExOpt, MK::kCas, true, CE::kNone,
                    "conflicting with coordination elided (unsound)")});
  r.push_back({SK::kRdExOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kRdExOpt, MK::kFastPath, true)});
  r.push_back({SK::kRdExOpt, AK::kWrite, kOwner, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kCas, true, CE::kNone, "upgrading")});
  r.push_back({SK::kRdExOpt, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShOpt, MK::kCas, false, {.counter = CE::kFresh},
                  "upgrading")});
  r.push_back({SK::kRdExOpt, AK::kWrite, kOther, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kCas, true, CE::kNone,
                    "conflicting with coordination elided (unsound)")});
  r.push_back({SK::kRdShOpt, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kRdShOpt, MK::kFastPath, false, CE::kKeep)});
  r.push_back({SK::kRdShOpt, AK::kRead, kOther, kAny, kAny, kAny,
               same(SK::kRdShOpt, MK::kFence, false, CE::kKeep,
                    "fence transition")});
  r.push_back({SK::kRdShOpt, AK::kWrite, kAny, kAny, kAny, kAny,
               same(SK::kWrExOpt, MK::kCas, true, CE::kNone,
                    "conflicting with coordination elided (unsound)")});
  return r;
}

// The standalone pessimistic tracker's logical relation (Table 1 over the
// *Pess states). Every access runs inside the LOCKED-sentinel critical
// section, so every row's mechanism is the CAS acquiring that sentinel; the
// sentinel itself is not a state of the relation.
std::vector<TransitionRule> build_pess_alone() {
  std::vector<TransitionRule> r;
  r.push_back({SK::kWrExPess, AK::kWrite, kAny, kAny, kAny, kAny,
               same(SK::kWrExPess, MK::kCas, true)});
  r.push_back({SK::kWrExPess, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kWrExPess, MK::kCas, true)});
  r.push_back({SK::kWrExPess, AK::kRead, kOther, kAny, kAny, kAny,
               same(SK::kRdExPess, MK::kCas, true)});
  r.push_back({SK::kRdExPess, AK::kWrite, kAny, kAny, kAny, kAny,
               same(SK::kWrExPess, MK::kCas, true)});
  r.push_back({SK::kRdExPess, AK::kRead, kOwner, kAny, kAny, kAny,
               same(SK::kRdExPess, MK::kCas, true)});
  r.push_back({SK::kRdExPess, AK::kRead, kOther, kAny, kAny, kAny,
               go(SK::kRdShPess, MK::kCas, false, {.counter = CE::kFresh})});
  r.push_back({SK::kRdShPess, AK::kWrite, kAny, kAny, kAny, kAny,
               same(SK::kWrExPess, MK::kCas, true)});
  r.push_back({SK::kRdShPess, AK::kRead, kAny, kAny, kAny, kAny,
               same(SK::kRdShPess, MK::kCas, false, CE::kKeep)});
  return r;
}

}  // namespace

const std::vector<TransitionRule>& transition_rules(TrackerFamily family) {
  static const std::vector<TransitionRule> hybrid = build_hybrid();
  static const std::vector<TransitionRule> optimistic = build_optimistic();
  static const std::vector<TransitionRule> ideal = build_ideal();
  static const std::vector<TransitionRule> pess = build_pess_alone();
  switch (family) {
    case TrackerFamily::kHybrid: return hybrid;
    case TrackerFamily::kOptimistic: return optimistic;
    case TrackerFamily::kIdeal: return ideal;
    case TrackerFamily::kPessAlone: return pess;
  }
  return hybrid;
}

Outcome transition_outcome(TrackerFamily family, const TransitionKey& key) {
  for (const TransitionRule& rule : transition_rules(family)) {
    if (rule.matches(key)) return rule.outcome;
  }
  return Outcome{};  // kIllegal
}

const std::vector<StateKind>& family_states(TrackerFamily family) {
  static const std::vector<StateKind> hybrid = {
      SK::kWrExOpt,   SK::kRdExOpt,   SK::kRdShOpt,   SK::kInt,
      SK::kWrExPess,  SK::kRdExPess,  SK::kRdShPess,  SK::kWrExWLock,
      SK::kWrExRLock, SK::kRdExRLock, SK::kRdShRLock,
  };
  static const std::vector<StateKind> optimistic = {
      SK::kWrExOpt, SK::kRdExOpt, SK::kRdShOpt, SK::kInt};
  static const std::vector<StateKind> ideal = {
      SK::kWrExOpt, SK::kRdExOpt, SK::kRdShOpt};
  static const std::vector<StateKind> pess = {
      SK::kWrExPess, SK::kRdExPess, SK::kRdShPess};
  switch (family) {
    case TrackerFamily::kHybrid: return hybrid;
    case TrackerFamily::kOptimistic: return optimistic;
    case TrackerFamily::kIdeal: return ideal;
    case TrackerFamily::kPessAlone: return pess;
  }
  return hybrid;
}

StateKind family_initial_state(TrackerFamily family) {
  return family == TrackerFamily::kPessAlone ? SK::kWrExPess : SK::kWrExOpt;
}

std::vector<TransitionKey> enumerate_keys(TrackerFamily family) {
  const bool modes = family == TrackerFamily::kHybrid;
  std::vector<TransitionKey> keys;
  for (StateKind from : family_states(family)) {
    for (AccessKind access :
         {AccessKind::kRead, AccessKind::kWrite, AccessKind::kUnlock}) {
      for (ActorRel rel : {ActorRel::kOwner, ActorRel::kOther}) {
        const int sole_max = from == SK::kRdShRLock ? 2 : 1;
        for (int sole = 0; sole < sole_max; ++sole) {
          for (PolicyChoice policy : {PolicyChoice::kOpt, PolicyChoice::kPess}) {
            for (int mode = 0; mode < (modes ? kWrExReadModeCount : 1);
                 ++mode) {
              TransitionKey k;
              k.from = from;
              k.access = access;
              k.rel = rel;
              k.sole_holder = sole != 0;
              k.policy = policy;
              k.mode = static_cast<WrExReadMode>(mode);
              keys.push_back(k);
            }
          }
        }
      }
    }
  }
  return keys;
}

}  // namespace ht::analysis
