// The legal-transition relation of the paper's tracking models (Table 1,
// Table 3, Fig 10), encoded ONCE as pure data.
//
// Until this layer existed, the relation lived implicitly in the tracker
// switch statements and was re-derived by hand in tests; nothing checked
// that what the trackers *do* matches what the paper *allows*. This header
// makes the relation a first-class artifact with three consumers:
//
//   * the offline exhaustive model check (analysis/model_check.hpp), which
//     enumerates the full key space and verifies closure, determinism, and
//     the deferred-unlocking invariants of §3;
//   * the runtime shadow checker (analysis/transition_checker.hpp, built
//     under HT_CHECK_TRANSITIONS), which validates every transition the
//     trackers actually take;
//   * tests/test_table3_matrix.cpp, which drives its expectations from this
//     table instead of a duplicated hand-written one.
//
// A transition is keyed by (current state kind, access kind, actor relation
// to the state, sole-holder bit, adaptive-policy choice, WrExRLock mode) and
// resolves to exactly one outcome: a successor state with a required
// mechanism and metadata effects, a contended wait (coordination, then
// retry), or "illegal" (no execution of that tracker family can observe the
// key).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metadata/state_word.hpp"
#include "tracking/tracking_modes.hpp"

namespace ht::analysis {

// Which tracker's relation is being queried. The hybrid relation is Table 3;
// optimistic is Table 1 / Fig 1 (plus the Int mechanics); ideal is the Fig 7
// unsound variant (conflicting transitions become bare CASes); pess-alone is
// the standalone §2.1 tracker's logical relation over unlocked states (the
// LOCKED-sentinel critical section is a mechanism, not a state of the model).
enum class TrackerFamily : std::uint8_t {
  kHybrid,
  kOptimistic,
  kIdeal,
  kPessAlone,
};

const char* tracker_family_name(TrackerFamily f);

enum class AccessKind : std::uint8_t {
  kRead,
  kWrite,
  kUnlock,  // deferred-unlocking flush of one lock-buffer entry (§3.1)
};

const char* access_kind_name(AccessKind a);

// Actor's relation to the current state. For owner-bearing states this is
// tid equality; for RdSh states "owner" means membership — an up-to-date
// rdShCount for RdShOpt, read-set membership for RdShRLock. RdShPess names
// neither an owner nor members, so its rows accept either relation.
enum class ActorRel : std::uint8_t { kOwner, kOther };

// What the adaptive policy (§6) would choose at the decision points that
// consult it: the landing state after optimistic coordination
// (to_pess_on_conflict) and the unlock target at a flush (should_go_opt).
// Rows not gated on the policy accept either value.
enum class PolicyChoice : std::uint8_t { kOpt, kPess };

// The synchronization mechanism Table 1 / Table 3 require for the row.
enum class Mechanism : std::uint8_t {
  kFastPath,      // no synchronization at all (same-state / reentrant)
  kFence,         // memory fence + rdShCount update (RdSh fence transition)
  kCas,           // one atomic on the state word
  kStore,         // plain store under exclusive rights (WLock unlock)
  kCoordination,  // Int + implicit/explicit round trip(s), then install
  kWait,          // spin at a safe point until the state changes (contended)
};

const char* mechanism_name(Mechanism m);

// Effect on the RdSh global-epoch counter carried by the successor state.
enum class CounterEffect : std::uint8_t {
  kNone,   // successor is not a RdSh state
  kKeep,   // successor keeps the current state's epoch
  kFresh,  // successor draws a fresh epoch from the global counter
};

// Effect on the RdShRLock holder count.
enum class HolderEffect : std::uint8_t {
  kNone,       // successor is not RdShRLock (or count unchanged)
  kOne,        // formation with a single holder
  kTwo,        // join of an exclusive read lock: two holders
  kIncrement,  // join of an existing RdShRLock: n+1
  kDecrement,  // unlock with other holders remaining: n-1
};

enum class OutcomeKind : std::uint8_t {
  kIllegal,     // no sound execution observes this key
  kTransition,  // install the successor state via `mechanism`
  kContended,   // coordinate with the holder(s) and retry; no direct install
};

struct Outcome {
  OutcomeKind kind = OutcomeKind::kIllegal;
  StateKind to{};                  // kTransition only
  Mechanism mechanism = Mechanism::kFastPath;
  bool to_owned_by_actor = false;  // successor carries the actor's tid
  CounterEffect counter = CounterEffect::kNone;
  HolderEffect holders = HolderEffect::kNone;
  // Deferred-unlocking bookkeeping (§3.1): what the actor's lock buffer /
  // read set must contain after (enters_*) or already before (requires_*)
  // the transition.
  bool enters_lock_buffer = false;
  bool enters_rd_set = false;
  bool requires_lock_buffer = false;
  bool requires_rd_set = false;
  // True iff the successor is the intermediate state (the actor now owns
  // the coordination protocol for this object, Fig 1 line 8).
  bool begins_coordination = false;
  const char* note = "";

  std::string to_string() const;
};

struct TransitionKey {
  StateKind from{};
  AccessKind access{};
  ActorRel rel = ActorRel::kOwner;
  bool sole_holder = false;  // RdShRLock only: rdlock_count() == 1
  PolicyChoice policy = PolicyChoice::kOpt;
  WrExReadMode mode = WrExReadMode::kFull;

  std::string to_string() const;
};

// One row of the relation: a key pattern (wildcards allowed) plus the
// outcome. Rows are pure data; nothing here executes a transition.
struct TransitionRule {
  StateKind from;
  AccessKind access;
  std::int8_t rel;     // -1 any, else ActorRel
  std::int8_t sole;    // -1 any, else 0/1 (RdShRLock holder count == 1)
  std::int8_t policy;  // -1 any, else PolicyChoice
  std::int8_t mode;    // -1 any, else WrExReadMode
  Outcome outcome;

  bool matches(const TransitionKey& k) const;
};

// The complete rule table for a family. Built once, immutable thereafter.
const std::vector<TransitionRule>& transition_rules(TrackerFamily family);

// Resolves a concrete key against the table. Zero matching rows means
// kIllegal; more than one matching row is a model bug that the offline
// model check reports (lookup returns the first match).
Outcome transition_outcome(TrackerFamily family, const TransitionKey& key);

// The state universe a family's relation is defined over (used by the
// exhaustive enumeration and the closure check).
const std::vector<StateKind>& family_states(TrackerFamily family);

// Initial state kind of a freshly allocated object under the family (§6.2).
StateKind family_initial_state(TrackerFamily family);

// Every concrete key over the family's universe: states × {read, write,
// unlock} × relations × sole-holder (RdShRLock only) × policy × mode
// (hybrid only). This is the domain the offline model check enumerates.
std::vector<TransitionKey> enumerate_keys(TrackerFamily family);

}  // namespace ht::analysis
