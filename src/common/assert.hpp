// Invariant-checking macros.
//
// HT_ASSERT is always on: metadata-state invariants in the trackers are cheap
// relative to the operations they guard (slow paths), and a silently corrupt
// state word is far worse than the cost of the check. HT_DASSERT guards
// hot-path checks and compiles away in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ht {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "HT_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace ht

#define HT_ASSERT(expr, msg)                                 \
  do {                                                       \
    if (!(expr)) ::ht::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define HT_DASSERT(expr, msg) HT_ASSERT(expr, msg)
#else
#define HT_DASSERT(expr, msg) \
  do {                        \
  } while (0)
#endif
