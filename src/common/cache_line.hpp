// Cache-line geometry and padding helpers.
//
// Per-thread coordination metadata (status words, response flags, release
// counters) is padded to a cache line so that one thread's spinning never
// invalidates another thread's hot line (C++ Core Guidelines CP.free: avoid
// false sharing on synchronization variables).
#pragma once

#include <cstddef>
#include <new>

namespace ht {

// Fixed at 64 (x86-64 and most AArch64): std::hardware_destructive_
// interference_size is an ABI hazard GCC warns about, and padding to a
// constant keeps struct layouts identical across translation units.
inline constexpr std::size_t kCacheLine = 64;

// Wraps T in its own cache line. T must be default-constructible or
// constructible from the forwarded arguments.
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};

  CachePadded() = default;
  explicit CachePadded(const T& v) : value(v) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace ht
