// Cycle- and wall-clock timing for the cost table (§2.2) and the overhead
// figures (Figs 7-9).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace ht {

// Serialized timestamp counter read; falls back to steady_clock nanoseconds
// on non-x86 targets (the cost table then reports ns instead of cycles).
inline std::uint64_t read_cycles() {
#if defined(__x86_64__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ht
