// Open-addressing pointer set used for each thread's read set (Table 3:
// reentrant read-lock transitions test `o ∈ T.rdSet`).
//
// Requirements that rule out std::unordered_set: membership tests sit on the
// pessimistic fast path, the set is cleared wholesale at every lock-buffer
// flush, and it is only ever touched by its owning thread. A power-of-two
// table with linear probing and a fast clear fits exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace ht {

class FlatPtrSet {
 public:
  explicit FlatPtrSet(std::size_t initial_capacity = 64) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.assign(cap, nullptr);
  }

  bool contains(const void* p) const {
    HT_DASSERT(p != nullptr, "null pointer in FlatPtrSet");
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(p) & mask;
    while (slots_[i] != nullptr) {
      if (slots_[i] == p) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  // Inserts p; returns true if newly inserted.
  bool insert(const void* p) {
    HT_DASSERT(p != nullptr, "null pointer in FlatPtrSet");
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(p) & mask;
    while (slots_[i] != nullptr) {
      if (slots_[i] == p) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = p;
    ++size_;
    return true;
  }

  void clear() {
    if (size_ == 0) return;
    std::fill(slots_.begin(), slots_.end(), nullptr);
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static std::size_t hash(const void* p) {
    // Pointers are at least 8-byte aligned; mix with a Fibonacci multiplier.
    auto v = reinterpret_cast<std::uintptr_t>(p) >> 3;
    return static_cast<std::size_t>(v * 0x9e3779b97f4a7c15ULL >> 17);
  }

  void grow() {
    std::vector<const void*> old = std::move(slots_);
    slots_.assign(old.size() * 2, nullptr);
    size_ = 0;
    for (const void* p : old) {
      if (p != nullptr) insert(p);
    }
  }

  std::vector<const void*> slots_;
  std::size_t size_ = 0;
};

}  // namespace ht
