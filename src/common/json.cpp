#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ht::json {

namespace {

const Value kNullValue{};

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " at offset %zu", pos);
    error = msg + buf;
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') return parse_string_value(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail("unexpected character");
  }

  bool parse_object(Value& out, int depth) {
    ++pos;  // '{'
    Object obj;
    skip_ws();
    if (consume('}')) {
      out = Value(std::move(obj));
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos >= text.size() || text[pos] != '"') return fail("expected key");
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      obj.emplace(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    out = Value(std::move(obj));
    return true;
  }

  bool parse_array(Value& out, int depth) {
    ++pos;  // '['
    Array arr;
    skip_ws();
    if (consume(']')) {
      out = Value(std::move(arr));
      return true;
    }
    for (;;) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      arr.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    out = Value(std::move(arr));
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos;  // '"'
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("short \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by any of our writers; decode them permissively as
            // two separate units).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Value(std::move(s));
    return true;
  }

  bool parse_bool(Value& out) {
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      out = Value(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      out = Value(false);
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(Value& out) {
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      out = Value();
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start) return fail("bad number");
    const std::string tok = text.substr(start, pos - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return fail("bad number");
    }
    out = Value(v);
    return true;
  }
};

}  // namespace

const Value& Value::at(const std::string& key) const {
  if (type_ == Type::kObject) {
    auto it = obj_.find(key);
    if (it != obj_.end()) return it->second;
  }
  return kNullValue;
}

const Value& Value::at(std::size_t i) const {
  if (type_ == Type::kArray && i < arr_.size()) return arr_[i];
  return kNullValue;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += number(num_);
      break;
    case Type::kString:
      out.push_back('"');
      out += escape(str_);
      out.push_back('"');
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

bool parse(const std::string& text, Value& out, std::string* error) {
  Parser p{text, 0, {}};
  if (!p.parse_value(out, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing garbage";
    return false;
  }
  return true;
}

}  // namespace ht::json
