// Minimal JSON value model: parse, navigate, serialize.
//
// The telemetry exporters, the --json bench reports, and trace_export --check
// all need to read back what they write; this keeps the repo dependency-free
// (no nlohmann/json in the image) at the cost of supporting only what those
// callers need: objects, arrays, strings, finite numbers, bools, null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ht::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys sorted, which makes every serialization
// deterministic — a requirement for the golden-file exporter tests.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(std::int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Value(int i) : type_(Type::kNumber), num_(i) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::uint64_t as_u64() const { return static_cast<std::uint64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  const Object& as_object() const { return obj_; }
  Array& as_array() { return arr_; }
  Object& as_object() { return obj_; }

  bool contains(const std::string& key) const {
    return type_ == Type::kObject && obj_.count(key) != 0;
  }
  // Missing keys return a shared null value so lookups compose.
  const Value& at(const std::string& key) const;
  const Value& at(std::size_t i) const;

  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// Strict parse of a complete document (trailing garbage rejected). On failure
// returns false and, when `error` is non-null, a byte-offset diagnostic.
bool parse(const std::string& text, Value& out, std::string* error = nullptr);

// JSON string escaping (quotes not included).
std::string escape(const std::string& s);

// Number formatting shared by every exporter: integers print exactly,
// non-integers with enough digits to round-trip.
std::string number(double v);

}  // namespace ht::json
