// Intrusive multi-producer single-consumer queue for coordination requests.
//
// Producers are requester threads pushing stack-allocated request nodes; the
// single consumer is the owning thread draining at a safe point. A Treiber
// push + reverse-on-drain gives FIFO response order with one CAS per push and
// one exchange per drain — the queue itself must not become the bottleneck it
// is meant to measure.
//
// Lifetime contract: a node pushed here must stay alive until the consumer
// has finished with it. Requesters keep nodes on their stack and spin on the
// node's completion flag, which the consumer sets last, so the contract holds
// by construction.
#pragma once

#include <atomic>

#include "common/assert.hpp"

namespace ht {

template <typename Node>  // Node must expose `Node* next`
class MpscQueue {
 public:
  MpscQueue() : head_(nullptr) {}
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Multi-producer push. Safe from any thread.
  void push(Node* node) {
    Node* old = head_.load(std::memory_order_relaxed);
    do {
      node->next = old;
    } while (!head_.compare_exchange_weak(old, node, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  // Cheap emptiness probe for safepoint fast paths.
  bool empty_relaxed() const {
    return head_.load(std::memory_order_relaxed) == nullptr;
  }

  // Single-consumer drain: detaches the whole list and returns it in FIFO
  // (push) order. Only the owning thread may call this.
  Node* drain() {
    Node* lifo = head_.exchange(nullptr, std::memory_order_acquire);
    Node* fifo = nullptr;
    while (lifo != nullptr) {
      Node* next = lifo->next;
      lifo->next = fifo;
      fifo = lifo;
      lifo = next;
    }
    return fifo;
  }

 private:
  std::atomic<Node*> head_;
};

}  // namespace ht
