// Spin-wait backoff tuned for oversubscribed cores.
//
// Coordination in this system is a cross-thread round trip: the requester
// spins until the remote thread reaches a safe point. When threads outnumber
// cores (our container exposes a single core), pure spinning turns every
// round trip into a full scheduling quantum. Backoff therefore escalates
// quickly from pause instructions to std::this_thread::yield(), which is what
// keeps the "explicit coordination costs a round trip, not a quantum"
// property of the paper intact.
#pragma once

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ht {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  // spins_before_yield: how many pause-loop rounds before ceding the CPU.
  // The default is small: when the waited-on thread shares the core (our
  // container exposes one), spinning delays the very response being waited
  // for.
  explicit Backoff(int spins_before_yield = 2)
      : limit_(spins_before_yield) {}

  void pause() {
    if (count_ < limit_) {
      for (int i = 0; i < (1 << count_); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { count_ = 0; }

  // True once the backoff has escalated to yielding.
  bool yielding() const { return count_ >= limit_; }

 private:
  int count_ = 0;
  int limit_;
};

}  // namespace ht
