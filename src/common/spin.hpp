// Spin-wait backoff tuned for oversubscribed cores.
//
// Coordination in this system is a cross-thread round trip: the requester
// spins until the remote thread reaches a safe point. When threads outnumber
// cores (our container exposes a single core), pure spinning turns every
// round trip into a full scheduling quantum. Backoff therefore escalates
// quickly from pause instructions to std::this_thread::yield(), which is what
// keeps the "explicit coordination costs a round trip, not a quantum"
// property of the paper intact.
//
// Yielding has its own failure mode: when the waited-on thread is stalled
// (not merely descheduled), every yield is immediately rescheduled back and
// the waiter burns a full core indefinitely — a yield storm. After a yield
// budget the backoff escalates again to short sleep_for ticks, doubling up
// to a cap, so a stalled-owner wait costs wakeups per second, not a core.
#pragma once

#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

// ThreadSanitizer annotation layer. TSan models std::atomic natively, but
// the happens-before edges this system *means* — a responding safe point
// releases, the requester that observed the response acquires — are spread
// across counter loads it would have to infer. Annotating the sync objects
// directly keeps TSan's model aligned with ours even if an implementation
// migrates off std::atomic (e.g. to a futex or custom spin lock), and makes
// the sanitize-labeled test tier diagnose races at the right abstraction
// level. Compiles away entirely outside -fsanitize=thread builds.
#if defined(__SANITIZE_THREAD__)
#define HT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HT_TSAN 1
#endif
#endif

#ifdef HT_TSAN
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#define HT_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#define HT_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))
#else
#define HT_TSAN_ACQUIRE(addr) ((void)(addr))
#define HT_TSAN_RELEASE(addr) ((void)(addr))
#endif

namespace ht {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  // spins_before_yield: how many pause-loop rounds before ceding the CPU.
  // The default is small: when the waited-on thread shares the core (our
  // container exposes one), spinning delays the very response being waited
  // for.
  // yields_before_sleep: how many yield rounds before escalating to sleep
  // ticks. Large enough that every healthy wait (the owner responds within
  // a few scheduling quanta) finishes while still yielding; responses are
  // then observed with sub-quantum latency and sleeps only trigger against
  // genuinely stalled owners.
  explicit Backoff(int spins_before_yield = 2, int yields_before_sleep = 64)
      : limit_(spins_before_yield),
        sleep_after_(spins_before_yield + yields_before_sleep) {}

  void pause() {
    if (count_ < limit_) {
      for (int i = 0; i < (1 << count_); ++i) cpu_relax();
      ++count_;
    } else if (count_ < sleep_after_) {
      ++count_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      if (sleep_us_ < kMaxSleepUs) sleep_us_ *= 2;
    }
  }

  void reset() {
    count_ = 0;
    sleep_us_ = kMinSleepUs;
  }

  // True once the backoff has escalated to ceding the CPU (yield or sleep).
  bool yielding() const { return count_ >= limit_; }

  // True once the yield budget is exhausted and waits are sleep ticks.
  bool sleeping() const { return count_ >= sleep_after_; }

 private:
  static constexpr int kMinSleepUs = 20;
  static constexpr int kMaxSleepUs = 256;

  int count_ = 0;
  int limit_;
  int sleep_after_;
  int sleep_us_ = kMinSleepUs;
};

}  // namespace ht
