// Spin-wait backoff tuned for oversubscribed cores.
//
// Coordination in this system is a cross-thread round trip: the requester
// spins until the remote thread reaches a safe point. When threads outnumber
// cores (our container exposes a single core), pure spinning turns every
// round trip into a full scheduling quantum. Backoff therefore escalates
// quickly from pause instructions to std::this_thread::yield(), which is what
// keeps the "explicit coordination costs a round trip, not a quantum"
// property of the paper intact.
//
// Yielding has its own failure mode: when the waited-on thread is stalled
// (not merely descheduled), every yield is immediately rescheduled back and
// the waiter burns a full core indefinitely — a yield storm. After a yield
// budget the backoff escalates again to short sleep_for ticks, doubling up
// to a cap, so a stalled-owner wait costs wakeups per second, not a core.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

// ThreadSanitizer annotation layer. TSan models std::atomic natively, but
// the happens-before edges this system *means* — a responding safe point
// releases, the requester that observed the response acquires — are spread
// across counter loads it would have to infer. Annotating the sync objects
// directly keeps TSan's model aligned with ours even if an implementation
// migrates off std::atomic (e.g. to a futex or custom spin lock), and makes
// the sanitize-labeled test tier diagnose races at the right abstraction
// level. Compiles away entirely outside -fsanitize=thread builds.
#if defined(__SANITIZE_THREAD__)
#define HT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HT_TSAN 1
#endif
#endif

#ifdef HT_TSAN
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#define HT_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#define HT_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))
#else
#define HT_TSAN_ACQUIRE(addr) ((void)(addr))
#define HT_TSAN_RELEASE(addr) ((void)(addr))
#endif

namespace ht {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  // One planned wait step: what pause() would do next. Exposed so the
  // escalation sequence (spin -> yield -> doubling jittered sleeps) is unit
  // testable against a fake clock without actually sleeping.
  enum class StepKind { kSpin, kYield, kSleep };
  struct Step {
    StepKind kind = StepKind::kSpin;
    int spins = 0;     // kSpin only
    int sleep_us = 0;  // kSleep only (jitter already applied)
  };

  // spins_before_yield: how many pause-loop rounds before ceding the CPU.
  // The default is small: when the waited-on thread shares the core (our
  // container exposes one), spinning delays the very response being waited
  // for.
  // yields_before_sleep: how many yield rounds before escalating to sleep
  // ticks. Large enough that every healthy wait (the owner responds within
  // a few scheduling quanta) finishes while still yielding; responses are
  // then observed with sub-quantum latency and sleeps only trigger against
  // genuinely stalled owners.
  // max_sleep_us: cap for the doubling sleep tick (lease re-request period).
  // jitter_seed: nonzero enables ±25% deterministic jitter on each sleep so
  // multiple coordinators whose leases expired together don't re-request in
  // lockstep; zero disables jitter (exact doubling, as before).
  explicit Backoff(int spins_before_yield = 2, int yields_before_sleep = 64,
                   int max_sleep_us = kDefaultMaxSleepUs,
                   std::uint32_t jitter_seed = 0)
      : limit_(spins_before_yield),
        sleep_after_(spins_before_yield + yields_before_sleep),
        max_sleep_us_(max_sleep_us < kMinSleepUs ? kMinSleepUs : max_sleep_us),
        rng_(jitter_seed) {}

  // Computes the next wait step and advances the escalation state, without
  // performing the wait. pause() == execute(plan()).
  Step plan() {
    Step s;
    if (count_ < limit_) {
      s.kind = StepKind::kSpin;
      s.spins = 1 << count_;
      ++count_;
    } else if (count_ < sleep_after_) {
      s.kind = StepKind::kYield;
      ++count_;
    } else {
      s.kind = StepKind::kSleep;
      s.sleep_us = jittered(sleep_us_);
      if (sleep_us_ < max_sleep_us_) {
        sleep_us_ *= 2;
        if (sleep_us_ > max_sleep_us_) sleep_us_ = max_sleep_us_;
      }
    }
    return s;
  }

  static void execute(const Step& s) {
    switch (s.kind) {
      case StepKind::kSpin:
        for (int i = 0; i < s.spins; ++i) cpu_relax();
        break;
      case StepKind::kYield:
        std::this_thread::yield();
        break;
      case StepKind::kSleep:
        std::this_thread::sleep_for(std::chrono::microseconds(s.sleep_us));
        break;
    }
  }

  void pause() { execute(plan()); }

  void reset() {
    count_ = 0;
    sleep_us_ = kMinSleepUs;
  }

  // True once the backoff has escalated to ceding the CPU (yield or sleep).
  bool yielding() const { return count_ >= limit_; }

  // True once the yield budget is exhausted and waits are sleep ticks.
  bool sleeping() const { return count_ >= sleep_after_; }

  static constexpr int kMinSleepUs = 20;
  static constexpr int kDefaultMaxSleepUs = 256;

 private:
  // xorshift32; returns sleep_us ±25% when jitter is enabled. Deterministic
  // in the seed, so tests can predict the full escalation sequence.
  int jittered(int sleep_us) {
    if (rng_ == 0) return sleep_us;
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 17;
    rng_ ^= rng_ << 5;
    // Map into [-25%, +25%]: quarter = sleep_us/4, offset in [0, 2*quarter].
    const int quarter = sleep_us / 4;
    if (quarter == 0) return sleep_us;
    const int offset = static_cast<int>(rng_ % (2u * quarter + 1u));
    return sleep_us - quarter + offset;
  }

  int count_ = 0;
  int limit_;
  int sleep_after_;
  int sleep_us_ = kMinSleepUs;
  int max_sleep_us_;
  std::uint32_t rng_;
};

}  // namespace ht
