#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace ht {

double RunStats::median() const {
  HT_ASSERT(!samples_.empty(), "median of empty sample set");
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  const std::size_t n = s.size();
  return (n % 2 == 1) ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

double RunStats::mean() const {
  HT_ASSERT(!samples_.empty(), "mean of empty sample set");
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double RunStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0;
  for (double v : samples_) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double RunStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  if (p <= 0.0) return s.front();
  if (p >= 100.0) return s.back();
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] + frac * (s[lo + 1] - s[lo]);
}

double RunStats::min() const {
  HT_ASSERT(!samples_.empty(), "min of empty sample set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunStats::max() const {
  HT_ASSERT(!samples_.empty(), "max of empty sample set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunStats::ci95_half_width() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

void Log2Histogram::add(std::uint64_t value, std::uint64_t weight) {
  std::size_t b = 0;
  if (value > 0) {
    b = static_cast<std::size_t>(64 - __builtin_clzll(value));  // floor(log2)+1
    if (b >= buckets_.size()) b = buckets_.size() - 1;
  }
  buckets_[b] += weight;
  total_ += weight;
}

std::uint64_t Log2Histogram::bucket_floor(std::size_t i) {
  if (i == 0) return 0;
  return 1ULL << (i - 1);
}

std::uint64_t Log2Histogram::cumulative_le(std::uint64_t x) const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (bucket_floor(i) > x) break;
    sum += buckets_[i];
  }
  return sum;
}

double geomean_overhead(const std::vector<double>& overheads) {
  HT_ASSERT(!overheads.empty(), "geomean of empty vector");
  double log_sum = 0;
  for (double o : overheads) {
    HT_ASSERT(o > -1.0, "overhead ratio must keep 1+o positive");
    log_sum += std::log(1.0 + o);
  }
  return std::exp(log_sum / static_cast<double>(overheads.size())) - 1.0;
}

std::string format_sci(double v) {
  if (v == 0) return "0";
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 100 &&
      v > -100) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  int exp = static_cast<int>(std::floor(std::log10(std::fabs(v))));
  double mant = v / std::pow(10.0, exp);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1fe%d", mant, exp);
  return buf;
}

}  // namespace ht
