// Trial statistics (median, mean, 95% confidence interval) and log-scale
// histograms.
//
// The paper reports "the median of 20 trial runs; we also show the mean as
// the center of 95% confidence intervals" (§7.2); RunStats reproduces exactly
// those three numbers for the figure harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ht {

class RunStats {
 public:
  void add(double v) { samples_.push_back(v); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double median() const;
  double mean() const;
  double stddev() const;  // sample standard deviation
  double min() const;
  double max() const;

  // p-th percentile (0 <= p <= 100) with linear interpolation between order
  // statistics (the "exclusive" rank p/100 * (n-1)); percentile(50) equals
  // median(). Returns 0.0 for an empty sample set — like stddev() and
  // ci95_half_width(), degenerate inputs yield 0, never NaN, so JSON reports
  // built from partial runs stay well-formed.
  double percentile(double p) const;

  // Half-width of the 95% confidence interval for the mean
  // (normal approximation; the paper's intervals are likewise symmetric).
  double ci95_half_width() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

// Fixed-bucket histogram over power-of-two ranges [2^k, 2^(k+1)), used by the
// Fig 6 limit study (per-object conflicting-transition counts span many
// orders of magnitude, and the paper plots both axes on log scales).
class Log2Histogram {
 public:
  explicit Log2Histogram(int max_bucket = 40) : buckets_(max_bucket + 1, 0) {}

  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::uint64_t total_weight() const { return total_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  // Lower bound of bucket i (0 -> 0, 1 -> 1, 2 -> 2, 3 -> 4, ...).
  static std::uint64_t bucket_floor(std::size_t i);

  // Cumulative weight of values <= x.
  std::uint64_t cumulative_le(std::uint64_t x) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

// Geometric mean of (1 + overhead) ratios, reported as an overhead, matching
// the paper's "geomean" bars. Values are overhead fractions (0.28 == 28%).
double geomean_overhead(const std::vector<double>& overheads);

// Formats a count like the paper's Table 2 ("1.2x10^10" style): mantissa with
// one decimal digit and a power-of-ten exponent; exact small values print
// plainly.
std::string format_sci(double v);

}  // namespace ht
