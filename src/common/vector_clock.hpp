// Vector clocks and epochs — the happens-before machinery shared by the
// runtime FastTrack-style race detector (raceck/race_detector.hpp) and the
// offline happens-before engine (analysis/hb_engine/).
//
// An epoch packs (thread id, scalar clock) into one word — FastTrack's key
// representation trick: most variables are read and written by one thread at
// a time, so one epoch, not a whole vector, usually suffices. The offline
// engine uses the full VectorClock form: one clock per trace event, computed
// once in topological order, so happens-before queries between arbitrary
// events are O(1) lookups afterwards.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "metadata/state_word.hpp"

namespace ht {

// Packed (tid, clock): tid in the top 12 bits, clock in the low 52.
class Epoch {
 public:
  Epoch() : bits_(0) {}
  Epoch(ThreadId tid, std::uint64_t clock)
      : bits_((static_cast<std::uint64_t>(tid) << 52) | clock) {
    HT_DASSERT(clock < (1ULL << 52), "epoch clock overflow");
  }

  ThreadId tid() const { return static_cast<ThreadId>(bits_ >> 52); }
  std::uint64_t clock() const { return bits_ & ((1ULL << 52) - 1); }
  std::uint64_t raw() const { return bits_; }
  bool is_zero() const { return bits_ == 0; }

  bool operator==(const Epoch& o) const = default;

 private:
  std::uint64_t bits_;
};

class VectorClock {
 public:
  explicit VectorClock(std::size_t threads = 0) : clocks_(threads, 0) {}

  std::uint64_t get(ThreadId t) const {
    return t < clocks_.size() ? clocks_[t] : 0;
  }

  void set(ThreadId t, std::uint64_t v) {
    ensure(t);
    clocks_[t] = v;
  }

  void tick(ThreadId t) {
    ensure(t);
    ++clocks_[t];
  }

  // this |= other (pointwise max): the "join" at acquire operations.
  void join(const VectorClock& other) {
    if (other.clocks_.size() > clocks_.size()) {
      clocks_.resize(other.clocks_.size(), 0);
    }
    for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
      clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }
  }

  // epoch (c@t) happens-before (or equals) this clock iff c <= this[t].
  bool covers(const Epoch& e) const { return e.clock() <= get(e.tid()); }

  // Every component of other <= this.
  bool covers_all(const VectorClock& other) const {
    for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
      if (other.clocks_[i] > get(static_cast<ThreadId>(i))) return false;
    }
    return true;
  }

  Epoch epoch_of(ThreadId t) const { return Epoch(t, get(t)); }

  std::size_t size() const { return clocks_.size(); }

  void clear() { std::fill(clocks_.begin(), clocks_.end(), 0); }

 private:
  void ensure(ThreadId t) {
    if (t >= clocks_.size()) clocks_.resize(t + 1, 0);
  }

  std::vector<std::uint64_t> clocks_;
};

}  // namespace ht
