// Deterministic, fast PRNGs for workload generation.
//
// Workloads must be deterministic per (seed, thread id) so that the replayer
// can re-execute the identical per-thread instruction stream (DESIGN.md
// §4.4). std::mt19937_64 would work but is ~5x slower and bloats per-thread
// state; SplitMix64 seeds Xoshiro256**, the standard pairing.
#pragma once

#include <cstdint>

namespace ht {

// Stateless seed expander; also usable directly as a weak PRNG.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

// Xoshiro256** — 256-bit state, passes BigCrush, sub-ns per draw.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Fast path avoids division for power-of-two bounds.
  std::uint64_t next_below(std::uint64_t bound) {
    if ((bound & (bound - 1)) == 0) return next() & (bound - 1);
    return next() % bound;
  }

  // Bernoulli draw with probability numer/denom (denom > 0).
  bool chance(std::uint64_t numer, std::uint64_t denom) {
    return next_below(denom) < numer;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace ht
