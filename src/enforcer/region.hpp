// Undo logging for statically-bounded region serializability (paper §5).
//
// The paper's enforcer transforms regions at compile time so they can restart
// after responding to a coordination request mid-region. Our substrate uses
// speculation with an undo log instead (the equivalent EnfoRSer mechanism):
// every tracked store inside a region records the old value, and if the
// region must restart, the log is replayed backwards *before* the thread
// relinquishes any object state — at that moment the thread still owns every
// written object, so the rollback stores cannot race.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace ht {

class UndoLog {
 public:
  // Restore function: writes `old_bits` back through `addr`.
  using RestoreFn = void (*)(void* addr, std::uint64_t old_bits);

  struct Entry {
    void* addr;
    std::uint64_t old_bits;
    RestoreFn restore;
  };

  void push(void* addr, std::uint64_t old_bits, RestoreFn restore) {
    entries_.push_back(Entry{addr, old_bits, restore});
  }

  // Roll back in reverse order (later writes to the same location must be
  // undone first so the earliest old value wins).
  void rollback() {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      it->restore(it->addr, it->old_bits);
    }
    entries_.clear();
  }

  void commit() { entries_.clear(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace ht
