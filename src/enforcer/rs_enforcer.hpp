// Statically-bounded region serializability (SBRS) enforcement (paper §5).
//
// SBRS regions are bounded by synchronization operations, method calls, and
// loop back edges; the enforcer makes each executed region serializable via
// two-phase locking of object states:
//   * while a thread is inside a region, its safepoint polls do not respond
//     to coordination requests, so every object state the region has acquired
//     — optimistic ownership or (hybrid) a deferred pessimistic lock — stays
//     held until the region ends;
//   * the only exception is a thread waiting inside its own transition slow
//     path, which must respond to avoid deadlock (§5.1). Responding there
//     relinquishes states mid-region, so the region rolls back (undo log) and
//     restarts.
//
// The enforcer is parameterized by tracker, giving the paper's two
// configurations: the optimistic RS enforcer [36] and the hybrid RS enforcer
// (§5.2). For the hybrid version, deferred unlocking already postpones every
// unlock to a PSRO or responding safe point — and SBRS regions contain
// neither — so region boundaries are the only unlock points, exactly the
// paper's argument for why hybrid tracking suits SBRS.
#pragma once

#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "enforcer/region.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_context.hpp"
#include "telemetry/telemetry.hpp"

namespace ht {

template <typename Tracker>
class RsEnforcer {
 public:
  explicit RsEnforcer(Runtime& rt, Tracker& tracker)
      : runtime_(&rt), tracker_(&tracker),
        logs_(rt.registry().max_threads()) {}

  Tracker& tracker() { return *tracker_; }

  // Installs the enforcer's region-abort hook alongside the tracker's hooks.
  void attach_thread(ThreadContext& ctx) {
    tracker_->attach_thread(ctx);
    ctx.abort_self = this;
    ctx.abort_fn = [](void* self, ThreadContext& c) {
      static_cast<RsEnforcer*>(self)->on_forced_response(c);
    };
  }

  // Runs `fn` as one SBRS region: all tracked accesses inside it appear
  // atomic to every other thread. `fn` must be re-executable (its only side
  // effects are tracked stores, which the undo log reverts on restart).
  //
  // Retries back off with a randomized, growing yield count: symmetric
  // threads otherwise restart in lockstep and re-collide indefinitely (the
  // analogue of contention management in STMs; the paper's JVM gets the
  // equivalent desynchronization for free from 32 truly concurrent cores).
  // After kSerialFallback consecutive restarts, the attempt runs holding a
  // global fallback mutex (the STM "serial mode" idea). Symmetric high-
  // contention regions can otherwise livelock on a timeshared core: each
  // thread's commit window is as long as its adversaries' request period, so
  // every attempt receives a request and restarts. Queued fallback threads
  // park at a *blocking safe point*, so the running thread coordinates with
  // them implicitly and commits; the paper's 32-core testbed makes commit
  // windows ~100 ns and does not need this.
  static constexpr std::uint32_t kSerialFallback = 12;

  template <typename Fn>
  void run_region(ThreadContext& ctx, Fn&& fn) {
    HT_ASSERT(!ctx.in_region, "SBRS regions do not nest");
    Runtime& rt = *runtime_;
    UndoLog& log = per_thread_log(ctx);
    std::uint32_t attempt = 0;
    bool serial = false;
    for (;;) {
      if (attempt >= kSerialFallback && !serial) {
        rt.begin_blocking(ctx);  // queued: implicit coordination succeeds
        fallback_mu_.lock();
        rt.end_blocking(ctx);
        serial = true;
      }
      ctx.in_region = true;
      ctx.undo_log = &log;
      ctx.region_access_count = 0;
      HT_TELEM_CYCLES(telem_attempt_t0);
      try {
        fn();
        // Committed: writes stay; exit two-phase locking and respond to any
        // requesters that queued up during the region (region boundaries are
        // safe points).
        log.commit();
        ctx.in_region = false;
        ctx.undo_log = nullptr;
        if (serial) fallback_mu_.unlock();
        rt.poll(ctx);
        return;
      } catch (const RegionRestart&) {
        // on_forced_response already rolled back and the responding safe
        // point flushed/answered; back off, then retry the region.
        HT_DASSERT(log.empty(), "rollback left undo entries behind");
        ctx.in_region = false;
        ctx.undo_log = nullptr;
        ++ctx.stats.region_restarts;
        HT_TELEM_ELAPSED(ctx, kRegionRestart, telem_attempt_t0, attempt, 0);
        ++attempt;
        if (!serial) backoff(ctx, attempt);
      }
    }
  }

 private:
  // Runtime::respond() calls this (via the abort hook) when a thread inside
  // a region is about to answer a coordination request from its own slow-path
  // wait. We still own every object the region wrote — roll back now, then
  // let the response proceed; the slow path unwinds via RegionRestart.
  //
  // Exception: a region that has not completed any tracked access holds no
  // region state, so responding (which only flushes locks deferred from
  // *committed* regions) cannot violate its serializability — it keeps
  // running. This removes the dominant cause of restart storms: every
  // region's wait on its own FIRST access.
  void on_forced_response(ThreadContext& ctx) {
    HT_DASSERT(ctx.in_region && ctx.undo_log != nullptr,
               "forced response outside a region");
    if (ctx.region_access_count == 0) {
      HT_DASSERT(ctx.undo_log->empty(), "writes before the first access?");
      return;
    }
    ctx.undo_log->rollback();
    ctx.restart_requested = true;
  }

  static void backoff(ThreadContext& ctx, std::uint32_t attempt) {
    // Cheap hash of (thread, attempt) -> 1..2^min(attempt,6) yields.
    std::uint64_t z = (static_cast<std::uint64_t>(ctx.id) << 32) ^ attempt;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    const std::uint32_t cap = 1u << (attempt < 6 ? attempt : 6);
    const std::uint32_t yields = 1 + static_cast<std::uint32_t>(z % cap);
    for (std::uint32_t i = 0; i < yields; ++i) std::this_thread::yield();
  }

  UndoLog& per_thread_log(ThreadContext& ctx) {
    HT_ASSERT(ctx.id < logs_.size(), "thread id outside enforcer log table");
    return logs_[ctx.id];
  }

  Runtime* runtime_;
  Tracker* tracker_;
  std::vector<UndoLog> logs_;
  std::mutex fallback_mu_;
};

}  // namespace ht
