#include "faultinject/fault_injector.hpp"

#include <sstream>

#include "common/spin.hpp"

namespace ht {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kPollDelay: return "poll-delay";
    case FaultSite::kPollSkip: return "poll-skip";
    case FaultSite::kCoordStall: return "coord-stall";
    case FaultSite::kThreadDeath: return "thread-death";
    case FaultSite::kSlowPathDelay: return "slow-path-delay";
    case FaultSite::kIoOpenFail: return "io-open-fail";
    case FaultSite::kIoShortWrite: return "io-short-write";
    case FaultSite::kIoReadFail: return "io-read-fail";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultConfig cfg)
    : cfg_(cfg),
      slots_(cfg.max_thread_slots == 0 ? 1 : cfg.max_thread_slots),
      io_rng_(cfg.seed ^ 0xf417f417f417f417ULL) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].rng = Xoshiro256(cfg_.seed * 0x9e3779b97f4a7c15ULL + i);
  }
}

bool FaultInjector::probe(FaultSite site, Xoshiro256& rng) {
  const std::uint32_t rate = cfg_.rate(site);
  if (rate == 0) return false;
  return rng.next_below(100'000) < rate;
}

bool FaultInjector::at_safe_point(ThreadId tid) {
  Slot& s = slot(tid);
  if (s.dead.load(std::memory_order_relaxed)) return true;
  if (probe(FaultSite::kThreadDeath, s.rng)) {
    count(FaultSite::kThreadDeath);
    s.dead.store(true, std::memory_order_relaxed);
    return true;
  }
  if (s.stall_remaining > 0) {
    if (--s.stall_remaining == 0) {
      s.stalled.store(false, std::memory_order_relaxed);
    }
    return true;
  }
  if (probe(FaultSite::kCoordStall, s.rng)) {
    count(FaultSite::kCoordStall);
    s.stall_remaining = cfg_.stall_polls;
    s.stalled.store(true, std::memory_order_relaxed);
    return true;
  }
  if (probe(FaultSite::kPollDelay, s.rng)) {
    count(FaultSite::kPollDelay);
    for (std::uint32_t i = 0; i < cfg_.delay_spins; ++i) cpu_relax();
  }
  if (probe(FaultSite::kPollSkip, s.rng)) {
    count(FaultSite::kPollSkip);
    return true;
  }
  return false;
}

void FaultInjector::at_slow_path(ThreadId tid) {
  Slot& s = slot(tid);
  if (probe(FaultSite::kSlowPathDelay, s.rng)) {
    count(FaultSite::kSlowPathDelay);
    for (std::uint32_t i = 0; i < cfg_.delay_spins; ++i) cpu_relax();
  }
}

// Transient-burst gate for I/O sites: with io_failure_cap set, a site that
// already fired its quota behaves healthy from then on. The probe still
// draws from the rng first so the fault *schedule* (which probes would have
// fired) is identical with and without the cap.
bool FaultInjector::io_burst_exhausted(FaultSite site) const {
  return cfg_.io_failure_cap != 0 && fired(site) >= cfg_.io_failure_cap;
}

bool FaultInjector::fail_open() {
  std::lock_guard<std::mutex> g(io_mu_);
  if (!probe(FaultSite::kIoOpenFail, io_rng_)) return false;
  if (io_burst_exhausted(FaultSite::kIoOpenFail)) return false;
  count(FaultSite::kIoOpenFail);
  return true;
}

bool FaultInjector::fail_read() {
  std::lock_guard<std::mutex> g(io_mu_);
  if (!probe(FaultSite::kIoReadFail, io_rng_)) return false;
  if (io_burst_exhausted(FaultSite::kIoReadFail)) return false;
  count(FaultSite::kIoReadFail);
  return true;
}

std::optional<std::size_t> FaultInjector::short_write(std::size_t bytes) {
  std::lock_guard<std::mutex> g(io_mu_);
  if (bytes == 0 || !probe(FaultSite::kIoShortWrite, io_rng_)) {
    return std::nullopt;
  }
  if (io_burst_exhausted(FaultSite::kIoShortWrite)) return std::nullopt;
  count(FaultSite::kIoShortWrite);
  return static_cast<std::size_t>(io_rng_.next_below(bytes));
}

std::uint64_t FaultInjector::total_fired() const {
  std::uint64_t total = 0;
  for (const auto& f : fired_) total += f.load(std::memory_order_relaxed);
  return total;
}

bool FaultInjector::thread_dead(ThreadId tid) const {
  return slot(tid).dead.load(std::memory_order_relaxed);
}

bool FaultInjector::thread_suppressed(ThreadId tid) const {
  const Slot& s = slot(tid);
  return s.dead.load(std::memory_order_relaxed) ||
         s.stalled.load(std::memory_order_relaxed);
}

std::string FaultInjector::summary() const {
  std::ostringstream out;
  out << "faults fired:";
  bool any = false;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const std::uint64_t n = fired_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    any = true;
    out << ' ' << fault_site_name(static_cast<FaultSite>(i)) << '=' << n;
  }
  if (!any) out << " none";
  return out.str();
}

}  // namespace ht
