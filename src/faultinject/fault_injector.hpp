// Deterministic, seedable fault injection for the runtime substrate.
//
// The coordination protocol (Fig 1) and deferred unlocking (§3.1) are proved
// correct under the assumption that every thread keeps reaching safe points
// and that recordings are written to completion. Production deployments
// violate both: threads stall in long JNI-style computations, processes die
// mid-write, disks tear files. This module makes those failures *injectable*
// — deterministically, from a seed — so the hardening that handles them (the
// coordination watchdog, bounded-wait coordination, the v2 crash-tolerant
// recording format) is testable instead of aspirational.
//
// Sites and their effects:
//   kPollDelay      busy-spin delay at a safe-point poll (slow safe point);
//   kPollSkip       one poll passes without responding (missed poll window);
//   kCoordStall     the thread stops responding at safe points for
//                   `stall_polls` consecutive polls — a bounded non-polling
//                   stall, exactly what the watchdog must detect;
//   kThreadDeath    the thread never responds at a deterministic safe point
//                   again (it still executes program code and still responds
//                   from nondeterministic waits — see note below);
//   kSlowPathDelay  busy-spin delay inside tracker slow paths (CAS loops,
//                   Int-state waits);
//   kIoOpenFail     recording open() fails;
//   kIoShortWrite   a recording chunk write is torn after a random prefix;
//   kIoReadFail     a recording chunk read fails mid-stream.
//
// Death/stall note: suppression applies only to *deterministic* safe points
// (Runtime::poll). A thread spinning inside coordinate() is at a
// nondeterministic wait and keeps responding there; suppressing those too
// would let two injected-dead threads deadlock each other, which models a
// scheduler bug rather than a stalled thread, and would make every
// injection-enabled test flaky by construction.
//
// Determinism: each thread slot draws from its own Xoshiro256 stream seeded
// by (seed, slot), so a fixed seed and per-thread probe sequence yields a
// fixed fault schedule regardless of cross-thread interleaving. I/O sites
// draw from a separate mutex-guarded stream (I/O is cold).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cache_line.hpp"
#include "common/xorshift.hpp"
#include "metadata/state_word.hpp"  // ThreadId

namespace ht {

enum class FaultSite : std::uint8_t {
  kPollDelay = 0,
  kPollSkip,
  kCoordStall,
  kThreadDeath,
  kSlowPathDelay,
  kIoOpenFail,
  kIoShortWrite,
  kIoReadFail,
};
inline constexpr std::size_t kFaultSiteCount = 8;

const char* fault_site_name(FaultSite site);

struct FaultConfig {
  std::uint64_t seed = 1;
  // Per-site firing rate in firings per 100k probes; 0 disables the site.
  std::array<std::uint32_t, kFaultSiteCount> rate_p100k{};
  std::uint32_t delay_spins = 2'000;  // cpu_relax() count for delay faults
  std::uint32_t stall_polls = 256;    // polls suppressed per kCoordStall
  std::size_t max_thread_slots = 256;
  // Transient-I/O modeling: when nonzero, each I/O site fires at most this
  // many times total and then goes quiet — a burst a capped retry outlives
  // (deterministic with rate 100000: exactly the first N I/O probes fail).
  // 0 keeps faults firing per rate forever.
  std::uint32_t io_failure_cap = 0;
  // Death severity. Default (false): a dead thread stops responding at polls
  // only — it still answers at PSROs, blocking entries, and coordination
  // waits, so a run stays live even with the watchdog in kContinue. True
  // models a PERMANENTLY STUCK thread (DESIGN.md §11): death also freezes
  // its PSROs and blocking safe points, so whatever it holds stays held and
  // only the quarantine/seizure path (or fail-fast) can finish the run.
  bool stuck_death = false;

  FaultConfig& enable(FaultSite site, std::uint32_t rate) {
    rate_p100k[static_cast<std::size_t>(site)] = rate;
    return *this;
  }
  std::uint32_t rate(FaultSite site) const {
    return rate_p100k[static_cast<std::size_t>(site)];
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig cfg = {});
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultConfig& config() const { return cfg_; }

  // --- runtime sites (called by the probing thread itself) -------------------
  // Probes every poll-attached site. Returns true when the thread must NOT
  // respond at this safe point (skip window, active stall, or death).
  bool at_safe_point(ThreadId tid);

  // Probes kSlowPathDelay; spins when it fires.
  void at_slow_path(ThreadId tid);

  // --- recording I/O sites ---------------------------------------------------
  bool fail_open();  // kIoOpenFail
  bool fail_read();  // kIoReadFail
  // kIoShortWrite: when it fires, returns how many of `bytes` to actually
  // write (uniform in [0, bytes)); nullopt means write everything.
  std::optional<std::size_t> short_write(std::size_t bytes);

  // --- observability ----------------------------------------------------------
  std::uint64_t fired(FaultSite site) const {
    return fired_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_fired() const;
  // True once kThreadDeath has fired for `tid` (diagnostics / tests).
  bool thread_dead(ThreadId tid) const;
  // True while `tid` is inside an injected kCoordStall window or dead.
  bool thread_suppressed(ThreadId tid) const;
  // True when `tid` is dead under the stuck_death model: its PSROs and
  // blocking safe points are suppressed too (runtime consults this).
  bool thread_fully_stuck(ThreadId tid) const {
    return cfg_.stuck_death && thread_dead(tid);
  }
  std::string summary() const;

 private:
  struct alignas(kCacheLine) Slot {
    Xoshiro256 rng{0};
    std::uint32_t stall_remaining = 0;
    std::atomic<bool> dead{false};
    std::atomic<bool> stalled{false};  // mirrors stall_remaining for readers
  };

  Slot& slot(ThreadId tid) { return slots_[tid % slots_.size()]; }
  const Slot& slot(ThreadId tid) const { return slots_[tid % slots_.size()]; }
  bool probe(FaultSite site, Xoshiro256& rng);
  bool io_burst_exhausted(FaultSite site) const;
  void count(FaultSite site) {
    fired_[static_cast<std::size_t>(site)].fetch_add(
        1, std::memory_order_relaxed);
  }

  FaultConfig cfg_;
  std::vector<Slot> slots_;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> fired_{};
  std::mutex io_mu_;
  Xoshiro256 io_rng_;  // guarded by io_mu_
};

}  // namespace ht
