// Per-object tracking metadata: the two header words the paper adds to every
// object (§7.1) — a last-access state word and an adaptive-policy profile
// word — plus atomic state helpers shared by all trackers.
#pragma once

#include <atomic>
#include <cstdint>

#include "metadata/profile_word.hpp"
#include "metadata/state_word.hpp"

namespace ht {

class ObjectMeta {
 public:
  ObjectMeta() : state_(0) {}
  ObjectMeta(const ObjectMeta&) = delete;
  ObjectMeta& operator=(const ObjectMeta&) = delete;

  // (Re)initialize; every tracker allocates objects in WrEx<alloc thread>
  // of its flavor ("Each object newly allocated by thread T starts in the
  // WrExOpt_T state", §6.2 — pessimistic/standalone trackers use their own
  // initial kind).
  void reset(StateWord initial) {
    state_.store(initial.raw(), std::memory_order_relaxed);
    profile_.reset();
  }

  StateWord load_state(std::memory_order mo = std::memory_order_acquire) const {
    return StateWord(state_.load(mo));
  }

  bool cas_state(StateWord& expected, StateWord desired,
                 std::memory_order success = std::memory_order_acq_rel) {
    std::uint64_t exp = expected.raw();
    bool ok = state_.compare_exchange_strong(exp, desired.raw(), success,
                                             std::memory_order_acquire);
    if (!ok) expected = StateWord(exp);
    return ok;
  }

  // Plain store — only legal when the calling thread has exclusive rights to
  // change the state (owns the Int state, or is unlocking its own lock).
  void store_state(StateWord s,
                   std::memory_order mo = std::memory_order_release) {
    state_.store(s.raw(), mo);
  }

  AtomicProfile& profile() { return profile_; }
  const AtomicProfile& profile() const { return profile_; }

 private:
  std::atomic<std::uint64_t> state_;
  AtomicProfile profile_;
};

}  // namespace ht
