// Per-object adaptive-policy profile word (paper §6.2, §7.1: "another
// [32-bit word] for the adaptive policy's profile information" — we use 64
// bits and keep richer counters).
//
//   bits  0..15  optConflicts   optimistic conflicting transitions using
//                               explicit coordination (the policy ignores
//                               implicit coordination, §6.2 footnote 7)
//   bits 16..39  pessNonConfl   non-conflicting pessimistic transitions
//   bits 40..55  pessConfl      conflicting pessimistic transitions
//   bit  56      wasPess        object has been pessimistic at least once
//   bit  57      mustStayOpt    object returned to optimistic and is barred
//                               from further Opt->Pess trips (§6.2 "Checks
//                               and balances")
//   bits 58..63  contended      saturating count of contended pessimistic
//                               transitions (drives the §7.5 "contended
//                               escape" extension)
//
// All counters saturate rather than wrap: a saturated counter keeps the
// policy decision it has already justified, while a wrapped one would flip
// it.
#pragma once

#include <atomic>
#include <cstdint>

namespace ht {

class ProfileWord {
 public:
  ProfileWord() : bits_(0) {}
  explicit constexpr ProfileWord(std::uint64_t raw) : bits_(raw) {}

  std::uint32_t opt_conflicts() const {
    return static_cast<std::uint32_t>(bits_ & 0xFFFF);
  }
  std::uint32_t pess_non_confl() const {
    return static_cast<std::uint32_t>((bits_ >> 16) & 0xFFFFFF);
  }
  std::uint32_t pess_confl() const {
    return static_cast<std::uint32_t>((bits_ >> 40) & 0xFFFF);
  }
  bool was_pess() const { return (bits_ >> 56) & 1; }
  bool must_stay_opt() const { return (bits_ >> 57) & 1; }
  std::uint32_t contended() const {
    return static_cast<std::uint32_t>((bits_ >> 58) & 0x3F);
  }

  ProfileWord with_opt_conflict_inc() const {
    std::uint32_t v = opt_conflicts();
    if (v >= 0xFFFF) return *this;
    return ProfileWord((bits_ & ~0xFFFFULL) | (v + 1));
  }
  ProfileWord with_pess_non_confl_inc() const {
    std::uint32_t v = pess_non_confl();
    if (v >= 0xFFFFFF) return *this;
    return ProfileWord((bits_ & ~(0xFFFFFFULL << 16)) |
                       (static_cast<std::uint64_t>(v + 1) << 16));
  }
  ProfileWord with_pess_confl_inc() const {
    std::uint32_t v = pess_confl();
    if (v >= 0xFFFF) return *this;
    return ProfileWord((bits_ & ~(0xFFFFULL << 40)) |
                       (static_cast<std::uint64_t>(v + 1) << 40));
  }
  ProfileWord with_was_pess() const { return ProfileWord(bits_ | (1ULL << 56)); }
  ProfileWord with_must_stay_opt() const {
    return ProfileWord(bits_ | (1ULL << 57));
  }
  ProfileWord with_contended_inc() const {
    std::uint32_t v = contended();
    if (v >= 0x3F) return *this;
    return ProfileWord((bits_ & ~(0x3FULL << 58)) |
                       (static_cast<std::uint64_t>(v + 1) << 58));
  }
  // Re-arms profiling after a Pess->Opt trip: pessimistic counters restart
  // so a later Opt->Pess decision (contended-escape variant) profiles afresh.
  ProfileWord with_pess_counters_cleared() const {
    return ProfileWord(bits_ & ~((0xFFFFFFULL << 16) | (0xFFFFULL << 40) |
                                 (0x3FULL << 58)));
  }

  std::uint64_t raw() const { return bits_; }
  bool operator==(const ProfileWord& o) const { return bits_ == o.bits_; }

 private:
  std::uint64_t bits_;
};

// Atomic holder with a CAS-update helper. Profile updates happen on slow
// paths (conflicting/pessimistic transitions), so a CAS loop is fine.
class AtomicProfile {
 public:
  AtomicProfile() : word_(0) {}

  ProfileWord load() const {
    return ProfileWord(word_.load(std::memory_order_relaxed));
  }

  // Applies fn : ProfileWord -> ProfileWord atomically; returns the new value.
  template <typename Fn>
  ProfileWord update(Fn&& fn) {
    std::uint64_t cur = word_.load(std::memory_order_relaxed);
    for (;;) {
      ProfileWord next = fn(ProfileWord(cur));
      if (next.raw() == cur) return next;  // no-op (saturated)
      if (word_.compare_exchange_weak(cur, next.raw(),
                                      std::memory_order_relaxed)) {
        return next;
      }
    }
  }

  void reset() { word_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> word_;
};

}  // namespace ht
