// Per-object last-access state word — the hybrid state model's metadata
// (paper §3.2, Table 3).
//
// The paper's prototype packs state into one 32-bit header word and, for lack
// of bit patterns, omits the WrExRLock state (§7.1 "Extraneous contention").
// We use a 64-bit word, which fits the complete model:
//
//   bits  0..3   kind      one of the 12 StateKind values
//   bits  4..15  tid       owner / requester thread (exclusive, Int states)
//   bits 16..47  c         global read-share counter value (RdSh* states)
//   bits 48..59  n         read-lock holder count (RdShRLock)
//
// Kinds (paper state -> StateKind):
//   optimistic          WrExOpt_T  RdExOpt_T  RdShOpt_c
//   pessimistic         WrExPess_T RdExPess_T RdShPess_c        (unlocked)
//                       WrExWLock_T WrExRLock_T RdExRLock_T
//                       RdShRLock(n)_c                          (locked)
//   intermediate        Int_T        (optimistic coordination, Fig 1 line 8)
//   kPessLockedSentinel  the standalone pessimistic tracker's LOCKED value
//                        (§2.1 pseudocode); unused by the hybrid model.
#pragma once

#include <cstdint>
#include <string>

#include "common/assert.hpp"

namespace ht {

using ThreadId = std::uint32_t;
inline constexpr ThreadId kMaxThreads = 1u << 12;  // 12 tid bits
inline constexpr ThreadId kNoThread = kMaxThreads - 1;

enum class StateKind : std::uint8_t {
  kWrExOpt = 0,
  kRdExOpt = 1,
  kRdShOpt = 2,
  kWrExPess = 3,   // unlocked
  kRdExPess = 4,   // unlocked
  kRdShPess = 5,   // unlocked
  kWrExWLock = 6,  // write-locked, write-exclusive
  kWrExRLock = 7,  // read-locked, write-exclusive (full model only)
  kRdExRLock = 8,  // read-locked, read-exclusive
  kRdShRLock = 9,  // read-locked by n threads, read-shared
  kInt = 10,       // intermediate (requester owns coordination)
  kPessLockedSentinel = 11,
};

const char* state_kind_name(StateKind k);

class StateWord {
 public:
  StateWord() : bits_(0) {}  // == WrExOpt with tid 0; use factories instead
  explicit constexpr StateWord(std::uint64_t raw) : bits_(raw) {}

  // --- factories -----------------------------------------------------------
  static StateWord wr_ex_opt(ThreadId t) { return make(StateKind::kWrExOpt, t); }
  static StateWord rd_ex_opt(ThreadId t) { return make(StateKind::kRdExOpt, t); }
  static StateWord rd_sh_opt(std::uint32_t c) {
    return make_rdsh(StateKind::kRdShOpt, c, 0);
  }
  static StateWord wr_ex_pess(ThreadId t) { return make(StateKind::kWrExPess, t); }
  static StateWord rd_ex_pess(ThreadId t) { return make(StateKind::kRdExPess, t); }
  static StateWord rd_sh_pess(std::uint32_t c) {
    return make_rdsh(StateKind::kRdShPess, c, 0);
  }
  static StateWord wr_ex_wlock(ThreadId t) {
    return make(StateKind::kWrExWLock, t);
  }
  static StateWord wr_ex_rlock(ThreadId t) {
    return make(StateKind::kWrExRLock, t);
  }
  static StateWord rd_ex_rlock(ThreadId t) {
    return make(StateKind::kRdExRLock, t);
  }
  static StateWord rd_sh_rlock(std::uint32_t c, std::uint32_t n) {
    HT_DASSERT(n >= 1 && n < (1u << 12), "read-lock count out of range");
    return make_rdsh(StateKind::kRdShRLock, c, n);
  }
  static StateWord intermediate(ThreadId t) { return make(StateKind::kInt, t); }
  static StateWord pess_locked_sentinel(ThreadId t) {
    return make(StateKind::kPessLockedSentinel, t);
  }

  // --- accessors -----------------------------------------------------------
  StateKind kind() const { return static_cast<StateKind>(bits_ & 0xF); }
  ThreadId tid() const {
    return static_cast<ThreadId>((bits_ >> 4) & 0xFFF);
  }
  std::uint32_t counter() const {
    return static_cast<std::uint32_t>((bits_ >> 16) & 0xFFFFFFFFULL);
  }
  std::uint32_t rdlock_count() const {
    return static_cast<std::uint32_t>((bits_ >> 48) & 0xFFF);
  }
  std::uint64_t raw() const { return bits_; }

  // --- predicates (paper terminology, §3.2) --------------------------------
  bool is_optimistic() const {
    return kind() == StateKind::kWrExOpt || kind() == StateKind::kRdExOpt ||
           kind() == StateKind::kRdShOpt;
  }
  bool is_pess_unlocked() const {
    return kind() == StateKind::kWrExPess || kind() == StateKind::kRdExPess ||
           kind() == StateKind::kRdShPess;
  }
  bool is_pess_locked() const {
    return kind() == StateKind::kWrExWLock || kind() == StateKind::kWrExRLock ||
           kind() == StateKind::kRdExRLock || kind() == StateKind::kRdShRLock;
  }
  bool is_pessimistic() const { return is_pess_unlocked() || is_pess_locked(); }
  bool is_intermediate() const { return kind() == StateKind::kInt; }
  bool is_rd_sh() const {
    return kind() == StateKind::kRdShOpt || kind() == StateKind::kRdShPess ||
           kind() == StateKind::kRdShRLock;
  }
  bool is_wr_ex() const {
    return kind() == StateKind::kWrExOpt || kind() == StateKind::kWrExPess ||
           kind() == StateKind::kWrExWLock || kind() == StateKind::kWrExRLock;
  }
  bool is_rd_ex() const {
    return kind() == StateKind::kRdExOpt || kind() == StateKind::kRdExPess ||
           kind() == StateKind::kRdExRLock;
  }
  // States that carry an owner tid (exclusive + Int + sentinel).
  bool has_owner() const { return !is_rd_sh(); }

  // True if a *read* by `t` is already permitted without any state change
  // (same-state transition, Table 1 row 1-3 / Table 3 "reentrant" rows;
  // RdSh additionally requires the caller to have seen counter c — checked
  // by the tracker, not here).
  bool permits_read_by(ThreadId t) const {
    if (is_rd_sh()) return true;
    return tid() == t && !is_intermediate();
  }

  bool operator==(const StateWord& o) const { return bits_ == o.bits_; }
  bool operator!=(const StateWord& o) const { return bits_ != o.bits_; }

  std::string to_string() const;

 private:
  static StateWord make(StateKind k, ThreadId t) {
    HT_DASSERT(t < kMaxThreads, "thread id out of range");
    return StateWord(static_cast<std::uint64_t>(k) |
                     (static_cast<std::uint64_t>(t) << 4));
  }
  static StateWord make_rdsh(StateKind k, std::uint32_t c, std::uint32_t n) {
    return StateWord(static_cast<std::uint64_t>(k) |
                     (static_cast<std::uint64_t>(c) << 16) |
                     (static_cast<std::uint64_t>(n) << 48));
  }

  std::uint64_t bits_;
};

inline const char* state_kind_name(StateKind k) {
  switch (k) {
    case StateKind::kWrExOpt: return "WrExOpt";
    case StateKind::kRdExOpt: return "RdExOpt";
    case StateKind::kRdShOpt: return "RdShOpt";
    case StateKind::kWrExPess: return "WrExPess";
    case StateKind::kRdExPess: return "RdExPess";
    case StateKind::kRdShPess: return "RdShPess";
    case StateKind::kWrExWLock: return "WrExWLock";
    case StateKind::kWrExRLock: return "WrExRLock";
    case StateKind::kRdExRLock: return "RdExRLock";
    case StateKind::kRdShRLock: return "RdShRLock";
    case StateKind::kInt: return "Int";
    case StateKind::kPessLockedSentinel: return "PessLocked";
  }
  return "?";
}

inline std::string StateWord::to_string() const {
  std::string s = state_kind_name(kind());
  if (is_rd_sh()) {
    s += "(c=" + std::to_string(counter());
    if (kind() == StateKind::kRdShRLock)
      s += ",n=" + std::to_string(rdlock_count());
    s += ")";
  } else {
    s += "(T" + std::to_string(tid()) + ")";
  }
  return s;
}

}  // namespace ht
