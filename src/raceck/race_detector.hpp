// FastTrack-style happens-before data race detector — the paper's canonical
// *detect* runtime support (§2: "data race detectors (e.g., [18])") built on
// pessimistic tracking's instrumentation pattern.
//
// Race detection "requires only instrumentation atomicity because it does
// not need to know the order of racy accesses" (§2), so the detector locks
// each variable's analysis state with the §2.1 CAS pattern around the check
// + metadata update, without spanning the program access itself.
//
// Analysis state per variable (FastTrack [18]):
//   W        — epoch of the last write
//   R        — epoch of the last read (exclusive-read mode), or
//   Rvc      — full read vector clock (shared-read mode)
// Thread state: vector clock C_t, ticked at each release operation; lock
// state: vector clock L_m joined into the acquirer.
//
// This is an extension beyond the paper's artifact (which builds a recorder
// and an RS enforcer); the tests also use it as an oracle that the synthetic
// workloads' "racy" profiles really race and the synchronized ones do not.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/cache_line.hpp"
#include "common/spin.hpp"
#include "raceck/vector_clock.hpp"
#include "runtime/sync.hpp"
#include "runtime/thread_context.hpp"

namespace ht {

struct RaceReport {
  std::uint64_t write_write = 0;
  std::uint64_t write_read = 0;   // racy read after write
  std::uint64_t read_write = 0;   // racy write after read(s)
  std::uint64_t total() const { return write_write + write_read + read_write; }
};

class RaceDetector;

// Per-variable detector metadata with a one-word spinlock providing the
// instrumentation atomicity of §2.1.
class RaceCheckedMeta {
 public:
  RaceCheckedMeta() = default;
  RaceCheckedMeta(const RaceCheckedMeta&) = delete;
  RaceCheckedMeta& operator=(const RaceCheckedMeta&) = delete;

  // True once any race was counted against this variable. Gives race
  // reports object identity (RaceReport itself only counts), which the
  // offline hb_engine's predictive detector is cross-validated against.
  bool raced() const { return raced_.load(std::memory_order_relaxed); }

 private:
  friend class RaceDetector;

  void lock() {
    Backoff backoff;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      backoff.pause();
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }

  std::atomic<bool> locked_{false};
  std::atomic<bool> raced_{false};
  Epoch write_;
  Epoch read_;          // valid while !read_shared_
  bool read_shared_ = false;
  VectorClock read_vc_; // valid while read_shared_
};

class RaceDetector {
 public:
  explicit RaceDetector(std::size_t max_threads = 64)
      : threads_(max_threads) {}

  // --- thread lifecycle -------------------------------------------------------
  void attach_thread(ThreadContext& ctx) {
    PerThread& t = threads_.at(ctx.id);
    t.clock.clear();
    t.clock.set(ctx.id, 1);  // epochs start at 1 so Epoch{} means "never"
    t.races = RaceReport{};
    // Bypass matrix (DESIGN.md §15): race-checked runs observe every access
    // through the detector hooks; keep the tracker's per-access
    // instrumentation unelided so the two views can never diverge.
    ctx.elision_on.store(false, std::memory_order_relaxed);
  }

  // --- synchronization hooks ----------------------------------------------------
  // Acquire: join the lock's clock into the thread (the HB edge source was
  // the previous release of the same lock).
  void on_acquire(ThreadContext& ctx, const void* lock_identity) {
    std::lock_guard<std::mutex> g(locks_mu_);
    threads_.at(ctx.id).clock.join(lock_clocks_[lock_identity]);
  }

  // Release: publish the thread's clock into the lock, then tick.
  void on_release(ThreadContext& ctx, const void* lock_identity) {
    PerThread& t = threads_.at(ctx.id);
    {
      std::lock_guard<std::mutex> g(locks_mu_);
      lock_clocks_[lock_identity].join(t.clock);
    }
    t.clock.tick(ctx.id);
  }

  // Fork edge: child inherits the parent's clock (used by the thread driver;
  // our workloads start all threads from a common barrier instead).
  void on_fork(ThreadContext& parent, ThreadContext& child) {
    threads_.at(child.id).clock.join(threads_.at(parent.id).clock);
    threads_.at(child.id).clock.set(child.id, 1);
    threads_.at(parent.id).clock.tick(parent.id);
  }

  // --- access checks --------------------------------------------------------------
  // FastTrack read rule.
  void on_read(ThreadContext& ctx, RaceCheckedMeta& m) {
    PerThread& t = threads_.at(ctx.id);
    m.lock();
    // write-read race: last write not ordered before this read.
    if (!m.write_.is_zero() && m.write_.tid() != ctx.id &&
        !t.clock.covers(m.write_)) {
      ++t.races.write_read;
      m.raced_.store(true, std::memory_order_relaxed);
    }
    if (!m.read_shared_) {
      if (m.read_.is_zero() || m.read_.tid() == ctx.id ||
          t.clock.covers(m.read_)) {
        // Same-epoch / ordered read: stay in exclusive mode.
        m.read_ = t.clock.epoch_of(ctx.id);
      } else {
        // Concurrent readers: inflate to a read vector clock.
        m.read_shared_ = true;
        m.read_vc_.clear();
        m.read_vc_.set(m.read_.tid(), m.read_.clock());
        m.read_vc_.set(ctx.id, t.clock.get(ctx.id));
      }
    } else {
      m.read_vc_.set(ctx.id, t.clock.get(ctx.id));
    }
    m.unlock();
  }

  // FastTrack write rule.
  void on_write(ThreadContext& ctx, RaceCheckedMeta& m) {
    PerThread& t = threads_.at(ctx.id);
    m.lock();
    if (!m.write_.is_zero() && m.write_.tid() != ctx.id &&
        !t.clock.covers(m.write_)) {
      ++t.races.write_write;
      m.raced_.store(true, std::memory_order_relaxed);
    }
    if (m.read_shared_) {
      if (!t.clock.covers_all(m.read_vc_)) {
        ++t.races.read_write;
        m.raced_.store(true, std::memory_order_relaxed);
      }
      m.read_shared_ = false;
      m.read_vc_.clear();
      m.read_ = Epoch{};
    } else if (!m.read_.is_zero() && m.read_.tid() != ctx.id &&
               !t.clock.covers(m.read_)) {
      ++t.races.read_write;
      m.raced_.store(true, std::memory_order_relaxed);
      m.read_ = Epoch{};
    }
    m.write_ = t.clock.epoch_of(ctx.id);
    m.unlock();
  }

  // --- results --------------------------------------------------------------------
  RaceReport report(ThreadId t) const { return threads_.at(t).races; }

  RaceReport total_report(ThreadId thread_count) const {
    RaceReport sum;
    for (ThreadId t = 0; t < thread_count; ++t) {
      const RaceReport& r = threads_.at(t).races;
      sum.write_write += r.write_write;
      sum.write_read += r.write_read;
      sum.read_write += r.read_write;
    }
    return sum;
  }

 private:
  struct alignas(kCacheLine) PerThread {
    VectorClock clock;
    RaceReport races;
  };

  std::vector<PerThread> threads_;
  std::mutex locks_mu_;
  std::unordered_map<const void*, VectorClock> lock_clocks_;
};

// A tracked variable bundled with race-detector metadata, plus an access API
// mirroring TrackedVar's shape.
template <typename T>
class RaceCheckedVar {
 public:
  void init(RaceDetector& rd, ThreadContext& ctx, T v = T{}) {
    (void)rd;
    (void)ctx;
    value_.store(v, std::memory_order_relaxed);
  }

  T load(RaceDetector& rd, ThreadContext& ctx) {
    rd.on_read(ctx, meta_);
    return value_.load(std::memory_order_relaxed);
  }
  void store(RaceDetector& rd, ThreadContext& ctx, T v) {
    rd.on_write(ctx, meta_);
    value_.store(v, std::memory_order_relaxed);
  }
  T raw_load() const { return value_.load(std::memory_order_relaxed); }

  RaceCheckedMeta& meta() { return meta_; }

 private:
  RaceCheckedMeta meta_;
  std::atomic<T> value_{};
};

}  // namespace ht
