// The clock machinery for the FastTrack-style runtime race detector
// (race_detector.hpp). Epoch and VectorClock themselves live in
// common/vector_clock.hpp, shared with the offline happens-before engine
// (analysis/hb_engine/) so the two analyses cannot drift apart; this header
// remains the detector-side include point.
#pragma once

#include "common/vector_clock.hpp"
