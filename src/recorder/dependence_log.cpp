#include "recorder/dependence_log.hpp"

#include <cstdio>

namespace ht {

std::size_t ThreadLog::edge_count() const {
  std::size_t n = 0;
  for (const auto& e : events) n += e.type == LogEventType::kEdge ? 1 : 0;
  return n;
}

std::size_t ThreadLog::response_count() const {
  std::size_t n = 0;
  for (const auto& e : events) n += e.type == LogEventType::kResponse ? 1 : 0;
  return n;
}

std::size_t ThreadLog::region_end_count() const {
  std::size_t n = 0;
  for (const auto& e : events) n += e.type == LogEventType::kRegionEnd ? 1 : 0;
  return n;
}

std::size_t Recording::total_edges() const {
  std::size_t n = 0;
  for (const auto& t : threads) n += t.edge_count();
  return n;
}

std::size_t Recording::total_responses() const {
  std::size_t n = 0;
  for (const auto& t : threads) n += t.response_count();
  return n;
}

std::string Recording::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%zu threads, %zu HB edges, %zu responses",
                threads.size(), total_edges(), total_responses());
  return buf;
}

}  // namespace ht
