// Per-thread dependence logs for multithreaded record & replay (paper §4).
//
// The recorder logs two kinds of events, both keyed by the thread's
// deterministic instrumentation-point index:
//
//   kEdge      — this thread's access at `point` must happen after thread
//                `src`'s release counter reaches `value` (a happens-before
//                edge; conservative fan-outs appear as one kEdge per thread);
//   kResponse  — this thread performed a release-counter bump at `point`
//                that does not correspond to a deterministic program event
//                (an explicit coordination response or a blocking entry);
//                the replayer re-issues the bump at the same point.
//   kRegionEnd — this thread performed a *deterministic* release-counter
//                bump (a PSRO or the thread-exit bump). The replayer ignores
//                these — it re-issues deterministic bumps at the same
//                program points by construction — but the offline
//                happens-before engine needs them: every bump ends an SBRS
//                region, and the stamps anchor recorded edges to the exact
//                bump that satisfied them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metadata/state_word.hpp"

namespace ht {

enum class LogEventType : std::uint8_t { kEdge, kResponse, kRegionEnd };

struct LogEvent {
  std::uint64_t point;
  LogEventType type;
  ThreadId src;         // kEdge only
  std::uint64_t value;  // kEdge: required src release-counter value;
                        // kResponse/kRegionEnd: post-bump counter (stamp),
                        // 0 = unknown (legacy pre-stamping recordings)

  // True for the event kinds that mark a release-counter bump (and hence an
  // SBRS region boundary): kResponse and kRegionEnd.
  bool is_bump() const { return type != LogEventType::kEdge; }

  bool operator==(const LogEvent&) const = default;
};

struct ThreadLog {
  std::vector<LogEvent> events;

  std::size_t edge_count() const;
  std::size_t response_count() const;
  std::size_t region_end_count() const;
};

// A complete recording: one log per thread plus the thread count, which the
// replayer needs to spawn the same thread structure.
struct Recording {
  std::vector<ThreadLog> threads;

  std::size_t total_edges() const;
  std::size_t total_responses() const;
  std::string summary() const;
};

}  // namespace ht
