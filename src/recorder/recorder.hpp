// The dependence recorder (paper §4): a sink that trackers feed happens-
// before edges into, plus the response-logging hook for nondeterministic
// release-counter bumps.
//
// Composing it with OptimisticTracker gives the paper's optimistic recorder
// (§4.1, prior work [10]); composing with HybridTracker gives the hybrid
// recorder (§4.2). Either way the same dependences are captured — the hybrid
// recorder merely captures pessimistic-transition edges from release
// counters instead of coordination round trips.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "recorder/dependence_log.hpp"
#include "recorder/recording_io.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_context.hpp"
#include "telemetry/telemetry.hpp"

namespace ht {

class DependenceRecorder {
 public:
  static constexpr bool kActive = true;

  explicit DependenceRecorder(Runtime& rt)
      : runtime_(&rt),
        logs_(rt.registry().max_threads()),
        sealed_(std::make_unique<std::atomic<bool>[]>(
            rt.registry().max_threads())),
        streamed_(rt.registry().max_threads(), 0) {}

  // --- sink interface (called by trackers) ------------------------------------
  void edge(ThreadContext& ctx, ThreadId src, std::uint64_t value) {
    if (sealed_[ctx.id].load(std::memory_order_relaxed)) return;
    logs_[ctx.id].events.push_back(
        LogEvent{ctx.point_index, LogEventType::kEdge, src, value});
    HT_TELEM_EVENT(ctx, kDepEdge, value, src, 0);
  }

  // Conservative fan-out: one edge per other registered thread at its
  // current release counter (see HybridTracker's edge discipline note).
  void edge_all_others(ThreadContext& ctx, Runtime& rt) {
    const ThreadId n = rt.registry().high_water();
    for (ThreadId t = 0; t < n; ++t) {
      if (t == ctx.id) continue;
      const auto& o = rt.registry().context(t);
      edge(ctx, t,
           o.owner_side.release_counter.load(std::memory_order_acquire));
    }
  }

  // --- thread hooks -------------------------------------------------------------
  // Install after the tracker's attach_thread; logs each nondeterministic
  // release-counter bump so replay can reproduce it, plus a kRegionEnd mark
  // at each deterministic bump (PSRO, thread exit) so offline analyses see
  // every region boundary. Both hooks run after the bump, so events are
  // stamped with the post-bump counter: the replayer ignores the stamps (it
  // re-issues nondeterministic bumps and skips region marks), but the
  // offline trace lint and the happens-before engine use them to order bumps
  // against dependence edges. Value 0 marks an unannotated event
  // (pre-stamping recordings) — a real post-bump counter is always >= 1.
  void attach_thread(ThreadContext& ctx) {
    ctx.resp_log_self = this;
    ctx.resp_log_fn = [](void* self, ThreadContext& c) {
      static_cast<DependenceRecorder*>(self)->log_bump(
          c, LogEventType::kResponse);
    };
    ctx.region_log_self = this;
    ctx.region_log_fn = [](void* self, ThreadContext& c) {
      static_cast<DependenceRecorder*>(self)->log_bump(
          c, LogEventType::kRegionEnd);
    };
  }

  // --- resilience hook (DESIGN.md §11.4) ----------------------------------------
  // Seals a quarantined thread's log: the recorded prefix is frozen (every
  // entry in it is complete, so the trace lint's invariants hold on it) and
  // any append a not-yet-parked victim still attempts is dropped. If a
  // streaming writer is attached, the victim's sealed log is flushed to disk
  // at a v2 chunk boundary immediately, so a later crash of the degraded run
  // cannot lose it. Runs on the quarantining thread; safe for concurrent
  // quarantines of different victims.
  void on_quarantine(ThreadId victim) {
    sealed_[victim].store(true, std::memory_order_relaxed);
    stream_thread(victim);
  }

  // Optional crash-tolerance stream (not owned; must outlive the recorder).
  // Chunks appended here are also kept in memory, so take_recording still
  // returns the full recording; finish_stream() writes everything not yet
  // streamed plus the trailer.
  void set_stream_writer(RecordingStreamWriter* w) {
    std::lock_guard<std::mutex> g(stream_mu_);
    stream_ = w;
  }
  bool finish_stream(ThreadId thread_count) {
    std::lock_guard<std::mutex> g(stream_mu_);
    if (stream_ == nullptr) return true;
    for (ThreadId t = 0; t < thread_count; ++t) stream_thread_locked(t);
    return stream_->finish();
  }

  // --- results -------------------------------------------------------------------
  // Takes the recording (call after all recorded threads joined).
  Recording take_recording(ThreadId thread_count) {
    Recording r;
    r.threads.assign(logs_.begin(), logs_.begin() + thread_count);
    for (auto& l : logs_) l.events.clear();
    return r;
  }

  const ThreadLog& log(ThreadId t) const { return logs_[t]; }
  bool sealed(ThreadId t) const {
    return sealed_[t].load(std::memory_order_relaxed);
  }

 private:
  void log_bump(ThreadContext& ctx, LogEventType type) {
    if (sealed_[ctx.id].load(std::memory_order_relaxed)) return;
    logs_[ctx.id].events.push_back(
        LogEvent{ctx.point_index, type, kNoThread,
                 ctx.owner_side.release_counter.load(
                     std::memory_order_relaxed)});
  }

  void stream_thread(ThreadId t) {
    std::lock_guard<std::mutex> g(stream_mu_);
    stream_thread_locked(t);
  }
  void stream_thread_locked(ThreadId t) {
    if (stream_ == nullptr) return;
    const auto& events = logs_[t].events;
    while (streamed_[t] < events.size()) {
      const std::size_t n =
          std::min<std::size_t>(events.size() - streamed_[t], 512);
      if (!stream_->append(t, events.data() + streamed_[t], n)) return;
      streamed_[t] += n;
    }
  }

  Runtime* runtime_;
  std::vector<ThreadLog> logs_;
  // Indexed by thread id; atomic because the victim may still be appending
  // (pre-park) when the quarantining thread seals it.
  std::unique_ptr<std::atomic<bool>[]> sealed_;
  std::mutex stream_mu_;
  RecordingStreamWriter* stream_ = nullptr;       // guarded by stream_mu_
  std::vector<std::size_t> streamed_;             // guarded by stream_mu_
};

}  // namespace ht
