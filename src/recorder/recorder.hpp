// The dependence recorder (paper §4): a sink that trackers feed happens-
// before edges into, plus the response-logging hook for nondeterministic
// release-counter bumps.
//
// Composing it with OptimisticTracker gives the paper's optimistic recorder
// (§4.1, prior work [10]); composing with HybridTracker gives the hybrid
// recorder (§4.2). Either way the same dependences are captured — the hybrid
// recorder merely captures pessimistic-transition edges from release
// counters instead of coordination round trips.
#pragma once

#include <atomic>

#include "recorder/dependence_log.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_context.hpp"
#include "telemetry/telemetry.hpp"

namespace ht {

class DependenceRecorder {
 public:
  static constexpr bool kActive = true;

  explicit DependenceRecorder(Runtime& rt)
      : runtime_(&rt), logs_(rt.registry().max_threads()) {}

  // --- sink interface (called by trackers) ------------------------------------
  void edge(ThreadContext& ctx, ThreadId src, std::uint64_t value) {
    logs_[ctx.id].events.push_back(
        LogEvent{ctx.point_index, LogEventType::kEdge, src, value});
    HT_TELEM_EVENT(ctx, kDepEdge, value, src, 0);
  }

  // Conservative fan-out: one edge per other registered thread at its
  // current release counter (see HybridTracker's edge discipline note).
  void edge_all_others(ThreadContext& ctx, Runtime& rt) {
    const ThreadId n = rt.registry().high_water();
    for (ThreadId t = 0; t < n; ++t) {
      if (t == ctx.id) continue;
      const auto& o = rt.registry().context(t);
      edge(ctx, t,
           o.owner_side.release_counter.load(std::memory_order_acquire));
    }
  }

  // --- thread hook --------------------------------------------------------------
  // Install after the tracker's attach_thread; logs each nondeterministic
  // release-counter bump so replay can reproduce it. The hook runs after the
  // bump, so the event is stamped with the post-bump counter: the replayer
  // ignores it (it re-issues the bump either way), but the offline trace
  // lint uses the stamps to order responses against dependence edges. Value
  // 0 marks an unannotated event (pre-stamping recordings) — a real
  // post-bump counter is always >= 1.
  void attach_thread(ThreadContext& ctx) {
    ctx.resp_log_self = this;
    ctx.resp_log_fn = [](void* self, ThreadContext& c) {
      static_cast<DependenceRecorder*>(self)->logs_[c.id].events.push_back(
          LogEvent{c.point_index, LogEventType::kResponse, kNoThread,
                   c.owner_side.release_counter.load(
                       std::memory_order_relaxed)});
    };
  }

  // --- results -------------------------------------------------------------------
  // Takes the recording (call after all recorded threads joined).
  Recording take_recording(ThreadId thread_count) {
    Recording r;
    r.threads.assign(logs_.begin(), logs_.begin() + thread_count);
    for (auto& l : logs_) l.events.clear();
    return r;
  }

  const ThreadLog& log(ThreadId t) const { return logs_[t]; }

 private:
  Runtime* runtime_;
  std::vector<ThreadLog> logs_;
};

}  // namespace ht
