#include "recorder/recording_analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace ht {

RecordingAnalysis analyze_recording(const Recording& recording) {
  RecordingAnalysis a;
  a.threads = recording.threads.size();
  a.edges_out.assign(a.threads, 0);
  a.edges_in.assign(a.threads, 0);

  std::set<std::pair<ThreadId, std::uint64_t>> wait_points;
  for (std::size_t t = 0; t < recording.threads.size(); ++t) {
    for (const LogEvent& e : recording.threads[t].events) {
      if (e.type == LogEventType::kEdge) {
        ++a.total_edges;
        ++a.edges_out[t];
        if (e.src < a.threads) ++a.edges_in[e.src];
        wait_points.insert({static_cast<ThreadId>(t), e.point});
      } else if (e.type == LogEventType::kResponse) {
        ++a.total_responses;
      } else {
        ++a.total_region_marks;
      }
    }
  }
  a.distinct_wait_points = wait_points.size();
  return a;
}

std::string RecordingAnalysis::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%zu threads, %zu edges (%zu distinct wait points), "
                "%zu responses%s",
                threads, total_edges, distinct_wait_points, total_responses,
                fully_parallel() ? " [fully parallel]" : "");
  return buf;
}

std::string recording_to_dot(const Recording& recording,
                             std::size_t max_edges) {
  std::ostringstream out;
  out << "digraph happens_before {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontsize=9];\n";

  // Collect the points participating in edges, per thread, so timelines only
  // show interesting nodes.
  std::vector<std::set<std::uint64_t>> points(recording.threads.size());
  std::size_t edges_emitted = 0;
  std::ostringstream edges;
  for (std::size_t t = 0; t < recording.threads.size(); ++t) {
    for (const LogEvent& e : recording.threads[t].events) {
      if (e.type != LogEventType::kEdge) continue;
      if (edges_emitted >= max_edges) break;
      ++edges_emitted;
      points[t].insert(e.point);
      edges << "  \"T" << e.src << "@r" << e.value << "\" -> \"T" << t << "@p"
            << e.point << "\" [color=red];\n";
      // Source node: the src thread's release-counter milestone.
      out << "  \"T" << e.src << "@r" << e.value << "\" [label=\"T" << e.src
          << " rel>=" << e.value << "\", style=dashed];\n";
    }
  }

  // Per-thread timelines (program order) over the sink points.
  for (std::size_t t = 0; t < points.size(); ++t) {
    std::uint64_t prev = 0;
    bool has_prev = false;
    for (std::uint64_t p : points[t]) {
      out << "  \"T" << t << "@p" << p << "\" [label=\"T" << t << " point "
          << p << "\"];\n";
      if (has_prev) {
        out << "  \"T" << t << "@p" << prev << "\" -> \"T" << t << "@p" << p
            << "\" [style=bold];\n";
      }
      prev = p;
      has_prev = true;
    }
  }

  out << edges.str();
  if (edges_emitted >= max_edges) {
    out << "  // truncated at " << max_edges << " edges\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ht
