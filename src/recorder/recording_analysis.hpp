// Recording analysis: structural statistics and Graphviz export of the
// recorded happens-before graph.
//
// Analysis answers the questions the paper's §7.6 raises — how many
// dependences were recorded, how they distribute over threads, how much
// cross-thread ordering constrains replay parallelism — and `to_dot` renders
// the HB graph for inspection (per-thread timelines with cross-thread edges
// at the recorded release-counter values).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "recorder/dependence_log.hpp"

namespace ht {

struct RecordingAnalysis {
  std::size_t threads = 0;
  std::size_t total_edges = 0;
  std::size_t total_responses = 0;
  std::size_t total_region_marks = 0;  // deterministic-bump kRegionEnd marks
  std::vector<std::size_t> edges_out;  // edges whose sink is thread i
  std::vector<std::size_t> edges_in;   // edges whose source is thread i
  // Replay-parallelism proxy: a sink thread with many distinct source
  // values must serialize against its sources that many times.
  std::size_t distinct_wait_points = 0;
  // Degenerate recordings (no cross-thread ordering at all) replay with
  // full parallelism.
  bool fully_parallel() const { return total_edges == 0; }

  std::string summary() const;
};

RecordingAnalysis analyze_recording(const Recording& recording);

// Renders the happens-before graph in Graphviz DOT: one horizontal chain of
// nodes per thread (its instrumentation points that participate in edges),
// with cross-thread edges drawn from (src thread, release value) to
// (sink thread, point). Output is truncated to `max_edges` edges so large
// recordings stay viewable.
std::string recording_to_dot(const Recording& recording,
                             std::size_t max_edges = 500);

}  // namespace ht
