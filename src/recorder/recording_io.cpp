#include "recorder/recording_io.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "faultinject/fault_injector.hpp"

namespace ht {

namespace {

// Capped exponential backoff between write-retry attempts: 20us, 40us, 80us,
// ... clamped to 256us (mirrors common/spin.hpp Backoff's sleep range).
void retry_backoff(std::uint32_t attempt) {
  const int us = std::min(20 << std::min(attempt, 8u), 256);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

constexpr char kMagic[4] = {'H', 'T', 'R', 'C'};
constexpr std::uint32_t kTrailerThread = 0xFFFFFFFFu;
constexpr std::size_t kEventBytes = 8 + 1 + 4 + 8;
// Events per v2 chunk: small enough that a crash loses little, large enough
// that chunk framing (16 bytes) is noise.
constexpr std::size_t kChunkEvents = 512;
// A corrupt chunk count must not trigger a giant allocation.
constexpr std::uint32_t kMaxChunkEvents = 1u << 22;
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

class Fnv1a {
 public:
  explicit Fnv1a(std::uint64_t seed = kFnvBasis) : hash_(seed) {}

  void feed(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_;
};

template <typename T>
void put_pod(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_event(std::string& buf, const LogEvent& e) {
  put_pod(buf, e.point);
  put_pod(buf, static_cast<std::uint8_t>(e.type));
  put_pod(buf, static_cast<std::uint32_t>(e.src));
  put_pod(buf, e.value);
}

// --- v1 reader/writer helpers (whole-stream checksum) --------------------------

class V1Writer {
 public:
  explicit V1Writer(std::ostream& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&v), sizeof v);
    hash_.feed(&v, sizeof v);
  }

  std::uint64_t checksum() const { return hash_.value(); }

 private:
  std::ostream& out_;
  Fnv1a hash_;
};

class V1Reader {
 public:
  explicit V1Reader(std::istream& in) : in_(in) {}

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!in_.good()) return false;
    hash_.feed(&v, sizeof v);
    return true;
  }

  std::uint64_t checksum() const { return hash_.value(); }

 private:
  std::istream& in_;
  Fnv1a hash_;
};

RecordingLoadResult fail(RecordingLoadError e) {
  RecordingLoadResult r;
  r.error = e;
  return r;
}

}  // namespace

const char* recording_load_error_name(RecordingLoadError e) {
  switch (e) {
    case RecordingLoadError::kNone: return "ok";
    case RecordingLoadError::kIo: return "io-error";
    case RecordingLoadError::kBadMagic: return "bad-magic";
    case RecordingLoadError::kBadVersion: return "bad-version";
    case RecordingLoadError::kTruncated: return "truncated";
    case RecordingLoadError::kChecksum: return "checksum-mismatch";
  }
  return "?";
}

std::string RecordingLoadResult::to_string() const {
  std::ostringstream out;
  if (complete()) {
    out << "loaded (" << chunks_loaded << " chunks)";
  } else if (recording.has_value()) {
    out << "partial load: " << recording_load_error_name(error) << ", kept "
        << chunks_loaded << " chunks (" << recording->total_edges()
        << " edges, " << recording->total_responses() << " responses)";
  } else {
    out << "load failed: " << recording_load_error_name(error);
  }
  return out.str();
}

// --- streaming v2 writer -------------------------------------------------------

RecordingStreamWriter::RecordingStreamWriter(const std::string& path,
                                             std::uint32_t thread_count,
                                             FaultInjector* faults)
    : out_(nullptr),
      chain_(0),
      thread_count_(thread_count),
      ok_(false),
      faults_(faults) {
  if (faults_ != nullptr && faults_->fail_open()) return;
  auto* out = new std::ofstream(path, std::ios::binary | std::ios::trunc);
  out_ = out;
  if (!*out) return;
  out->write(kMagic, sizeof kMagic);
  std::string header;
  put_pod(header, kRecordingFormatVersion);
  put_pod(header, thread_count);
  Fnv1a h;
  h.feed(header.data(), header.size());
  put_pod(header, h.value());
  out->write(header.data(), static_cast<std::streamsize>(header.size()));
  out->flush();
  chain_ = h.value();
  ok_ = out->good();
}

RecordingStreamWriter::~RecordingStreamWriter() {
  // Deliberately no auto-finish: a writer destroyed without finish() models
  // a crash mid-recording, leaving a trailer-less (partial) file.
  delete static_cast<std::ofstream*>(out_);
}

bool RecordingStreamWriter::write_block(const std::string& bytes) {
  auto* out = static_cast<std::ofstream*>(out_);
  const std::ofstream::pos_type block_start = out->tellp();
  for (std::uint32_t attempt = 0;; ++attempt) {
    const bool last_attempt = attempt + 1 >= max_write_attempts_;
    if (faults_ != nullptr) {
      if (const auto keep = faults_->short_write(bytes.size())) {
        if (!last_attempt) {
          // Transient tear: rewind to the block start and retry after a
          // capped backoff, so the failed attempt leaves nothing on disk.
          out->clear();
          out->seekp(block_start);
          retry_backoff(attempt);
          continue;
        }
        // Retries exhausted: model the crash — the torn prefix stays on
        // disk (still a loadable valid prefix) and the failure latches.
        out->write(bytes.data(), static_cast<std::streamsize>(*keep));
        out->flush();
        ok_ = false;
        return false;
      }
    }
    out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out->flush();
    if (out->good()) {
      ok_ = true;
      return true;
    }
    if (last_attempt) {
      ok_ = false;
      return false;
    }
    out->clear();
    out->seekp(block_start);
    retry_backoff(attempt);
  }
}

bool RecordingStreamWriter::append(ThreadId thread, const LogEvent* events,
                                   std::size_t count) {
  if (!ok_ || finished_) return false;
  HT_ASSERT(thread < thread_count_, "chunk thread out of range");
  HT_ASSERT(count <= kMaxChunkEvents, "chunk too large");
  std::string chunk;
  chunk.reserve(8 + count * kEventBytes + 8);
  put_pod(chunk, static_cast<std::uint32_t>(thread));
  put_pod(chunk, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) put_event(chunk, events[i]);
  Fnv1a h(chain_);  // chained: chunks cannot be reordered or spliced
  h.feed(chunk.data(), chunk.size());
  put_pod(chunk, h.value());
  if (!write_block(chunk)) return false;
  chain_ = h.value();
  return true;
}

bool RecordingStreamWriter::finish() {
  if (finished_) return ok_;
  if (!ok_) return false;
  std::string trailer;
  put_pod(trailer, kTrailerThread);
  put_pod(trailer, std::uint32_t{0});
  Fnv1a h(chain_);
  h.feed(trailer.data(), trailer.size());
  put_pod(trailer, h.value());
  if (!write_block(trailer)) return false;
  finished_ = true;
  return true;
}

// --- save ----------------------------------------------------------------------

bool save_recording(const Recording& recording, const std::string& path,
                    FaultInjector* faults) {
  RecordingStreamWriter w(
      path, static_cast<std::uint32_t>(recording.threads.size()), faults);
  // One-shot semantics: a whole-file save has no live run to keep alive, so
  // an injected tear fails it immediately (the fault-schedule tests depend
  // on this); write retries are the *streaming* path's hardening.
  w.set_max_write_attempts(1);
  if (!w.ok()) return false;
  for (std::size_t t = 0; t < recording.threads.size(); ++t) {
    const auto& events = recording.threads[t].events;
    for (std::size_t i = 0; i < events.size(); i += kChunkEvents) {
      const std::size_t n = std::min(kChunkEvents, events.size() - i);
      if (!w.append(static_cast<ThreadId>(t), events.data() + i, n)) {
        return false;
      }
    }
  }
  return w.finish();
}

bool save_recording_v1(const Recording& recording, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof kMagic);

  V1Writer w(out);
  w.put(kRecordingFormatVersionV1);
  w.put(static_cast<std::uint32_t>(recording.threads.size()));
  for (const ThreadLog& log : recording.threads) {
    w.put(static_cast<std::uint64_t>(log.events.size()));
    for (const LogEvent& e : log.events) {
      w.put(e.point);
      w.put(static_cast<std::uint8_t>(e.type));
      w.put(static_cast<std::uint32_t>(e.src));
      w.put(e.value);
    }
  }
  const std::uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  out.flush();
  return out.good();
}

// --- load ----------------------------------------------------------------------

namespace {

// v1 loader: the stream is positioned right after the magic. All-or-nothing.
RecordingLoadResult load_v1(std::istream& in) {
  V1Reader r(in);
  std::uint32_t version = 0, threads = 0;
  if (!r.get(version)) return fail(RecordingLoadError::kTruncated);
  if (version != kRecordingFormatVersionV1) {
    return fail(RecordingLoadError::kBadVersion);
  }
  if (!r.get(threads)) return fail(RecordingLoadError::kTruncated);
  if (threads > kMaxThreads) return fail(RecordingLoadError::kChecksum);

  Recording rec;
  rec.threads.resize(threads);
  for (ThreadLog& log : rec.threads) {
    std::uint64_t count = 0;
    if (!r.get(count)) return fail(RecordingLoadError::kTruncated);
    if (count > (1ULL << 32)) return fail(RecordingLoadError::kChecksum);
    log.events.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t point = 0, value = 0;
      std::uint8_t type = 0;
      std::uint32_t src = 0;
      if (!r.get(point) || !r.get(type) || !r.get(src) || !r.get(value)) {
        return fail(RecordingLoadError::kTruncated);
      }
      if (type > static_cast<std::uint8_t>(LogEventType::kRegionEnd)) {
        return fail(RecordingLoadError::kChecksum);
      }
      log.events.push_back(LogEvent{point, static_cast<LogEventType>(type),
                                    static_cast<ThreadId>(src), value});
    }
  }
  const std::uint64_t computed = r.checksum();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (!in.good()) return fail(RecordingLoadError::kTruncated);
  if (stored != computed) return fail(RecordingLoadError::kChecksum);
  RecordingLoadResult res;
  res.recording = std::move(rec);
  return res;
}

bool read_exact(std::istream& in, void* dst, std::size_t n) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  return in.gcount() == static_cast<std::streamsize>(n);
}

// v2 loader: the stream is positioned right after the magic + version.
// Walks chained chunks; any failure salvages the prefix loaded so far.
RecordingLoadResult load_v2(std::istream& in, FaultInjector* faults) {
  std::uint32_t threads = 0;
  std::uint64_t header_fnv = 0;
  if (!read_exact(in, &threads, sizeof threads) ||
      !read_exact(in, &header_fnv, sizeof header_fnv)) {
    return fail(RecordingLoadError::kTruncated);
  }
  Fnv1a h;
  const std::uint32_t version = kRecordingFormatVersion;
  h.feed(&version, sizeof version);
  h.feed(&threads, sizeof threads);
  if (h.value() != header_fnv || threads > kMaxThreads) {
    // Corrupt header: the thread structure is unknown, nothing to salvage.
    return fail(RecordingLoadError::kChecksum);
  }

  RecordingLoadResult res;
  res.recording.emplace();
  res.recording->threads.resize(threads);
  std::uint64_t chain = header_fnv;
  std::vector<char> payload;

  const auto salvage = [&](RecordingLoadError e) {
    res.error = e;
    res.partial = true;
    return res;
  };

  for (;;) {
    if (faults != nullptr && faults->fail_read()) {
      return salvage(RecordingLoadError::kIo);
    }
    std::uint32_t thread = 0;
    in.read(reinterpret_cast<char*>(&thread), sizeof thread);
    if (in.gcount() == 0) {
      // Clean EOF at a chunk boundary but no trailer seen: the writer died
      // before finish(). Everything read so far is the valid prefix.
      return salvage(RecordingLoadError::kTruncated);
    }
    if (in.gcount() != sizeof thread) {
      return salvage(RecordingLoadError::kTruncated);
    }
    std::uint32_t count = 0;
    if (!read_exact(in, &count, sizeof count)) {
      return salvage(RecordingLoadError::kTruncated);
    }

    if (thread == kTrailerThread) {
      std::uint64_t stored = 0;
      if (count != 0) return salvage(RecordingLoadError::kChecksum);
      if (!read_exact(in, &stored, sizeof stored)) {
        return salvage(RecordingLoadError::kTruncated);
      }
      Fnv1a t(chain);
      t.feed(&thread, sizeof thread);
      t.feed(&count, sizeof count);
      if (t.value() != stored) return salvage(RecordingLoadError::kChecksum);
      return res;  // complete
    }

    if (thread >= threads || count > kMaxChunkEvents) {
      return salvage(RecordingLoadError::kChecksum);
    }
    payload.resize(static_cast<std::size_t>(count) * kEventBytes);
    if (!payload.empty() && !read_exact(in, payload.data(), payload.size())) {
      return salvage(RecordingLoadError::kTruncated);
    }
    std::uint64_t stored = 0;
    if (!read_exact(in, &stored, sizeof stored)) {
      return salvage(RecordingLoadError::kTruncated);
    }
    Fnv1a c(chain);
    c.feed(&thread, sizeof thread);
    c.feed(&count, sizeof count);
    c.feed(payload.data(), payload.size());
    if (c.value() != stored) return salvage(RecordingLoadError::kChecksum);

    auto& events = res.recording->threads[thread].events;
    events.reserve(events.size() + count);
    const char* p = payload.data();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint64_t point, value;
      std::uint8_t type;
      std::uint32_t src;
      std::memcpy(&point, p, sizeof point);
      p += sizeof point;
      std::memcpy(&type, p, sizeof type);
      p += sizeof type;
      std::memcpy(&src, p, sizeof src);
      p += sizeof src;
      std::memcpy(&value, p, sizeof value);
      p += sizeof value;
      if (type > static_cast<std::uint8_t>(LogEventType::kRegionEnd)) {
        return salvage(RecordingLoadError::kChecksum);
      }
      events.push_back(LogEvent{point, static_cast<LogEventType>(type),
                                static_cast<ThreadId>(src), value});
    }
    chain = stored;
    ++res.chunks_loaded;
  }
}

}  // namespace

RecordingLoadResult load_recording_ex(const std::string& path,
                                      FaultInjector* faults) {
  if (faults != nullptr && faults->fail_open()) {
    return fail(RecordingLoadError::kIo);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(RecordingLoadError::kIo);
  char magic[4];
  if (!read_exact(in, magic, sizeof magic)) {
    return fail(RecordingLoadError::kBadMagic);
  }
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return fail(RecordingLoadError::kBadMagic);
  }

  // Peek the version to dispatch, then hand each loader a stream positioned
  // the way its format expects.
  std::uint32_t version = 0;
  if (!read_exact(in, &version, sizeof version)) {
    return fail(RecordingLoadError::kTruncated);
  }
  if (version == kRecordingFormatVersionV1) {
    in.seekg(sizeof kMagic, std::ios::beg);  // v1 checksums from the version on
    return load_v1(in);
  }
  if (version == kRecordingFormatVersion) return load_v2(in, faults);
  return fail(RecordingLoadError::kBadVersion);
}

std::optional<Recording> load_recording(const std::string& path) {
  return load_recording_ex(path).recording;
}

}  // namespace ht
