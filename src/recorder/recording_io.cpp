#include "recorder/recording_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

namespace ht {

namespace {

constexpr char kMagic[4] = {'H', 'T', 'R', 'C'};

class Fnv1a {
 public:
  void feed(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&v), sizeof v);
    hash_.feed(&v, sizeof v);
  }

  std::uint64_t checksum() const { return hash_.value(); }
  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
  Fnv1a hash_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!in_.good()) return false;
    hash_.feed(&v, sizeof v);
    return true;
  }

  std::uint64_t checksum() const { return hash_.value(); }

 private:
  std::istream& in_;
  Fnv1a hash_;
};

}  // namespace

bool save_recording(const Recording& recording, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof kMagic);

  Writer w(out);
  w.put(kRecordingFormatVersion);
  w.put(static_cast<std::uint32_t>(recording.threads.size()));
  for (const ThreadLog& log : recording.threads) {
    w.put(static_cast<std::uint64_t>(log.events.size()));
    for (const LogEvent& e : log.events) {
      w.put(e.point);
      w.put(static_cast<std::uint8_t>(e.type));
      w.put(static_cast<std::uint32_t>(e.src));
      w.put(e.value);
    }
  }
  const std::uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  out.flush();
  return out.good();
}

std::optional<Recording> load_recording(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in.good() || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return std::nullopt;
  }

  Reader r(in);
  std::uint32_t version = 0, threads = 0;
  if (!r.get(version) || version != kRecordingFormatVersion) return std::nullopt;
  if (!r.get(threads) || threads > kMaxThreads) return std::nullopt;

  Recording rec;
  rec.threads.resize(threads);
  for (ThreadLog& log : rec.threads) {
    std::uint64_t count = 0;
    if (!r.get(count)) return std::nullopt;
    // Sanity cap: a corrupt count must not trigger a giant allocation.
    if (count > (1ULL << 32)) return std::nullopt;
    log.events.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t point = 0, value = 0;
      std::uint8_t type = 0;
      std::uint32_t src = 0;
      if (!r.get(point) || !r.get(type) || !r.get(src) || !r.get(value)) {
        return std::nullopt;
      }
      if (type > static_cast<std::uint8_t>(LogEventType::kResponse)) {
        return std::nullopt;
      }
      log.events.push_back(LogEvent{point, static_cast<LogEventType>(type),
                                    static_cast<ThreadId>(src), value});
    }
  }
  const std::uint64_t computed = r.checksum();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (!in.good() || stored != computed) return std::nullopt;
  return rec;
}

}  // namespace ht
