// Recording persistence: a record & replay system is only useful if the
// recording survives the recording process (offline replay, replication-
// based fault tolerance — the §4.1 use cases), including processes that die
// mid-write. Two on-disk formats share the "HTRC" magic:
//
// v1 (legacy, still loadable; written by save_recording_v1):
//   magic "HTRC" | version u32=1 | thread_count u32
//   per thread:  event_count u64 | events (point u64, type u8, src u32,
//                                          value u64)
//   trailer:     FNV-1a checksum u64 over everything after the magic
//   One whole-file checksum: any torn byte discards the entire recording.
//
// v2 (current, streaming + crash-tolerant):
//   magic "HTRC" | version u32=2 | thread_count u32 | header FNV u64
//   chunk*:      thread u32 | event_count u32 | events | chunk FNV u64
//   trailer:     thread u32=0xFFFFFFFF | event_count u32=0 | FNV u64
//   Chunk checksums are chained (each chunk's FNV is seeded by the previous
//   chunk's), so chunks cannot be reordered or spliced. A load walks chunks
//   until the trailer; a truncated or torn file yields every intact chunk —
//   the longest valid prefix of each thread's log — flagged as partial.
//
// Integers are little-endian host order, fields packed with no padding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "recorder/dependence_log.hpp"

namespace ht {

class FaultInjector;

inline constexpr std::uint32_t kRecordingFormatVersion = 2;
inline constexpr std::uint32_t kRecordingFormatVersionV1 = 1;

// Why a load failed (or was cut short).
enum class RecordingLoadError : std::uint8_t {
  kNone = 0,   // complete, intact load
  kIo,         // open/read failure
  kBadMagic,   // not a recording file
  kBadVersion, // unknown format version
  kTruncated,  // file ends early (v2: a valid prefix was salvaged)
  kChecksum,   // corrupted payload (v2: the prefix before it was salvaged)
};

const char* recording_load_error_name(RecordingLoadError e);

struct RecordingLoadResult {
  // Present on a complete load AND on a salvaged-prefix load; nullopt only
  // when nothing could be recovered (bad magic/version, unreadable file,
  // corrupt v2 header, any v1 failure).
  std::optional<Recording> recording;
  RecordingLoadError error = RecordingLoadError::kNone;
  bool partial = false;           // true when recording holds a prefix only
  std::size_t chunks_loaded = 0;  // v2: intact chunks accepted

  bool complete() const {
    return recording.has_value() && error == RecordingLoadError::kNone;
  }
  std::string to_string() const;
};

// Streaming v2 writer: header at construction, one checksummed chunk per
// append (flushed through the stream so a crash loses at most the chunk
// being written), trailer at finish().
//
// Transient-failure hardening (DESIGN.md §11.4): a torn or failed block
// write is retried up to max_write_attempts times with a capped backoff —
// the stream is rewound to the block start first, so a retried tear never
// leaves partial bytes on disk. Only after the retries are exhausted does
// the failure latch (the torn prefix stays on disk, still loadable as a
// valid-prefix salvage); from then on every call returns false.
class RecordingStreamWriter {
 public:
  static constexpr std::uint32_t kDefaultWriteAttempts = 4;

  RecordingStreamWriter(const std::string& path, std::uint32_t thread_count,
                        FaultInjector* faults = nullptr);
  ~RecordingStreamWriter();
  RecordingStreamWriter(const RecordingStreamWriter&) = delete;
  RecordingStreamWriter& operator=(const RecordingStreamWriter&) = delete;

  // 1 disables retrying (every failure latches immediately, the pre-§11
  // behavior); 0 is clamped to 1.
  void set_max_write_attempts(std::uint32_t n) {
    max_write_attempts_ = n == 0 ? 1 : n;
  }

  bool ok() const { return ok_; }
  bool append(ThreadId thread, const LogEvent* events, std::size_t count);
  bool finish();  // writes the trailer; idempotent

 private:
  bool write_block(const std::string& bytes);

  void* out_;  // std::ofstream, kept out of the header
  std::uint64_t chain_;
  std::uint32_t thread_count_;
  bool ok_;
  bool finished_ = false;
  std::uint32_t max_write_attempts_ = kDefaultWriteAttempts;
  FaultInjector* faults_;
};

// Writes `recording` to `path` in v2 format; returns false on I/O failure
// (including injected faults — a short write leaves a loadable prefix).
bool save_recording(const Recording& recording, const std::string& path,
                    FaultInjector* faults = nullptr);

// Legacy v1 writer, kept so compatibility is testable against real v1 bytes.
bool save_recording_v1(const Recording& recording, const std::string& path);

// Loads a recording with a structured reason. v2 truncation/corruption
// salvages the longest valid prefix (error + partial set); v1 files load
// only when fully intact.
RecordingLoadResult load_recording_ex(const std::string& path,
                                      FaultInjector* faults = nullptr);

// Compatibility wrapper: the recording when anything was recoverable
// (complete or salvaged prefix), std::nullopt otherwise.
std::optional<Recording> load_recording(const std::string& path);

}  // namespace ht
