// Recording persistence: a record & replay system is only useful if the
// recording survives the recording process (offline replay, replication-
// based fault tolerance — the §4.1 use cases), so recordings serialize to a
// simple versioned binary format:
//
//   magic "HTRC" | version u32 | thread_count u32
//   per thread:  event_count u64 | events (point u64, type u8, src u32,
//                                          value u64)
//   trailer:     FNV-1a checksum u64 over everything after the magic
//
// Integers are little-endian (the format is host-order; a checksum mismatch
// or bad magic fails the load rather than corrupting a replay).
#pragma once

#include <optional>
#include <string>

#include "recorder/dependence_log.hpp"

namespace ht {

inline constexpr std::uint32_t kRecordingFormatVersion = 1;

// Writes `recording` to `path`; returns false on I/O failure.
bool save_recording(const Recording& recording, const std::string& path);

// Loads a recording; returns std::nullopt on I/O failure, bad magic,
// version mismatch, truncation, or checksum mismatch.
std::optional<Recording> load_recording(const std::string& path);

}  // namespace ht
