#include "recorder/recording_validate.hpp"

#include <sstream>

namespace ht {

std::string ValidationResult::to_string() const {
  if (ok()) return "recording OK";
  std::ostringstream out;
  out << issues.size() << " issue(s):";
  for (const ValidationIssue& i : issues) {
    out << "\n  T" << i.thread << " event " << i.event << ": " << i.message;
  }
  return out.str();
}

ValidationResult validate_recording(const Recording& recording) {
  ValidationResult r;
  const std::size_t n = recording.threads.size();
  if (n == 0) {
    r.issues.push_back({0, 0, "recording has no threads"});
    return r;
  }
  for (std::size_t t = 0; t < n; ++t) {
    const auto& events = recording.threads[t].events;
    std::uint64_t last_point = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const LogEvent& e = events[i];
      if (e.point < last_point) {
        r.issues.push_back(
            {static_cast<ThreadId>(t), i,
             "event point decreases (log not in program order)"});
      }
      last_point = e.point;
      if (e.type == LogEventType::kEdge) {
        if (e.src >= n) {
          r.issues.push_back({static_cast<ThreadId>(t), i,
                              "edge source thread out of range"});
        } else if (e.src == t) {
          r.issues.push_back({static_cast<ThreadId>(t), i,
                              "self-edge would deadlock replay"});
        }
      }
    }
  }
  return r;
}

std::string FileCheckResult::to_string() const {
  std::ostringstream out;
  out << load.to_string();
  if (load.recording.has_value()) out << "; structure: " << structure.to_string();
  return out.str();
}

FileCheckResult check_recording_file(const std::string& path) {
  FileCheckResult r;
  r.load = load_recording_ex(path);
  if (r.load.recording.has_value()) {
    r.structure = validate_recording(*r.load.recording);
  }
  return r;
}

int exit_code_for(RecordingLoadError error) {
  switch (error) {
    case RecordingLoadError::kNone:       return kExitOk;
    case RecordingLoadError::kIo:         return kExitIo;
    case RecordingLoadError::kBadMagic:   return kExitBadMagic;
    case RecordingLoadError::kBadVersion: return kExitBadVersion;
    case RecordingLoadError::kTruncated:  return kExitTruncated;
    case RecordingLoadError::kChecksum:   return kExitChecksum;
  }
  return kExitIo;  // unreachable; conservative for corrupted enum values
}

}  // namespace ht
