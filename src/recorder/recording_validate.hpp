// Recording validation: structural well-formedness checks run before a
// recording is replayed (or after it is loaded from disk). A malformed
// recording — out-of-range source threads, non-monotone point indices,
// edge values no source can ever reach — would make the replayer hang or
// misorder accesses; validation turns that into a diagnosable error.
#pragma once

#include <string>
#include <vector>

#include "recorder/dependence_log.hpp"

namespace ht {

struct ValidationIssue {
  ThreadId thread;       // log the issue was found in
  std::size_t event;     // index into that log
  std::string message;
};

struct ValidationResult {
  std::vector<ValidationIssue> issues;

  bool ok() const { return issues.empty(); }
  std::string to_string() const;
};

// Checks:
//   * the recording has at least one thread;
//   * every edge's source thread id is < thread count and != the sink
//     (a self-edge would deadlock the replayer on itself);
//   * per-thread event points are non-decreasing (logs are appended in
//     program order, so a decreasing point means corruption — the replay
//     cursor would skip the out-of-order events).
// Reachability of edge values cannot be decided from the recording alone
// (deterministic PSRO bumps depend on the program), so it is not checked.
ValidationResult validate_recording(const Recording& recording);

}  // namespace ht
