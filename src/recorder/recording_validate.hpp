// Recording validation: structural well-formedness checks run before a
// recording is replayed (or after it is loaded from disk). A malformed
// recording — out-of-range source threads, non-monotone point indices,
// edge values no source can ever reach — would make the replayer hang or
// misorder accesses; validation turns that into a diagnosable error.
#pragma once

#include <string>
#include <vector>

#include "recorder/dependence_log.hpp"
#include "recorder/recording_io.hpp"

namespace ht {

struct ValidationIssue {
  ThreadId thread;       // log the issue was found in
  std::size_t event;     // index into that log
  std::string message;
};

struct ValidationResult {
  std::vector<ValidationIssue> issues;

  bool ok() const { return issues.empty(); }
  std::string to_string() const;
};

// Checks:
//   * the recording has at least one thread;
//   * every edge's source thread id is < thread count and != the sink
//     (a self-edge would deadlock the replayer on itself);
//   * per-thread event points are non-decreasing (logs are appended in
//     program order, so a decreasing point means corruption — the replay
//     cursor would skip the out-of-order events).
// Reachability of edge values cannot be decided from the recording alone
// (deterministic PSRO bumps depend on the program), so it is not checked.
ValidationResult validate_recording(const Recording& recording);

// File-level check: load (reporting WHY a load failed or was cut short —
// bad magic / version / truncated / checksum / io) and, when anything was
// recoverable, run the structural checks on it. A salvaged v2 prefix is
// validated too: a prefix of a well-formed recording is well-formed, so
// structural issues in a partial file still indicate real corruption.
struct FileCheckResult {
  RecordingLoadResult load;
  ValidationResult structure;  // meaningful only when load.recording exists

  bool ok() const { return load.complete() && structure.ok(); }
  std::string to_string() const;
};

FileCheckResult check_recording_file(const std::string& path);

// Process exit codes shared by the recording_validate and trace_lint tools,
// so scripts can distinguish WHY a file was rejected without parsing output.
// Loader failures map 1:1 onto RecordingLoadError; structural and lint
// findings get their own codes. Documented in the top-level README.
enum ToolExitCode : int {
  kExitOk = 0,         // file loaded intact and every check passed
  kExitUsage = 1,      // bad command line
  kExitBadMagic = 2,   // not a recording file (RecordingLoadError::kBadMagic)
  kExitBadVersion = 3, // unknown format version (kBadVersion)
  kExitTruncated = 4,  // file ends early (kTruncated; v2 prefix salvaged)
  kExitChecksum = 5,   // corrupted payload (kChecksum; v2 prefix salvaged)
  kExitIo = 6,         // open/read failure (kIo)
  kExitStructure = 7,  // loaded, but structural validation failed
  kExitLint = 8,       // loaded and well-formed, but a lint invariant failed
  // trace_analyze only: loaded, well-formed, lint-clean, but the offline
  // happens-before engine found a region-serializability violation (a
  // conflict cycle among enforcer regions — DESIGN.md §12.4).
  kExitUnserializable = 9,
};

// Maps a loader failure to its exit code; kNone maps to kExitOk (the caller
// then layers kExitStructure / kExitLint on top of a clean load).
int exit_code_for(RecordingLoadError error);

}  // namespace ht
