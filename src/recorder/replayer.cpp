#include "recorder/replayer.hpp"

#include <memory>

#include "common/assert.hpp"

namespace ht {

Replayer::Replayer(const Recording& recording) {
  threads_.reserve(recording.threads.size());
  for (const ThreadLog& log : recording.threads) {
    auto pt = std::make_unique<PerThread>();
    pt->events = &log.events;
    threads_.push_back(std::move(pt));
  }
  HT_ASSERT(!threads_.empty(), "replaying an empty recording");
}

std::uint64_t Replayer::blocking_waits() const {
  std::uint64_t n = 0;
  for (const auto& t : threads_) n += t->blocking_waits;
  return n;
}

}  // namespace ht
