// Deterministic replayer (paper §4): re-executes the recorded program with
// no tracking at all, enforcing each recorded happens-before edge by making
// the sink wait for its source thread's release counter to reach the
// recorded value.
//
// Per-thread replay state mirrors the recorder's deterministic counters: the
// point index advances at the same instrumentation points (tracked accesses,
// poll sites, lock operations), release counters bump at PSROs and thread
// exits (deterministic) and at logged kResponse events (nondeterministic
// bumps reproduced from the log). Program synchronization is elided — "the
// replayer elides program synchronization operations and replays only the
// recorded dependences" (§7.6) — which is why replay can outrun the baseline
// for lock-heavy programs.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cache_line.hpp"
#include "common/spin.hpp"
#include "recorder/dependence_log.hpp"

namespace ht {

class Replayer {
 public:
  explicit Replayer(const Recording& recording);

  std::size_t thread_count() const { return threads_.size(); }

  // Advance thread `self` past one instrumentation point: bump the point
  // index, replay any logged bumps at that point, and block on any logged
  // edges. Call before the raw program access / at each poll or lock site.
  void at_point(ThreadId self) {
    PerThread& me = *threads_[self];
    ++me.point_index;
    apply_events(me);
  }

  // PSRO site: an instrumentation point plus a deterministic release bump.
  void at_psro(ThreadId self) {
    PerThread& me = *threads_[self];
    ++me.point_index;
    apply_events(me);
    me.release_counter.fetch_add(1, std::memory_order_release);
  }

  // Mirrors the recorder-side unregister bump.
  void at_thread_end(ThreadId self) {
    threads_[self]->release_counter.fetch_add(1, std::memory_order_release);
  }

  std::uint64_t release_counter(ThreadId t) const {
    return threads_[t]->release_counter.load(std::memory_order_acquire);
  }

  // Total edge waits that actually had to spin (replay-cost diagnostics).
  std::uint64_t blocking_waits() const;

 private:
  struct alignas(kCacheLine) PerThread {
    const std::vector<LogEvent>* events = nullptr;
    std::size_t cursor = 0;
    std::uint64_t point_index = 0;
    std::atomic<std::uint64_t> release_counter{0};
    std::uint64_t blocking_waits = 0;
  };

  // Applies every logged event up to and including the current point.
  // Events can carry indices *smaller* than any instrumentation point the
  // replayer visits (e.g. the blocking-entry bump a thread logs at a driver
  // barrier before its first access, at point 0); applying them at the next
  // visited point keeps them ordered before the same accesses they preceded
  // during recording.
  void apply_events(PerThread& me) {
    const auto& evs = *me.events;
    while (me.cursor < evs.size() && evs[me.cursor].point <= me.point_index) {
      const LogEvent& e = evs[me.cursor];
      if (e.type == LogEventType::kResponse) {
        me.release_counter.fetch_add(1, std::memory_order_release);
      } else if (e.type == LogEventType::kEdge) {
        wait_for(me, e.src, e.value);
      }
      // kRegionEnd: offline-analysis region mark for a deterministic bump;
      // the replayer already re-issues that bump at the same program point.
      ++me.cursor;
    }
  }

  void wait_for(PerThread& me, ThreadId src, std::uint64_t value) {
    const PerThread& s = *threads_[src];
    if (s.release_counter.load(std::memory_order_acquire) >= value) return;
    ++me.blocking_waits;
    Backoff backoff;
    while (s.release_counter.load(std::memory_order_acquire) < value) {
      backoff.pause();
    }
  }

  std::vector<std::unique_ptr<PerThread>> threads_;
};

}  // namespace ht
