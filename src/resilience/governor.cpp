#include "resilience/governor.hpp"

#include "runtime/thread_context.hpp"

namespace ht::resilience {

bool ResilienceGovernor::note_window(const WindowSample& w,
                                     ThreadContext* ctx) {
  const bool storm = is_storm(w);
  bool flipped = false;
  if (storm) {
    calm_run_ = 0;
    ++storm_run_;
    ++storm_windows_total_;
    if (!degraded_ && storm_run_ >= cfg_.storm_windows_to_degrade) {
      degraded_ = true;
      flipped = true;
    }
  } else {
    storm_run_ = 0;
    ++calm_run_;
    ++calm_windows_total_;
    if (degraded_ && calm_run_ >= cfg_.calm_windows_to_recover) {
      degraded_ = false;
      flipped = true;
    }
  }
  if (flipped) {
    ++flips_;
    if (policy_ != nullptr) policy_->set_degraded(degraded_);
    if (ctx != nullptr) {
      HT_TELEM_EVENT(*ctx, kGovernorFlip, degraded_ ? 1 : 0,
                     storm_windows_total_, calm_windows_total_);
    }
  }
  return flipped;
}

WindowSample window_from_snapshot(const telemetry::TraceSnapshot& snap) {
  WindowSample w;
  for (const telemetry::ThreadTrace& t : snap.threads) {
    for (const telemetry::Event& e : t.events) {
      switch (static_cast<telemetry::EventKind>(e.kind)) {
        case telemetry::EventKind::kCoordRoundTrip:
          ++w.coord_round_trips;
          if (e.arg2 == 0) ++w.explicit_round_trips;
          w.coord_cycles_total += e.arg0;
          break;
        case telemetry::EventKind::kPessWait:
          ++w.pess_waits;
          w.pess_wait_cycles_total += e.arg0;
          break;
        case telemetry::EventKind::kRegionRestart:
          ++w.region_restarts;
          break;
        case telemetry::EventKind::kLeaseExpired:
          ++w.lease_expiries;
          break;
        case telemetry::EventKind::kQuarantine:
          ++w.quarantines;
          break;
        default:
          break;
      }
    }
  }
  return w;
}

}  // namespace ht::resilience
