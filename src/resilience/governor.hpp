// Degradation governor (DESIGN.md §11.3): consumes the telemetry the runtime
// already exports (coordination round-trip and pessimistic-wait latencies,
// region restarts, lease expiries) in fixed observation windows and flips the
// adaptive policy's global degraded bit — toward pessimistic tracking under a
// coordination storm, back once the system has stayed calm.
//
// The hysteresis mirrors the paper's §6 Inertia term: just as a pessimistic
// object needs Inertia extra non-conflicting transitions before the
// per-object policy trusts it optimistic again, the governor requires
// `calm_windows_to_recover` consecutive calm windows (default 8, several
// times the 2-window degrade trigger) before undoing a degradation, so a
// storm that flickers cannot make the global mode thrash.
#pragma once

#include <cstdint>

#include "telemetry/telemetry.hpp"
#include "tracking/adaptive_policy.hpp"

namespace ht {
struct ThreadContext;
}

namespace ht::resilience {

// One observation window's worth of coordination-health signals, either
// aggregated from a telemetry snapshot (window_from_snapshot) or assembled
// directly by tests / embedders.
struct WindowSample {
  std::uint64_t coord_round_trips = 0;
  std::uint64_t explicit_round_trips = 0;  // subset needing explicit waits
  std::uint64_t coord_cycles_total = 0;
  std::uint64_t pess_waits = 0;
  std::uint64_t pess_wait_cycles_total = 0;
  std::uint64_t region_restarts = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t quarantines = 0;
};

struct GovernorConfig {
  // A window is a storm when any of:
  //   * a lease expired or a thread was quarantined,
  //   * region restarts reached storm_restarts,
  //   * the mean explicit round trip (or pessimistic wait), over at least
  //     min_samples events, reached storm_mean_cycles.
  std::uint64_t storm_mean_cycles = 1'000'000;
  std::uint64_t storm_restarts = 64;
  std::uint64_t min_samples = 16;
  // Hysteresis (§6 Inertia analogue): consecutive windows required to move.
  std::uint32_t storm_windows_to_degrade = 2;
  std::uint32_t calm_windows_to_recover = 8;
};

class ResilienceGovernor {
 public:
  explicit ResilienceGovernor(AdaptivePolicy* policy, GovernorConfig cfg = {})
      : policy_(policy), cfg_(cfg) {}

  const GovernorConfig& config() const { return cfg_; }
  bool degraded() const { return degraded_; }
  std::uint32_t flips() const { return flips_; }
  std::uint64_t storm_windows_total() const { return storm_windows_total_; }
  std::uint64_t calm_windows_total() const { return calm_windows_total_; }

  bool is_storm(const WindowSample& w) const {
    if (w.quarantines > 0 || w.lease_expiries > 0) return true;
    if (w.region_restarts >= cfg_.storm_restarts) return true;
    if (w.explicit_round_trips >= cfg_.min_samples &&
        w.coord_round_trips > 0 &&
        w.coord_cycles_total / w.coord_round_trips >= cfg_.storm_mean_cycles) {
      return true;
    }
    if (w.pess_waits >= cfg_.min_samples &&
        w.pess_wait_cycles_total / w.pess_waits >= cfg_.storm_mean_cycles) {
      return true;
    }
    return false;
  }

  // Feeds one window; returns true when the global mode flipped. `ctx` (may
  // be null) receives the kGovernorFlip telemetry event.
  bool note_window(const WindowSample& w, ThreadContext* ctx = nullptr);

 private:
  AdaptivePolicy* policy_;
  GovernorConfig cfg_;
  bool degraded_ = false;
  std::uint32_t storm_run_ = 0;  // consecutive storm windows
  std::uint32_t calm_run_ = 0;   // consecutive calm windows
  std::uint32_t flips_ = 0;
  std::uint64_t storm_windows_total_ = 0;
  std::uint64_t calm_windows_total_ = 0;
};

// Aggregates a drained telemetry snapshot into one window sample.
WindowSample window_from_snapshot(const telemetry::TraceSnapshot& snap);

}  // namespace ht::resilience
