#include "resilience/quarantine.hpp"

namespace ht::resilience {

void QuarantineSweep::operator()(ThreadContext& self, ThreadContext& victim) {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (enumerate_) {
    enumerate_([&](ObjectMeta& m) {
      if (seize_object(self, m, victim.id, land_pessimistic_)) {
        objects_seized_.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  if (seal_) seal_(victim.id);
  if (notify_) notify_(victim.id);
}

}  // namespace ht::resilience
