// Standard wiring for the runtime's on_quarantine hook (DESIGN.md §11.2).
//
// Runtime::quarantine_thread flips the victim's status and releases its
// waiters, but the runtime does not know which objects exist or where the
// recorder lives; QuarantineSweep closes that loop. Bound into
// RuntimeConfig::resilience.on_quarantine, it runs on the quarantining
// thread immediately after the status flip and
//   1. seizes every state word the victim still owns (the enumerator the
//      embedder provides walks the object population),
//   2. seals the victim's dependence-recorder log at its last complete
//      entry so degraded-run recordings stay loadable and lint-clean,
//   3. notifies an observer (degradation governor, tests).
//
// Multiple victims can be quarantined concurrently by different
// coordinators, so the counters are atomic; the enumerator itself must be
// safe for concurrent read-only traversal (both WorkloadData and the
// explorer worlds are — fixed object arrays).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "resilience/seizure.hpp"

namespace ht::resilience {

class QuarantineSweep {
 public:
  // Calls the argument once per object metadata in the population.
  using Enumerate =
      std::function<void(const std::function<void(ObjectMeta&)>&)>;

  QuarantineSweep() = default;
  explicit QuarantineSweep(Enumerate e) : enumerate_(std::move(e)) {}

  void set_enumerator(Enumerate e) { enumerate_ = std::move(e); }
  void set_seal(std::function<void(ThreadId)> s) { seal_ = std::move(s); }
  void set_notify(std::function<void(ThreadId)> n) { notify_ = std::move(n); }
  // Pure optimistic tracking has no pessimistic states; abandoned Ints must
  // land optimistic there (see seizure_landing).
  void set_land_pessimistic(bool p) { land_pessimistic_ = p; }

  // The hook body. Bind by reference:
  //   rc.resilience.on_quarantine = std::ref(sweep);
  void operator()(ThreadContext& self, ThreadContext& victim);

  std::uint64_t sweeps() const {
    return sweeps_.load(std::memory_order_relaxed);
  }
  std::uint64_t objects_seized() const {
    return objects_seized_.load(std::memory_order_relaxed);
  }

 private:
  Enumerate enumerate_;
  std::function<void(ThreadId)> seal_;
  std::function<void(ThreadId)> notify_;
  bool land_pessimistic_ = true;
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> objects_seized_{0};
};

}  // namespace ht::resilience
