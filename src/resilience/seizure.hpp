// Ownership reclamation from quarantined threads (DESIGN.md §11).
//
// A quarantined thread never reaches the responding safe point that would
// flush its lock buffer, so every state word it still holds locked (and any
// coordination intermediate it owns) would block survivors forever. Seizure
// performs the victim's unlock on its behalf, through the same
// intermediate-state CAS protocol the trackers already use: CAS the
// victim-owned state to Int_self (concurrent accessors treat Int as
// wait-and-retry), then land the state the victim's own deferred-unlock
// flush would have produced — normally the *pessimistic* unlocked flavor,
// transferring the contested object to pessimistic tracking (degrade rather
// than die). Under the pure optimistic tracker, which asserts on pessimistic
// states, an Int is landed optimistic instead.
//
// Safety: every victim-side mutation of a seizable state is a CAS (the flush
// unlock, the IntGuard restore, the post-coordination landing), so for each
// object exactly one of {victim's own racing flush, seizure} wins; the loser
// observes its CAS failure and skips (tracker side: parks).
#pragma once

#include "metadata/object_meta.hpp"
#include "runtime/thread_context.hpp"
#include "telemetry/telemetry.hpp"

namespace ht::resilience {

// True if `s` can only be released by thread `victim`. RdShRLock is
// deliberately excluded: its holders are anonymous (paper footnote 4), so a
// sweep cannot attribute it — survivors break stuck read-shares lazily after
// a full coordination round proves the remaining holders dead.
inline bool victim_owned(StateWord s, ThreadId victim) {
  switch (s.kind()) {
    case StateKind::kWrExWLock:
    case StateKind::kWrExRLock:
    case StateKind::kRdExRLock:
    case StateKind::kInt:
      return s.tid() == victim;
    default:
      return false;
  }
}

// The unlocked state a victim-owned word seizes to: what the victim's own
// flush would have stored, minus the adaptive policy's go-opt choice —
// seized objects land pessimistic so future conflicts are plain lock waits,
// not coordination with a dead thread. An abandoned Int has no recorded
// prior state; treat it as the victim's exclusive write (the strongest claim
// it could have been coordinating toward). `land_pessimistic` is false only
// under the pure optimistic tracker, which has no pessimistic states.
inline StateWord seizure_landing(StateWord s, bool land_pessimistic) {
  switch (s.kind()) {
    case StateKind::kWrExWLock:
    case StateKind::kWrExRLock:
      return StateWord::wr_ex_pess(s.tid());
    case StateKind::kRdExRLock:
      return StateWord::rd_ex_pess(s.tid());
    case StateKind::kInt:
      return land_pessimistic ? StateWord::wr_ex_pess(s.tid())
                              : StateWord::wr_ex_opt(s.tid());
    default:
      return s;
  }
}

// Seizes one object if its current state is owned by `victim` (which must
// already be quarantined). Returns true when this call performed the
// transfer; emits kSeizure telemetry on the seizing thread's ring.
inline bool seize_object(ThreadContext& self, ObjectMeta& m, ThreadId victim,
                         bool land_pessimistic = true) {
  HT_TELEM_CYCLES(t0);
  for (;;) {
    StateWord s = m.load_state();
    if (!victim_owned(s, victim)) return false;
    StateWord expected = s;
    if (s.kind() == StateKind::kInt) {
      // The victim parked owning a coordination intermediate; replace it
      // with the landing in one CAS — waiters re-read and proceed.
      if (m.cas_state(expected, seizure_landing(s, land_pessimistic))) {
        HT_TELEM_TRANSITION(self, &m, s, seizure_landing(s, land_pessimistic));
        break;
      }
    } else {
      // Locked state: claim via Int_self first (the protocol every slow
      // path already understands), then land.
      if (m.cas_state(expected, StateWord::intermediate(self.id))) {
        HT_TELEM_TRANSITION(self, &m, s, StateWord::intermediate(self.id));
        m.store_state(seizure_landing(s, land_pessimistic));
        HT_TELEM_TRANSITION(self, &m, StateWord::intermediate(self.id),
                            seizure_landing(s, land_pessimistic));
        break;
      }
    }
    // CAS lost: the victim's own racing pre-park flush or another seizer
    // got there first; re-examine.
  }
  HT_TELEM_ELAPSED(self, kSeizure, t0, telemetry::object_id(&m), victim);
  return true;
}

}  // namespace ht::resilience
