#include "runtime/runtime.hpp"

#include <cstdio>
#include <sstream>

#include "common/spin.hpp"
#include "faultinject/fault_injector.hpp"
#include "telemetry/telemetry.hpp"

namespace ht {

Runtime::Runtime(RuntimeConfig cfg)
    : cfg_(std::move(cfg)),
      registry_(cfg_.max_threads),
      injector_(cfg_.fault_injector) {}

ThreadContext& Runtime::register_thread() {
  ThreadContext& ctx = registry_.register_thread(this);
  if (cfg_.telemetry != nullptr) {
    ctx.telem = cfg_.telemetry->attach(ctx.id);
    HT_TELEM_EVENT(ctx, kThreadStart, ctx.point_index, 0, 0);
  }
  return ctx;
}

void Runtime::unregister_thread(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "thread exiting inside an SBRS region");
  // Thread exit has release semantics: flush held states and bump, so that
  // other threads' conservative current-counter edges cover this thread's
  // final accesses. The replayer mirrors this bump at thread end
  // (deterministic, so it is not logged).
  ctx.run_flush_hook();
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  HT_TELEM_EVENT(ctx, kThreadExit, ctx.release_counter_relaxed(), 0, 0);
  registry_.mark_exited(ctx);
  // Answer any stragglers that ticketed before seeing the parked status.
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req > ctx.owner_side.response_watermark.load(std::memory_order_relaxed)) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  }
}

void Runtime::psro(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "PSRO inside an SBRS region");
  ++ctx.point_index;
  ++ctx.stats.psros;
  ctx.run_flush_hook();
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  HT_TELEM_EVENT(ctx, kPsro, ctx.release_counter_relaxed(), 0, 0);
  // Pending requests are satisfied by the flush we just performed; the PSRO
  // bump doubles as the responding bump, so no extra increment and no
  // response log entry (the PSRO bump is deterministic — DESIGN.md §4.4).
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req > ctx.owner_side.response_watermark.load(std::memory_order_relaxed)) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
    ++ctx.stats.responding_safepoints;
  }
}

void Runtime::respond(ThreadContext& ctx) {
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req <= ctx.owner_side.response_watermark.load(std::memory_order_relaxed))
    return;
  ctx.run_abort_hook();  // enforcer: roll back region writes while still owner
  ctx.run_flush_hook();  // hybrid: deferred unlocking's buffer flush
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  ++ctx.stats.responding_safepoints;
  HT_TELEM_EVENT(ctx, kSafePointResponse, ctx.release_counter_relaxed(), 0, 0);
  ctx.run_resp_log_hook();  // recorder: nondeterministic bump -> log it
}

bool Runtime::poll_fault_suppressed(ThreadContext& ctx) {
  return injector_->at_safe_point(ctx.id);
}

void Runtime::slow_path_fault(ThreadContext& ctx) {
  injector_->at_slow_path(ctx.id);
}

void Runtime::begin_blocking(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "blocking operation inside an SBRS region");
  std::uint64_t s = ctx.owner_side.status.load(std::memory_order_relaxed);
  HT_ASSERT(!ThreadStatus::is_blocked(s), "begin_blocking while blocked");
  // Blocking is a responding safe point (§2.2): flush and bump BEFORE
  // publishing BLOCKED, so implicit coordinators find no held locks and read
  // a counter value covering all our prior accesses.
  ctx.run_flush_hook();
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  ++ctx.stats.responding_safepoints;
  HT_TELEM_EVENT(ctx, kBlockingEnter, ctx.release_counter_relaxed(), 0, 0);
  ctx.run_resp_log_hook();
  ctx.owner_side.status.store(s | ThreadStatus::kBlockedBit,
                              std::memory_order_release);
  // Stragglers that ticketed before observing BLOCKED: satisfied by the
  // flush above; just publish the watermark.
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req > ctx.owner_side.response_watermark.load(std::memory_order_relaxed)) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  }
}

void Runtime::end_blocking(ThreadContext& ctx) {
  // Requesters may be CASing the epoch up concurrently; loop until our
  // RUNNING transition lands.
  std::uint64_t s = ctx.owner_side.status.load(std::memory_order_relaxed);
  for (;;) {
    HT_DASSERT(ThreadStatus::is_blocked(s), "end_blocking while running");
    const std::uint64_t running =
        ThreadStatus::make(ThreadStatus::epoch(s) + 1, /*blocked=*/false);
    if (ctx.owner_side.status.compare_exchange_weak(
            s, running, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      break;
    }
  }
  HT_TELEM_EVENT(ctx, kBlockingExit, ctx.release_counter_relaxed(), 0, 0);
  // Wake-up is a responding safe point for requests that arrived while we
  // were parked but whose senders did not use implicit coordination.
  if (ctx.requests_pending()) respond(ctx);
}

namespace {

// Owner-progress fingerprint for the watchdog. Any change — a poll, a
// release-counter bump, a status transition, a watermark advance — counts as
// progress and resets the stall clock.
struct ProgressFingerprint {
  std::uint64_t last_poll = 0;
  std::uint64_t release_counter = 0;
  std::uint64_t status = 0;
  std::uint64_t watermark = 0;

  bool operator==(const ProgressFingerprint&) const = default;

  static ProgressFingerprint of(const ThreadContext& t) {
    return {t.owner_side.last_poll.load(std::memory_order_relaxed),
            t.owner_side.release_counter.load(std::memory_order_relaxed),
            t.owner_side.status.load(std::memory_order_relaxed),
            t.owner_side.response_watermark.load(std::memory_order_relaxed)};
  }
};

}  // namespace

std::optional<Runtime::CoordResult> Runtime::coordinate_impl(
    ThreadContext& self, ThreadId owner, std::uint64_t max_epochs) {
  HT_ASSERT(owner != self.id, "self-coordination");
  ThreadContext& remote = registry_.context(owner);
  ++self.stats.coordination_rounds;
  HT_TELEM_CYCLES(telem_t0);

  // Fast path: implicit coordination with a blocked owner (§2.2). The CAS on
  // the epoch proves the owner is parked beyond its flush-and-bump.
  std::uint64_t st = remote.owner_side.status.load(std::memory_order_acquire);
  if (ThreadStatus::is_blocked(st)) {
    if (remote.owner_side.status.compare_exchange_strong(
            st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, owner, 1);
      return CoordResult{
          remote.owner_side.release_counter.load(std::memory_order_acquire),
          /*implicit=*/true};
    }
  }

  // Explicit request: take a ticket, wait for the owner's watermark to pass
  // it. While waiting we are ourselves a safe point (Fig 1 line 18).
  const std::uint64_t ticket =
      remote.requester_side.request_tickets.fetch_add(
          1, std::memory_order_acq_rel) +
      1;
  const WatchdogConfig& wd = cfg_.watchdog;
  const bool police = max_epochs == 0 && wd.enabled;
  Backoff backoff;
  std::uint64_t epochs = 0;
  std::uint64_t stalled_epochs = 0;
  std::uint32_t dumps = 0;
  ProgressFingerprint last = ProgressFingerprint::of(remote);
  for (;;) {
    if (remote.owner_side.response_watermark.load(std::memory_order_acquire) >=
        ticket) {
      HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, owner, 0);
      return CoordResult{
          remote.owner_side.release_counter.load(std::memory_order_acquire),
          /*implicit=*/false};
    }
    st = remote.owner_side.status.load(std::memory_order_acquire);
    if (ThreadStatus::is_blocked(st) &&
        remote.owner_side.status.compare_exchange_strong(
            st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      // Owner blocked after our ticket; our abandoned ticket is harmless
      // (the watermark scheme answers it at the owner's next safe point).
      HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, owner, 1);
      return CoordResult{
          remote.owner_side.release_counter.load(std::memory_order_acquire),
          /*implicit=*/true};
    }
    respond_while_waiting(self);  // may throw RegionRestart; wait point
    // Under a virtual scheduler the wait point above already yielded the
    // virtual CPU; OS backoff on top would only burn wall time.
    if (!schedule::virtualized()) backoff.pause();
    ++epochs;
    if (max_epochs != 0 && epochs >= max_epochs) {
      // Bounded wait expired. The abandoned ticket stays harmless: it is
      // below the owner's watermark after its next responding safe point.
      return std::nullopt;
    }
    if (police) {
      const ProgressFingerprint now = ProgressFingerprint::of(remote);
      if (now != last) {
        last = now;
        stalled_epochs = 0;
      } else if (++stalled_epochs >= wd.stall_epochs) {
        CoordStallDiagnostic diag = build_stall_diagnostic(
            self, remote, ticket, epochs, stalled_epochs);
        if (dumps < wd.max_dumps) {
          emit_stall_diagnostic(diag);
          ++dumps;
        }
        if (wd.on_stall == WatchdogConfig::OnStall::kFailFast) {
          throw CoordinationStalled{std::move(diag)};
        }
        stalled_epochs = 0;  // kContinue: rearm the stall clock
      }
    }
  }
}

Runtime::CoordResult Runtime::coordinate(ThreadContext& self, ThreadId owner) {
  // Unbounded wait never returns nullopt (it either completes or throws).
  return *coordinate_impl(self, owner, /*max_epochs=*/0);
}

std::optional<Runtime::CoordResult> Runtime::coordinate_bounded(
    ThreadContext& self, ThreadId owner, std::uint64_t max_epochs) {
  HT_ASSERT(max_epochs > 0, "bounded coordination needs a nonzero bound");
  return coordinate_impl(self, owner, max_epochs);
}

bool Runtime::coordinate_all_others(ThreadContext& self) {
  bool any_explicit = false;
  const ThreadId n = registry_.high_water();
  for (ThreadId t = 0; t < n; ++t) {
    if (t == self.id) continue;
    if (!coordinate(self, t).implicit) any_explicit = true;
  }
  return any_explicit;
}

// --- diagnostics ---------------------------------------------------------------

ThreadLivenessSample Runtime::sample_thread(ThreadId id) const {
  const ThreadContext& t = registry_.context(id);
  ThreadLivenessSample s;
  s.id = id;
  const std::uint64_t status =
      t.owner_side.status.load(std::memory_order_acquire);
  s.blocked = ThreadStatus::is_blocked(status);
  s.exited = t.exited.load(std::memory_order_relaxed);
  s.status_epoch = ThreadStatus::epoch(status);
  s.last_poll = t.owner_side.last_poll.load(std::memory_order_relaxed);
  s.release_counter =
      t.owner_side.release_counter.load(std::memory_order_relaxed);
  s.request_tickets =
      t.requester_side.request_tickets.load(std::memory_order_relaxed);
  s.response_watermark =
      t.owner_side.response_watermark.load(std::memory_order_relaxed);
  return s;
}

std::vector<ThreadLivenessSample> Runtime::sample_all_threads() const {
  std::vector<ThreadLivenessSample> v;
  const ThreadId n = registry_.high_water();
  v.reserve(n);
  for (ThreadId t = 0; t < n; ++t) v.push_back(sample_thread(t));
  return v;
}

CoordStallDiagnostic Runtime::build_stall_diagnostic(
    const ThreadContext& self, const ThreadContext& remote,
    std::uint64_t ticket, std::uint64_t waited_epochs,
    std::uint64_t stalled_epochs) const {
  CoordStallDiagnostic d;
  d.requester = self.id;
  d.owner = remote.id;
  d.ticket = ticket;
  d.waited_epochs = waited_epochs;
  d.stalled_epochs = stalled_epochs;
  d.owner_sample = sample_thread(remote.id);
  d.threads = sample_all_threads();
  return d;
}

void Runtime::emit_stall_diagnostic(const CoordStallDiagnostic& diag) const {
  if (cfg_.watchdog.sink) {
    cfg_.watchdog.sink(diag);
    return;
  }
  std::fprintf(stderr, "%s\n", diag.to_string().c_str());
}

namespace {

void append_sample(std::ostringstream& out, const ThreadLivenessSample& s) {
  out << "T" << s.id << ": "
      << (s.exited ? "exited" : s.blocked ? "blocked" : "running")
      << " last_poll=" << s.last_poll << " release=" << s.release_counter
      << " epoch=" << s.status_epoch << " pending=" << s.pending_requests()
      << " (tickets=" << s.request_tickets
      << " watermark=" << s.response_watermark << ")";
}

}  // namespace

std::string CoordStallDiagnostic::to_string() const {
  std::ostringstream out;
  out << "[watchdog] coordination stall: T" << requester << " waiting on T"
      << owner << " (ticket " << ticket << ", " << stalled_epochs
      << " epochs without owner progress, " << waited_epochs
      << " epochs total)\n  owner ";
  append_sample(out, owner_sample);
  out << "\n  all threads:";
  for (const ThreadLivenessSample& s : threads) {
    out << "\n    ";
    append_sample(out, s);
  }
  return out.str();
}

}  // namespace ht
