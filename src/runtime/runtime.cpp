#include "runtime/runtime.hpp"

#include <cstdio>
#include <sstream>

#include "common/spin.hpp"
#include "faultinject/fault_injector.hpp"
#include "telemetry/telemetry.hpp"

namespace ht {

namespace {

// Stales the thread's elision cache at a revocation-capable participation
// point and emits the kElisionFlush window event (hit/miss deltas since the
// previous flush event). The snapshot updates are unconditional so deltas
// stay correct across builds with telemetry compiled out.
inline void elision_flush(ThreadContext& ctx) {
  ctx.bump_elision_epoch();
  HT_TELEM_EVENT(ctx, kElisionFlush,
                 ctx.stats.elision_hits - ctx.elision_hits_at_flush,
                 ctx.stats.elision_misses - ctx.elision_misses_at_flush,
                 ctx.elision_epoch);
  ctx.elision_hits_at_flush = ctx.stats.elision_hits;
  ctx.elision_misses_at_flush = ctx.stats.elision_misses;
}

}  // namespace

Runtime::Runtime(RuntimeConfig cfg)
    : cfg_(std::move(cfg)),
      registry_(cfg_.max_threads),
      injector_(cfg_.fault_injector) {}

ThreadContext& Runtime::register_thread() {
  ThreadContext& ctx = registry_.register_thread(this);
  if (cfg_.telemetry != nullptr) {
    ctx.telem = cfg_.telemetry->attach(ctx.id);
    HT_TELEM_EVENT(ctx, kThreadStart, ctx.point_index, 0, 0);
  }
  return ctx;
}

void Runtime::unregister_thread(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "thread exiting inside an SBRS region");
  // Thread exit has release semantics: flush held states and bump, so that
  // other threads' conservative current-counter edges cover this thread's
  // final accesses. The replayer mirrors this bump at thread end
  // (deterministic, so it is not logged).
  //
  // A quarantined thread must NOT flush: its buffered locks point at state
  // words survivors already seized — drop them instead.
  if (ctx.quarantined_self || thread_quarantined(ctx.id)) {
    ctx.quarantined_self = true;
    ctx.lock_buffer.clear();
    ctx.rd_set.clear();
  } else {
    ctx.run_flush_hook();
  }
  elision_flush(ctx);  // the exit flush is a revocation point (§15)
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  ctx.run_region_log_hook();  // recorder: deterministic bump -> region mark
  registry_.mark_exited(ctx);
  // Answer any stragglers that ticketed before seeing the parked status.
  // The exit event carries the answered watermark range (before, after] so
  // offline span stitching can bind those tickets to this exit.
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  const std::uint64_t wm_before =
      ctx.owner_side.response_watermark.load(std::memory_order_relaxed);
  if (req > wm_before) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  }
  HT_TELEM_EVENT(ctx, kThreadExit, ctx.release_counter_relaxed(),
                 req > wm_before ? req : wm_before, wm_before);
  // Batch stragglers likewise: answered by the exit flush-and-bump above.
  drain_mailbox(ctx, ctx, ctx.release_counter_relaxed());
}

void Runtime::psro(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "PSRO inside an SBRS region");
  ++ctx.point_index;
  // Under the stuck_death fault model a dead thread reaches no further safe
  // point of any flavor: no flush, no lease renewal, no response. Its
  // deferred locks therefore stay stuck — which is what lets the watchdog
  // see the stall and the sweep reclaim them (DESIGN.md §11).
  if (injector_ != nullptr && injector_->thread_fully_stuck(ctx.id)) return;
  ++ctx.stats.psros;
  renew_lease(ctx);
  ctx.run_flush_hook();
  elision_flush(ctx);  // the PSRO flush releases held-lock entries (§15)
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  ctx.run_region_log_hook();  // recorder: deterministic bump -> region mark
  // Pending requests are satisfied by the flush we just performed; the PSRO
  // bump doubles as the responding bump, so no extra increment and no
  // response log entry (the PSRO bump is deterministic — DESIGN.md §4.4).
  // The PSRO event carries the answered watermark range (before, after] for
  // offline span stitching, so it is emitted after the publish.
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  const std::uint64_t wm_before =
      ctx.owner_side.response_watermark.load(std::memory_order_relaxed);
  if (req > wm_before) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
    ++ctx.stats.responding_safepoints;
  }
  HT_TELEM_EVENT(ctx, kPsro, ctx.release_counter_relaxed(),
                 req > wm_before ? req : wm_before, wm_before);
  // Batch requests are equally satisfied by the PSRO's flush-and-bump.
  drain_mailbox(ctx, ctx, ctx.release_counter_relaxed());
}

void Runtime::respond(ThreadContext& ctx) {
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  const std::uint64_t wm_before =
      ctx.owner_side.response_watermark.load(std::memory_order_relaxed);
  const bool scalar = req > wm_before;
  if (!scalar && !ctx.batch_requests_pending()) return;
  ctx.run_abort_hook();  // enforcer: roll back region writes while still owner
  ctx.run_flush_hook();  // hybrid: deferred unlocking's buffer flush
  // Responding hands ownership away (optimistic revocation + the flush
  // above); every cached elision entry is stale from here on (§15).
  elision_flush(ctx);
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  if (scalar) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  }
  // One safe-point visit answers the whole mailbox backlog, each node
  // stamped with the same post-bump counter (DESIGN.md §13).
  drain_mailbox(ctx, ctx, ctx.release_counter_relaxed());
  ++ctx.stats.responding_safepoints;
  // arg1/arg2 = watermark after/before: the tickets in (before, after] were
  // answered by exactly this response (offline span stitching, §14).
  HT_TELEM_EVENT(ctx, kSafePointResponse, ctx.release_counter_relaxed(),
                 scalar ? req : wm_before, wm_before);
  ctx.run_resp_log_hook();  // recorder: nondeterministic bump -> log it
}

void Runtime::drain_mailbox(ThreadContext& recorder, ThreadContext& ctx,
                            std::uint64_t src_release) {
  (void)recorder;  // only the telemetry build records on its ring
  if (!ctx.batch_requests_pending()) return;
  // Exclusive-consumer gate: the owner at a safe point and a quarantining
  // thread releasing the owner's backlog may race here; the loser leaves the
  // backlog to the winner (whose counter stamp is equally valid — both
  // postdate every program access the owner performed before this point).
  bool expected = false;
  if (!ctx.mailbox.draining.compare_exchange_strong(
          expected, true, std::memory_order_acquire,
          std::memory_order_relaxed)) {
    return;
  }
  for (CoordBatchNode* n = ctx.mailbox.queue.drain(); n != nullptr;) {
    // The consumed store frees the node for reuse by its requester — read
    // the link (and the span fields the event needs) first, and never touch
    // the node after the store.
    CoordBatchNode* next = n->next;
    HT_TELEM_EVENT(recorder, kCoordBatchDrain, n->span_id, n->requester,
                   n->objects);
    n->src_release.store(src_release, std::memory_order_relaxed);
    n->consumed.store(true, std::memory_order_release);
    n = next;
  }
  ctx.mailbox.draining.store(false, std::memory_order_release);
}

bool Runtime::poll_fault_suppressed(ThreadContext& ctx) {
  return injector_->at_safe_point(ctx.id);
}

void Runtime::slow_path_fault(ThreadContext& ctx) {
  injector_->at_slow_path(ctx.id);
}

void Runtime::begin_blocking(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "blocking operation inside an SBRS region");
  std::uint64_t s = ctx.owner_side.status.load(std::memory_order_relaxed);
  if (ThreadStatus::is_quarantined(s)) quarantined_self_park(ctx);
  HT_ASSERT(!ThreadStatus::is_blocked(s), "begin_blocking while blocked");
  // stuck_death: the thread parks on the program primitive without ever
  // publishing BLOCKED (or flushing), so coordination against it must go the
  // explicit route and stall — survivors see a stuck peer, not a parked one.
  // Death only flips at poll probes, so it cannot change between this check
  // and the matching end_blocking's.
  if (injector_ != nullptr && injector_->thread_fully_stuck(ctx.id)) return;
  // Blocking is a responding safe point (§2.2): flush and bump BEFORE
  // publishing BLOCKED, so implicit coordinators find no held locks and read
  // a counter value covering all our prior accesses.
  renew_lease(ctx);
  ctx.run_flush_hook();
  elision_flush(ctx);  // blocking enter flushes locks and invites implicit
                       // coordination against us (§15)
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  ++ctx.stats.responding_safepoints;
  // Stragglers that ticketed before this flush are satisfied by it; publish
  // the watermark before parking (same ordering as respond() — tickets taken
  // after this load resolve implicitly once BLOCKED is visible) so the enter
  // event can carry the answered range for offline span stitching.
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  const std::uint64_t wm_before =
      ctx.owner_side.response_watermark.load(std::memory_order_relaxed);
  if (req > wm_before) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  }
  HT_TELEM_EVENT(ctx, kBlockingEnter, ctx.release_counter_relaxed(),
                 req > wm_before ? req : wm_before, wm_before);
  ctx.run_resp_log_hook();
  // Publish BLOCKED with a CAS: a concurrent quarantine_thread may have
  // flipped the status since we loaded it, and a plain store would clobber
  // the terminal Quarantined word. Only quarantine can intervene here — no
  // requester CASes a non-blocked status — so one failure is conclusive.
  while (!ctx.owner_side.status.compare_exchange_weak(
      s, s | ThreadStatus::kBlockedBit, std::memory_order_release,
      std::memory_order_relaxed)) {
    if (ThreadStatus::is_quarantined(s)) quarantined_self_park(ctx);
  }
  // Batch stragglers that posted before observing BLOCKED, same deal.
  drain_mailbox(ctx, ctx, ctx.release_counter_relaxed());
}

void Runtime::end_blocking(ThreadContext& ctx) {
  // Requesters may be CASing the epoch up concurrently; loop until our
  // RUNNING transition lands. A late-waking thread that was quarantined
  // while parked observes the terminal bit here and must never CAS itself
  // back to running — it self-parks instead (the quarantine CAS contract).
  std::uint64_t s = ctx.owner_side.status.load(std::memory_order_relaxed);
  // stuck_death: the matching begin_blocking never published BLOCKED (same
  // check; death is stable between the two), so there is nothing to undo —
  // but a quarantine that landed meanwhile still parks us.
  if (injector_ != nullptr && injector_->thread_fully_stuck(ctx.id)) {
    if (ThreadStatus::is_quarantined(s)) quarantined_self_park(ctx);
    return;
  }
  for (;;) {
    if (ThreadStatus::is_quarantined(s)) quarantined_self_park(ctx);
    HT_DASSERT(ThreadStatus::is_blocked(s), "end_blocking while running");
    const std::uint64_t running =
        ThreadStatus::make(ThreadStatus::epoch(s) + 1, /*blocked=*/false);
    if (ctx.owner_side.status.compare_exchange_weak(
            s, running, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      break;
    }
  }
  renew_lease(ctx);
  // While we were parked, requesters revoked our optimistic ownership via
  // implicit coordination (epoch CASes) — the cache must restart cold (§15).
  ctx.bump_elision_epoch();
  HT_TELEM_EVENT(ctx, kBlockingExit, ctx.release_counter_relaxed(), 0, 0);
  // Wake-up is a responding safe point for requests that arrived while we
  // were parked but whose senders did not use implicit coordination.
  if (ctx.requests_pending() || ctx.batch_requests_pending()) respond(ctx);
}

void Runtime::quarantined_self_park(ThreadContext& ctx) {
  ctx.quarantined_self = true;
  // The quarantiner's kill-switch store already disabled probes; bump the
  // epoch too so the unwind leaves no current-epoch entries behind.
  ctx.bump_elision_epoch();
  // Owned per-object states were (or are being) seized via the Int
  // protocol; the buffered locks are no longer ours to unlock. Drop them.
  ctx.lock_buffer.clear();
  ctx.rd_set.clear();
  // Release any batch requesters still posted to us. Quarantine semantics
  // match scalar implicit coordination with a quarantined owner: the edge
  // value is our current counter, the state handoff happens by seizure.
  drain_mailbox(ctx, ctx, ctx.release_counter_relaxed());
  throw ThreadQuarantined{ctx.id};
}

bool Runtime::quarantine_thread(ThreadContext& self, ThreadId victim) {
  HT_ASSERT(victim != self.id, "self-quarantine");
  ThreadContext& remote = registry_.context(victim);
  std::uint64_t st = remote.owner_side.status.load(std::memory_order_acquire);
  if (ThreadStatus::is_quarantined(st) ||
      remote.exited.load(std::memory_order_relaxed)) {
    return false;
  }
  const std::uint64_t q =
      ThreadStatus::make_quarantined(ThreadStatus::epoch(st) + 1);
  if (!remote.owner_side.status.compare_exchange_strong(
          st, q, std::memory_order_acq_rel, std::memory_order_acquire)) {
    // The victim's status moved under us — its lease was effectively
    // renewed, so the quarantine is off. The caller rearms its stall clock.
    return false;
  }
  // Elision kill switch (§15): quarantine is the ONE revocation that happens
  // without the victim's participation, and the victim's elision epoch is
  // its own non-atomic field we must not touch. Disable its cache wholesale
  // BEFORE any of its state is seized (the watermark release below and the
  // on_quarantine sweep), so a victim racing past its last safe point cannot
  // elide an access to an object a survivor now owns. The status CAS above
  // already sequences us after the victim's in-flight access: if the victim
  // re-checks nothing else, its very next probe reads elision_on == false.
  remote.elision_on.store(false, std::memory_order_release);
  quarantined_count_.fetch_add(1, std::memory_order_acq_rel);
  // Release every waiter with an issued ticket. The state handoff a flush
  // would have performed happens through seizure instead (the on_quarantine
  // hook, or each survivor's lazy seizure of Int/locked states). CAS-max so
  // a concurrent straggler store by the not-yet-parked victim cannot move
  // the watermark backwards past us.
  const std::uint64_t req =
      remote.requester_side.request_tickets.load(std::memory_order_acquire);
  std::uint64_t wm =
      remote.owner_side.response_watermark.load(std::memory_order_relaxed);
  while (wm < req &&
         !remote.owner_side.response_watermark.compare_exchange_weak(
             wm, req, std::memory_order_release, std::memory_order_relaxed)) {
  }
  // Release the victim's batch waiters too, stamped with its current
  // counter — the same value the implicit path reads from a quarantined
  // owner. The draining flag keeps this from racing a not-yet-parked victim
  // consuming its own mailbox. The drain events land on OUR ring (`self` is
  // the executing thread; the victim's ring is not ours to write).
  drain_mailbox(self, remote,
                remote.owner_side.release_counter.load(
                    std::memory_order_acquire));
  HT_TELEM_EVENT(self, kQuarantine, victim, ThreadStatus::epoch(q), req);
  if (cfg_.resilience.on_quarantine) {
    cfg_.resilience.on_quarantine(self, remote);
  }
  return true;
}

namespace {

// Owner-progress fingerprint for the watchdog. Any change — a poll, a
// heartbeat, a release-counter bump, a status transition, a watermark
// advance — counts as progress and resets the stall clock.
struct ProgressFingerprint {
  std::uint64_t last_poll = 0;
  std::uint64_t heartbeat = 0;
  std::uint64_t release_counter = 0;
  std::uint64_t status = 0;
  std::uint64_t watermark = 0;

  bool operator==(const ProgressFingerprint&) const = default;

  static ProgressFingerprint of(const ThreadContext& t) {
    return {t.owner_side.last_poll.load(std::memory_order_relaxed),
            t.owner_side.heartbeat.load(std::memory_order_relaxed),
            t.owner_side.release_counter.load(std::memory_order_relaxed),
            t.owner_side.status.load(std::memory_order_relaxed),
            t.owner_side.response_watermark.load(std::memory_order_relaxed)};
  }
};

}  // namespace

std::optional<Runtime::CoordResult> Runtime::coordinate_impl(
    ThreadContext& self, ThreadId owner, std::uint64_t max_epochs) {
  HT_ASSERT(owner != self.id, "self-coordination");
  ThreadContext& remote = registry_.context(owner);
  ++self.stats.coordination_rounds;
  // Conservative epoch bump (§15): the wait loop below responds (flushing
  // our own buffer) from inside respond_while_waiting, and landing the
  // conflicting transition will rewrite ownership this cache may mirror.
  self.bump_elision_epoch();
  HT_TELEM_CYCLES(telem_t0);

  // Fast path: implicit coordination with a blocked owner (§2.2). The CAS on
  // the epoch proves the owner is parked beyond its flush-and-bump.
  std::uint64_t st = remote.owner_side.status.load(std::memory_order_acquire);
  if (ThreadStatus::is_blocked(st)) {
    if (remote.owner_side.status.compare_exchange_strong(
            st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, owner, 1);
      return CoordResult{
          remote.owner_side.release_counter.load(std::memory_order_acquire),
          /*implicit=*/true};
    }
  }

  // Explicit request: take a ticket, wait for the owner's watermark to pass
  // it. While waiting we are ourselves a safe point (Fig 1 line 18).
  const std::uint64_t ticket =
      remote.requester_side.request_tickets.fetch_add(
          1, std::memory_order_acq_rel) +
      1;
  // Span open (§14): identity is (owner, ticket); the matching close is this
  // thread's kCoordRoundTrip, the owner half joins by watermark range.
  HT_TELEM_EVENT(self, kCoordRequest, ticket, owner, 0);
  const WatchdogConfig& wd = cfg_.watchdog;
  const bool police = max_epochs == 0 && wd.enabled;
  // Jitter the sleep ticks by requester id: coordinators whose leases on the
  // same stalled owner expire together must not re-request in lockstep.
  Backoff backoff(/*spins_before_yield=*/2, /*yields_before_sleep=*/64,
                  wd.backoff_max_sleep_us,
                  /*jitter_seed=*/0x9E3779B9u * (self.id + 1));
  std::uint64_t epochs = 0;
  std::uint64_t stalled_epochs = 0;
  std::uint32_t dumps = 0;
  ProgressFingerprint last = ProgressFingerprint::of(remote);
  for (;;) {
    if (remote.owner_side.response_watermark.load(std::memory_order_acquire) >=
        ticket) {
      HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, owner, 0);
      return CoordResult{
          remote.owner_side.release_counter.load(std::memory_order_acquire),
          /*implicit=*/false};
    }
    st = remote.owner_side.status.load(std::memory_order_acquire);
    if (ThreadStatus::is_blocked(st) &&
        remote.owner_side.status.compare_exchange_strong(
            st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      // Owner blocked after our ticket; our abandoned ticket is harmless
      // (the watermark scheme answers it at the owner's next safe point).
      HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, owner, 1);
      return CoordResult{
          remote.owner_side.release_counter.load(std::memory_order_acquire),
          /*implicit=*/true};
    }
    respond_while_waiting(self);  // may throw RegionRestart; wait point
    // Under a virtual scheduler the wait point above already yielded the
    // virtual CPU; OS backoff on top would only burn wall time.
    if (!schedule::virtualized()) backoff.pause();
    ++epochs;
    if (max_epochs != 0 && epochs >= max_epochs) {
      // Bounded wait expired. The abandoned ticket stays harmless: it is
      // below the owner's watermark after its next responding safe point.
      return std::nullopt;
    }
    if (police) {
      const ProgressFingerprint now = ProgressFingerprint::of(remote);
      if (now != last) {
        last = now;
        stalled_epochs = 0;
      } else if (++stalled_epochs >= wd.stall_epochs) {
        // The owner's liveness lease expired: a full stall window passed
        // with no heartbeat, poll, response, or status movement.
        HT_TELEM_EVENT(self, kLeaseExpired, owner, ticket, stalled_epochs);
        CoordStallDiagnostic diag = build_stall_diagnostic(
            self, remote, ticket, epochs, stalled_epochs);
        if (dumps < wd.max_dumps) {
          emit_stall_diagnostic(diag);
          ++dumps;
        }
        if (wd.on_stall == WatchdogConfig::OnStall::kFailFast) {
          throw CoordinationStalled{std::move(diag)};
        }
        if (wd.on_stall == WatchdogConfig::OnStall::kQuarantine) {
          // Escalate: flip the silent owner to terminal Quarantined.
          // Success publishes its watermark past our ticket (the next loop
          // iteration returns); failure proves the owner progressed after
          // the fingerprint was taken, so rearming the clock is correct.
          quarantine_thread(self, owner);
          last = ProgressFingerprint::of(remote);
        }
        stalled_epochs = 0;  // kContinue/kQuarantine: rearm the stall clock
      }
    }
  }
}

Runtime::CoordResult Runtime::coordinate(ThreadContext& self, ThreadId owner) {
  // Unbounded wait never returns nullopt (it either completes or throws).
  return *coordinate_impl(self, owner, /*max_epochs=*/0);
}

std::optional<Runtime::CoordResult> Runtime::coordinate_bounded(
    ThreadContext& self, ThreadId owner, std::uint64_t max_epochs) {
  HT_ASSERT(max_epochs > 0, "bounded coordination needs a nonzero bound");
  return coordinate_impl(self, owner, max_epochs);
}

Runtime::CoordResult Runtime::coordinate_batch(ThreadContext& self,
                                               ThreadId owner,
                                               std::uint32_t n_objects) {
  BatchGroup g{owner, n_objects == 0 ? 1u : n_objects, {}};
  coordinate_batch_multi(self, &g, 1);
  return g.result;
}

void Runtime::coordinate_batch_multi(ThreadContext& self, BatchGroup* groups,
                                     std::size_t n) {
  HT_ASSERT(n <= kMaxBatchGroups, "batch group overflow");
  self.bump_elision_epoch();  // same conservative bump as coordinate_impl
  HT_TELEM_CYCLES(telem_t0);

  const auto finish = [&](BatchGroup& g) {
    // Batch accounting covers every exit uniformly: even the scalar
    // fallback answers all n_objects in the one flush-and-bump visit, so it
    // still counts as one batched round (requester-side only — a
    // quarantiner draining a victim's mailbox must never touch the victim's
    // non-atomic stats).
    ++self.stats.coord_batch_rounds;
    self.stats.coord_batch_objects += g.n_objects;
    HT_TELEM_EVENT(self, kCoordBatch, g.n_objects, g.owner,
                   g.result.implicit ? 1 : 0);
  };

  // Scatter phase: resolve parked owners implicitly, post one mailbox node
  // to every running owner. The implicit fast path is checked BEFORE
  // posting: coordination with a parked owner needs no mailbox traffic, and
  // not posting keeps a permanently-parked (exited, quarantined) owner's
  // mailbox from accumulating abandoned nodes.
  CoordBatchNode* nodes[kMaxBatchGroups];
  bool resolved[kMaxBatchGroups];
  std::size_t pending = 0;   // posted, awaiting drain
  bool deferred = false;     // pool-exhausted groups, settled scalar below
  for (std::size_t i = 0; i < n; ++i) {
    BatchGroup& g = groups[i];
    HT_ASSERT(g.owner != self.id, "self-coordination");
    nodes[i] = nullptr;
    resolved[i] = false;
    ThreadContext& remote = registry_.context(g.owner);
    std::uint64_t st =
        remote.owner_side.status.load(std::memory_order_acquire);
    if (ThreadStatus::is_blocked(st) &&
        remote.owner_side.status.compare_exchange_strong(
            st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      g.result = CoordResult{
          remote.owner_side.release_counter.load(std::memory_order_acquire),
          /*implicit=*/true};
      resolved[i] = true;
      ++self.stats.coordination_rounds;
      HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, g.owner, 1);
      finish(g);
      continue;
    }
    CoordBatchNode* node = self.claim_batch_node();
    if (node == nullptr) {
      // Every pool node is still in flight (abandoned to mailboxes nobody
      // has drained yet). One scalar round trip still covers all the
      // group's objects: a response is a whole-buffer flush either way.
      deferred = true;
      continue;
    }
    node->requester = self.id;
    node->objects = g.n_objects;
    node->span_id = ++self.coord_span_counter;
    node->src_release.store(0, std::memory_order_relaxed);
    // Marks the node in flight, so the next claim_batch_node() in this very
    // loop picks a different one.
    node->consumed.store(false, std::memory_order_relaxed);
    // Span open (§14): identity is (requester, span id); whoever drains the
    // node echoes the id in a kCoordBatchDrain on its own ring.
    HT_TELEM_EVENT(self, kCoordRequest, node->span_id, g.owner, 1);
    remote.mailbox.queue.push(node);  // the push's CAS releases the fills
    ++self.stats.coordination_rounds;
    nodes[i] = node;
    ++pending;
  }

  // Gather phase: wait for every posted node's drain (consumed, acquire) or
  // for its owner to park (implicit exit; the posted node is abandoned and
  // recycles at the next drain). Unwinding exits (RegionRestart from
  // responding, quarantine) abandon all pending nodes the same way.
  // Watchdog policing mirrors coordinate_impl, aimed at the first
  // unresolved owner and re-aimed as owners resolve: the mailbox is an
  // alternate request channel, not an alternate failure model.
  const WatchdogConfig& wd = cfg_.watchdog;
  const bool police = wd.enabled;
  Backoff backoff(/*spins_before_yield=*/2, /*yields_before_sleep=*/64,
                  wd.backoff_max_sleep_us,
                  /*jitter_seed=*/0x9E3779B9u * (self.id + 1));
  std::uint64_t epochs = 0;
  std::uint64_t stalled_epochs = 0;
  std::uint32_t dumps = 0;
  std::size_t policed = kMaxBatchGroups;  // sentinel: none yet
  ProgressFingerprint last{};
  while (pending != 0) {
    for (std::size_t i = 0; i < n && pending != 0; ++i) {
      if (resolved[i] || nodes[i] == nullptr) continue;
      BatchGroup& g = groups[i];
      ThreadContext& remote = registry_.context(g.owner);
      if (nodes[i]->consumed.load(std::memory_order_acquire)) {
        // Only this thread claims from its own pool, so the node's stamp
        // is stable until our next claim_batch_node().
        g.result = CoordResult{
            nodes[i]->src_release.load(std::memory_order_relaxed),
            /*implicit=*/false};
        resolved[i] = true;
        --pending;
        HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, g.owner, 0);
        finish(g);
        continue;
      }
      std::uint64_t st =
          remote.owner_side.status.load(std::memory_order_acquire);
      if (ThreadStatus::is_blocked(st) &&
          remote.owner_side.status.compare_exchange_strong(
              st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        g.result = CoordResult{
            remote.owner_side.release_counter.load(std::memory_order_acquire),
            /*implicit=*/true};
        resolved[i] = true;
        --pending;
        HT_TELEM_ELAPSED(self, kCoordRoundTrip, telem_t0, g.owner, 1);
        finish(g);
      }
    }
    if (pending == 0) break;
    respond_while_waiting(self);  // may throw RegionRestart; wait point
    // Under a virtual scheduler the wait point above already yielded the
    // virtual CPU; OS backoff on top would only burn wall time.
    if (!schedule::virtualized()) backoff.pause();
    ++epochs;
    if (police) {
      std::size_t target = kMaxBatchGroups;
      for (std::size_t i = 0; i < n; ++i) {
        if (!resolved[i] && nodes[i] != nullptr) {
          target = i;
          break;
        }
      }
      if (target == kMaxBatchGroups) continue;
      ThreadContext& remote = registry_.context(groups[target].owner);
      if (target != policed) {
        policed = target;
        last = ProgressFingerprint::of(remote);
        stalled_epochs = 0;
        continue;
      }
      const ProgressFingerprint now = ProgressFingerprint::of(remote);
      if (now != last) {
        last = now;
        stalled_epochs = 0;
      } else if (++stalled_epochs >= wd.stall_epochs) {
        HT_TELEM_EVENT(self, kLeaseExpired, groups[target].owner, 0,
                       stalled_epochs);
        CoordStallDiagnostic diag = build_stall_diagnostic(
            self, remote, /*ticket=*/0, epochs, stalled_epochs);
        if (dumps < wd.max_dumps) {
          emit_stall_diagnostic(diag);
          ++dumps;
        }
        if (wd.on_stall == WatchdogConfig::OnStall::kFailFast) {
          throw CoordinationStalled{std::move(diag)};
        }
        if (wd.on_stall == WatchdogConfig::OnStall::kQuarantine) {
          // Success drains the victim's mailbox (our node included) and
          // flips it to blocked-terminal, so the next sweep resolves it.
          quarantine_thread(self, groups[target].owner);
          last = ProgressFingerprint::of(remote);
        }
        stalled_epochs = 0;
      }
    }
  }

  if (deferred) {
    for (std::size_t i = 0; i < n; ++i) {
      if (resolved[i] || nodes[i] != nullptr) continue;
      BatchGroup& g = groups[i];
      g.result = *coordinate_impl(self, g.owner, /*max_epochs=*/0);
      resolved[i] = true;
      finish(g);
    }
  }
}

bool Runtime::coordinate_all_others(ThreadContext& self) {
  bool any_explicit = false;
  const ThreadId n = registry_.high_water();
  for (ThreadId t = 0; t < n; ++t) {
    if (t == self.id) continue;
    if (!coordinate(self, t).implicit) any_explicit = true;
  }
  return any_explicit;
}

// --- diagnostics ---------------------------------------------------------------

ThreadLivenessSample Runtime::sample_thread(ThreadId id) const {
  const ThreadContext& t = registry_.context(id);
  ThreadLivenessSample s;
  s.id = id;
  const std::uint64_t status =
      t.owner_side.status.load(std::memory_order_acquire);
  s.blocked = ThreadStatus::is_blocked(status);
  s.quarantined = ThreadStatus::is_quarantined(status);
  s.exited = t.exited.load(std::memory_order_relaxed);
  s.status_epoch = ThreadStatus::epoch(status);
  s.last_poll = t.owner_side.last_poll.load(std::memory_order_relaxed);
  s.heartbeat = t.owner_side.heartbeat.load(std::memory_order_relaxed);
  s.release_counter =
      t.owner_side.release_counter.load(std::memory_order_relaxed);
  s.request_tickets =
      t.requester_side.request_tickets.load(std::memory_order_relaxed);
  s.response_watermark =
      t.owner_side.response_watermark.load(std::memory_order_relaxed);
  return s;
}

std::vector<ThreadLivenessSample> Runtime::sample_all_threads() const {
  std::vector<ThreadLivenessSample> v;
  const ThreadId n = registry_.high_water();
  v.reserve(n);
  for (ThreadId t = 0; t < n; ++t) v.push_back(sample_thread(t));
  return v;
}

CoordStallDiagnostic Runtime::build_stall_diagnostic(
    const ThreadContext& self, const ThreadContext& remote,
    std::uint64_t ticket, std::uint64_t waited_epochs,
    std::uint64_t stalled_epochs) const {
  CoordStallDiagnostic d;
  d.requester = self.id;
  d.owner = remote.id;
  d.ticket = ticket;
  d.waited_epochs = waited_epochs;
  d.stalled_epochs = stalled_epochs;
  d.owner_sample = sample_thread(remote.id);
  d.threads = sample_all_threads();
  return d;
}

void Runtime::emit_stall_diagnostic(const CoordStallDiagnostic& diag) const {
  if (cfg_.watchdog.sink) {
    cfg_.watchdog.sink(diag);
    return;
  }
  std::fprintf(stderr, "%s\n", diag.to_string().c_str());
}

namespace {

void append_sample(std::ostringstream& out, const ThreadLivenessSample& s) {
  // Status first (the stalled thread's current ThreadStatus), then where it
  // stopped responding: its last poll site and last heartbeat epoch.
  out << "T" << s.id << ": "
      << (s.exited        ? "exited"
          : s.quarantined ? "quarantined"
          : s.blocked     ? "blocked"
                          : "running")
      << " last_poll=" << s.last_poll << " heartbeat=" << s.heartbeat
      << " release=" << s.release_counter << " epoch=" << s.status_epoch
      << " pending=" << s.pending_requests()
      << " (tickets=" << s.request_tickets
      << " watermark=" << s.response_watermark << ")";
}

}  // namespace

std::string CoordStallDiagnostic::to_string() const {
  std::ostringstream out;
  out << "[watchdog] coordination stall: T" << requester << " waiting on T"
      << owner << " (ticket " << ticket << ", " << stalled_epochs
      << " epochs without owner progress, " << waited_epochs
      << " epochs total)\n  owner ";
  append_sample(out, owner_sample);
  out << "\n  all threads:";
  for (const ThreadLivenessSample& s : threads) {
    out << "\n    ";
    append_sample(out, s);
  }
  return out.str();
}

}  // namespace ht

