#include "runtime/runtime.hpp"

#include "common/spin.hpp"

namespace ht {

Runtime::Runtime(RuntimeConfig cfg) : registry_(cfg.max_threads) {}

ThreadContext& Runtime::register_thread() {
  return registry_.register_thread(this);
}

void Runtime::unregister_thread(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "thread exiting inside an SBRS region");
  // Thread exit has release semantics: flush held states and bump, so that
  // other threads' conservative current-counter edges cover this thread's
  // final accesses. The replayer mirrors this bump at thread end
  // (deterministic, so it is not logged).
  ctx.run_flush_hook();
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  registry_.mark_exited(ctx);
  // Answer any stragglers that ticketed before seeing the parked status.
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req > ctx.owner_side.response_watermark.load(std::memory_order_relaxed)) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  }
}

void Runtime::psro(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "PSRO inside an SBRS region");
  ++ctx.point_index;
  ++ctx.stats.psros;
  ctx.run_flush_hook();
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  // Pending requests are satisfied by the flush we just performed; the PSRO
  // bump doubles as the responding bump, so no extra increment and no
  // response log entry (the PSRO bump is deterministic — DESIGN.md §4.4).
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req > ctx.owner_side.response_watermark.load(std::memory_order_relaxed)) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
    ++ctx.stats.responding_safepoints;
  }
}

void Runtime::respond(ThreadContext& ctx) {
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req <= ctx.owner_side.response_watermark.load(std::memory_order_relaxed))
    return;
  ctx.run_abort_hook();  // enforcer: roll back region writes while still owner
  ctx.run_flush_hook();  // hybrid: deferred unlocking's buffer flush
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  ++ctx.stats.responding_safepoints;
  ctx.run_resp_log_hook();  // recorder: nondeterministic bump -> log it
}

void Runtime::begin_blocking(ThreadContext& ctx) {
  HT_ASSERT(!ctx.in_region, "blocking operation inside an SBRS region");
  std::uint64_t s = ctx.owner_side.status.load(std::memory_order_relaxed);
  HT_ASSERT(!ThreadStatus::is_blocked(s), "begin_blocking while blocked");
  // Blocking is a responding safe point (§2.2): flush and bump BEFORE
  // publishing BLOCKED, so implicit coordinators find no held locks and read
  // a counter value covering all our prior accesses.
  ctx.run_flush_hook();
  ctx.owner_side.release_counter.fetch_add(1, std::memory_order_release);
  ++ctx.stats.responding_safepoints;
  ctx.run_resp_log_hook();
  ctx.owner_side.status.store(s | ThreadStatus::kBlockedBit,
                              std::memory_order_release);
  // Stragglers that ticketed before observing BLOCKED: satisfied by the
  // flush above; just publish the watermark.
  const std::uint64_t req =
      ctx.requester_side.request_tickets.load(std::memory_order_acquire);
  if (req > ctx.owner_side.response_watermark.load(std::memory_order_relaxed)) {
    ctx.owner_side.response_watermark.store(req, std::memory_order_release);
  }
}

void Runtime::end_blocking(ThreadContext& ctx) {
  // Requesters may be CASing the epoch up concurrently; loop until our
  // RUNNING transition lands.
  std::uint64_t s = ctx.owner_side.status.load(std::memory_order_relaxed);
  for (;;) {
    HT_DASSERT(ThreadStatus::is_blocked(s), "end_blocking while running");
    const std::uint64_t running =
        ThreadStatus::make(ThreadStatus::epoch(s) + 1, /*blocked=*/false);
    if (ctx.owner_side.status.compare_exchange_weak(
            s, running, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      break;
    }
  }
  // Wake-up is a responding safe point for requests that arrived while we
  // were parked but whose senders did not use implicit coordination.
  if (ctx.requests_pending()) respond(ctx);
}

Runtime::CoordResult Runtime::coordinate(ThreadContext& self, ThreadId owner) {
  HT_ASSERT(owner != self.id, "self-coordination");
  ThreadContext& remote = registry_.context(owner);
  ++self.stats.coordination_rounds;

  // Fast path: implicit coordination with a blocked owner (§2.2). The CAS on
  // the epoch proves the owner is parked beyond its flush-and-bump.
  std::uint64_t st = remote.owner_side.status.load(std::memory_order_acquire);
  if (ThreadStatus::is_blocked(st)) {
    if (remote.owner_side.status.compare_exchange_strong(
            st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      return {remote.owner_side.release_counter.load(std::memory_order_acquire),
              /*implicit=*/true};
    }
  }

  // Explicit request: take a ticket, wait for the owner's watermark to pass
  // it. While waiting we are ourselves a safe point (Fig 1 line 18).
  const std::uint64_t ticket =
      remote.requester_side.request_tickets.fetch_add(
          1, std::memory_order_acq_rel) +
      1;
  Backoff backoff;
  for (;;) {
    if (remote.owner_side.response_watermark.load(std::memory_order_acquire) >=
        ticket) {
      return {remote.owner_side.release_counter.load(std::memory_order_acquire),
              /*implicit=*/false};
    }
    st = remote.owner_side.status.load(std::memory_order_acquire);
    if (ThreadStatus::is_blocked(st) &&
        remote.owner_side.status.compare_exchange_strong(
            st, ThreadStatus::bump_epoch(st), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      // Owner blocked after our ticket; our abandoned ticket is harmless
      // (the watermark scheme answers it at the owner's next safe point).
      return {remote.owner_side.release_counter.load(std::memory_order_acquire),
              /*implicit=*/true};
    }
    respond_while_waiting(self);  // may throw RegionRestart
    backoff.pause();
  }
}

bool Runtime::coordinate_all_others(ThreadContext& self) {
  bool any_explicit = false;
  const ThreadId n = registry_.high_water();
  for (ThreadId t = 0; t < n; ++t) {
    if (t == self.id) continue;
    if (!coordinate(self, t).implicit) any_explicit = true;
  }
  return any_explicit;
}

}  // namespace ht
