// Runtime substrate: thread registration, safe points, the coordination
// protocol, and the global read-share counter.
//
// This is the C++ stand-in for the managed-VM services the paper piggybacks
// on (§7.1): safe points at which threads can be asked to participate in
// coordination, blocking safe points enabling implicit coordination, and
// program-synchronization release operations (PSROs) at which the hybrid
// model's deferred unlocking flushes the lock buffer.
//
// Release-counter discipline (recorder soundness, DESIGN.md §4.4): a thread
// bumps its release counter
//   (1) at every PSRO                         — deterministic, not logged,
//   (2) at every non-PSRO responding safe point (explicit response, blocking
//       entry, wake-up response)              — logged via the resp-log hook.
// Bumps are ordered *after* region rollback and lock-buffer flushing and
// *before* the response watermark / blocked status is published, so any
// thread that observes the response (or the unlocked state — flushes store
// states after the bump) reads a counter value that postdates every program
// access the owner performed before relinquishing.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/assert.hpp"
#include "runtime/thread_context.hpp"
#include "runtime/thread_registry.hpp"

namespace ht {

struct RuntimeConfig {
  std::size_t max_threads = 64;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- thread lifecycle ------------------------------------------------------
  // Registers the calling thread. Spawning a thread is itself a PSRO on the
  // parent side (the paper lists thread fork among PSROs); callers use
  // psro() before spawn — see workload::run_threads.
  ThreadContext& register_thread();

  // Final flush + release-counter bump + permanent BLOCKED parking. After
  // this every implicit coordination with the thread succeeds.
  void unregister_thread(ThreadContext& ctx);

  ThreadRegistry& registry() { return registry_; }
  const ThreadRegistry& registry() const { return registry_; }

  // --- global read-share counter (Table 1 note *) ------------------------------
  // Starts at 1 so that a fresh thread's rd_sh_count (0) is stale for every
  // RdSh state, forcing the fence transition on first read.
  std::uint32_t next_rd_sh_counter() {
    return g_rd_sh_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  std::uint32_t current_rd_sh_counter() const {
    return g_rd_sh_counter_.load(std::memory_order_acquire);
  }

  // --- safe points -------------------------------------------------------------
  // Deterministic poll site (loop back edges in the paper's compiled code).
  // Bumps the point index; responds to pending requests unless the thread is
  // inside an SBRS region (two-phase locking, §5.1).
  void poll(ThreadContext& ctx) {
    ++ctx.point_index;
    if (!ctx.in_region && ctx.requests_pending()) respond(ctx);
  }

  // Safe point inside nondeterministic spin loops (Fig 1 lines 9/18, Fig 10
  // line 55). Does NOT bump the point index. May throw RegionRestart when an
  // enforcer region responded (after rolling back).
  void respond_while_waiting(ThreadContext& ctx) {
    if (ctx.requests_pending()) {
      respond(ctx);
      if (ctx.restart_requested) {
        ctx.restart_requested = false;
        throw RegionRestart{};
      }
    }
  }

  // Program-synchronization release operation: flush the lock buffer, bump
  // the release counter (deterministically), answer pending requests.
  void psro(ThreadContext& ctx);

  // Blocking safe points (lock acquisition, join, barrier): flush, bump
  // (logged), park BLOCKED so requesters coordinate implicitly.
  void begin_blocking(ThreadContext& ctx);
  void end_blocking(ThreadContext& ctx);

  // --- coordination (requester side) --------------------------------------------
  struct CoordResult {
    std::uint64_t src_release;  // owner's release counter after its response
    bool implicit;              // true if the owner was blocked
  };

  // One round trip with `owner` (Fig 1 coordinate()). Spins responding to
  // the caller's own requests; may throw RegionRestart for enforcer regions.
  CoordResult coordinate(ThreadContext& self, ThreadId owner);

  // Conservative coordination with every other registered thread (RdSh old
  // states, paper footnote 4). Returns true if any round trip was explicit.
  bool coordinate_all_others(ThreadContext& self);

 private:
  // Responding safe point body; precondition: requests pending (or forced).
  void respond(ThreadContext& ctx);

  ThreadRegistry registry_;
  std::atomic<std::uint32_t> g_rd_sh_counter_{1};
};

}  // namespace ht
