// Runtime substrate: thread registration, safe points, the coordination
// protocol, and the global read-share counter.
//
// This is the C++ stand-in for the managed-VM services the paper piggybacks
// on (§7.1): safe points at which threads can be asked to participate in
// coordination, blocking safe points enabling implicit coordination, and
// program-synchronization release operations (PSROs) at which the hybrid
// model's deferred unlocking flushes the lock buffer.
//
// Release-counter discipline (recorder soundness, DESIGN.md §4.4): a thread
// bumps its release counter
//   (1) at every PSRO                         — deterministic, not logged,
//   (2) at every non-PSRO responding safe point (explicit response, blocking
//       entry, wake-up response)              — logged via the resp-log hook.
// Bumps are ordered *after* region rollback and lock-buffer flushing and
// *before* the response watermark / blocked status is published, so any
// thread that observes the response (or the unlocked state — flushes store
// states after the bump) reads a counter value that postdates every program
// access the owner performed before relinquishing.
//
// Failure model (DESIGN.md §7): the protocol above assumes every thread
// keeps reaching safe points. The coordination watchdog drops that
// assumption: an explicit-coordination wait that sees no owner progress for
// a configured number of backoff epochs samples every thread's liveness
// (last poll index, blocked/exited status, pending-request age), emits a
// structured diagnostic, and — per policy — keeps waiting or fails fast by
// throwing CoordinationStalled. Injected faults (src/faultinject/) drive
// these paths in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "runtime/thread_context.hpp"
#include "runtime/thread_registry.hpp"
#include "schedule/schedule_point.hpp"

namespace ht {

class FaultInjector;

namespace telemetry {
class TelemetrySession;
}  // namespace telemetry

// Point-in-time liveness sample of one thread, as seen by the watchdog.
struct ThreadLivenessSample {
  ThreadId id = kNoThread;
  bool blocked = false;
  bool quarantined = false;
  bool exited = false;
  std::uint64_t status_epoch = 0;
  std::uint64_t last_poll = 0;         // point index at its last poll
  std::uint64_t heartbeat = 0;         // liveness-lease epoch
  std::uint64_t release_counter = 0;
  std::uint64_t request_tickets = 0;
  std::uint64_t response_watermark = 0;

  // Requests issued but not yet answered (the pending-request backlog).
  std::uint64_t pending_requests() const {
    return request_tickets > response_watermark
               ? request_tickets - response_watermark
               : 0;
  }
};

// Structured dump emitted when the watchdog confirms a stall: who waited on
// whom, for how long, plus a per-thread liveness table.
struct CoordStallDiagnostic {
  ThreadId requester = kNoThread;
  ThreadId owner = kNoThread;
  std::uint64_t ticket = 0;           // the unanswered request
  std::uint64_t waited_epochs = 0;    // backoff epochs since coordinate() began
  std::uint64_t stalled_epochs = 0;   // epochs with zero observed owner progress
  ThreadLivenessSample owner_sample;
  std::vector<ThreadLivenessSample> threads;

  std::string to_string() const;
};

// Thrown by coordinate() when the watchdog policy is kFailFast and the owner
// made no progress for watchdog.stall_epochs backoff epochs. Carries the
// same diagnostic the sink received.
struct CoordinationStalled {
  CoordStallDiagnostic diagnostic;
};

struct WatchdogConfig {
  bool enabled = true;
  // Backoff epochs (pause() calls in the explicit wait loop) without any
  // observed owner progress before the wait is declared stalled. Epochs cost
  // microseconds once Backoff escalates to sleep ticks, so the default is
  // roughly a second of wall-clock silence.
  std::uint64_t stall_epochs = 4096;
  // What a confirmed stall does after the diagnostic is emitted.
  enum class OnStall : std::uint8_t {
    kContinue,    // keep waiting; re-diagnose every stall_epochs of silence
    kFailFast,    // throw CoordinationStalled
    kQuarantine,  // flip the owner to terminal Quarantined and proceed
  };
  OnStall on_stall = OnStall::kContinue;
  // Max diagnostics emitted per coordinate() call under kContinue (the wait
  // may legitimately outlive many windows; don't storm the sink).
  std::uint32_t max_dumps = 2;
  // Sleep-tick cap for the explicit-wait backoff — the lease re-request
  // period once a wait has escalated past yielding. Mirrors
  // Backoff::kDefaultMaxSleepUs.
  int backoff_max_sleep_us = 256;
  // Diagnostic sink; nullptr means "write to stderr".
  std::function<void(const CoordStallDiagnostic&)> sink;
};

// Hooks for the self-healing layer (src/resilience/). on_quarantine runs on
// the quarantining thread immediately after the victim's status flipped to
// Quarantined and its waiters were released; the standard wiring
// (resilience::QuarantineSweep) seizes every state word the victim still
// owns and seals its recorder log so the recording stays loadable.
struct ResilienceConfig {
  std::function<void(ThreadContext& self, ThreadContext& victim)>
      on_quarantine;
};

struct RuntimeConfig {
  std::size_t max_threads = 64;
  // Barrier elision (DESIGN.md §15): seeds each context's elision_on flag at
  // registration/reset. Forced off by -DHT_ELISION=OFF builds, under the
  // HT_CHECK_TRANSITIONS shadow checker, and per-thread whenever a sink
  // needs per-access visibility (race detector attach, recorder sinks).
  bool elision = true;
  WatchdogConfig watchdog;
  ResilienceConfig resilience;
  // Optional fault injector (not owned; must outlive the Runtime). When
  // null — the default — every injection site compiles down to one branch.
  FaultInjector* fault_injector = nullptr;
  // Optional telemetry session (not owned; must outlive the Runtime).
  // register_thread() attaches each context to its per-thread event ring;
  // without HT_TELEMETRY=ON the instrumentation macros compile away and the
  // rings stay empty.
  telemetry::TelemetrySession* telemetry = nullptr;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- thread lifecycle ------------------------------------------------------
  // Registers the calling thread. Spawning a thread is itself a PSRO on the
  // parent side (the paper lists thread fork among PSROs); callers use
  // psro() before spawn — see workload::run_threads.
  ThreadContext& register_thread();

  // Final flush + release-counter bump + permanent BLOCKED parking. After
  // this every implicit coordination with the thread succeeds.
  void unregister_thread(ThreadContext& ctx);

  ThreadRegistry& registry() { return registry_; }
  const ThreadRegistry& registry() const { return registry_; }

  const RuntimeConfig& config() const { return cfg_; }
  FaultInjector* fault_injector() const { return injector_; }

  // --- global read-share counter (Table 1 note *) ------------------------------
  // Starts at 1 so that a fresh thread's rd_sh_count (0) is stale for every
  // RdSh state, forcing the fence transition on first read.
  std::uint32_t next_rd_sh_counter() {
    return g_rd_sh_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  std::uint32_t current_rd_sh_counter() const {
    return g_rd_sh_counter_.load(std::memory_order_acquire);
  }

  // --- safe points -------------------------------------------------------------
  // Deterministic poll site (loop back edges in the paper's compiled code).
  // Bumps the point index; responds to pending requests unless the thread is
  // inside an SBRS region (two-phase locking, §5.1).
  void poll(ThreadContext& ctx) {
    ++ctx.point_index;
    // Quarantine self-check comes BEFORE fault suppression: a stuck thread
    // whose polls are suppressed (injected death) must still observe its own
    // quarantine at the next poll it executes and park rather than keep
    // running against seized state words.
    if (ThreadStatus::is_quarantined(
            ctx.owner_side.status.load(std::memory_order_acquire))) {
      quarantined_self_park(ctx);  // throws ThreadQuarantined
    }
    // A suppressed poll models a thread that never reached this safe point
    // (stalled in a long computation, or dead): nothing observable happens —
    // in particular last_poll and the heartbeat stay frozen so the watchdog
    // sees the stall and the liveness lease expires.
    if (injector_ != nullptr && poll_fault_suppressed(ctx)) return;
    ctx.owner_side.last_poll.store(ctx.point_index,
                                   std::memory_order_relaxed);
    renew_lease(ctx);
    if (!ctx.in_region &&
        (ctx.requests_pending() || ctx.batch_requests_pending())) {
      respond(ctx);
    }
  }

  // Safe point inside nondeterministic spin loops (Fig 1 lines 9/18, Fig 10
  // line 55). Does NOT bump the point index. May throw RegionRestart when an
  // enforcer region responded (after rolling back). Fault injection never
  // suppresses these responses: a thread stuck waiting is exactly the thread
  // that must keep answering others (deadlock freedom, Fig 1 line 18).
  void respond_while_waiting(ThreadContext& ctx) {
    // A waiting thread renews its own liveness lease (it IS alive — it keeps
    // answering others), and checks for its own quarantine before touching
    // tracker state again: if survivors seized our locks while we waited,
    // responding would race the seizure.
    renew_lease(ctx);
    if (ThreadStatus::is_quarantined(
            ctx.owner_side.status.load(std::memory_order_acquire))) {
      quarantined_self_park(ctx);  // throws ThreadQuarantined
    }
    if (ctx.requests_pending() || ctx.batch_requests_pending()) {
      respond(ctx);
      if (ctx.restart_requested) {
        ctx.restart_requested = false;
        throw RegionRestart{};
      }
    }
    // Every responding spin iteration is a scheduling point under virtual
    // scheduling (wait flavor: a failed re-check is not forward progress).
    // This single hook covers the tracker Int/contended wait loops and the
    // coordinate() ticket wait, all of which respond while waiting.
    schedule::wait_point();
  }

  // Injection site for tracker slow paths (CAS/Int wait loops); a no-op
  // without an injector.
  void fault_point_slow_path(ThreadContext& ctx) {
    if (injector_ != nullptr) slow_path_fault(ctx);
  }

  // Program-synchronization release operation: flush the lock buffer, bump
  // the release counter (deterministically), answer pending requests.
  void psro(ThreadContext& ctx);

  // Blocking safe points (lock acquisition, join, barrier): flush, bump
  // (logged), park BLOCKED so requesters coordinate implicitly.
  void begin_blocking(ThreadContext& ctx);
  void end_blocking(ThreadContext& ctx);

  // --- coordination (requester side) --------------------------------------------
  struct CoordResult {
    std::uint64_t src_release = 0;  // owner's counter after its response
    bool implicit = false;          // true if the owner was blocked
  };

  // One round trip with `owner` (Fig 1 coordinate()). Spins responding to
  // the caller's own requests; may throw RegionRestart for enforcer regions,
  // and CoordinationStalled under the kFailFast watchdog policy.
  CoordResult coordinate(ThreadContext& self, ThreadId owner);

  // Batched round trip (DESIGN.md §13): one request node covering
  // `n_objects` objects owned by `owner`, answered in a single safe-point
  // visit (the owner drains its whole mailbox backlog alongside the scalar
  // watermark publish). The implicit fast path is identical to coordinate();
  // when the requester's node pool is exhausted the call degrades to a
  // scalar round trip. Same exception surface and watchdog policing as
  // coordinate(). Implemented as the single-group case of
  // coordinate_batch_multi().
  CoordResult coordinate_batch(ThreadContext& self, ThreadId owner,
                               std::uint32_t n_objects);

  // Scatter-gather batched coordination (DESIGN.md §13): one request per
  // distinct owner, ALL posted before any wait, so the round trips overlap —
  // total wait is bounded by the slowest owner's response, not the sum of
  // rounds. This is what keeps a multi-owner batch's Int hold window to ~one
  // round trip (a sequential per-owner settle convoys: peers spinning on the
  // held Ints escalate to sleep backoff and stop responding promptly, which
  // stretches every other in-flight round). Each group's result is filled in
  // place. Groups whose owner is parked resolve implicitly without posting;
  // groups that cannot claim a pool node fall back to scalar rounds after
  // the posted ones complete. Same exception surface as coordinate(); the
  // watchdog polices the first unresolved owner, moving on as each resolves.
  static constexpr std::size_t kMaxBatchGroups = 16;
  struct BatchGroup {
    ThreadId owner = kNoThread;
    std::uint32_t n_objects = 0;
    CoordResult result{};
  };
  void coordinate_batch_multi(ThreadContext& self, BatchGroup* groups,
                              std::size_t n);

  // Bounded-wait variant: gives up after `max_epochs` backoff epochs and
  // returns nullopt instead of spinning on a dead or stalled owner. Never
  // consults the watchdog policy (the bound IS the policy); the abandoned
  // ticket is answered by the owner's next safe point if it ever revives.
  std::optional<CoordResult> coordinate_bounded(ThreadContext& self,
                                                ThreadId owner,
                                                std::uint64_t max_epochs);

  // Conservative coordination with every other registered thread (RdSh old
  // states, paper footnote 4). Returns true if any round trip was explicit.
  bool coordinate_all_others(ThreadContext& self);

  // --- quarantine (resilience layer) -------------------------------------------
  // Attempts to flip `victim` to the terminal Quarantined status with a
  // single CAS against its last observed status word; failure means the
  // victim made progress in the meantime and must NOT be quarantined. On
  // success all of the victim's current waiters are released (watermark
  // published past every issued ticket) and the on_quarantine hook runs on
  // the calling thread. Idempotent: false for an already-quarantined or
  // exited victim.
  bool quarantine_thread(ThreadContext& self, ThreadId victim);

  bool thread_quarantined(ThreadId id) const {
    return ThreadStatus::is_quarantined(
        registry_.context(id).owner_side.status.load(
            std::memory_order_acquire));
  }
  // Cheap global flag consulted by tracker slow paths: when nonzero,
  // lock-buffer flushes tolerate entries whose states were seized.
  bool has_quarantined() const {
    return quarantined_count_.load(std::memory_order_acquire) != 0;
  }
  std::uint32_t quarantined_count() const {
    return quarantined_count_.load(std::memory_order_acquire);
  }

  // Victim-side quarantine observation: drop (never flush) the lock buffer
  // and read set — survivors own those states now — and unwind. Public so
  // tracker landings that lose their Int CAS to a seizure can park directly.
  [[noreturn]] void quarantined_self_park(ThreadContext& ctx);

  // Tracker slow paths call this before acquiring NEW ownership (a lock CAS
  // or an Int entry). A quarantined victim that raced past its last poll
  // must not lock fresh states: the sweep has already run, so anything it
  // locks now would leak until some survivor happens to touch it. Between
  // this check and the acquiring CAS there is no scheduling point, so under
  // the virtual scheduler the window is fully closed.
  void check_self_quarantine(ThreadContext& ctx) {
    if (has_quarantined() && thread_quarantined(ctx.id)) {
      quarantined_self_park(ctx);
    }
  }

  // --- diagnostics -------------------------------------------------------------
  ThreadLivenessSample sample_thread(ThreadId id) const;
  std::vector<ThreadLivenessSample> sample_all_threads() const;

 private:
  // Publishes the thread's liveness-lease heartbeat (owner-side, relaxed).
  static void renew_lease(ThreadContext& ctx) {
    ctx.owner_side.heartbeat.store(++ctx.heartbeat,
                                   std::memory_order_relaxed);
  }

  // Responding safe point body; precondition: scalar or batch requests
  // pending (or forced).
  void respond(ThreadContext& ctx);

  // Answers `ctx`'s whole batch backlog: stamps every posted node with
  // `src_release` and recycles it (consumed, release — after drain() has
  // unlinked it). Serialized by ctx.mailbox.draining because the owner and a
  // quarantining thread may race to consume; losing the flag race is fine —
  // whoever holds it answers the backlog with an equally valid counter.
  // `recorder` is the executing thread (== ctx except when a quarantiner
  // releases a victim's backlog); its single-writer telemetry ring receives
  // the kCoordBatchDrain span events.
  static void drain_mailbox(ThreadContext& recorder, ThreadContext& ctx,
                            std::uint64_t src_release);

  // Out-of-line fault-injection bodies (keep faultinject out of the hot
  // inline path; called only when injector_ != nullptr).
  bool poll_fault_suppressed(ThreadContext& ctx);
  void slow_path_fault(ThreadContext& ctx);

  // Shared wait loop behind coordinate / coordinate_bounded. `max_epochs`
  // of 0 means unbounded (watchdog-policed). Returns nullopt only for
  // bounded waits that expired.
  std::optional<CoordResult> coordinate_impl(ThreadContext& self,
                                             ThreadId owner,
                                             std::uint64_t max_epochs);

  CoordStallDiagnostic build_stall_diagnostic(const ThreadContext& self,
                                              const ThreadContext& remote,
                                              std::uint64_t ticket,
                                              std::uint64_t waited_epochs,
                                              std::uint64_t stalled_epochs)
      const;
  void emit_stall_diagnostic(const CoordStallDiagnostic& diag) const;

  RuntimeConfig cfg_;
  ThreadRegistry registry_;
  FaultInjector* injector_;
  std::atomic<std::uint32_t> g_rd_sh_counter_{1};
  std::atomic<std::uint32_t> quarantined_count_{0};
};

}  // namespace ht
