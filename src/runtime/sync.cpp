#include "runtime/sync.hpp"

#include "schedule/schedule_point.hpp"

namespace ht {

void ProgramLock::acquire(ThreadContext& ctx) {
  // Lock acquisition is an instrumentation point (deterministic per thread).
  ++ctx.point_index;
  if (mu_.try_lock()) {
    HT_TSAN_ACQUIRE(this);
    return;
  }
  Runtime& rt = *ctx.runtime;
  rt.begin_blocking(ctx);
  if (schedule::virtualized()) {
    // Blocking in the OS would wedge the virtual CPU; spin at wait points so
    // the scheduler can run the holder to its release.
    while (!mu_.try_lock()) schedule::wait_point();
  } else {
    mu_.lock();
  }
  try {
    rt.end_blocking(ctx);
  } catch (...) {
    // Quarantined while parked (ThreadQuarantined unwinds us): the mutex is
    // already ours and no release(ctx) will ever run, so drop it raw here or
    // every healthy thread wedges on it. Invariant: a throwing acquire never
    // leaves the lock held.
    mu_.unlock();
    throw;
  }
  HT_TSAN_ACQUIRE(this);
}

void ProgramLock::abandon() { mu_.unlock(); }

void ProgramLock::release(ThreadContext& ctx) {
  ctx.runtime->psro(ctx);  // flush + deterministic release-counter bump
  HT_TSAN_RELEASE(this);
  mu_.unlock();
}

ProgramBarrier::ProgramBarrier(int parties) : parties_(parties) {
  HT_ASSERT(parties >= 1, "barrier needs at least one party");
}

void ProgramBarrier::arrive_and_wait(ThreadContext& ctx) {
  Runtime& rt = *ctx.runtime;
  rt.psro(ctx);  // arrival has release semantics
  HT_TSAN_RELEASE(this);
  rt.begin_blocking(ctx);
  {
    std::unique_lock<std::mutex> g(mu_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else if (schedule::virtualized()) {
      // Same no-OS-blocking rule as ProgramLock::acquire.
      while (generation_ == gen) {
        g.unlock();
        schedule::wait_point();
        g.lock();
      }
    } else {
      cv_.wait(g, [&] { return generation_ != gen; });
    }
  }
  HT_TSAN_ACQUIRE(this);  // departure sees every arriving thread's writes
  rt.end_blocking(ctx);
}

}  // namespace ht
