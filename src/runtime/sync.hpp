// Program synchronization primitives visible to workloads.
//
// These model the *program's* synchronization (Java monitors in the paper),
// as opposed to the synchronization the trackers add internally. What matters
// to the hybrid model is their interaction with deferred unlocking:
//   * releasing a lock / passing a barrier / forking a thread is a PSRO —
//     the lock buffer flushes and the release counter bumps (§3.1), and
//   * blocking while acquiring is a blocking safe point — the thread parks
//     BLOCKED so that other threads coordinate with it implicitly (§2.2).
// Both primitives carry explicit TSan acquire/release annotations (the
// HT_TSAN_* macros from common/spin.hpp): the std::mutex under each already
// gives TSan a happens-before edge, but annotating the primitive itself pins
// the edge to the object the *program* synchronizes on, so sanitize-tier
// reports stay correct if the implementation moves off std::mutex.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/spin.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_context.hpp"

namespace ht {

class ProgramLock {
 public:
  ProgramLock() = default;
  ProgramLock(const ProgramLock&) = delete;
  ProgramLock& operator=(const ProgramLock&) = delete;

  void acquire(ThreadContext& ctx);
  void release(ThreadContext& ctx);

  // Raw unlock without runtime involvement, for the schedule explorer's
  // abort path: a cancelled run unwinds past the program's own release
  // sites, and the (still-locked) mutex must be released by the holding
  // thread before the next run's fresh world is built. Never part of a
  // normal execution.
  void abandon();

  // RAII critical section.
  class Scope {
   public:
    Scope(ProgramLock& l, ThreadContext& ctx) : lock_(l), ctx_(ctx) {
      lock_.acquire(ctx_);
    }
    ~Scope() { lock_.release(ctx_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ProgramLock& lock_;
    ThreadContext& ctx_;
  };

 private:
  std::mutex mu_;
};

// All-thread rendezvous; arrival releases (PSRO), waiting blocks (implicit
// coordination target), departure resumes.
class ProgramBarrier {
 public:
  explicit ProgramBarrier(int parties);

  void arrive_and_wait(ThreadContext& ctx);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace ht
