#include "runtime/thread_context.hpp"

#include "metadata/object_meta.hpp"
#include "runtime/runtime.hpp"

namespace ht {

ThreadContext::ThreadContext() { lock_buffer.reserve(256); }

void ThreadContext::reset(ThreadId new_id, Runtime* rt) {
  id = new_id;
  runtime = rt;
  registered = true;
  fast_wr_ex_opt = StateWord::wr_ex_opt(new_id).raw();
  fast_rd_ex_opt = StateWord::rd_ex_opt(new_id).raw();
  rd_sh_count = 0;
  point_index = 0;
  // Epoch restarts at 1 so the cleared cache's zero tags can never hit; the
  // kill switch honors both the compile-time gate and the runtime config.
  elision_epoch = 1;
  elision_cache.clear();
  elision_hits_at_flush = 0;
  elision_misses_at_flush = 0;
  elision_on.store(HT_ELISION_RUNTIME != 0 && rt != nullptr &&
                       rt->config().elision,
                   std::memory_order_relaxed);
  lock_buffer.clear();
  rd_set.clear();
  stats = TransitionStats{};
  telem = nullptr;
  in_region = false;
  restart_requested = false;
  undo_log = nullptr;
  flush_self = nullptr;
  flush_fn = nullptr;
  abort_self = nullptr;
  abort_fn = nullptr;
  resp_log_self = nullptr;
  resp_log_fn = nullptr;
  region_log_self = nullptr;
  region_log_fn = nullptr;
  exited.store(false, std::memory_order_relaxed);
  quarantined_self = false;
  heartbeat = 0;
  coord_span_counter = 0;
  owner_side.status.store(0, std::memory_order_relaxed);
  owner_side.response_watermark.store(0, std::memory_order_relaxed);
  owner_side.release_counter.store(0, std::memory_order_relaxed);
  owner_side.last_poll.store(0, std::memory_order_relaxed);
  owner_side.heartbeat.store(0, std::memory_order_relaxed);
  requester_side.request_tickets.store(0, std::memory_order_relaxed);
  // Recycle any batch nodes abandoned to this slot's mailbox (possible only
  // when a runtime instance is reused across runs). The nodes belong to
  // *other* threads' pools — this slot's own pool flags are owned by the
  // mailbox drains of whoever those nodes were posted to, never touched here.
  for (CoordBatchNode* n = mailbox.queue.drain(); n != nullptr;) {
    CoordBatchNode* next = n->next;
    n->consumed.store(true, std::memory_order_release);
    n = next;
  }
  mailbox.draining.store(false, std::memory_order_relaxed);
}

}  // namespace ht
