// Per-thread runtime state: coordination mailbox, deferred-unlocking lock
// buffer and read set, release counter, recorder point index, and the hook
// slots through which trackers / the recorder / the RS enforcer participate
// in responding safe points.
//
// The coordination fields mirror the paper's substrate (§2.2): a status word
// supporting implicit coordination with blocked threads, and a
// ticket/watermark pair implementing explicit requests. We use a watermark
// rather than per-request nodes: a responding safe point answers *all*
// pending requests at once (exactly the paper's semantics — one buffer flush
// serves every requester), and abandoned tickets from requesters that fell
// back to implicit coordination are harmless.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cache_line.hpp"
#include "common/flat_set.hpp"
#include "common/mpsc_queue.hpp"
#include "metadata/state_word.hpp"
#include "tracking/elision_cache.hpp"
#include "tracking/transition_stats.hpp"

namespace ht {

class ObjectMeta;
class Runtime;
class ThreadContext;
class UndoLog;

namespace telemetry {
class EventRing;
}  // namespace telemetry

// Thread status word: bit 0 = blocked, bit 1 = quarantined, bits 2.. =
// epoch. A requester that finds the blocked bit set CASes the epoch up;
// success proves the owner is parked at a blocking safe point (with its lock
// buffer already flushed), so the requester may proceed immediately — the
// paper's implicit coordination.
//
// Quarantine (resilience layer) is a *terminal* status: the quarantine bit
// implies the blocked bit, so every implicit-coordination CAS against a
// quarantined thread succeeds immediately, and bump_epoch preserves both
// bits. The bit is only ever set by Runtime::quarantine_thread via a CAS
// racing the victim's own status transitions; a late-waking victim observes
// it and self-parks (throws ThreadQuarantined) at its next safe point.
struct ThreadStatus {
  static constexpr std::uint64_t kBlockedBit = 1;
  static constexpr std::uint64_t kQuarantineBit = 2;

  static bool is_blocked(std::uint64_t s) { return (s & kBlockedBit) != 0; }
  static bool is_quarantined(std::uint64_t s) {
    return (s & kQuarantineBit) != 0;
  }
  static std::uint64_t epoch(std::uint64_t s) { return s >> 2; }
  static std::uint64_t bump_epoch(std::uint64_t s) { return s + 4; }
  static std::uint64_t make(std::uint64_t ep, bool blocked) {
    return (ep << 2) | (blocked ? kBlockedBit : 0);
  }
  static std::uint64_t make_quarantined(std::uint64_t ep) {
    return (ep << 2) | kBlockedBit | kQuarantineBit;
  }
};

// Batched-coordination request node (DESIGN.md §13). A requester that needs
// several objects from one owner posts a single node to the owner's mailbox
// instead of taking one ticket per object; the responder answers its whole
// backlog in one safe-point visit.
//
// Nodes live in a small per-requester pool with registry lifetime, NOT on
// the requester's stack: a requester may abandon a posted node (implicit
// coordination won the race, or it unwound on RegionRestart /
// ThreadQuarantined), and a pooled node dangles harmlessly in the owner's
// mailbox until the next drain recycles it. `consumed` is the recycle
// handshake: the draining thread stores it (release) only after drain() has
// unlinked the node, so a node observed free is never still linked anywhere.
struct CoordBatchNode {
  CoordBatchNode* next = nullptr;  // mailbox intrusive link
  ThreadId requester = kNoThread;
  std::uint32_t objects = 0;  // batch size (stats / telemetry)
  // Causal-span id (DESIGN.md §14): stamped by the requester at post time
  // from its coord_span_counter, echoed by the draining thread's
  // kCoordBatchDrain event so offline tools can stitch the request→drain
  // edge. Written before the push (the push's CAS releases it), read by the
  // drainer before its `consumed` store.
  std::uint64_t span_id = 0;
  // Owner's post-bump release counter, written before `consumed`; every
  // object in the batch stamps its recorded edge with this one value.
  std::atomic<std::uint64_t> src_release{0};
  std::atomic<bool> consumed{true};  // true = free for reuse
};

// Hook signatures. Hooks run at responding safe points in a fixed order:
// region-abort (enforcer rollback) -> flush (tracker deferred unlocking) ->
// release-counter bump -> watermark publish -> response-log (recorder).
using ThreadHook = void (*)(void* self, ThreadContext& ctx);

class ThreadContext {
 public:
  ThreadContext();
  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  // Reinitializes for a fresh trial run (contexts are slot-reused).
  void reset(ThreadId new_id, Runtime* rt);

  // --- identity -------------------------------------------------------------
  ThreadId id = kNoThread;
  Runtime* runtime = nullptr;
  bool registered = false;

  // --- hot thread-local state ------------------------------------------------
  // One dedicated cache line (static_asserts below): every field here is
  // read or written on the per-access fast path by the owning thread only,
  // so nothing another thread writes may share the line (DESIGN.md §15.4).
  // Cached raw state words for the tracker fast paths (precomputed at reset).
  alignas(kCacheLine) std::uint64_t fast_wr_ex_opt = 0;  // WrExOpt(id).raw()
  std::uint64_t fast_rd_ex_opt = 0;                      // RdExOpt(id).raw()

  // Per-thread read-share counter (Table 1: fence transition iff
  // T.rdShCount < c).
  std::uint32_t rd_sh_count = 0;

  // Barrier-elision kill switch (DESIGN.md §15). Owner-read (relaxed) on
  // every cache probe; written by this thread at reset / race-detector
  // attach, and cross-thread exactly once by Runtime::quarantine_thread —
  // the victim cannot bump its own non-atomic epoch, so quarantine disables
  // its cache wholesale before seizing any state. Quarantine is terminal,
  // so the sticky false is permanent until the next reset.
  std::atomic<bool> elision_on{false};

  // Deterministic instrumentation-point index (recorder §4.2): bumped at
  // every tracked access, workload poll site, and PSRO — never inside
  // nondeterministic spin loops.
  std::uint64_t point_index = 0;

  // Barrier-elision epoch (DESIGN.md §15): bumped by this thread at every
  // revocation-capable participation point (responding safe point, PSRO,
  // blocking enter/exit, coordinate, quarantine unwind, exit flush), which
  // stales the whole elision cache in O(1). Owner-only, hence non-atomic.
  std::uint64_t elision_epoch = 1;

  // Liveness-lease heartbeat: bumped at every poll, PSRO, and blocking
  // boundary, mirrored into owner_side.heartbeat. Unlike last_poll (a mirror
  // of point_index, which freezes inside long waits), the heartbeat also
  // advances from respond_while_waiting, so a thread stuck *waiting* on a
  // genuinely stalled peer still renews its own lease.
  std::uint64_t heartbeat = 0;

  // Monotonic per-requester span id source for batched coordination
  // (DESIGN.md §14). Only this thread increments it (requester side), so it
  // is plain. Span identity offline is (requester tid, span id); scalar
  // coordination needs no counter — its span identity is (owner, ticket).
  std::uint64_t coord_span_counter = 0;

  // Elision cache payload: owner-only, probed on every tracked access. Own
  // line(s) so probes never contend with the coordination words below.
  alignas(kCacheLine) ElisionCache elision_cache;

  // Snapshots of stats.elision_{hits,misses} taken when the last
  // kElisionFlush event was emitted, so flush events carry per-window
  // deltas rather than cumulative totals.
  std::uint64_t elision_hits_at_flush = 0;
  std::uint64_t elision_misses_at_flush = 0;

  // Deferred unlocking (§3.1): objects whose pessimistic states this thread
  // has locked, and the set of objects it holds read locks on (reentrancy).
  std::vector<ObjectMeta*> lock_buffer;
  FlatPtrSet rd_set;

  // Per-thread statistics counters on their own line(s): they are bumped on
  // tracker slow paths and at safe points, and previously shared a line with
  // the coordination watermarks requesters spin on — every counter increment
  // invalidated the requesters' read copies (false sharing).
  alignas(kCacheLine) TransitionStats stats;

  // Telemetry ring (single-writer: this thread). Null unless a
  // TelemetrySession is installed on the runtime; the HT_TELEM_* macros
  // (telemetry/telemetry.hpp) compile away entirely in default builds, so
  // this pointer is the only unconditional footprint of the layer.
  telemetry::EventRing* telem = nullptr;

  // --- RS enforcer state ------------------------------------------------------
  bool in_region = false;
  bool restart_requested = false;
  UndoLog* undo_log = nullptr;
  // Tracked accesses completed by the current region. A region that has not
  // acquired any object state yet can answer coordination requests without
  // violating two-phase locking, so responding does not force a restart.
  std::uint32_t region_access_count = 0;

  // --- responding-safe-point hooks --------------------------------------------
  void* flush_self = nullptr;
  ThreadHook flush_fn = nullptr;  // tracker: unlock lock buffer
  void* abort_self = nullptr;
  ThreadHook abort_fn = nullptr;  // enforcer: roll back current region
  void* resp_log_self = nullptr;
  ThreadHook resp_log_fn = nullptr;  // recorder: log ResponseEvent
  void* region_log_self = nullptr;
  ThreadHook region_log_fn = nullptr;  // recorder: log deterministic bump

  // Set (by the victim itself) once it has observed its own quarantine bit
  // and self-parked. Purely an owner-thread flag consulted on the unwind
  // path (flush gating, unregister) — cross-thread readers use the status
  // word's quarantine bit instead.
  bool quarantined_self = false;

  // --- shared coordination state (padded; written/read across threads) --------
  // Set by ThreadRegistry::mark_exited; read by the coordination watchdog so
  // stall diagnostics can distinguish "parked forever because it exited"
  // from "blocked at a program operation". Cross-thread-read, so it lives
  // with the coordination lines rather than among the hot owner-local
  // fields the owner rewrites every poll.
  alignas(kCacheLine) std::atomic<bool> exited{false};

  // status + response_watermark + release_counter: written by owner, read by
  // requesters. request_tickets: written by requesters, read by owner.
  struct alignas(kCacheLine) OwnerSide {
    std::atomic<std::uint64_t> status{0};
    std::atomic<std::uint64_t> response_watermark{0};
    std::atomic<std::uint64_t> release_counter{0};
    // Mirror of point_index published (relaxed) at each poll, so the
    // watchdog can sample owner liveness without racing on the non-atomic
    // point_index. Stale-but-unchanging last_poll is the stall signal.
    std::atomic<std::uint64_t> last_poll{0};
    // Liveness-lease heartbeat epoch (see ThreadContext::heartbeat).
    std::atomic<std::uint64_t> heartbeat{0};
  } owner_side;
  struct alignas(kCacheLine) RequesterSide {
    std::atomic<std::uint64_t> request_tickets{0};
  } requester_side;

  // Batched-coordination mailbox (owner side: drained at responding safe
  // points and blocking/exit boundaries) in its own line so batch pushes
  // don't false-share with the scalar ticket/watermark words.
  struct alignas(kCacheLine) BatchMailbox {
    MpscQueue<CoordBatchNode> queue;
    // Serializes consumers: normally the owning thread, but a quarantining
    // thread also releases a victim's backlog, and the victim may not have
    // parked yet. Spin flag, not a mutex — drains are short and rare.
    std::atomic<bool> draining{false};
  } mailbox;

  // Request-node pool (requester side; see CoordBatchNode). Sized for the
  // realistic in-flight count: one outstanding batch plus nodes abandoned to
  // still-undrained mailboxes. Exhaustion is not an error — requesters fall
  // back to scalar coordination.
  static constexpr std::size_t kBatchNodePoolSize = 4;
  struct alignas(kCacheLine) BatchNodePool {
    CoordBatchNode nodes[kBatchNodePoolSize];
  } batch_pool;

  // --- helpers -----------------------------------------------------------------
  bool requests_pending() const {
    return requester_side.request_tickets.load(std::memory_order_acquire) >
           owner_side.response_watermark.load(std::memory_order_relaxed);
  }

  bool batch_requests_pending() const {
    return !mailbox.queue.empty_relaxed();
  }

  // Claims a free request node from this thread's own pool (nullptr when
  // every node is in flight). Only the owning thread claims, so no CAS is
  // needed: the acquire load pairs with the draining thread's release store
  // of `consumed` and makes the node's unlinking visible.
  CoordBatchNode* claim_batch_node() {
    for (auto& n : batch_pool.nodes) {
      if (n.consumed.load(std::memory_order_acquire)) return &n;
    }
    return nullptr;
  }

  std::uint64_t release_counter_relaxed() const {
    return owner_side.release_counter.load(std::memory_order_relaxed);
  }

  // --- barrier elision (DESIGN.md §15) -----------------------------------------
  // Probes are owner-only; the relaxed elision_on load doubles as the
  // runtime on/off flag and the quarantine kill switch.
  bool elide_store(const ObjectMeta* m) const {
    return elision_on.load(std::memory_order_relaxed) &&
           elision_cache.hit_store(m, elision_epoch);
  }
  bool elide_load(const ObjectMeta* m) const {
    return elision_on.load(std::memory_order_relaxed) &&
           elision_cache.hit_load(m, elision_epoch);
  }
  void elision_insert(const ObjectMeta* m, bool is_write) {
    if (elision_on.load(std::memory_order_relaxed)) {
      elision_cache.insert(m, elision_epoch, is_write);
    }
  }
  // O(1) whole-cache invalidation; called by this thread at every
  // revocation-capable participation point (see elision_cache.hpp).
  void bump_elision_epoch() {
    ++elision_epoch;
    ++stats.elision_flushes;
  }

  void run_flush_hook() {
    if (flush_fn != nullptr) flush_fn(flush_self, *this);
  }
  void run_abort_hook() {
    if (abort_fn != nullptr && in_region) abort_fn(abort_self, *this);
  }
  void run_resp_log_hook() {
    if (resp_log_fn != nullptr) resp_log_fn(resp_log_self, *this);
  }
  // Runs after deterministic release-counter bumps (PSRO, thread exit).
  // Unlike responses these need no replay action, so the hook exists purely
  // for the recorder's offline region marks (LogEventType::kRegionEnd).
  void run_region_log_hook() {
    if (region_log_fn != nullptr) region_log_fn(region_log_self, *this);
  }
};

// Cache-line audit (DESIGN.md §15.4). offsetof on this non-standard-layout
// type is conditionally-supported; GCC and Clang both implement it and only
// emit -Winvalid-offsetof, suppressed for exactly these checks.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
// The owner-local fast-path fields share one dedicated line...
static_assert(offsetof(ThreadContext, fast_wr_ex_opt) % kCacheLine == 0,
              "hot owner-local group must start a cache line");
static_assert(offsetof(ThreadContext, coord_span_counter) +
                      sizeof(std::uint64_t) -
                      offsetof(ThreadContext, fast_wr_ex_opt) <=
                  kCacheLine,
              "hot owner-local group must fit one cache line");
// ...and nothing cross-thread-written shares a line with them: the stats
// counters, the exit flag, and each coordination structure start fresh
// lines of their own.
static_assert(offsetof(ThreadContext, elision_cache) % kCacheLine == 0,
              "elision cache must not share the coordination lines");
static_assert(offsetof(ThreadContext, stats) % kCacheLine == 0,
              "per-thread stats must not share the hot or coordination lines");
static_assert(offsetof(ThreadContext, exited) % kCacheLine == 0,
              "cross-thread-read exit flag must leave the owner-local lines");
static_assert(offsetof(ThreadContext, owner_side) % kCacheLine == 0 &&
                  offsetof(ThreadContext, requester_side) % kCacheLine == 0 &&
                  offsetof(ThreadContext, mailbox) % kCacheLine == 0 &&
                  offsetof(ThreadContext, batch_pool) % kCacheLine == 0,
              "coordination structures must keep their dedicated lines");
static_assert(offsetof(ThreadContext, requester_side) -
                      offsetof(ThreadContext, owner_side) >=
                  kCacheLine,
              "owner- and requester-written words must not share a line");
#pragma GCC diagnostic pop
#endif

// Exception unwinding a region that responded to a coordination request
// mid-execution (paper §5: regions restart after responding).
struct RegionRestart {};

// Exception unwinding a thread that observed its own quarantine bit at a
// safe point. The thread's owned object states have been (or are being)
// seized by survivors; it must not touch tracker metadata again. Thrown
// from Runtime::poll / end_blocking / respond_while_waiting, caught by the
// thread body (workload harness, explorer run_thread), which unregisters
// the context and parks the OS thread.
struct ThreadQuarantined {
  ThreadId tid = kNoThread;
};

}  // namespace ht
