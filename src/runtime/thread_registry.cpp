#include "runtime/thread_registry.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace ht {

ThreadRegistry::ThreadRegistry(std::size_t max_threads) {
  HT_ASSERT(max_threads >= 1 && max_threads < kMaxThreads,
            "max_threads out of range for 12-bit tid encoding");
  slots_.reserve(max_threads);
  for (std::size_t i = 0; i < max_threads; ++i) {
    slots_.push_back(std::make_unique<ThreadContext>());
  }
}

ThreadContext& ThreadRegistry::register_thread(Runtime* rt) {
  std::lock_guard<std::mutex> g(mu_);
  HT_ASSERT(next_id_ < slots_.size(), "thread registry full");
  ThreadContext& ctx = *slots_[next_id_];
  ctx.reset(next_id_, rt);
  // Publish: high_water readers use acquire on next_id via the atomic below.
  next_id_published_.store(next_id_ + 1, std::memory_order_release);
  ++next_id_;
  return ctx;
}

void ThreadRegistry::mark_exited(ThreadContext& ctx) {
  ctx.exited.store(true, std::memory_order_relaxed);
  // Park as blocked forever: implicit coordination always succeeds.
  std::uint64_t s = ctx.owner_side.status.load(std::memory_order_relaxed);
  if (ThreadStatus::is_quarantined(s)) return;  // already terminally parked
  HT_ASSERT(!ThreadStatus::is_blocked(s), "exiting thread already blocked");
  ctx.owner_side.status.store(s | ThreadStatus::kBlockedBit,
                              std::memory_order_release);
}

ThreadContext& ThreadRegistry::context(ThreadId id) {
  HT_ASSERT(id < next_id_published_.load(std::memory_order_acquire),
            "thread id not registered");
  return *slots_[id];
}

const ThreadContext& ThreadRegistry::context(ThreadId id) const {
  HT_ASSERT(id < next_id_published_.load(std::memory_order_acquire),
            "thread id not registered");
  return *slots_[id];
}

ThreadId ThreadRegistry::high_water() const {
  return next_id_published_.load(std::memory_order_acquire);
}

}  // namespace ht
