// Registry of tracked threads.
//
// The runtime assigns small dense thread ids so that state words can encode
// the owner in 12 bits and so "coordinate with every other thread" (the
// paper's conservative handling of RdSh conflicts, footnote 4) is an array
// scan. Slots are never deallocated during a run: a thread that exits flushes
// its state and parks its status as permanently BLOCKED, so late requesters
// always succeed with implicit coordination.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/thread_context.hpp"

namespace ht {

class ThreadRegistry {
 public:
  explicit ThreadRegistry(std::size_t max_threads = 64);

  // Registers the calling thread; returns its context. Thread-safe.
  ThreadContext& register_thread(Runtime* rt);

  // Marks the context's slot reusable-never: the thread has exited. The
  // caller must already have flushed (Runtime::unregister_thread does).
  void mark_exited(ThreadContext& ctx);

  ThreadContext& context(ThreadId id);
  const ThreadContext& context(ThreadId id) const;

  // Number of ids handed out so far (exited threads included).
  ThreadId high_water() const;

  std::size_t max_threads() const { return slots_.size(); }

 private:
  std::vector<std::unique_ptr<ThreadContext>> slots_;
  std::mutex mu_;
  ThreadId next_id_ = 0;                            // guarded by mu_
  std::atomic<ThreadId> next_id_published_{0};      // lock-free reader view
};

}  // namespace ht
