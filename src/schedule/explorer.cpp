#include "schedule/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "analysis/transition_checker.hpp"
#include "analysis/transition_model.hpp"
#include "common/assert.hpp"
#include "resilience/quarantine.hpp"
#include "runtime/runtime.hpp"
#include "runtime/sync.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht::schedule {

// ==== names ==================================================================

const char* family_name(Family f) {
  switch (f) {
    case Family::kPessimistic: return "pessimistic";
    case Family::kOptimistic: return "optimistic";
    case Family::kHybrid: return "hybrid";
    case Family::kIdeal: return "ideal";
  }
  return "?";
}

std::optional<Family> family_from_name(const std::string& name) {
  if (name == "pessimistic" || name == "pess") return Family::kPessimistic;
  if (name == "optimistic" || name == "opt") return Family::kOptimistic;
  if (name == "hybrid") return Family::kHybrid;
  if (name == "ideal") return Family::kIdeal;
  return std::nullopt;
}

const char* run_status_name(VirtualScheduler::RunStatus s) {
  switch (s) {
    case VirtualScheduler::RunStatus::kRunning: return "running";
    case VirtualScheduler::RunStatus::kComplete: return "complete";
    case VirtualScheduler::RunStatus::kDeadlock: return "deadlock";
    case VirtualScheduler::RunStatus::kStepLimit: return "step-limit";
    case VirtualScheduler::RunStatus::kPruned: return "pruned";
  }
  return "?";
}

std::string trace_to_string(const std::vector<Slot>& trace) {
  std::string s;
  s.reserve(trace.size() * 2);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) s += ' ';
    s += std::to_string(trace[i]);
  }
  return s;
}

std::string ScheduleViolation::to_string() const {
  std::ostringstream os;
  os << what << "\n  schedule #" << schedule_index;
  if (seed != 0) os << " (seed " << seed << ")";
  os << "\n  trace: " << trace_to_string(trace);
  return os.str();
}

// ==== StatePairOracle ========================================================

namespace {

analysis::TrackerFamily to_analysis(Family f) {
  switch (f) {
    case Family::kPessimistic: return analysis::TrackerFamily::kPessAlone;
    case Family::kOptimistic: return analysis::TrackerFamily::kOptimistic;
    case Family::kHybrid: return analysis::TrackerFamily::kHybrid;
    case Family::kIdeal: return analysis::TrackerFamily::kIdeal;
  }
  return analysis::TrackerFamily::kHybrid;
}

}  // namespace

StatePairOracle::StatePairOracle(Family f) : family_(f) {
  using Matrix = std::array<std::array<bool, kKinds>, kKinds>;
  // Access edges: identity (fast paths, reentrant rows, kind-preserving
  // ownership handoffs, Int -> Int across a multi-round coordination wait)
  // plus every rule edge, with via-Int rules additionally split around a
  // park inside the requester's coordination wait.
  Matrix access{};
  // Unlock edges: identity plus the deferred-unlock flush rows. A flush can
  // piggyback on any step — served while responding inside the step's own
  // coordination wait (before its access lands) and/or at the trailing
  // safe-point poll (after it) — so one step's net edge on an object is
  // (unlock?; access?; unlock?) composed.
  Matrix unlock{};
  for (std::size_t k = 0; k < kKinds; ++k) {
    access[k][k] = true;
    unlock[k][k] = true;
  }
  const auto add = [](Matrix& m, StateKind a, StateKind b) {
    m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
  };
  for (const analysis::TransitionRule& r :
       analysis::transition_rules(to_analysis(f))) {
    if (r.outcome.kind != analysis::OutcomeKind::kTransition) continue;
    if (r.access == analysis::AccessKind::kUnlock) {
      add(unlock, r.from, r.outcome.to);
      continue;
    }
    add(access, r.from, r.outcome.to);
    if (r.outcome.begins_coordination) {
      add(access, r.from, StateKind::kInt);
      add(access, StateKind::kInt, r.outcome.to);
    }
  }
  const auto compose = [](const Matrix& first, const Matrix& second) {
    Matrix z{};
    for (std::size_t i = 0; i < kKinds; ++i) {
      for (std::size_t k = 0; k < kKinds; ++k) {
        if (!first[i][k]) continue;
        for (std::size_t j = 0; j < kKinds; ++j) {
          if (second[k][j]) z[i][j] = true;
        }
      }
    }
    return z;
  };
  allowed_ = compose(unlock, compose(access, unlock));
}

void StatePairOracle::forbid(StateKind from, StateKind to) {
  allowed_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] =
      false;
}

void StatePairOracle::widen_for_quarantine() {
  const auto allow = [&](StateKind a, StateKind b) {
    allowed_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
  };
  // A quarantined victim can own exactly the locked kinds and Int. A seizure
  // walks victim-state -> Int(seizer) -> landing, and the seizer's very next
  // action in the same step may re-acquire the landed state — so from any
  // seizable source, any landing or re-acquired locked kind (or a park
  // inside the seizer's own follow-up coordination, hence Int) is a legal
  // net per-step edge.
  constexpr StateKind kSeizable[] = {
      StateKind::kWrExWLock, StateKind::kWrExRLock, StateKind::kRdExRLock,
      StateKind::kRdShRLock, StateKind::kInt};
  constexpr StateKind kSeized[] = {
      StateKind::kInt,       StateKind::kWrExPess,  StateKind::kRdExPess,
      StateKind::kRdShPess,  StateKind::kWrExOpt,   StateKind::kWrExWLock,
      StateKind::kWrExRLock, StateKind::kRdExRLock, StateKind::kRdShRLock};
  for (StateKind a : kSeizable) {
    for (StateKind b : kSeized) allow(a, b);
  }
  // Abandoned coordination: the victim's IntGuard restores Int back to the
  // conflict's from state when it self-parks mid-wait, so Int -> from is net
  // visible for every rule that begins a coordination.
  for (const analysis::TransitionRule& r :
       analysis::transition_rules(to_analysis(family_))) {
    if (r.outcome.kind != analysis::OutcomeKind::kTransition) continue;
    if (r.outcome.begins_coordination) allow(StateKind::kInt, r.from);
  }
}

void StatePairOracle::observe(const StateChange& c) {
  const auto f = static_cast<std::size_t>(c.from.kind());
  const auto t = static_cast<std::size_t>(c.to.kind());
  if (f < kKinds && t < kKinds && allowed_[f][t]) return;
  ++violations_;
  if (first_.empty()) {
    std::ostringstream os;
    os << "illegal kind succession on obj " << c.obj << " during slot "
       << c.slot << "'s step: " << c.from.to_string() << " -> "
       << c.to.to_string();
    first_ = os.str();
  }
}

void StatePairOracle::reset() {
  violations_ = 0;
  first_.clear();
}

// ==== worker pool ============================================================

namespace detail {

// Persistent OS threads reused across the thousands of re-executions a DFS
// performs; thread creation would otherwise dominate exploration time.
class WorkerPool {
 public:
  explicit WorkerPool(int n) {
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { worker(i); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> g(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  // Runs job(slot) on every worker and waits for all of them to return.
  void run_all(const std::function<void(int)>& job) {
    std::unique_lock<std::mutex> g(mu_);
    job_ = &job;
    remaining_ = static_cast<int>(threads_.size());
    ++generation_;
    cv_.notify_all();
    done_cv_.wait(g, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker(int slot) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> g(mu_);
    for (;;) {
      cv_.wait(g, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      const std::function<void(int)>* job = job_;
      g.unlock();
      (*job)(slot);
      g.lock();
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  const std::function<void(int)>* job_ = nullptr;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace detail

// ==== program executor =======================================================

namespace {

bool is_access(OpKind k) {
  return k == OpKind::kLoad || k == OpKind::kStore || k == OpKind::kStoreReg;
}

struct RunWorld {
  const Program* prog = nullptr;
  const RunConfig* rc = nullptr;
  Family family = Family::kHybrid;
  Runtime* rt = nullptr;
  VirtualScheduler* sched = nullptr;
  RaceDetector* detector = nullptr;
  std::vector<TrackedVar<std::uint64_t>>* vars = nullptr;
  std::vector<RaceCheckedMeta>* rmeta = nullptr;
  std::deque<ProgramLock>* locks = nullptr;
  std::vector<std::uint64_t>* load_sum = nullptr;
  std::atomic<std::uint64_t>* op_seq = nullptr;
};

// One worker's whole run: attach, register (setup grants arrive in slot
// order, so ThreadId == slot), execute one op per grant with footprint
// detection, detach. ScheduleAborted unwinds a cancelled run; any program
// locks still held are abandoned so the next run's fresh world is clean.
template <typename Tracker>
void run_thread(const RunWorld& w, Tracker& tracker, Slot slot) {
  VirtualScheduler& sched = *w.sched;
  sched.attach(slot);
  std::vector<int> held;
  try {
    ThreadContext& ctx = w.rt->register_thread();
    HT_ASSERT(static_cast<int>(ctx.id) == slot,
              "setup grants must register slots in order");
    tracker.attach_thread(ctx);  // installs the deferred-unlock flush hook
    if (w.rc->race_detect) w.detector->attach_thread(ctx);
    for (int o = 0; o < w.prog->objects; ++o) {
      const ObjInit init = w.prog->obj_init(o);
      if (init.owner != slot) continue;
      TrackedVar<std::uint64_t>& v = (*w.vars)[static_cast<std::size_t>(o)];
      v.init(tracker, ctx, 0);
      if (init.pess && w.family == Family::kHybrid) {
        // Start in the pessimistic flavor without first driving the adaptive
        // policy through a transfer (the Table 3 deferred-unlock corners).
        v.meta().reset(StateWord::wr_ex_pess(ctx.id));
      }
    }
    sched.setup_done(slot);

    std::uint64_t reg = 0;
    for (const Op& op : w.prog->threads[static_cast<std::size_t>(slot)]) {
      const std::uint64_t parks0 = sched.parks(slot);
      const std::uint64_t coord0 = ctx.stats.coordination_rounds;
      const std::uint64_t resp0 = ctx.stats.responding_safepoints;
      StateWord pre{};
      if (is_access(op.kind)) {
        pre = (*w.vars)[static_cast<std::size_t>(op.obj)].meta().load_state();
      }
      switch (op.kind) {
        case OpKind::kLoad: {
          TrackedVar<std::uint64_t>& v =
              (*w.vars)[static_cast<std::size_t>(op.obj)];
          if (w.rc->race_detect) {
            w.detector->on_read(ctx,
                                (*w.rmeta)[static_cast<std::size_t>(op.obj)]);
          }
          reg = v.load(tracker, ctx);
          // Order-sensitive checksum: two schedules that read different
          // values are different executions even with equal final state.
          (*w.load_sum)[static_cast<std::size_t>(slot)] =
              (*w.load_sum)[static_cast<std::size_t>(slot)] *
                  1099511628211ULL +
              reg + 1;
          break;
        }
        case OpKind::kStore:
        case OpKind::kStoreReg: {
          TrackedVar<std::uint64_t>& v =
              (*w.vars)[static_cast<std::size_t>(op.obj)];
          if (w.rc->race_detect) {
            w.detector->on_write(ctx,
                                 (*w.rmeta)[static_cast<std::size_t>(op.obj)]);
          }
          v.store(tracker, ctx,
                  op.kind == OpKind::kStore ? op.value : reg + op.value);
          break;
        }
        case OpKind::kPsro:
          w.rt->psro(ctx);
          break;
        case OpKind::kBlockWindow:
          w.rt->begin_blocking(ctx);
          point();  // conflicting accesses coordinate with us implicitly
          w.rt->end_blocking(ctx);
          break;
        case OpKind::kLockAcquire: {
          ProgramLock& l = (*w.locks)[static_cast<std::size_t>(op.lock)];
          l.acquire(ctx);
          if (w.rc->race_detect) w.detector->on_acquire(ctx, &l);
          held.push_back(op.lock);
          break;
        }
        case OpKind::kLockRelease: {
          ProgramLock& l = (*w.locks)[static_cast<std::size_t>(op.lock)];
          if (w.rc->race_detect) w.detector->on_release(ctx, &l);
          l.release(ctx);
          held.erase(std::find(held.begin(), held.end(), op.lock));
          break;
        }
        case OpKind::kQuarantine:
          // Lease expiry by fiat: under virtual time the watchdog's
          // wall-clock escalation is meaningless, so programs quarantine
          // directly and exploration decides where in the victim's sequence
          // the blow lands.
          w.rt->quarantine_thread(ctx, static_cast<ThreadId>(op.value));
          break;
      }
      if (w.rc->on_op) {
        // Completed op, observed while this thread still holds the virtual
        // CPU: observer calls are mutually exclusive and globally ordered,
        // so the relaxed fetch_add yields a gap-free serialization index.
        w.rc->on_op(OpStep{
            w.op_seq->fetch_add(1, std::memory_order_relaxed), slot, op});
      }
      w.rt->poll(ctx);  // responding safe point between ops

      // Footprint: the step is confined to its object iff it provably never
      // interacted with any other thread or global — no intermediate park
      // (contended wait), no coordination round, no response served at the
      // poll, and no fresh RdSh epoch drawn from the global counter.
      StepAnnotation ann;
      if (is_access(op.kind)) {
        const StateWord post =
            (*w.vars)[static_cast<std::size_t>(op.obj)].meta().load_state();
        const bool parked = sched.parks(slot) != parks0;
        const bool coordinated = ctx.stats.coordination_rounds != coord0;
        const bool responded = ctx.stats.responding_safepoints != resp0;
        const bool fresh_epoch =
            post.is_rd_sh() &&
            (!pre.is_rd_sh() || post.counter() != pre.counter());
        ann.confined = !parked && !coordinated && !responded && !fresh_epoch;
        ann.obj = op.obj;
      }
      sched.annotated_point(slot, ann);
    }
    w.rt->unregister_thread(ctx);  // exit flush: thread death is a PSRO
    sched.detach(slot);
  } catch (const ThreadQuarantined&) {
    // The victim's legitimate end: it stays *registered* (quarantined, not
    // exited — implicit coordination against it must keep succeeding) but
    // its schedule slot is done. Anything it still owned is reclaimed by
    // the eager sweep or by survivors' lazy seizures.
    for (int li : held) (*w.locks)[static_cast<std::size_t>(li)].abandon();
    sched.detach(slot);
  } catch (const ScheduleAborted&) {
    for (int li : held) (*w.locks)[static_cast<std::size_t>(li)].abandon();
    sched.detach_aborted(slot);
  }
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename MakeTracker>
RunResult run_core(detail::WorkerPool& pool, const Program& prog,
                   Family family,
                   const RunConfig& rc, Strategy& strategy,
                   const std::function<void(const StateChange&)>& observe,
                   MakeTracker make) {
  const int nthreads = prog.nthreads();

  // Fresh world per execution: stateless model checking re-creates runtime,
  // tracker, and data every run instead of restoring snapshots.
  FaultInjector injector(rc.faults != nullptr ? *rc.faults : FaultConfig{});
  std::vector<TrackedVar<std::uint64_t>> vars(
      static_cast<std::size_t>(prog.objects));
  // Eager ownership reclamation for OpKind::kQuarantine: the sweep walks
  // this run's object population. Bound before Runtime copies its config.
  resilience::QuarantineSweep sweep(
      [&vars](const std::function<void(ObjectMeta&)>& fn) {
        for (TrackedVar<std::uint64_t>& v : vars) fn(v.meta());
      });
  // The pure optimistic and ideal trackers assert on pessimistic kinds;
  // abandoned states must land back in their own state family there.
  sweep.set_land_pessimistic(family == Family::kPessimistic ||
                             family == Family::kHybrid);
  RuntimeConfig rtc;
  rtc.max_threads = static_cast<std::size_t>(nthreads);
  // The virtual scheduler owns stall detection; the watchdog's wall-clock
  // heuristics are meaningless under virtual time.
  rtc.watchdog.enabled = false;
  rtc.elision = rc.elision;
  rtc.resilience.on_quarantine = std::ref(sweep);
  if (rc.faults != nullptr) rtc.fault_injector = &injector;
  Runtime rt(rtc);
  auto tracker = make(rt);

  std::vector<RaceCheckedMeta> rmeta(static_cast<std::size_t>(prog.objects));
  std::deque<ProgramLock> locks(static_cast<std::size_t>(prog.locks));
  RaceDetector detector(static_cast<std::size_t>(nthreads));
  std::vector<std::uint64_t> load_sum(static_cast<std::size_t>(nthreads), 0);
  std::atomic<std::uint64_t> op_seq{0};

  const std::uint64_t checker0 = analysis::transition_violations();

  // Per-object baselines diffed after every step to derive StateChanges.
  std::vector<std::uint64_t> baseline(static_cast<std::size_t>(prog.objects),
                                      0);
  VirtualScheduler::Config scfg;
  scfg.nthreads = nthreads;
  scfg.max_steps = rc.max_steps;
  scfg.deadlock_rounds = rc.deadlock_rounds;
  scfg.on_run_start = [&] {
    for (std::size_t o = 0; o < baseline.size(); ++o) {
      baseline[o] =
          vars[o].meta().load_state(std::memory_order_relaxed).raw();
    }
  };
  scfg.on_step = [&](Slot s) {
    // Runs with no thread holding the virtual CPU: a quiescent snapshot.
    for (std::size_t o = 0; o < baseline.size(); ++o) {
      const std::uint64_t now =
          vars[o].meta().load_state(std::memory_order_relaxed).raw();
      if (now == baseline[o]) continue;
      if (observe) {
        observe(StateChange{static_cast<int>(o), s, StateWord(baseline[o]),
                            StateWord(now)});
      }
      baseline[o] = now;
    }
  };
  VirtualScheduler sched(std::move(scfg), strategy);

  RunWorld w;
  w.prog = &prog;
  w.rc = &rc;
  w.family = family;
  w.rt = &rt;
  w.sched = &sched;
  w.detector = &detector;
  w.vars = &vars;
  w.rmeta = &rmeta;
  w.locks = &locks;
  w.load_sum = &load_sum;
  w.op_seq = &op_seq;

  pool.run_all([&](int slot) { run_thread(w, tracker, slot); });

  RunResult r;
  r.status = sched.status();
  r.steps = sched.steps();
  r.trace = sched.trace();
  r.decisions = sched.decisions();
  r.checker_violations = analysis::transition_violations() - checker0;
  r.faults_fired = rc.faults != nullptr ? injector.total_fired() : 0;
  r.quarantined = rt.quarantined_count();
  r.objects_seized = sweep.objects_seized();
  r.races = detector.total_report(static_cast<ThreadId>(nthreads));
  for (std::size_t o = 0; o < rmeta.size() && o < 64; ++o) {
    if (rmeta[o].raced()) r.racy_object_mask |= 1ULL << o;
  }
  r.final_states.reserve(vars.size());
  r.final_values.reserve(vars.size());
  std::uint64_t h = 1469598103934665603ULL;
  for (TrackedVar<std::uint64_t>& v : vars) {
    r.final_states.push_back(v.meta().load_state());
    r.final_values.push_back(v.raw_load());
    h = fnv1a(h, r.final_states.back().raw());
    h = fnv1a(h, r.final_values.back());
  }
  for (std::uint64_t s : load_sum) h = fnv1a(h, s);
  for (Slot s : r.trace) h = fnv1a(h, static_cast<std::uint64_t>(s));
  h = fnv1a(h, r.steps);
  h = fnv1a(h, static_cast<std::uint64_t>(r.status));
  r.digest = h;
  return r;
}

}  // namespace

// ==== Explorer ===============================================================

Explorer::Explorer(Family family, int nthreads)
    : family_(family),
      nthreads_(nthreads),
      oracle_(family),
      pool_(std::make_unique<detail::WorkerPool>(nthreads)) {
  HT_ASSERT(nthreads >= 1, "explorer needs at least one thread");
  run_config_.family = family;
}

Explorer::~Explorer() = default;

RunResult Explorer::run_once(const Program& program, Strategy& strategy) {
  HT_ASSERT(program.nthreads() == nthreads_,
            "program thread count != explorer thread count");
  // Programs that quarantine threads produce seizure edges the base
  // successor relation rejects; admit them once, automatically, so generic
  // drivers (the exhaustive suite iterates every builtin) need no wiring.
  if (!widened_for_quarantine_ && program.has_quarantine()) {
    oracle_.widen_for_quarantine();
    widened_for_quarantine_ = true;
  }
  oracle_.reset();
  const auto observe = [this](const StateChange& c) {
    oracle_.observe(c);
    if (run_config_.on_state_change) run_config_.on_state_change(c);
  };
  switch (family_) {
    case Family::kHybrid: {
      HybridConfig hc;
      // Small inertia/cutoffs so short explorer programs can actually cross
      // the adaptive opt<->pess boundary (the defaults are tuned for long
      // benchmark runs and would pin every 4-op program optimistic).
      hc.policy.cutoff_confl = 2;
      hc.policy.inertia = 8;
      hc.policy.k_confl = 4;
      return run_core(*pool_, program, family_, run_config_, strategy,
                      observe,
                      [&](Runtime& rt) { return HybridTracker<>(rt, hc); });
    }
    case Family::kOptimistic:
      return run_core(*pool_, program, family_, run_config_, strategy,
                      observe,
                      [](Runtime& rt) { return OptimisticTracker<>(rt); });
    case Family::kPessimistic:
      return run_core(*pool_, program, family_, run_config_, strategy,
                      observe,
                      [](Runtime& rt) { return PessimisticTracker<>(rt); });
    case Family::kIdeal:
      return run_core(*pool_, program, family_, run_config_, strategy,
                      observe,
                      [](Runtime& rt) { return IdealTracker<>(rt); });
  }
  HT_ASSERT(false, "unknown family");
  throw ScheduleAborted{};  // unreachable
}

std::string Explorer::check_run(const RunResult& r) const {
  if (check_policy_.require_complete && !r.complete()) {
    return std::string("schedule did not run to completion: ") +
           run_status_name(r.status);
  }
  if (oracle_.violations() != 0) {
    return "state-pair oracle: " + oracle_.first_violation();
  }
  if (check_policy_.require_zero_checker_violations &&
      r.checker_violations != 0) {
    return "shadow transition checker flagged " +
           std::to_string(r.checker_violations) + " transition(s)";
  }
  if (check_policy_.require_quiescent && r.complete()) {
    for (std::size_t o = 0; o < r.final_states.size(); ++o) {
      const StateWord s = r.final_states[o];
      if (!s.is_optimistic() && !s.is_pess_unlocked()) {
        return "object " + std::to_string(o) +
               " not quiescent after all threads exited: " + s.to_string();
      }
    }
  }
  if (check_policy_.require_zero_races && r.races.total() != 0) {
    return "race detector reported " + std::to_string(r.races.total()) +
           " race(s) in a lock-synchronized program";
  }
  if (check_policy_.extra) return check_policy_.extra(r);
  return "";
}

// ==== exhaustive DFS with sleep sets =========================================

namespace {

// One node on the DFS stack, persistent across re-executions: the eligible
// set observed there, the sleep set inherited on entry (Godefroid), the
// alternatives whose subtrees are already explored (with the footprints
// their first steps turned out to have), and the current choice.
struct Frame {
  std::vector<Slot> eligible;
  std::vector<std::pair<Slot, Footprint>> sleep;
  std::vector<std::pair<Slot, Footprint>> explored;
  Slot chosen = -1;
  Footprint chosen_fp{};
};

bool contains_slot(const std::vector<std::pair<Slot, Footprint>>& xs,
                   Slot s) {
  for (const auto& [slot, fp] : xs) {
    if (slot == s) return true;
  }
  return false;
}

// Replays the committed prefix, then extends the stack one frame per new
// decision, skipping choices in the sleep set. Sleep sets prune schedules
// that only reorder provably independent (distinct-object-confined) steps:
// after t's subtree is explored at a node, t sleeps in every sibling subtree
// until a dependent step wakes it, because executing the sibling first and t
// second reaches an already-covered equivalence class.
class DfsStrategy final : public Strategy {
 public:
  DfsStrategy(std::vector<Frame>& frames, bool sleep_sets)
      : frames_(frames), sleep_sets_(sleep_sets) {}

  std::optional<Slot> pick(const std::vector<Slot>& eligible,
                           const std::vector<Decision>& history) override {
    const std::size_t depth = history.size();
    if (depth < frames_.size()) {
      Frame& f = frames_[depth];
      if (f.eligible != eligible) {
        diverged_ = true;  // re-execution must be deterministic
        return std::nullopt;
      }
      return f.chosen;
    }
    Frame f;
    f.eligible = eligible;
    if (sleep_sets_ && depth > 0) {
      // Inherit sleepers independent of the step just executed; dependent
      // ones wake up (their reordering against that step matters).
      const Frame& parent = frames_[depth - 1];
      const Footprint& step = history[depth - 1].footprint;
      const auto inherit =
          [&](const std::vector<std::pair<Slot, Footprint>>& xs) {
            for (const auto& [slot, fp] : xs) {
              if (independent_steps(fp, step)) f.sleep.push_back({slot, fp});
            }
          };
      inherit(parent.sleep);
      inherit(parent.explored);
    }
    std::optional<Slot> choice;
    for (Slot s : eligible) {
      if (!contains_slot(f.sleep, s)) {
        choice = s;
        break;
      }
    }
    f.chosen = choice.value_or(-1);
    frames_.push_back(std::move(f));
    return choice;  // nullopt: every choice sleeps -> prune this execution
  }

  bool diverged() const { return diverged_; }

 private:
  std::vector<Frame>& frames_;
  bool sleep_sets_;
  bool diverged_ = false;
};

// Backtracks to the deepest frame with an untried non-sleeping alternative;
// false means the tree is exhausted.
bool advance(std::vector<Frame>& frames) {
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.chosen >= 0) f.explored.push_back({f.chosen, f.chosen_fp});
    Slot next = -1;
    for (Slot s : f.eligible) {
      if (!contains_slot(f.sleep, s) && !contains_slot(f.explored, s)) {
        next = s;
        break;
      }
    }
    if (next >= 0) {
      f.chosen = next;
      f.chosen_fp = Footprint{};
      return true;
    }
    frames.pop_back();
  }
  return false;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ExploreOutcome Explorer::explore_exhaustive(const Program& program,
                                            std::uint64_t max_schedules,
                                            bool sleep_sets) {
  ExploreOutcome out;
  std::vector<Frame> frames;
  while (out.stats.schedules < max_schedules) {
    DfsStrategy strat(frames, sleep_sets);
    RunResult r = run_once(program, strat);
    ++out.stats.schedules;
    // Record what each frame's current choice turned out to touch; the
    // footprints feed the sleep sets of sibling subtrees.
    for (std::size_t d = 0; d < frames.size() && d < r.decisions.size();
         ++d) {
      if (frames[d].chosen == r.decisions[d].chosen) {
        frames[d].chosen_fp = r.decisions[d].footprint;
      }
    }
    if (strat.diverged()) {
      out.violation = ScheduleViolation{
          "nondeterministic re-execution: eligible set changed across "
          "identical schedule prefixes",
          out.stats.schedules - 1, 0, r.trace};
      return out;
    }
    if (r.status == VirtualScheduler::RunStatus::kPruned) {
      ++out.stats.pruned;
    } else {
      if (r.status == VirtualScheduler::RunStatus::kDeadlock) {
        ++out.stats.deadlocks;
      }
      if (r.status == VirtualScheduler::RunStatus::kStepLimit) {
        ++out.stats.truncated;
      }
      std::string err = check_run(r);
      if (!err.empty()) {
        out.violation = ScheduleViolation{std::move(err),
                                          out.stats.schedules - 1, 0, r.trace};
        return out;
      }
    }
    if (!advance(frames)) {
      out.stats.complete = true;
      break;
    }
  }
  return out;
}

ExploreOutcome Explorer::explore_fuzz(const Program& program,
                                      std::uint64_t seed,
                                      std::uint64_t schedules,
                                      int preemption_bound) {
  ExploreOutcome out;
  for (std::uint64_t i = 0; i < schedules; ++i) {
    const std::uint64_t run_seed = splitmix64(seed + i);
    FuzzStrategy strat(run_seed, preemption_bound);
    RunResult r = run_once(program, strat);
    ++out.stats.schedules;
    if (r.status == VirtualScheduler::RunStatus::kDeadlock) {
      ++out.stats.deadlocks;
    }
    if (r.status == VirtualScheduler::RunStatus::kStepLimit) {
      ++out.stats.truncated;
    }
    std::string err = check_run(r);
    if (!err.empty()) {
      out.violation =
          ScheduleViolation{std::move(err), i, run_seed, r.trace};
      return out;
    }
  }
  return out;
}

RunResult Explorer::replay(const Program& program,
                           const std::vector<Slot>& choices) {
  ReplayStrategy strat(choices);
  RunResult r = run_once(program, strat);
  r.replay_diverged = strat.diverged();
  return r;
}

}  // namespace ht::schedule
