// Interleaving explorer: executes op-list Programs (program.hpp) under the
// virtual scheduler and drives them through
//   * exhaustive DFS over all schedules with sleep-set pruning (Godefroid),
//   * seeded, preemption-bounded schedule fuzzing, and
//   * bit-identical replay of a recorded choice sequence,
// re-executing the program from scratch for every schedule (stateless model
// checking: no state capture, only deterministic re-execution).
//
// Every run carries oracles:
//   * a per-step state-change observer feeding the StatePairOracle, whose
//     legal successor-kind relation is derived from the PR-2 transition
//     model (and can be mutated by tests to prove the harness detects
//     ordering bugs);
//   * the HT_CHECK_TRANSITIONS shadow checker's violation counter delta
//     (nonzero only in checking builds — a free extra oracle there);
//   * final-state quiescence (every object optimistic or pess-unlocked once
//     all threads exited, the chaos invariant);
//   * optionally the src/raceck/ vector-clock detector (lock-synchronized
//     programs must be race-free in EVERY interleaving).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faultinject/fault_injector.hpp"
#include "metadata/state_word.hpp"
#include "raceck/race_detector.hpp"
#include "schedule/program.hpp"
#include "schedule/virtual_scheduler.hpp"

namespace ht::schedule {

// The three real trackers, plus the ideal/unsound study variant (§7.5).
// Ideal elides coordination, so it is not a soundness target — it exists
// here so differential tests can compare the sound trackers' final memory
// and race verdicts against the upper-bound configuration.
enum class Family : std::uint8_t { kPessimistic, kOptimistic, kHybrid, kIdeal };

const char* family_name(Family f);
std::optional<Family> family_from_name(const std::string& name);

// One observed net state change: object `obj` went from `from` to `to`
// during the step that slot `slot` executed. Changes are per-step snapshots,
// so a step that passes through an invisible intermediate (the pessimistic
// LOCKED sentinel; Int resolved implicitly within the same step) reports
// only the net edge.
struct StateChange {
  int obj = 0;
  Slot slot = -1;
  StateWord from{};
  StateWord to{};
};

// One completed program operation, observed in the global order the virtual
// scheduler serialized it (seq is a run-global, gap-free index: the observer
// runs while the executing thread still holds the virtual CPU, so calls are
// mutually exclusive and scheduler-ordered). The offline hb_engine's
// TraceBuilder consumes these to build access-annotated traces.
struct OpStep {
  std::uint64_t seq = 0;
  Slot slot = -1;
  Op op{};
};

struct RunConfig {
  Family family = Family::kHybrid;
  std::uint64_t max_steps = 4096;
  int deadlock_rounds = 8;
  const FaultConfig* faults = nullptr;  // optional injected faults
  bool race_detect = false;
  // Barrier elision (DESIGN.md §15). On by default so exhaustive exploration
  // exercises the elision probe; soundness suites run every program both ways
  // and assert identical outcome sets.
  bool elision = true;
  std::function<void(const StateChange&)> on_state_change;
  std::function<void(const OpStep&)> on_op;
};

struct RunResult {
  VirtualScheduler::RunStatus status = VirtualScheduler::RunStatus::kRunning;
  bool replay_diverged = false;
  std::vector<Slot> trace;
  std::uint64_t steps = 0;
  std::uint64_t digest = 0;  // FNV-1a over final states, values, loads, trace
  std::vector<StateWord> final_states;
  std::vector<std::uint64_t> final_values;
  RaceReport races;
  std::uint64_t checker_violations = 0;
  std::uint64_t faults_fired = 0;
  // Resilience (DESIGN.md §11): threads quarantined during the run (via
  // OpKind::kQuarantine) and object states the eager sweep reclaimed from
  // them. Deliberately outside the digest: schedules differing only in
  // whether a seizure was eager or lazy can still hash equal.
  std::uint32_t quarantined = 0;
  std::uint64_t objects_seized = 0;
  // Object identity for the race counts (race_detect runs only): bit o set
  // iff object o had at least one race counted against it. The offline
  // predictive detector's per-object reports are validated against the
  // union of these masks over exhaustive exploration.
  std::uint64_t racy_object_mask = 0;
  // Full decision record (eligible sets + observed footprints); the DFS
  // explorer consumes these to fill its frames after each execution.
  std::vector<Decision> decisions;

  bool complete() const {
    return status == VirtualScheduler::RunStatus::kComplete;
  }
};

const char* run_status_name(VirtualScheduler::RunStatus s);
std::string trace_to_string(const std::vector<Slot>& trace);

// Legal successor-kind oracle derived from analysis::transition_rules().
// Observes net per-step edges, so the allowed relation is the rule relation
// plus identity (fast paths / no-ops) plus the Int round trip split into
// (from -> Int) and (Int -> landing) for rules flagged begins_coordination.
// Tid/epoch arithmetic is the shadow checker's job; this oracle is about
// *kind* successions and is cheap enough for every build flavor.
class StatePairOracle {
 public:
  explicit StatePairOracle(Family f);

  // Mutation testing: declare one legal kind pair illegal.
  void forbid(StateKind from, StateKind to);

  // Admits the kind successions ownership seizure introduces (DESIGN.md
  // §11.3) — victim-owned locked/Int states jumping to their seizure
  // landings (and onward to the seizer's own re-acquisition within the same
  // step), plus Int falling back to the conflict's *from* kind when the
  // victim abandons a coordination (IntGuard restore). Call before
  // exploring programs containing OpKind::kQuarantine; rows whose source a
  // quarantined thread cannot own are untouched.
  void widen_for_quarantine();

  void observe(const StateChange& c);
  std::uint64_t violations() const { return violations_; }
  const std::string& first_violation() const { return first_; }
  void reset();

 private:
  static constexpr std::size_t kKinds = 16;
  Family family_;
  std::array<std::array<bool, kKinds>, kKinds> allowed_{};
  std::uint64_t violations_ = 0;
  std::string first_;
};

struct ExploreStats {
  std::uint64_t schedules = 0;  // executions performed (pruned ones included)
  std::uint64_t pruned = 0;     // sleep-set-blocked re-executions
  std::uint64_t deadlocks = 0;
  std::uint64_t truncated = 0;  // step-limit hits
  bool complete = false;        // exhaustive only: DFS tree fully explored
};

struct ScheduleViolation {
  std::string what;
  std::uint64_t schedule_index = 0;
  std::uint64_t seed = 0;  // fuzz only: the per-schedule derived seed
  std::vector<Slot> trace;
  std::string to_string() const;
};

struct ExploreOutcome {
  ExploreStats stats;
  std::optional<ScheduleViolation> violation;
};

// What every explored schedule must satisfy; `extra` returns "" when happy.
struct CheckPolicy {
  bool require_complete = true;
  bool require_quiescent = true;
  bool require_zero_checker_violations = true;
  bool require_zero_races = false;
  std::function<std::string(const RunResult&)> extra;
};

namespace detail {
class WorkerPool;
}

// Owns the persistent worker pool (OS threads are reused across the
// thousands of re-executions a DFS performs) and the per-run oracle wiring.
class Explorer {
 public:
  Explorer(Family family, int nthreads);
  ~Explorer();
  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  RunConfig& run_config() { return run_config_; }
  CheckPolicy& check_policy() { return check_policy_; }
  StatePairOracle& oracle() { return oracle_; }

  // One execution under an arbitrary strategy (oracle wired, policy checked
  // by the explore drivers, not here).
  RunResult run_once(const Program& program, Strategy& strategy);

  // Exhaustive DFS with sleep sets; stops at the first violating schedule or
  // when the tree (or `max_schedules`) is exhausted. `sleep_sets = false`
  // disables pruning (full tree) — tests cross-check that both modes reach
  // the same set of execution digests, i.e. pruning only skips equivalent
  // reorderings.
  ExploreOutcome explore_exhaustive(const Program& program,
                                    std::uint64_t max_schedules,
                                    bool sleep_sets = true);

  // Seeded fuzzing: `schedules` runs, each under FuzzStrategy with a seed
  // derived from (seed, index) and the given preemption bound.
  ExploreOutcome explore_fuzz(const Program& program, std::uint64_t seed,
                              std::uint64_t schedules, int preemption_bound);

  // Replay a recorded choice sequence once.
  RunResult replay(const Program& program, const std::vector<Slot>& choices);

 private:
  std::string check_run(const RunResult& r) const;

  Family family_;
  int nthreads_;
  RunConfig run_config_;
  CheckPolicy check_policy_;
  StatePairOracle oracle_;
  bool widened_for_quarantine_ = false;
  std::unique_ptr<detail::WorkerPool> pool_;
};

}  // namespace ht::schedule
