#include "schedule/program.hpp"

#include "common/xorshift.hpp"

namespace ht::schedule {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kStoreReg: return "store-reg";
    case OpKind::kPsro: return "psro";
    case OpKind::kBlockWindow: return "block";
    case OpKind::kLockAcquire: return "lock";
    case OpKind::kLockRelease: return "unlock";
    case OpKind::kQuarantine: return "quarantine";
  }
  return "?";
}

namespace {

Op ld(int obj) { return {OpKind::kLoad, obj, 0, 0}; }
Op st(int obj, std::uint64_t v) { return {OpKind::kStore, obj, 0, v}; }
Op streg(int obj, std::uint64_t add) { return {OpKind::kStoreReg, obj, 0, add}; }
Op psro() { return {OpKind::kPsro, 0, 0, 0}; }
Op block() { return {OpKind::kBlockWindow, 0, 0, 0}; }
Op lock(int l) { return {OpKind::kLockAcquire, 0, l, 0}; }
Op unlock(int l) { return {OpKind::kLockRelease, 0, l, 0}; }
Op qtine(int victim) {
  return {OpKind::kQuarantine, 0, 0, static_cast<std::uint64_t>(victim)};
}

std::vector<NamedProgram> build() {
  std::vector<NamedProgram> p;

  // Write/write conflicts on two objects with opposite initial owners: every
  // interleaving of the four stores exercises the conflicting-write rows
  // (Int entry + coordination landing) in both directions.
  p.push_back({"ww-conflict",
               "2 threads cross-storing 2 objects with opposite owners",
               {.objects = 2,
                .locks = 0,
                .threads = {{st(0, 1), st(1, 2)}, {st(1, 3), st(0, 4)}},
                .init = {{0, false}, {1, false}}}});

  // Read-sharing formation and its collapse: loads drive WrEx -> RdEx ->
  // RdShOpt (fresh epoch), then a store forces the coordinate-with-all-others
  // fall-back (footnote 4) out of the shared state.
  p.push_back({"read-share",
               "2 readers form RdShOpt on obj 0, then a store collapses it",
               {.objects = 2,
                .locks = 0,
                .threads = {{ld(0), ld(1), st(0, 7)}, {ld(0), ld(1)}},
                .init = {{0, false}, {1, false}}}});

  // Three threads fanning into a read share and colliding on the way out:
  // the RdSh write row must coordinate with every other thread.
  p.push_back({"rdsh-fan",
               "3 threads read-share obj 0; two then store",
               {.objects = 1,
                .locks = 0,
                .threads = {{ld(0), st(0, 1)}, {ld(0)}, {ld(0), st(0, 2)}},
                .init = {}}});

  // Deferred unlocking (§3.1): obj 0 starts WrExPess(T0); T0's store
  // write-locks it into T0's lock buffer, the PSRO flushes it, and T1's
  // store races the flush — landing before (contended wait on WrExWLock) or
  // after (uncontended pessimistic CAS) depending on the schedule.
  p.push_back({"deferred-unlock",
               "pess write lock held across ops until a PSRO flush, racing a taker",
               {.objects = 2,
                .locks = 0,
                .threads = {{st(0, 1), st(1, 2), psro()}, {st(0, 3), psro()}},
                .init = {{0, true}, {1, false}}}});

  // Read-lock corners of Table 3: a pessimistic object read by both threads
  // forms RdShRLock (two holders, fresh epoch); the write afterwards must
  // wait for the other holder's flush.
  p.push_back({"rdsh-rlock",
               "pess reads form RdShRLock; a write waits out the holders",
               {.objects = 1,
                .locks = 0,
                .threads = {{ld(0), psro(), st(0, 5), psro()},
                            {ld(0), psro()}},
                .init = {{0, true}}}});

  // Fall-back (implicit) coordination: T0 parks in a blocking window, so
  // T1's conflicting accesses coordinate via the blocked-status CAS instead
  // of a ticketed round trip — or explicitly, when T1 lands before the park.
  p.push_back({"blocked-owner",
               "conflicting access races the owner's blocking window",
               {.objects = 2,
                .locks = 0,
                .threads = {{st(0, 1), block(), st(1, 2)},
                            {st(0, 3), ld(1)}},
                .init = {{0, false}, {1, false}}}});

  // Lock-synchronized increments: data-race-free by construction, so the
  // vector-clock oracle must stay silent and the final value must be exactly
  // one increment per thread in EVERY interleaving.
  p.push_back({"locked-inc",
               "2 threads do lock; reg=obj0; obj0=reg+1; unlock",
               {.objects = 1,
                .locks = 1,
                .threads = {{lock(0), ld(0), streg(0, 1), unlock(0)},
                            {lock(0), ld(0), streg(0, 1), unlock(0)}},
                .init = {}}});

  // Self-healing (DESIGN.md §11): slot 1 write-locks a pessimistic object
  // and starts an optimistic conflict (Int + coordination wait) against
  // slot 0's object, and slot 0 quarantines it at an arbitrary point in
  // that sequence. Exhaustive exploration makes the eager sweep, the lazy
  // per-access seizure, the IntGuard abandon-restore, and the victim's
  // landing CAS race each other in every order; every interleaving must
  // still complete quiescent (the survivor reclaims whatever the victim
  // held) with zero checker violations.
  p.push_back({"quarantine",
               "slot 0 quarantines slot 1 mid-lock/mid-coordination",
               {.objects = 2,
                .locks = 0,
                .threads = {{qtine(1), st(0, 2), ld(1)},
                            {st(0, 1), st(1, 5), psro()}},
                .init = {{1, true}, {0, false}}}});

  // The same increments with the lock removed: racy on purpose, used to
  // prove the race-detector oracle actually fires under exploration.
  p.push_back({"racy-inc",
               "2 threads do reg=obj0; obj0=reg+1 with no lock",
               {.objects = 1,
                .locks = 0,
                .threads = {{ld(0), streg(0, 1)}, {ld(0), streg(0, 1)}},
                .init = {}}});

  return p;
}

}  // namespace

const std::vector<NamedProgram>& builtin_programs() {
  static const std::vector<NamedProgram> programs = build();
  return programs;
}

const Program* find_builtin(const std::string& name) {
  for (const NamedProgram& np : builtin_programs()) {
    if (np.name == name) return &np.program;
  }
  return nullptr;
}

Program make_chaos_program(std::uint64_t seed, int nthreads, int objects,
                           int ops_per_thread) {
  Program p;
  p.objects = objects;
  p.locks = 0;
  p.threads.resize(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    // Same per-thread seeding shape as tests/test_chaos.cpp so fault streams
    // and op mixes stay comparable across the two suites.
    Xoshiro256 rng(seed * 977 + static_cast<std::uint64_t>(t));
    auto& ops = p.threads[static_cast<std::size_t>(t)];
    ops.reserve(static_cast<std::size_t>(ops_per_thread));
    for (int i = 0; i < ops_per_thread; ++i) {
      const int obj = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(objects)));
      switch (rng.next_below(8)) {
        case 0:
        case 1:
        case 2:
          ops.push_back({OpKind::kStore, obj, 0, rng.next()});
          break;
        case 3:
        case 4:
        case 5:
          ops.push_back({OpKind::kLoad, obj, 0, 0});
          break;
        case 6:
          ops.push_back({OpKind::kPsro, 0, 0, 0});
          break;
        case 7:
          ops.push_back({OpKind::kBlockWindow, 0, 0, 0});
          break;
      }
    }
  }
  return p;
}

}  // namespace ht::schedule
