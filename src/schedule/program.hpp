// Op-list programs for the interleaving explorer.
//
// A Program is a tiny, fully deterministic multi-threaded tracker workload:
// per-slot lists of accesses, PSROs, blocking windows, and program-lock
// operations over a handful of tracked objects. Object/lock *indices* (never
// addresses) appear everywhere so the same program re-executes identically
// across thousands of fresh runtimes, and so a schedule trace recorded in
// one process replays bit-identically in another.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ht::schedule {

enum class OpKind : std::uint8_t {
  kLoad,         // reg = objects[obj]
  kStore,        // objects[obj] = value
  kStoreReg,     // objects[obj] = reg + value (reads nothing; uses last load)
  kPsro,         // program-structured release operation (flushes lock buffer)
  kBlockWindow,  // begin_blocking; scheduling point; end_blocking
  kLockAcquire,  // locks[lock].acquire — blocking safe point when contended
  kLockRelease,  // locks[lock].release — a PSRO
  kQuarantine,   // quarantine thread slot `value` (DESIGN.md §11.2): models a
                 // coordinator whose lease on that thread expired. The victim
                 // self-parks at its next safe point; the run's eager sweep
                 // seizes whatever it still owns.
};

const char* op_kind_name(OpKind k);

struct Op {
  OpKind kind = OpKind::kLoad;
  int obj = 0;
  int lock = 0;
  std::uint64_t value = 0;
};

// Initial metadata for one object: which slot allocates it (the paper's
// "newly allocated by thread T starts in WrEx_T", §6.2) and whether the
// hybrid/pessimistic run forces it to start in the pessimistic flavor —
// needed to reach the Table 3 deferred-unlock rows without first driving the
// adaptive policy through a transfer.
struct ObjInit {
  int owner = 0;
  bool pess = false;
};

struct Program {
  int objects = 1;
  int locks = 0;
  std::vector<std::vector<Op>> threads;
  std::vector<ObjInit> init;  // empty == every object {owner 0, optimistic}

  int nthreads() const { return static_cast<int>(threads.size()); }
  bool has_quarantine() const {
    for (const std::vector<Op>& ops : threads) {
      for (const Op& op : ops) {
        if (op.kind == OpKind::kQuarantine) return true;
      }
    }
    return false;
  }
  ObjInit obj_init(int obj) const {
    return static_cast<std::size_t>(obj) < init.size()
               ? init[static_cast<std::size_t>(obj)]
               : ObjInit{};
  }
};

struct NamedProgram {
  std::string name;
  const char* note;
  Program program;
};

// Hand-written 2–3 thread, ≤2 object corner programs: the conflict,
// read-sharing, deferred-unlock, and fall-back-coordination rows of
// Table 1/Table 3 in minimal form. These are the exhaustive-enumeration
// targets (tests/test_schedule_exhaustive.cpp) and are addressable by name
// from tools/schedule_explore and from trace files.
const std::vector<NamedProgram>& builtin_programs();
const Program* find_builtin(const std::string& name);

// Chaos-style random program mirroring tests/test_chaos.cpp's op mix
// (3/8 store, 3/8 load, 1/8 PSRO, 1/8 blocking window), deterministic in
// (seed, slot). Used by the deterministic chaos re-runs and the fuzz CLI.
Program make_chaos_program(std::uint64_t seed, int nthreads, int objects,
                           int ops_per_thread);

}  // namespace ht::schedule
