// Schedule-point shim: the single indirection through which runtime wait
// loops and workload yield sites hand control to a virtual scheduler.
//
// Production runs install no scheduler, so every shim call is a TLS load plus
// a predictable branch (yield sites fall back to std::this_thread::yield(),
// exactly the pre-shim behavior). Under exploration (src/schedule/
// virtual_scheduler.hpp) the shim parks the calling OS thread until the
// active schedule strategy grants it the (single) virtual CPU, which is what
// makes interleavings enumerable and replayable: every context switch happens
// at a sequence-numbered scheduling point chosen by the strategy, never by
// the OS.
//
// Two flavors of point:
//   * point()      — a normal scheduling point (safe-point poll cadence,
//                    yield sites between regions/ops). The thread stays
//                    runnable; reaching one counts as forward progress.
//   * wait_point() — a point inside a nondeterministic spin loop (Int-state
//                    waits, coordinate() ticket waits, ProgramLock acquire).
//                    The thread is still schedulable — granting it re-checks
//                    the condition — but the scheduler knows no progress was
//                    made, which drives livelock/deadlock detection and keeps
//                    failed re-checks out of the explored choice space.
#pragma once

#include <cstdint>
#include <thread>

namespace ht::schedule {

class VirtualScheduler;

struct TlsSlot {
  VirtualScheduler* sched = nullptr;
  int slot = -1;
};

inline TlsSlot& tls_slot() {
  thread_local TlsSlot s;
  return s;
}

// True when the calling thread is bound to a virtual scheduler. Wait loops
// use this to skip OS backoff (sleeping while holding the virtual CPU would
// only waste wall time; the scheduler provides fairness instead).
inline bool virtualized() { return tls_slot().sched != nullptr; }

namespace detail {
// Out of line in virtual_scheduler.cpp; only reached when virtualized.
void park_point(TlsSlot& t);
void park_wait(TlsSlot& t);
}  // namespace detail

inline void point() {
  TlsSlot& t = tls_slot();
  if (t.sched != nullptr) detail::park_point(t);
}

inline void wait_point() {
  TlsSlot& t = tls_slot();
  if (t.sched != nullptr) detail::park_wait(t);
}

// Yield-site replacement: under a virtual scheduler a yield is a scheduling
// point; otherwise it is the plain OS yield the call site used to perform.
inline void yield_point() {
  TlsSlot& t = tls_slot();
  if (t.sched != nullptr) {
    detail::park_point(t);
  } else {
    std::this_thread::yield();
  }
}

// Shared yield-cadence helper: workloads and microbenchmarks yield every
// `every` iterations (0 disables). Factored here so every run variant shares
// one scheduling-point implementation instead of hand-rolling the modulo.
inline void cadence_point(std::uint64_t iteration, std::uint64_t every) {
  if (every != 0 && (iteration + 1) % every == 0) yield_point();
}

}  // namespace ht::schedule
