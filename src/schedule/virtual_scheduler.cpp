#include "schedule/virtual_scheduler.hpp"

#include <algorithm>

namespace ht::schedule {

namespace detail {

void park_point(TlsSlot& t) { t.sched->park_point(t.slot); }
void park_wait(TlsSlot& t) { t.sched->park_wait(t.slot); }

}  // namespace detail

VirtualScheduler::VirtualScheduler(Config cfg, Strategy& strategy)
    : cfg_(std::move(cfg)), strategy_(strategy) {
  HT_ASSERT(cfg_.nthreads >= 1, "scheduler needs at least one slot");
  slots_.resize(static_cast<std::size_t>(cfg_.nthreads));
}

void VirtualScheduler::attach(Slot s) {
  TlsSlot& t = tls_slot();
  HT_ASSERT(t.sched == nullptr, "thread already bound to a scheduler");
  t.sched = this;
  t.slot = s;
  std::unique_lock<std::mutex> g(mu_);
  HT_ASSERT(slots_[s].state == SlotState::kNotArrived, "slot attached twice");
  slots_[s].state = SlotState::kSetupParked;
  try_setup_grant_locked();
  wait_for_grant(g, s);
}

void VirtualScheduler::setup_done(Slot s) {
  std::unique_lock<std::mutex> g(mu_);
  HT_ASSERT(setup_phase_ && setup_next_ == s, "setup_done out of order");
  slots_[s].state = SlotState::kPhaseParked;
  ++setup_next_;
  if (setup_next_ == cfg_.nthreads) {
    setup_phase_ = false;
    for (auto& sd : slots_) {
      if (sd.state == SlotState::kPhaseParked) sd.state = SlotState::kRunnable;
    }
    if (cfg_.on_run_start) cfg_.on_run_start();
    pick_next_locked();
  } else {
    try_setup_grant_locked();
  }
  wait_for_grant(g, s);
}

void VirtualScheduler::detach(Slot s) {
  {
    std::unique_lock<std::mutex> g(mu_);
    ++slots_[s].parks;
    finish_step_locked(s, nullptr);
    ++progress_epoch_;
    forced_grants_ = 0;
    slots_[s].state = SlotState::kDone;
    ++done_;
    if (cfg_.on_step && !setup_phase_) cfg_.on_step(s);
    if (done_ == cfg_.nthreads && status_ == RunStatus::kRunning) {
      status_ = RunStatus::kComplete;
    }
    pick_next_locked();
  }
  tls_slot() = TlsSlot{};
}

void VirtualScheduler::detach_aborted(Slot s) {
  {
    std::unique_lock<std::mutex> g(mu_);
    slots_[s].state = SlotState::kDone;
    ++done_;
  }
  tls_slot() = TlsSlot{};
}

void VirtualScheduler::annotated_point(Slot s, const StepAnnotation& ann) {
  park(s, ParkKind::kPoint, &ann);
}

void VirtualScheduler::park_point(Slot s) { park(s, ParkKind::kPoint, nullptr); }

void VirtualScheduler::park_wait(Slot s) { park(s, ParkKind::kWait, nullptr); }

std::vector<Slot> VirtualScheduler::trace() const {
  std::vector<Slot> t;
  t.reserve(decisions_.size());
  for (const Decision& d : decisions_) t.push_back(d.chosen);
  return t;
}

void VirtualScheduler::park(Slot s, ParkKind kind, const StepAnnotation* ann) {
  std::unique_lock<std::mutex> g(mu_);
  ++slots_[s].parks;
  finish_step_locked(s, kind == ParkKind::kPoint ? ann : nullptr);
  if (kind == ParkKind::kPoint) {
    ++progress_epoch_;
    forced_grants_ = 0;
    slots_[s].state = SlotState::kRunnable;
  } else {
    slots_[s].state = SlotState::kWaiting;
    slots_[s].wait_epoch = progress_epoch_;
  }
  if (cfg_.on_step && !setup_phase_) cfg_.on_step(s);
  pick_next_locked();
  wait_for_grant(g, s);
}

void VirtualScheduler::finish_step_locked(Slot s, const StepAnnotation* ann) {
  SlotData& sd = slots_[s];
  if (sd.decision < 0) return;
  Footprint fp;  // global unless the executor proved confinement
  if (ann != nullptr && ann->confined) {
    fp.global = false;
    fp.obj = ann->obj;
  }
  decisions_[static_cast<std::size_t>(sd.decision)].footprint = fp;
  sd.decision = -1;
}

void VirtualScheduler::try_setup_grant_locked() {
  if (!setup_phase_ || setup_next_ >= cfg_.nthreads) return;
  if (slots_[setup_next_].state == SlotState::kSetupParked) {
    grant_locked(setup_next_);
  }
}

void VirtualScheduler::pick_next_locked() {
  if (stop_ || setup_phase_) return;

  std::vector<Slot> eligible;
  int waiting = 0;
  for (Slot s = 0; s < cfg_.nthreads; ++s) {
    const SlotData& sd = slots_[s];
    if (sd.state == SlotState::kRunnable) {
      eligible.push_back(s);
    } else if (sd.state == SlotState::kWaiting) {
      ++waiting;
      if (sd.wait_epoch < progress_epoch_) eligible.push_back(s);
    }
  }

  if (eligible.empty()) {
    if (waiting == 0) return;  // all done (or one thread is running to exit)
    // Every live thread is wait-parked with nothing new to observe: force
    // deterministic round-robin re-checks. Waiters respond to coordination
    // requests inside their re-checks, which is how chained waits unwind;
    // if a bounded number of sweeps resolves nothing, it never will.
    ++forced_grants_;
    if (forced_grants_ >
        static_cast<std::uint64_t>(cfg_.deadlock_rounds) *
            static_cast<std::uint64_t>(waiting)) {
      stop_locked(RunStatus::kDeadlock);
      return;
    }
    for (int i = 0; i < cfg_.nthreads; ++i) {
      const Slot s = (forced_rr_ + i) % cfg_.nthreads;
      if (slots_[s].state == SlotState::kWaiting) {
        forced_rr_ = s + 1;
        eligible.push_back(s);
        break;
      }
    }
  }

  if (++steps_ > cfg_.max_steps) {
    stop_locked(RunStatus::kStepLimit);
    return;
  }
  const std::optional<Slot> choice = strategy_.pick(eligible, decisions_);
  if (!choice.has_value()) {
    stop_locked(RunStatus::kPruned);
    return;
  }
  HT_ASSERT(std::find(eligible.begin(), eligible.end(), *choice) !=
                eligible.end(),
            "strategy picked an ineligible slot");
  decisions_.push_back(Decision{std::move(eligible), *choice, Footprint{}});
  slots_[*choice].decision =
      static_cast<std::int64_t>(decisions_.size()) - 1;
  grant_locked(*choice);
}

void VirtualScheduler::grant_locked(Slot s) {
  slots_[s].state = SlotState::kRunning;
  cv_.notify_all();
}

void VirtualScheduler::stop_locked(RunStatus why) {
  if (status_ == RunStatus::kRunning) status_ = why;
  stop_ = true;
  cv_.notify_all();
}

void VirtualScheduler::wait_for_grant(std::unique_lock<std::mutex>& g, Slot s) {
  cv_.wait(g, [&] { return stop_ || slots_[s].state == SlotState::kRunning; });
  if (stop_) throw ScheduleAborted{};
}

std::optional<Slot> FuzzStrategy::pick(const std::vector<Slot>& eligible,
                                       const std::vector<Decision>& history) {
  const Slot cur = history.empty() ? -1 : history.back().chosen;
  const bool cur_eligible =
      std::find(eligible.begin(), eligible.end(), cur) != eligible.end();
  if (cur_eligible) {
    if (eligible.size() == 1 || used_ >= bound_ || !rng_.chance(1, 4)) {
      return cur;
    }
    // Preempt: uniform over the other eligible slots.
    std::vector<Slot> others;
    for (Slot s : eligible) {
      if (s != cur) others.push_back(s);
    }
    ++used_;
    return others[rng_.next_below(others.size())];
  }
  return eligible[rng_.next_below(eligible.size())];
}

std::optional<Slot> ReplayStrategy::pick(const std::vector<Slot>& eligible,
                                         const std::vector<Decision>& history) {
  const std::size_t i = history.size();
  if (i < choices_.size()) {
    const Slot want = choices_[i];
    if (std::find(eligible.begin(), eligible.end(), want) == eligible.end()) {
      diverged_ = true;
      return std::nullopt;
    }
    return want;
  }
  return eligible.front();
}

}  // namespace ht::schedule
