// Cooperative deterministic virtual scheduler.
//
// Exactly one worker thread holds the "virtual CPU" at any time; every other
// thread is parked on a condition variable inside a scheduling point (the
// shim in schedule_point.hpp). When the running thread reaches its next
// point it parks, the scheduler asks the active Strategy to pick the next
// slot from the eligible set, and grants it. Because every context switch
// happens at a sequence-numbered decision and the strategy is deterministic
// (enumerated, seeded, or replayed), the whole execution is deterministic:
// the same program + strategy reproduces the same interleaving bit for bit,
// regardless of OS scheduling. This is the stateless-model-checking scheme
// of Abdulla et al. adapted to the tracker runtime's safe-point structure.
//
// Lifecycle per run (driven by the explorer, see explorer.hpp):
//   worker: attach(slot)      parks; setup grants arrive in slot order so
//                             thread registration yields slot == ThreadId
//   worker: setup_done(slot)  parks until every slot finished setup; then
//                             the run phase starts and Strategy decides
//   worker: point()/wait_point() via the shim, or annotated_point() from
//                             the program executor (carries the step's
//                             object footprint for sleep-set pruning)
//   worker: detach(slot)      thread's program is complete
//
// Wait points (spin re-checks) never count as progress: a thread that just
// failed its re-check is ineligible until some other thread reaches a normal
// point. When *everything* is wait-parked the scheduler forces deterministic
// round-robin re-checks (waiters may still respond to coordination requests,
// which is how chained waits resolve); if a bounded number of forced sweeps
// makes no progress the run is declared deadlocked and aborted by throwing
// ScheduleAborted out of every park.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/xorshift.hpp"
#include "schedule/schedule_point.hpp"

namespace ht::schedule {

using Slot = int;

// What one scheduler step (grant-to-park execution fragment) touched.
// Confined steps touched exactly one tracked object's metadata/value plus
// the acting thread's own state; everything else is conservatively global.
struct Footprint {
  bool global = true;
  int obj = -1;
};

// Two steps commute iff both are confined to distinct objects. Global steps
// (coordination, responses, PSROs, multi-grant ops) commute with nothing.
inline bool independent_steps(const Footprint& a, const Footprint& b) {
  return !a.global && !b.global && a.obj != b.obj;
}

// Set by the program executor on its per-op park when the op provably stayed
// confined (no coordination, no response, no global-counter draw, no
// intermediate wait parks).
struct StepAnnotation {
  bool confined = false;
  int obj = -1;
};

// One strategy decision: the eligible set it saw, what it chose, and what
// the chosen step turned out to touch (filled when that step next parks).
struct Decision {
  std::vector<Slot> eligible;
  Slot chosen = -1;
  Footprint footprint{};
};

// Thrown out of scheduling points when the current run is cancelled
// (deadlock, step limit, sleep-set prune, replay divergence). Deliberately
// not a std::exception: nothing in the runtime should catch it by accident.
struct ScheduleAborted {};

class Strategy {
 public:
  virtual ~Strategy() = default;
  // `eligible` is sorted and non-empty; `history` holds all completed
  // decisions (history.size() is the current decision's index). Return a
  // member of `eligible`, or nullopt to abort the run as pruned.
  virtual std::optional<Slot> pick(const std::vector<Slot>& eligible,
                                   const std::vector<Decision>& history) = 0;
};

class VirtualScheduler {
 public:
  enum class RunStatus {
    kRunning,    // workers still executing
    kComplete,   // every slot detached normally
    kDeadlock,   // forced re-check sweeps exhausted with no progress
    kStepLimit,  // cfg.max_steps decisions exceeded
    kPruned,     // strategy declined to pick (sleep-set blocked / diverged)
  };

  struct Config {
    int nthreads = 2;
    std::uint64_t max_steps = 1 << 20;
    // Forced re-check sweeps (times live waiter count) tolerated while every
    // thread is wait-parked before declaring deadlock.
    int deadlock_rounds = 8;
    // Called with no thread holding the virtual CPU, once per completed step
    // (after footprint bookkeeping, before the next grant). Run phase only.
    std::function<void(Slot)> on_step;
    // Called once, when setup finishes and before the first run-phase
    // decision; the explorer snapshots its oracle baseline here.
    std::function<void()> on_run_start;
  };

  VirtualScheduler(Config cfg, Strategy& strategy);
  VirtualScheduler(const VirtualScheduler&) = delete;
  VirtualScheduler& operator=(const VirtualScheduler&) = delete;

  // --- worker-thread side ----------------------------------------------------
  void attach(Slot s);
  void setup_done(Slot s);
  void detach(Slot s);
  // After catching ScheduleAborted: mark the slot finished without parking.
  void detach_aborted(Slot s);
  // Program-executor park carrying the completed op's footprint.
  void annotated_point(Slot s, const StepAnnotation& ann);
  // Parks this slot has performed; the executor uses the delta across an op
  // to detect intermediate wait parks (which void confinement).
  std::uint64_t parks(Slot s) const { return slots_[s].parks; }

  // Shim entry points (via schedule_point.hpp detail::park_*).
  void park_point(Slot s);
  void park_wait(Slot s);

  // --- results (valid once every worker returned) ----------------------------
  RunStatus status() const { return status_; }
  std::uint64_t steps() const { return steps_; }
  const std::vector<Decision>& decisions() const { return decisions_; }
  std::vector<Slot> trace() const;

 private:
  enum class SlotState {
    kNotArrived,
    kSetupParked,   // attached, awaiting its setup grant
    kPhaseParked,   // setup done, awaiting the run phase
    kRunnable,
    kWaiting,
    kRunning,
    kDone,
  };
  enum class ParkKind { kPoint, kWait };
  struct SlotData {
    SlotState state = SlotState::kNotArrived;
    std::uint64_t wait_epoch = 0;
    std::uint64_t parks = 0;
    // Index into decisions_ of the grant this slot is currently running
    // under, or -1 for setup/initial grants.
    std::int64_t decision = -1;
  };

  void park(Slot s, ParkKind kind, const StepAnnotation* ann);
  void finish_step_locked(Slot s, const StepAnnotation* ann);
  void try_setup_grant_locked();
  void pick_next_locked();
  void grant_locked(Slot s);
  void stop_locked(RunStatus why);
  void wait_for_grant(std::unique_lock<std::mutex>& g, Slot s);

  Config cfg_;
  Strategy& strategy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<SlotData> slots_;
  bool setup_phase_ = true;
  int setup_next_ = 0;  // next slot to receive its setup grant
  int done_ = 0;
  bool stop_ = false;
  RunStatus status_ = RunStatus::kRunning;
  std::uint64_t steps_ = 0;
  std::uint64_t progress_epoch_ = 1;  // > 0 so fresh waiters are ineligible
  std::uint64_t forced_grants_ = 0;
  int forced_rr_ = 0;  // round-robin cursor for forced re-checks
  std::vector<Decision> decisions_;
};

// --- reusable strategies -------------------------------------------------------

// Seeded random scheduling with preemption bounding: keeps running the
// current thread and spends at most `preemption_bound` switches away from a
// still-eligible thread (Musuvathi & Qadeer's observation that most ordering
// bugs need very few preemptions). Forced switches (current thread parked
// waiting or done) are free.
class FuzzStrategy final : public Strategy {
 public:
  FuzzStrategy(std::uint64_t seed, int preemption_bound)
      : rng_(seed), bound_(preemption_bound) {}

  std::optional<Slot> pick(const std::vector<Slot>& eligible,
                           const std::vector<Decision>& history) override;

  int preemptions_used() const { return used_; }

 private:
  Xoshiro256 rng_;
  int bound_;
  int used_ = 0;
};

// Replays a recorded choice sequence; past the end it follows the lowest
// eligible slot (the deterministic suffix rule, also used when recording).
// A recorded choice that is no longer eligible means the execution diverged
// from the recording — the run aborts and diverged() reports it.
class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<Slot> choices)
      : choices_(std::move(choices)) {}

  std::optional<Slot> pick(const std::vector<Slot>& eligible,
                           const std::vector<Decision>& history) override;

  bool diverged() const { return diverged_; }

 private:
  std::vector<Slot> choices_;
  bool diverged_ = false;
};

}  // namespace ht::schedule
