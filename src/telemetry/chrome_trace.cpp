#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/profile/trace_profile.hpp"
#include "common/json.hpp"
#include "metadata/state_word.hpp"

namespace ht::telemetry {

namespace {

constexpr int kPid = 1;  // single-process traces

const char* event_category(EventKind k) {
  switch (k) {
    case EventKind::kCoordRoundTrip:
    case EventKind::kCoordBatch:
    case EventKind::kCoordRequest:
    case EventKind::kCoordBatchDrain:
    case EventKind::kSafePointResponse:
    case EventKind::kPsro:
    case EventKind::kBlockingEnter:
    case EventKind::kBlockingExit:
      return "runtime";
    case EventKind::kDeferredFlush:
    case EventKind::kOptConflict:
    case EventKind::kPessAcquire:
    case EventKind::kPessWait:
    case EventKind::kPolicyOptToPess:
    case EventKind::kPolicyPessToOpt:
    case EventKind::kStateTransition:
    case EventKind::kElisionFlush:
      return "tracker";
    case EventKind::kRegionRestart:
      return "enforcer";
    case EventKind::kDepEdge:
      return "recorder";
    case EventKind::kLeaseExpired:
    case EventKind::kQuarantine:
    case EventKind::kSeizure:
    case EventKind::kGovernorFlip:
      return "resilience";
    default:
      return "thread";
  }
}

std::string us_string(double us) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", us < 0 ? 0.0 : us);
  return buf;
}

void append_args(std::string& out, const Event& e) {
  out += ",\"args\":{";
  switch (static_cast<EventKind>(e.kind)) {
    case EventKind::kCoordRoundTrip:
      out += "\"cycles\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"owner_tid\":" + json::number(e.arg1);
      out += ",\"implicit\":" + std::string(e.arg2 != 0 ? "true" : "false");
      break;
    case EventKind::kPessWait:
      out += "\"cycles\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"object\":" + json::number(e.arg1);
      break;
    case EventKind::kRegionRestart:
      out += "\"cycles\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"attempt\":" + json::number(e.arg1);
      break;
    case EventKind::kOptConflict:
    case EventKind::kPessAcquire:
    case EventKind::kPolicyOptToPess:
    case EventKind::kPolicyPessToOpt:
      out += "\"object\":" + json::number(e.arg1);
      out += ",\"flags\":" + json::number(e.arg2);
      break;
    case EventKind::kDeferredFlush:
      out += "\"entries\":" + json::number(static_cast<double>(e.arg0));
      break;
    case EventKind::kDepEdge:
      out += "\"src_release\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"src_tid\":" + json::number(e.arg1);
      break;
    case EventKind::kLeaseExpired:
      out += "\"owner_tid\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"ticket\":" + json::number(e.arg1);
      out += ",\"stalled_epochs\":" + json::number(e.arg2);
      break;
    case EventKind::kQuarantine:
      out += "\"victim_tid\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"status_epoch\":" + json::number(e.arg1);
      out += ",\"tickets_released\":" + json::number(e.arg2);
      break;
    case EventKind::kSeizure:
      out += "\"cycles\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"object\":" + json::number(e.arg1);
      out += ",\"victim_tid\":" + json::number(e.arg2);
      break;
    case EventKind::kGovernorFlip:
      out += "\"degraded\":" +
             std::string(e.arg0 != 0 ? "true" : "false");
      out += ",\"storm_windows\":" + json::number(e.arg1);
      out += ",\"calm_windows\":" + json::number(e.arg2);
      break;
    case EventKind::kCoordBatch:
      out += "\"objects\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"owner_tid\":" + json::number(e.arg1);
      out += ",\"implicit\":" + std::string(e.arg2 != 0 ? "true" : "false");
      break;
    case EventKind::kCoordRequest:
      out += "\"span\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"owner_tid\":" + json::number(e.arg1);
      out += ",\"batched\":" + std::string(e.arg2 != 0 ? "true" : "false");
      break;
    case EventKind::kCoordBatchDrain:
      out += "\"span\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"requester_tid\":" + json::number(e.arg1);
      out += ",\"objects\":" + json::number(e.arg2);
      break;
    case EventKind::kElisionFlush:
      out += "\"hits\":" + json::number(static_cast<double>(e.arg0));
      out += ",\"misses\":" + json::number(e.arg1);
      out += ",\"epoch\":" + json::number(e.arg2);
      break;
    case EventKind::kStateTransition:
      out += "\"from\":\"";
      out += state_kind_name(
          static_cast<StateKind>(transition_from_kind(e.arg0)));
      out += "\",\"to\":\"";
      out += state_kind_name(
          static_cast<StateKind>(transition_to_kind(e.arg0)));
      out += "\",\"object\":" + json::number(e.arg1);
      break;
    default:
      out += "\"arg0\":" + json::number(static_cast<double>(e.arg0));
      break;
  }
  out.push_back('}');
}

}  // namespace

std::string to_chrome_trace_json(const TraceSnapshot& snap) {
  const double cps = snap.cycles_per_second > 0 ? snap.cycles_per_second : 1e9;
  const double cycles_per_us = cps / 1e6;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out.push_back(',');
    first = false;
    out += ev;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"hybrid-tracking\"}}");
  for (const ThreadTrace& t : snap.threads) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%u,\"args\":{\"name\":\"T%u\"}}",
                  kPid, t.tid, t.tid);
    emit(buf);
  }

  for (const Event& e : snap.merged()) {
    const auto kind = static_cast<EventKind>(e.kind);
    const double end_us =
        static_cast<double>(e.tsc - snap.base_tsc) / cycles_per_us;
    std::string ev = "{\"name\":\"";
    ev += event_kind_name(kind);
    ev += "\",\"cat\":\"";
    ev += event_category(kind);
    ev += "\",\"pid\":" + json::number(kPid);
    ev += ",\"tid\":" + json::number(e.tid);
    if (event_kind_has_latency(kind)) {
      const double dur_us = static_cast<double>(e.arg0) / cycles_per_us;
      ev += ",\"ph\":\"X\",\"ts\":" + us_string(end_us - dur_us);
      ev += ",\"dur\":" + us_string(dur_us);
    } else {
      ev += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + us_string(end_us);
    }
    append_args(ev, e);
    ev.push_back('}');
    emit(ev);
  }

  out += "]}";
  return out;
}

bool validate_chrome_trace(const std::string& text, std::size_t* event_count,
                           std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  json::Value doc;
  std::string perr;
  if (!json::parse(text, doc, &perr)) return fail("not valid JSON: " + perr);
  if (!doc.is_object()) return fail("top level is not an object");
  const json::Value& events = doc.at("traceEvents");
  if (!events.is_array()) return fail("missing traceEvents array");
  std::size_t n = 0;
  for (const json::Value& e : events.as_array()) {
    if (!e.is_object()) return fail("traceEvents entry is not an object");
    if (!e.at("name").is_string()) return fail("event missing name");
    if (!e.at("ph").is_string()) return fail("event missing ph");
    if (!e.at("pid").is_number() || !e.at("tid").is_number()) {
      return fail("event missing pid/tid");
    }
    const std::string& ph = e.at("ph").as_string();
    if (ph != "M" && !e.at("ts").is_number()) return fail("event missing ts");
    if (ph == "X") {
      if (!e.at("dur").is_number() || e.at("dur").as_double() < 0) {
        return fail("X event with missing or negative dur");
      }
    }
    ++n;
  }
  if (event_count != nullptr) *event_count = n;
  return true;
}

std::vector<HotObject> hot_objects(const TraceSnapshot& snap,
                                   std::size_t top_n) {
  std::map<std::uint32_t, HotObject> by_object;
  for (const ThreadTrace& t : snap.threads) {
    for (const Event& e : t.events) {
      switch (static_cast<EventKind>(e.kind)) {
        case EventKind::kOptConflict: {
          HotObject& h = by_object[e.arg1];
          h.object = e.arg1;
          ++h.opt_conflicts;
          break;
        }
        case EventKind::kPessWait: {
          HotObject& h = by_object[e.arg1];
          h.object = e.arg1;
          ++h.pess_contended;
          break;
        }
        case EventKind::kPessAcquire:
          if ((e.arg2 & kFlagContended) != 0) {
            HotObject& h = by_object[e.arg1];
            h.object = e.arg1;
            ++h.pess_contended;
          }
          break;
        default:
          break;
      }
    }
  }

  // Dwell residency needs the merged (cross-thread) transition order: the
  // thread that moved an object *out* of a state is rarely the one that
  // moved it in. Objects that only ever transitioned (no conflicts) still
  // get rows — they sort after the conflicted ones.
  {
    using analysis::profile::residency_of_kind;
    struct OpenState {
      std::uint64_t tsc = 0;
      std::size_t cls = 0;
    };
    std::map<std::uint32_t, OpenState> open;
    std::uint64_t max_tsc = 0;
    for (const Event& e : snap.merged()) {
      max_tsc = e.tsc;
      if (static_cast<EventKind>(e.kind) != EventKind::kStateTransition) {
        continue;
      }
      HotObject& h = by_object[e.arg1];
      h.object = e.arg1;
      ++h.transitions;
      auto it = open.find(e.arg1);
      if (it != open.end() && e.tsc > it->second.tsc) {
        h.dwell[it->second.cls] += e.tsc - it->second.tsc;
      }
      open[e.arg1] = OpenState{
          e.tsc, static_cast<std::size_t>(
                     residency_of_kind(transition_to_kind(e.arg0)))};
    }
    for (const auto& [obj, os] : open) {
      if (max_tsc > os.tsc) by_object[obj].dwell[os.cls] += max_tsc - os.tsc;
    }
  }

  std::vector<HotObject> ranked;
  ranked.reserve(by_object.size());
  for (const auto& [obj, h] : by_object) ranked.push_back(h);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const HotObject& a, const HotObject& b) {
                     if (a.total() != b.total()) return a.total() > b.total();
                     return a.dwell_total() > b.dwell_total();
                   });
  if (ranked.size() > top_n) ranked.resize(top_n);
  return ranked;
}

std::string hot_object_report(const TraceSnapshot& snap, std::size_t top_n) {
  const std::vector<HotObject> ranked = hot_objects(snap, top_n);
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-4s %-8s %12s %12s %12s %8s %-10s\n", "#",
                "object", "conflicts", "pess-cont", "total", "trans",
                "dwell-top");
  out += buf;
  std::size_t rank = 1;
  for (const HotObject& h : ranked) {
    // Dominant residency class and its share of the object's dwell window.
    std::size_t top_cls = 0;
    for (std::size_t c = 1; c < 5; ++c) {
      if (h.dwell[c] > h.dwell[top_cls]) top_cls = c;
    }
    const std::uint64_t dt = h.dwell_total();
    char dwell_col[32];
    if (dt == 0) {
      std::snprintf(dwell_col, sizeof dwell_col, "-");
    } else {
      std::snprintf(dwell_col, sizeof dwell_col, "%s %3.0f%%",
                    analysis::profile::residency_name(
                        static_cast<analysis::profile::Residency>(top_cls)),
                    100.0 * static_cast<double>(h.dwell[top_cls]) /
                        static_cast<double>(dt));
    }
    std::snprintf(buf, sizeof buf,
                  "%-4zu %08x %12llu %12llu %12llu %8llu %-10s\n", rank++,
                  h.object, static_cast<unsigned long long>(h.opt_conflicts),
                  static_cast<unsigned long long>(h.pess_contended),
                  static_cast<unsigned long long>(h.total()),
                  static_cast<unsigned long long>(h.transitions), dwell_col);
    out += buf;
  }
  if (ranked.empty()) out += "(no conflicting-transition events in trace)\n";

  // Barrier-elision summary (DESIGN.md §15): kElisionFlush events carry the
  // hit/miss deltas accumulated since the thread's previous flush, so the
  // sums over the trace are the run totals for the traced window.
  std::uint64_t elision_hits = 0;
  std::uint64_t elision_misses = 0;
  std::uint64_t elision_flushes = 0;
  for (const ThreadTrace& t : snap.threads) {
    for (const Event& e : t.events) {
      if (static_cast<EventKind>(e.kind) != EventKind::kElisionFlush) continue;
      ++elision_flushes;
      elision_hits += e.arg0;
      elision_misses += e.arg1;
    }
  }
  if (elision_flushes > 0) {
    const std::uint64_t probes = elision_hits + elision_misses;
    std::snprintf(buf, sizeof buf,
                  "elision: %llu hits / %llu misses (%.1f%% hit rate) "
                  "across %llu cache flushes\n",
                  static_cast<unsigned long long>(elision_hits),
                  static_cast<unsigned long long>(elision_misses),
                  probes == 0 ? 0.0
                              : 100.0 * static_cast<double>(elision_hits) /
                                    static_cast<double>(probes),
                  static_cast<unsigned long long>(elision_flushes));
    out += buf;
  }
  return out;
}

}  // namespace ht::telemetry
