// Chrome trace-event JSON exporter and the Fig-6-style hot-object report
// (DESIGN.md §10.5).
//
// Output loads in Perfetto / chrome://tracing: latency-carrying kinds
// (coordination round trip, pessimistic wait, region restart) render as "X"
// duration slices ending at their record timestamp; everything else is an "i"
// instant. Timestamps are microseconds relative to the snapshot's base_tsc,
// converted with the calibrated cycles_per_second.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ht::telemetry {

std::string to_chrome_trace_json(const TraceSnapshot& snap);

// Structural validation of a Chrome trace document (used by
// `trace_export --check`): top-level object with a traceEvents array whose
// entries all carry name/ph/ts/pid/tid, and whose "X" events have a
// non-negative dur. Returns true and the event count on success; fills
// `error` on failure.
bool validate_chrome_trace(const std::string& text, std::size_t* event_count,
                           std::string* error);

// Per-object conflicting-transition ranking (the paper's Fig 6 is the same
// census as a cumulative distribution; this is its top-N view). Conflicts =
// optimistic conflicting transitions + contended pessimistic acquisitions +
// pessimistic waits observed against the object. When the trace carries
// kStateTransition dwell edges, each row also reports how the object's
// cycles were split across the residency classes
// (analysis/profile/trace_profile.hpp Residency order:
// WrEx, RdEx, RdSh, Pess, Int).
struct HotObject {
  std::uint32_t object = 0;
  std::uint64_t opt_conflicts = 0;
  std::uint64_t pess_contended = 0;
  std::uint64_t transitions = 0;  // kStateTransition events for this object
  std::uint64_t dwell[5] = {};    // cycles per residency class
  std::uint64_t total() const { return opt_conflicts + pess_contended; }
  std::uint64_t dwell_total() const {
    std::uint64_t n = 0;
    for (std::uint64_t d : dwell) n += d;
    return n;
  }
};

std::vector<HotObject> hot_objects(const TraceSnapshot& snap, std::size_t top_n);

// Formatted table of the top-N ranking (human output for trace_export).
std::string hot_object_report(const TraceSnapshot& snap, std::size_t top_n);

}  // namespace ht::telemetry
