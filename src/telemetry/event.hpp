// Telemetry event schema (DESIGN.md §10).
//
// One fixed 32-byte slot per event so the per-thread ring is a flat array the
// writer can fill without allocation. The arg layout per kind is documented
// on the enumerators and consumed by metrics.cpp (aggregation) and
// chrome_trace.cpp (rendering); keep all three in sync.
#pragma once

#include <cstdint>

namespace ht::telemetry {

enum class EventKind : std::uint16_t {
  kThreadStart = 1,  // arg0 = point_index at registration
  kThreadExit,       // arg0 = release counter at exit

  // Substrate (src/runtime/).
  kCoordRoundTrip,     // arg0 = round-trip cycles, arg1 = owner tid,
                       // arg2 = 1 if resolved implicitly (owner blocked)
  kSafePointResponse,  // arg0 = release counter after the bump
  kPsro,               // arg0 = release counter after the bump
  kBlockingEnter,      // program operation may block (lock wait, barrier)
  kBlockingExit,

  // Trackers (src/tracking/).
  kDeferredFlush,  // arg0 = lock-buffer entries unlocked by this flush,
                   // arg1 = cycles the flush loop took (low 32 bits)
  kOptConflict,    // arg1 = object id, arg2 = flag bits (kFlag*)
  kPessAcquire,    // arg1 = object id, arg2 = flag bits (kFlag*)
  kPessWait,       // arg0 = wait cycles until acquisition, arg1 = object id
  kPolicyOptToPess,  // arg1 = object id (adaptive policy moved it pessimistic)
  kPolicyPessToOpt,  // arg1 = object id (cooled down at deferred unlock)

  // RS enforcer (src/enforcer/).
  kRegionRestart,  // arg0 = cycles burned by the aborted attempt,
                   // arg1 = attempt number (0-based)

  // Dependence recorder (src/recorder/).
  kDepEdge,  // arg0 = source release-counter value, arg1 = source tid

  // Resilience layer (src/resilience/, DESIGN.md §11).
  kLeaseExpired,   // arg0 = stalled owner tid, arg1 = unanswered ticket,
                   // arg2 = stalled epochs when the lease was declared dead
  kQuarantine,     // arg0 = victim tid, arg1 = quarantine status epoch,
                   // arg2 = tickets released by the quarantine
  kSeizure,        // arg0 = seizure latency cycles, arg1 = object id,
                   // arg2 = victim tid
  kGovernorFlip,   // arg0 = 1 entering degraded / 0 recovering,
                   // arg1 = storm windows observed, arg2 = calm windows

  // Batched coordination (DESIGN.md §13). Emitted requester-side once per
  // coordinate_batch, alongside that round's kCoordRoundTrip.
  kCoordBatch,  // arg0 = objects covered by the batch, arg1 = owner tid,
                // arg2 = 1 if resolved implicitly (owner blocked)

  // Causal spans (DESIGN.md §14). kCoordRequest opens a cross-thread span on
  // the requester's ring at ticket acquisition (scalar) or mailbox post
  // (batch); the matching close is the requester's own kCoordRoundTrip. The
  // owner half is stitched offline: scalar spans join against the response
  // event whose watermark range (arg2, arg1] covers the ticket; batch spans
  // join kCoordBatchDrain by span id. Response-flavored events
  // (kSafePointResponse, kPsro, kBlockingEnter, kThreadExit) carry
  // arg1 = response watermark after the publish (low 32 bits) and
  // arg2 = watermark before it, so each answered ticket maps to exactly one
  // owner-side event.
  kCoordRequest,     // arg0 = ticket (scalar) or span id (batch),
                     // arg1 = owner tid, arg2 = 1 if batched
  kCoordBatchDrain,  // arg0 = span id, arg1 = requester tid,
                     // arg2 = objects covered; recorded on the ring of the
                     // thread that drained (owner, or a quarantiner)

  // Per-object state-dwell accounting (DESIGN.md §14): one event per
  // state-kind change, emitted by whichever thread's CAS (or exclusive
  // store) landed the transition. Residency is the tsc gap between
  // consecutive transitions of the same object id.
  kStateTransition,  // arg0 = pack_transition(from kind, to kind),
                     // arg1 = object id

  // Barrier elision (DESIGN.md §15): one event per epoch bump at a
  // revocation-capable safe point, carrying the hit/miss deltas accumulated
  // since the previous flush event on this thread. Deltas are zero on
  // kStats=false tracker configurations (the probe only counts under kStats).
  kElisionFlush,  // arg0 = elision hits since last flush, arg1 = misses
                  // since last flush (low 32 bits), arg2 = new epoch (low 32)
};

// arg2 flag bits for kOptConflict / kPessAcquire.
inline constexpr std::uint32_t kFlagExplicit = 1u << 0;   // explicit round trip
inline constexpr std::uint32_t kFlagStore = 1u << 1;      // access was a store
inline constexpr std::uint32_t kFlagWentPess = 1u << 2;   // landed pessimistic
inline constexpr std::uint32_t kFlagContended = 1u << 3;  // lock was contended
inline constexpr std::uint32_t kFlagReentrant = 1u << 4;  // no atomic needed
inline constexpr std::uint32_t kFlagElided = 1u << 5;     // ideal: no wait

struct Event {
  std::uint64_t tsc = 0;   // cycle_timer.hpp read_cycles() at record time
  std::uint64_t arg0 = 0;  // latency in cycles, or a counter value
  std::uint32_t arg1 = 0;  // object id / peer tid
  std::uint32_t arg2 = 0;  // flag bits
  std::uint32_t seq = 0;   // low 32 bits of the per-thread sequence number
  std::uint16_t kind = 0;  // EventKind
  std::uint16_t tid = 0;
};
static_assert(sizeof(Event) == 32, "one event per half cache line");

inline const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kThreadStart: return "thread_start";
    case EventKind::kThreadExit: return "thread_exit";
    case EventKind::kCoordRoundTrip: return "coord_round_trip";
    case EventKind::kSafePointResponse: return "safepoint_response";
    case EventKind::kPsro: return "psro";
    case EventKind::kBlockingEnter: return "blocking_enter";
    case EventKind::kBlockingExit: return "blocking_exit";
    case EventKind::kDeferredFlush: return "deferred_flush";
    case EventKind::kOptConflict: return "opt_conflict";
    case EventKind::kPessAcquire: return "pess_acquire";
    case EventKind::kPessWait: return "pess_wait";
    case EventKind::kPolicyOptToPess: return "policy_opt_to_pess";
    case EventKind::kPolicyPessToOpt: return "policy_pess_to_opt";
    case EventKind::kRegionRestart: return "region_restart";
    case EventKind::kDepEdge: return "dep_edge";
    case EventKind::kLeaseExpired: return "lease_expired";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kSeizure: return "seizure";
    case EventKind::kGovernorFlip: return "governor_flip";
    case EventKind::kCoordBatch: return "coord_batch";
    case EventKind::kCoordRequest: return "coord_request";
    case EventKind::kCoordBatchDrain: return "coord_batch_drain";
    case EventKind::kStateTransition: return "state_transition";
    case EventKind::kElisionFlush: return "elision_flush";
  }
  return "unknown";
}

// arg0 codec for kStateTransition: the from/to StateWord kinds (see
// metadata/state_word.hpp Kind, a small enum) packed into one byte each.
inline constexpr std::uint64_t pack_transition(unsigned from_kind,
                                               unsigned to_kind) {
  return (static_cast<std::uint64_t>(to_kind) << 8) |
         (from_kind & 0xffu);
}
inline constexpr unsigned transition_from_kind(std::uint64_t arg0) {
  return static_cast<unsigned>(arg0 & 0xffu);
}
inline constexpr unsigned transition_to_kind(std::uint64_t arg0) {
  return static_cast<unsigned>((arg0 >> 8) & 0xffu);
}

// True for kinds whose arg0 is a duration in cycles ending at `tsc` (rendered
// as Chrome "X" duration events and aggregated into latency histograms).
inline bool event_kind_has_latency(EventKind k) {
  return k == EventKind::kCoordRoundTrip || k == EventKind::kPessWait ||
         k == EventKind::kRegionRestart || k == EventKind::kSeizure;
}

// Compact object identity for trace events. Object metadata carries no id
// field (it is one word of state plus one of profile), so telemetry keys
// objects by address; dropping the low alignment bits keeps 32 bits of
// discriminating power per process.
inline std::uint32_t object_id(const void* p) {
  return static_cast<std::uint32_t>(reinterpret_cast<std::uintptr_t>(p) >> 4);
}

}  // namespace ht::telemetry
