#include "telemetry/metrics.hpp"

#include <map>

#include "analysis/profile/trace_profile.hpp"
#include "common/json.hpp"
#include "telemetry/telemetry.hpp"

namespace ht::telemetry {

std::uint64_t& MetricsRegistry::counter(const std::string& name,
                                        const std::string& help) {
  for (auto& c : counters_) {
    if (c.name == name) return c.value;
  }
  counters_.push_back(CounterEntry{name, help, 0});
  return counters_.back().value;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             const std::string& help) {
  for (auto& h : histograms_) {
    if (h.name == name) return h.hist;
  }
  histograms_.push_back(HistogramEntry{name, help, LatencyHistogram()});
  return histograms_.back().hist;
}

namespace {

// Highest bucket index worth emitting: the last non-empty one (so empty
// histograms emit just the le="0" bucket and +Inf).
std::size_t last_nonempty_bucket(const Log2Histogram& h) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket(i) != 0) last = i;
  }
  return last;
}

// Upper bound (inclusive) of bucket i: 0, 1, 3, 7, 15, ...
std::uint64_t bucket_le(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

// Exact integer rendering for counter/bucket values. json::number goes
// through double and would round values at and above 2^53 (and print large
// ones in scientific notation, which Prometheus `le` labels must not be).
std::string u64s(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += json::escape(c.name);
    out += "\":";
    out += u64s(c.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += json::escape(h.name);
    out += "\":{\"count\":";
    out += u64s(h.hist.count());
    out += ",\"sum\":";
    out += u64s(h.hist.sum());
    out += ",\"max\":";
    out += u64s(h.hist.max());
    out += ",\"buckets\":[";
    const auto& b = h.hist.buckets();
    const std::size_t last = last_nonempty_bucket(b);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last; ++i) {
      cum += b.bucket(i);
      if (i != 0) out.push_back(',');
      out += "{\"le\":";
      out += u64s(bucket_le(i));
      out += ",\"count\":";
      out += u64s(cum);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  // HELP and TYPE are emitted for every metric (scrapers treat a TYPE
  // without HELP as an incomplete family); a metric registered without help
  // text gets a bare "# HELP <name>" line.
  auto help_line = [](std::string& out, const std::string& name,
                      const std::string& help) {
    out += "# HELP ";
    out += name;
    if (!help.empty()) {
      out.push_back(' ');
      out += help;
    }
    out.push_back('\n');
  };
  std::string out;
  for (const auto& c : counters_) {
    help_line(out, c.name, c.help);
    out += "# TYPE ";
    out += c.name;
    out += " counter\n";
    out += c.name;
    out.push_back(' ');
    out += u64s(c.value);
    out.push_back('\n');
  }
  for (const auto& h : histograms_) {
    help_line(out, h.name, h.help);
    out += "# TYPE ";
    out += h.name;
    out += " histogram\n";
    const auto& b = h.hist.buckets();
    const std::size_t last = last_nonempty_bucket(b);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last; ++i) {
      cum += b.bucket(i);
      out += h.name;
      out += "_bucket{le=\"";
      out += u64s(bucket_le(i));
      out += "\"} ";
      out += u64s(cum);
      out.push_back('\n');
    }
    out += h.name;
    out += "_bucket{le=\"+Inf\"} ";
    out += u64s(h.hist.count());
    out.push_back('\n');
    out += h.name;
    out += "_sum ";
    out += u64s(h.hist.sum());
    out.push_back('\n');
    out += h.name;
    out += "_count ";
    out += u64s(h.hist.count());
    out.push_back('\n');
  }
  return out;
}

MetricsRegistry aggregate_metrics(const TraceSnapshot& snap) {
  MetricsRegistry reg;
  auto& events = reg.counter("ht_events_total", "telemetry events drained");
  auto& dropped =
      reg.counter("ht_events_dropped_total", "events lost to ring overwrite");
  auto& coord =
      reg.counter("ht_coord_roundtrips_total", "coordination round trips");
  auto& coord_implicit = reg.counter("ht_coord_implicit_total",
                                     "round trips resolved implicitly");
  auto& responses = reg.counter("ht_safepoint_responses_total",
                                "responding safe points");
  auto& psros = reg.counter("ht_psros_total", "program-synchronization ops");
  auto& flushes =
      reg.counter("ht_deferred_flushes_total", "deferred-unlock buffer flushes");
  auto& opt_conf = reg.counter("ht_opt_conflicts_total",
                               "optimistic conflicting transitions");
  auto& opt_conf_explicit = reg.counter(
      "ht_opt_conflicts_explicit_total", "conflicts needing explicit round trips");
  auto& pess_acq =
      reg.counter("ht_pess_acquires_total", "pessimistic lock acquisitions");
  auto& pess_contended = reg.counter("ht_pess_contended_total",
                                     "contended pessimistic acquisitions");
  auto& to_pess = reg.counter("ht_policy_opt_to_pess_total",
                              "adaptive policy opt->pess moves");
  auto& to_opt = reg.counter("ht_policy_pess_to_opt_total",
                             "adaptive policy pess->opt moves");
  auto& restarts = reg.counter("ht_region_restarts_total", "RS region restarts");
  auto& edges =
      reg.counter("ht_dep_edges_total", "recorded cross-thread dependences");
  auto& lease_expiries = reg.counter("ht_lease_expiries_total",
                                     "liveness leases declared expired");
  auto& quarantines =
      reg.counter("ht_quarantines_total", "threads flipped to Quarantined");
  auto& seizures = reg.counter("ht_seizures_total",
                               "state words seized from quarantined threads");
  auto& governor_flips = reg.counter("ht_governor_flips_total",
                                     "degradation governor mode changes");
  auto& coord_batches = reg.counter("ht_coord_batches_total",
                                    "batched coordination rounds");
  auto& coord_batch_objects =
      reg.counter("ht_coord_batch_objects_total",
                  "objects covered by batched coordination rounds");
  auto& coord_requests = reg.counter(
      "ht_coord_requests_total", "coordination requests (span opens)");
  auto& batch_drains = reg.counter("ht_coord_batch_drains_total",
                                   "batched mailbox nodes drained");
  auto& transitions = reg.counter("ht_state_transitions_total",
                                  "state-kind changes (dwell edges)");
  auto& elision_hits = reg.counter("ht_elision_hits_total",
                                   "accesses elided by the ownership cache");
  auto& elision_misses = reg.counter(
      "ht_elision_misses_total", "elision probes that fell through to the tracker");
  auto& elision_flushes = reg.counter(
      "ht_elision_flushes_total", "elision epoch bumps at revocation-capable safe points");
  auto& coord_hist = reg.histogram("ht_coord_roundtrip_cycles",
                                   "coordination round-trip latency (cycles)");
  auto& batch_hist = reg.histogram("ht_coord_batch_objects",
                                   "batch size (objects) per batched round");
  auto& wait_hist = reg.histogram("ht_pess_wait_cycles",
                                  "pessimistic lock acquisition wait (cycles)");
  auto& restart_hist = reg.histogram("ht_region_restart_cycles",
                                     "cycles burned by aborted region attempts");
  auto& seizure_hist = reg.histogram(
      "ht_seizure_cycles", "ownership seizure latency per object (cycles)");

  for (const auto& t : snap.threads) {
    dropped += t.dropped;
    for (const Event& e : t.events) {
      ++events;
      switch (static_cast<EventKind>(e.kind)) {
        case EventKind::kCoordRoundTrip:
          ++coord;
          if (e.arg2 != 0) ++coord_implicit;
          coord_hist.add(e.arg0);
          break;
        case EventKind::kSafePointResponse:
          ++responses;
          break;
        case EventKind::kPsro:
          ++psros;
          break;
        case EventKind::kDeferredFlush:
          ++flushes;
          break;
        case EventKind::kOptConflict:
          ++opt_conf;
          if ((e.arg2 & kFlagExplicit) != 0) ++opt_conf_explicit;
          if ((e.arg2 & kFlagWentPess) != 0) ++to_pess;
          break;
        case EventKind::kPessAcquire:
          ++pess_acq;
          if ((e.arg2 & kFlagContended) != 0) ++pess_contended;
          break;
        case EventKind::kPessWait:
          wait_hist.add(e.arg0);
          break;
        case EventKind::kPolicyOptToPess:
          ++to_pess;
          break;
        case EventKind::kPolicyPessToOpt:
          ++to_opt;
          break;
        case EventKind::kRegionRestart:
          ++restarts;
          restart_hist.add(e.arg0);
          break;
        case EventKind::kDepEdge:
          ++edges;
          break;
        case EventKind::kLeaseExpired:
          ++lease_expiries;
          break;
        case EventKind::kQuarantine:
          ++quarantines;
          break;
        case EventKind::kSeizure:
          ++seizures;
          seizure_hist.add(e.arg0);
          break;
        case EventKind::kGovernorFlip:
          ++governor_flips;
          break;
        case EventKind::kCoordBatch:
          ++coord_batches;
          coord_batch_objects += e.arg0;
          batch_hist.add(e.arg0);
          break;
        case EventKind::kCoordRequest:
          ++coord_requests;
          break;
        case EventKind::kCoordBatchDrain:
          ++batch_drains;
          break;
        case EventKind::kStateTransition:
          ++transitions;
          break;
        case EventKind::kElisionFlush:
          ++elision_flushes;
          elision_hits += e.arg0;
          elision_misses += e.arg1;
          break;
        default:
          break;
      }
    }
  }

  // Per-class state-dwell residency (DESIGN.md §14). Residency is a
  // merged-order property — an object's dwell interval spans transitions
  // recorded by different threads — so it cannot be folded into the
  // per-thread loop above.
  using analysis::profile::Residency;
  using analysis::profile::kResidencyCount;
  using analysis::profile::residency_of_kind;
  using analysis::profile::residency_name;
  std::uint64_t dwell_cycles[kResidencyCount] = {};
  {
    struct OpenState {
      std::uint64_t tsc = 0;
      Residency cls = Residency::kWrEx;
    };
    std::map<std::uint32_t, OpenState> open;
    std::uint64_t max_tsc = 0;
    for (const Event& e : snap.merged()) {
      max_tsc = e.tsc;
      if (static_cast<EventKind>(e.kind) != EventKind::kStateTransition) {
        continue;
      }
      auto it = open.find(e.arg1);
      if (it != open.end() && e.tsc > it->second.tsc) {
        dwell_cycles[static_cast<std::size_t>(it->second.cls)] +=
            e.tsc - it->second.tsc;
      }
      open[e.arg1] =
          OpenState{e.tsc, residency_of_kind(transition_to_kind(e.arg0))};
    }
    for (const auto& [obj, os] : open) {
      (void)obj;
      if (max_tsc > os.tsc) {
        dwell_cycles[static_cast<std::size_t>(os.cls)] += max_tsc - os.tsc;
      }
    }
  }
  for (std::size_t c = 0; c < kResidencyCount; ++c) {
    std::string name = "ht_dwell_";
    for (const char* p = residency_name(static_cast<Residency>(c)); *p != 0;
         ++p) {
      name += static_cast<char>(
          *p >= 'A' && *p <= 'Z' ? *p - 'A' + 'a' : *p);
    }
    name += "_cycles_total";
    reg.counter(name, "cycles objects dwelt in this state class") =
        dwell_cycles[c];
  }
  return reg;
}

}  // namespace ht::telemetry
