#include "telemetry/metrics.hpp"

#include "common/json.hpp"
#include "telemetry/telemetry.hpp"

namespace ht::telemetry {

std::uint64_t& MetricsRegistry::counter(const std::string& name,
                                        const std::string& help) {
  for (auto& c : counters_) {
    if (c.name == name) return c.value;
  }
  counters_.push_back(CounterEntry{name, help, 0});
  return counters_.back().value;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             const std::string& help) {
  for (auto& h : histograms_) {
    if (h.name == name) return h.hist;
  }
  histograms_.push_back(HistogramEntry{name, help, LatencyHistogram()});
  return histograms_.back().hist;
}

namespace {

// Highest bucket index worth emitting: the last non-empty one (so empty
// histograms emit just the le="0" bucket and +Inf).
std::size_t last_nonempty_bucket(const Log2Histogram& h) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket(i) != 0) last = i;
  }
  return last;
}

// Upper bound (inclusive) of bucket i: 0, 1, 3, 7, 15, ...
std::uint64_t bucket_le(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += json::escape(c.name);
    out += "\":";
    out += json::number(static_cast<double>(c.value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += json::escape(h.name);
    out += "\":{\"count\":";
    out += json::number(static_cast<double>(h.hist.count()));
    out += ",\"sum\":";
    out += json::number(static_cast<double>(h.hist.sum()));
    out += ",\"max\":";
    out += json::number(static_cast<double>(h.hist.max()));
    out += ",\"buckets\":[";
    const auto& b = h.hist.buckets();
    const std::size_t last = last_nonempty_bucket(b);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last; ++i) {
      cum += b.bucket(i);
      if (i != 0) out.push_back(',');
      out += "{\"le\":";
      out += json::number(static_cast<double>(bucket_le(i)));
      out += ",\"count\":";
      out += json::number(static_cast<double>(cum));
      out.push_back('}');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  for (const auto& c : counters_) {
    if (!c.help.empty()) {
      out += "# HELP ";
      out += c.name;
      out.push_back(' ');
      out += c.help;
      out.push_back('\n');
    }
    out += "# TYPE ";
    out += c.name;
    out += " counter\n";
    out += c.name;
    out.push_back(' ');
    out += json::number(static_cast<double>(c.value));
    out.push_back('\n');
  }
  for (const auto& h : histograms_) {
    if (!h.help.empty()) {
      out += "# HELP ";
      out += h.name;
      out.push_back(' ');
      out += h.help;
      out.push_back('\n');
    }
    out += "# TYPE ";
    out += h.name;
    out += " histogram\n";
    const auto& b = h.hist.buckets();
    const std::size_t last = last_nonempty_bucket(b);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last; ++i) {
      cum += b.bucket(i);
      out += h.name;
      out += "_bucket{le=\"";
      out += json::number(static_cast<double>(bucket_le(i)));
      out += "\"} ";
      out += json::number(static_cast<double>(cum));
      out.push_back('\n');
    }
    out += h.name;
    out += "_bucket{le=\"+Inf\"} ";
    out += json::number(static_cast<double>(h.hist.count()));
    out.push_back('\n');
    out += h.name;
    out += "_sum ";
    out += json::number(static_cast<double>(h.hist.sum()));
    out.push_back('\n');
    out += h.name;
    out += "_count ";
    out += json::number(static_cast<double>(h.hist.count()));
    out.push_back('\n');
  }
  return out;
}

MetricsRegistry aggregate_metrics(const TraceSnapshot& snap) {
  MetricsRegistry reg;
  auto& events = reg.counter("ht_events_total", "telemetry events drained");
  auto& dropped =
      reg.counter("ht_events_dropped_total", "events lost to ring overwrite");
  auto& coord =
      reg.counter("ht_coord_roundtrips_total", "coordination round trips");
  auto& coord_implicit = reg.counter("ht_coord_implicit_total",
                                     "round trips resolved implicitly");
  auto& responses = reg.counter("ht_safepoint_responses_total",
                                "responding safe points");
  auto& psros = reg.counter("ht_psros_total", "program-synchronization ops");
  auto& flushes =
      reg.counter("ht_deferred_flushes_total", "deferred-unlock buffer flushes");
  auto& opt_conf = reg.counter("ht_opt_conflicts_total",
                               "optimistic conflicting transitions");
  auto& opt_conf_explicit = reg.counter(
      "ht_opt_conflicts_explicit_total", "conflicts needing explicit round trips");
  auto& pess_acq =
      reg.counter("ht_pess_acquires_total", "pessimistic lock acquisitions");
  auto& pess_contended = reg.counter("ht_pess_contended_total",
                                     "contended pessimistic acquisitions");
  auto& to_pess = reg.counter("ht_policy_opt_to_pess_total",
                              "adaptive policy opt->pess moves");
  auto& to_opt = reg.counter("ht_policy_pess_to_opt_total",
                             "adaptive policy pess->opt moves");
  auto& restarts = reg.counter("ht_region_restarts_total", "RS region restarts");
  auto& edges =
      reg.counter("ht_dep_edges_total", "recorded cross-thread dependences");
  auto& lease_expiries = reg.counter("ht_lease_expiries_total",
                                     "liveness leases declared expired");
  auto& quarantines =
      reg.counter("ht_quarantines_total", "threads flipped to Quarantined");
  auto& seizures = reg.counter("ht_seizures_total",
                               "state words seized from quarantined threads");
  auto& governor_flips = reg.counter("ht_governor_flips_total",
                                     "degradation governor mode changes");
  auto& coord_batches = reg.counter("ht_coord_batches_total",
                                    "batched coordination rounds");
  auto& coord_batch_objects =
      reg.counter("ht_coord_batch_objects_total",
                  "objects covered by batched coordination rounds");
  auto& coord_hist = reg.histogram("ht_coord_roundtrip_cycles",
                                   "coordination round-trip latency (cycles)");
  auto& batch_hist = reg.histogram("ht_coord_batch_objects",
                                   "batch size (objects) per batched round");
  auto& wait_hist = reg.histogram("ht_pess_wait_cycles",
                                  "pessimistic lock acquisition wait (cycles)");
  auto& restart_hist = reg.histogram("ht_region_restart_cycles",
                                     "cycles burned by aborted region attempts");
  auto& seizure_hist = reg.histogram(
      "ht_seizure_cycles", "ownership seizure latency per object (cycles)");

  for (const auto& t : snap.threads) {
    dropped += t.dropped;
    for (const Event& e : t.events) {
      ++events;
      switch (static_cast<EventKind>(e.kind)) {
        case EventKind::kCoordRoundTrip:
          ++coord;
          if (e.arg2 != 0) ++coord_implicit;
          coord_hist.add(e.arg0);
          break;
        case EventKind::kSafePointResponse:
          ++responses;
          break;
        case EventKind::kPsro:
          ++psros;
          break;
        case EventKind::kDeferredFlush:
          ++flushes;
          break;
        case EventKind::kOptConflict:
          ++opt_conf;
          if ((e.arg2 & kFlagExplicit) != 0) ++opt_conf_explicit;
          if ((e.arg2 & kFlagWentPess) != 0) ++to_pess;
          break;
        case EventKind::kPessAcquire:
          ++pess_acq;
          if ((e.arg2 & kFlagContended) != 0) ++pess_contended;
          break;
        case EventKind::kPessWait:
          wait_hist.add(e.arg0);
          break;
        case EventKind::kPolicyOptToPess:
          ++to_pess;
          break;
        case EventKind::kPolicyPessToOpt:
          ++to_opt;
          break;
        case EventKind::kRegionRestart:
          ++restarts;
          restart_hist.add(e.arg0);
          break;
        case EventKind::kDepEdge:
          ++edges;
          break;
        case EventKind::kLeaseExpired:
          ++lease_expiries;
          break;
        case EventKind::kQuarantine:
          ++quarantines;
          break;
        case EventKind::kSeizure:
          ++seizures;
          seizure_hist.add(e.arg0);
          break;
        case EventKind::kGovernorFlip:
          ++governor_flips;
          break;
        case EventKind::kCoordBatch:
          ++coord_batches;
          coord_batch_objects += e.arg0;
          batch_hist.add(e.arg0);
          break;
        default:
          break;
      }
    }
  }
  return reg;
}

}  // namespace ht::telemetry
