// Metrics registry: named counters and Log2Histogram-backed latency
// histograms, with JSON and Prometheus-text exporters (DESIGN.md §10.4).
//
// The registry is an offline aggregation structure (built from a drained
// TraceSnapshot, or by hand in tests) — it is deliberately not written from
// the hot paths; those only append ring events.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/stats.hpp"

namespace ht::telemetry {

struct TraceSnapshot;

// A Log2Histogram plus the sum/count/max that Prometheus histograms need and
// the plain bucket array cannot recover.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(int max_bucket = 40) : buckets_(max_bucket) {}

  void add(std::uint64_t v) {
    buckets_.add(v);
    sum_ += v;
    if (v > max_) max_ = v;
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  const Log2Histogram& buckets() const { return buckets_; }

 private:
  Log2Histogram buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  // Find-or-create; insertion order is preserved in both export formats.
  // Returned references stay valid across later counter()/histogram() calls
  // (deque storage) — aggregate_metrics caches them across its event loop.
  std::uint64_t& counter(const std::string& name, const std::string& help = "");
  LatencyHistogram& histogram(const std::string& name,
                              const std::string& help = "");

  // {"counters": {...}, "histograms": {name: {count, sum, max, buckets:
  // [{le, count}...]}}} with cumulative bucket counts (le = 2^k - 1).
  std::string to_json() const;

  // Prometheus text exposition format (counters + histograms with
  // power-of-two `le` boundaries).
  std::string to_prometheus() const;

 private:
  struct CounterEntry {
    std::string name, help;
    std::uint64_t value = 0;
  };
  struct HistogramEntry {
    std::string name, help;
    LatencyHistogram hist;
  };
  std::deque<CounterEntry> counters_;
  std::deque<HistogramEntry> histograms_;
};

// Folds a drained trace into the standard metric set: per-kind event
// counters (ht_*_total) plus the three latency histograms the issue names —
// coordination round trip, pessimistic lock acquisition wait, and
// region-restart cost (all in cycles).
MetricsRegistry aggregate_metrics(const TraceSnapshot& snap);

}  // namespace ht::telemetry
