// Lock-free single-writer event ring (DESIGN.md §10.2).
//
// Exactly one thread (the ring's owner) records; any thread may take a
// best-effort snapshot concurrently. The writer never blocks and never
// allocates: a full ring overwrites its oldest slot, and the drop count is
// derived (recorded - capacity) rather than maintained, so the hot path is a
// slot store, two stamp stores, and one release publish of the head.
//
// Snapshot correctness (per-slot seqlock): each slot i has a companion
// stamp, 2g+1 while generation g is being written into it and 2g+2 once g
// is complete (0 = never written). A snapshot walks [head - capacity, head)
// and accepts a slot only if the stamp reads 2g+2 both before and after the
// payload copy — so a slot the writer is lapping mid-copy is discarded, and
// because the stamp carries the full 64-bit generation there is no
// truncation window. Quiescent drains (after join) lose nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cycle_timer.hpp"
#include "common/spin.hpp"  // HT_TSAN
#include "telemetry/event.hpp"

namespace ht::telemetry {

namespace detail {

// Payload transfer between the single writer and concurrent snapshotters.
// The stamp protocol makes torn copies detectable and discardable, so plain
// word copies are correct; under TSan the same copies go through relaxed
// atomic word accesses so the *intentional* race is not reported.
inline void copy_slot_out(const Event& slot, Event& out) {
#ifdef HT_TSAN
  const auto* src = reinterpret_cast<const std::uint64_t*>(&slot);
  auto* dst = reinterpret_cast<std::uint64_t*>(&out);
  for (std::size_t w = 0; w < sizeof(Event) / 8; ++w) {
    dst[w] = __atomic_load_n(&src[w], __ATOMIC_RELAXED);
  }
#else
  out = slot;
#endif
}

inline void copy_slot_in(const Event& value, Event& slot) {
#ifdef HT_TSAN
  const auto* src = reinterpret_cast<const std::uint64_t*>(&value);
  auto* dst = reinterpret_cast<std::uint64_t*>(&slot);
  for (std::size_t w = 0; w < sizeof(Event) / 8; ++w) {
    __atomic_store_n(&dst[w], src[w], __ATOMIC_RELAXED);
  }
#else
  slot = value;
#endif
}

}  // namespace detail

class EventRing {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

  explicit EventRing(std::uint16_t tid, std::size_t capacity = kDefaultCapacity)
      : tid_(tid) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    stamps_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      stamps_[i].store(0, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  // Owner-thread only.
  void record(EventKind kind, std::uint64_t arg0 = 0, std::uint32_t arg1 = 0,
              std::uint32_t arg2 = 0) {
    const std::uint64_t seq = head_.load(std::memory_order_relaxed);
    const std::size_t idx = static_cast<std::size_t>(seq) & mask_;
    Event e;
    e.tsc = read_cycles();
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.arg2 = arg2;
    e.kind = static_cast<std::uint16_t>(kind);
    e.tid = tid_;
    e.seq = static_cast<std::uint32_t>(seq);
    stamps_[idx].store(2 * seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    detail::copy_slot_in(e, slots_[idx]);
    stamps_[idx].store(2 * seq + 2, std::memory_order_release);
    head_.store(seq + 1, std::memory_order_release);
  }

  std::uint16_t tid() const { return tid_; }
  std::size_t capacity() const { return mask_ + 1; }

  // Total events ever recorded (monotonic).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  // Events lost to overwrite: everything older than the newest `capacity`.
  std::uint64_t dropped() const {
    const std::uint64_t h = recorded();
    const std::uint64_t cap = capacity();
    return h > cap ? h - cap : 0;
  }

  // Oldest-to-newest copy of the surviving events. Safe concurrently with
  // the writer (best effort); exact once the writer has quiesced.
  std::vector<Event> snapshot() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t cap = capacity();
    const std::uint64_t lo = h > cap ? h - cap : 0;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(h - lo));
    for (std::uint64_t seq = lo; seq < h; ++seq) {
      const std::size_t idx = static_cast<std::size_t>(seq) & mask_;
      const std::uint64_t complete = 2 * seq + 2;
      if (stamps_[idx].load(std::memory_order_acquire) != complete) continue;
      Event e;
      detail::copy_slot_out(slots_[idx], e);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (stamps_[idx].load(std::memory_order_relaxed) != complete) continue;
      out.push_back(e);
    }
    return out;
  }

  // Owner-thread only: forget everything (trial reuse).
  void clear() {
    for (std::size_t i = 0; i <= mask_; ++i) {
      stamps_[i].store(0, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_release);
  }

 private:
  std::vector<Event> slots_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> stamps_;
  std::size_t mask_ = 0;
  std::uint16_t tid_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace ht::telemetry
