#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>

namespace ht::telemetry {

std::vector<Event> TraceSnapshot::merged() const {
  std::vector<Event> all;
  all.reserve(static_cast<std::size_t>(total_events()));
  for (const auto& t : threads) {
    all.insert(all.end(), t.events.begin(), t.events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) { return a.tsc < b.tsc; });
  return all;
}

void TraceSnapshot::rebase() {
  std::uint64_t lo = 0;
  bool any = false;
  for (const auto& t : threads) {
    for (const Event& e : t.events) {
      if (!any || e.tsc < lo) lo = e.tsc;
      any = true;
    }
  }
  base_tsc = any ? lo : 0;
}

double calibrate_cycles_per_second() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const std::uint64_t c0 = read_cycles();
  // Busy-wait ~10 ms: long enough to swamp clock granularity, short enough
  // that a drain stays interactive.
  for (;;) {
    const auto dt = Clock::now() - t0;
    if (dt >= std::chrono::milliseconds(10)) {
      const std::uint64_t c1 = read_cycles();
      const double secs =
          std::chrono::duration_cast<std::chrono::duration<double>>(dt).count();
      if (secs <= 0 || c1 <= c0) return 1e9;  // fallback: treat cycles as ns
      return static_cast<double>(c1 - c0) / secs;
    }
  }
}

EventRing* TelemetrySession::attach(ThreadId tid) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto i = static_cast<std::size_t>(tid);
  if (i >= rings_.size()) rings_.resize(i + 1);
  if (rings_[i] == nullptr) {
    rings_[i] = std::make_unique<EventRing>(static_cast<std::uint16_t>(tid),
                                            ring_capacity_);
  }
  return rings_[i].get();
}

TraceSnapshot TelemetrySession::snapshot() const {
  TraceSnapshot snap;
  snap.cycles_per_second = calibrate_cycles_per_second();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& ring : rings_) {
      if (ring == nullptr) continue;
      ThreadTrace t;
      t.tid = ring->tid();
      t.events = ring->snapshot();
      t.recorded = ring->recorded();
      t.dropped = ring->dropped();
      snap.threads.push_back(std::move(t));
    }
  }
  snap.rebase();
  return snap;
}

void TelemetrySession::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    if (ring != nullptr) ring->clear();
  }
}

}  // namespace ht::telemetry
