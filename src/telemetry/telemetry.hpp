// Telemetry session: per-thread ring ownership, trace snapshots, and the
// HT_TELEM_* instrumentation macros (DESIGN.md §10).
//
// Zero-cost-off contract: the macros expand to `((void)0)` unless the build
// sets HT_TELEMETRY_ENABLED (CMake -DHT_TELEMETRY=ON), exactly like the
// HT_CHECK_TRANSITION shadow-checker hooks — instrumented hot paths in the
// default build compile to the same code as before this layer existed. With
// telemetry compiled in, a call site still costs only a null check unless a
// session is installed on the runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "metadata/state_word.hpp"
#include "telemetry/ring.hpp"

namespace ht::telemetry {

struct ThreadTrace {
  std::uint16_t tid = 0;
  std::uint64_t recorded = 0;  // total events ever written
  std::uint64_t dropped = 0;   // lost to ring overwrite (oldest first)
  std::vector<Event> events;   // surviving events, oldest to newest
};

struct TraceSnapshot {
  // Calibrated once per drain so consumers can convert tsc deltas to time.
  double cycles_per_second = 0;
  // Smallest tsc in the snapshot; Chrome traces are rendered relative to it.
  std::uint64_t base_tsc = 0;
  std::vector<ThreadTrace> threads;

  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& t : threads) n += t.events.size();
    return n;
  }
  std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const auto& t : threads) n += t.dropped;
    return n;
  }
  // All threads' events merged in timestamp order.
  std::vector<Event> merged() const;
  // Recomputes base_tsc from the events (0 when empty).
  void rebase();
};

// Measures the cycle counter against the steady clock (~10 ms busy window).
double calibrate_cycles_per_second();

// Owns one ring per thread id. Install on a RuntimeConfig before constructing
// the Runtime; register_thread() then attaches each context to its ring.
// Rings are keyed by ThreadId, so a context slot reused across trials keeps
// appending to the same ring — clear() between trials if that matters.
class TelemetrySession {
 public:
  explicit TelemetrySession(std::size_t ring_capacity = EventRing::kDefaultCapacity)
      : ring_capacity_(ring_capacity) {}

  // Find-or-create the ring for `tid`. Thread-safe (called from
  // register_thread on each worker); the returned ring itself is
  // single-writer.
  EventRing* attach(ThreadId tid);

  // Best-effort snapshot; safe while writers are running.
  TraceSnapshot snapshot() const;

  // Snapshot intended for after the traced threads joined; also what the
  // exporters consume. (Identical to snapshot() — the name documents the
  // quiescence expectation under which it is lossless.)
  TraceSnapshot drain() const { return snapshot(); }

  // Owner must guarantee no concurrent writers.
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t ring_capacity_;
  std::vector<std::unique_ptr<EventRing>> rings_;  // index == tid
};

}  // namespace ht::telemetry

// --- instrumentation macros --------------------------------------------------
//
// `ctx` is a ThreadContext (whose `telem` pointer is null unless a session is
// installed). Argument expressions are never evaluated when telemetry is
// compiled out.

#ifdef HT_TELEMETRY_ENABLED
#define HT_TELEM_AVAILABLE 1

// Record one event on ctx's ring (no-op when no session is installed).
#define HT_TELEM_EVENT(ctx, kind, a0, a1, a2)                          \
  do {                                                                 \
    if ((ctx).telem != nullptr) {                                      \
      (ctx).telem->record(::ht::telemetry::EventKind::kind,            \
                          static_cast<std::uint64_t>(a0),              \
                          static_cast<std::uint32_t>(a1),              \
                          static_cast<std::uint32_t>(a2));             \
    }                                                                  \
  } while (0)

// Conditional variant (condition also compiled out when telemetry is off).
#define HT_TELEM_EVENT_IF(cond, ctx, kind, a0, a1, a2) \
  do {                                                 \
    if (cond) HT_TELEM_EVENT(ctx, kind, a0, a1, a2);   \
  } while (0)

// Declares a cycle-count origin for a later HT_TELEM_ELAPSED.
#define HT_TELEM_CYCLES(var) const std::uint64_t var = ::ht::read_cycles()

// Record an event whose arg0 is the cycles elapsed since HT_TELEM_CYCLES(var).
#define HT_TELEM_ELAPSED(ctx, kind, var, a1, a2) \
  HT_TELEM_EVENT(ctx, kind, ::ht::read_cycles() - (var), a1, a2)

// State-dwell edge (DESIGN.md §14): record a kStateTransition when a tracker
// moves object `mp`'s StateWord from `from` to `to` across a kind boundary.
// Same-kind updates (reader joins, owner swaps, epoch bumps) keep the object
// in the same residency class and are deliberately not dwell edges.
#define HT_TELEM_TRANSITION(ctx, mp, from, to)                             \
  HT_TELEM_EVENT_IF((from).kind() != (to).kind(), ctx, kStateTransition,   \
                    ::ht::telemetry::pack_transition(                      \
                        static_cast<unsigned>((from).kind()),              \
                        static_cast<unsigned>((to).kind())),               \
                    ::ht::telemetry::object_id(mp), 0)

#else  // !HT_TELEMETRY_ENABLED
#define HT_TELEM_AVAILABLE 0
#define HT_TELEM_EVENT(ctx, kind, a0, a1, a2) ((void)0)
#define HT_TELEM_EVENT_IF(cond, ctx, kind, a0, a1, a2) ((void)0)
#define HT_TELEM_CYCLES(var) ((void)0)
#define HT_TELEM_ELAPSED(ctx, kind, var, a1, a2) ((void)0)
#define HT_TELEM_TRANSITION(ctx, mp, from, to) ((void)0)
#endif  // HT_TELEMETRY_ENABLED
