#include "telemetry/trace_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <type_traits>

namespace ht::telemetry {

namespace {

constexpr std::uint32_t kMagic = 0x4C455448u;  // "HTEL"
// v2 added the causal-span and state-dwell event kinds (kCoordRequest,
// kCoordBatchDrain, kStateTransition) and widened the documented arg layout
// of the response-flavored kinds to carry watermark ranges. The container
// layout is unchanged, so v1 traces still load — they just predate the new
// kinds.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;
// A corrupt count must not trigger a giant allocation (same guard idiom as
// recording_io).
constexpr std::uint64_t kMaxEventsPerThread = std::uint64_t{1} << 28;
constexpr std::uint32_t kMaxThreads = 1u << 16;

template <typename T>
void put_pod(std::ostream& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool get_pod(std::istream& in, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return in.gcount() == static_cast<std::streamsize>(sizeof v);
}

}  // namespace

const char* trace_load_result_name(TraceLoadResult r) {
  switch (r) {
    case TraceLoadResult::kOk: return "ok";
    case TraceLoadResult::kOpenFailed: return "open-failed";
    case TraceLoadResult::kBadMagic: return "bad-magic";
    case TraceLoadResult::kBadVersion: return "bad-version";
    case TraceLoadResult::kTruncated: return "truncated";
    case TraceLoadResult::kCorrupt: return "corrupt";
  }
  return "unknown";
}

bool save_trace(const TraceSnapshot& snap, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  put_pod(out, kMagic);
  put_pod(out, kVersion);
  put_pod(out, snap.cycles_per_second);
  put_pod(out, snap.base_tsc);
  put_pod(out, static_cast<std::uint32_t>(snap.threads.size()));
  put_pod(out, std::uint32_t{0});
  for (const ThreadTrace& t : snap.threads) {
    put_pod(out, static_cast<std::uint32_t>(t.tid));
    put_pod(out, std::uint32_t{0});
    put_pod(out, t.recorded);
    put_pod(out, t.dropped);
    put_pod(out, static_cast<std::uint64_t>(t.events.size()));
    if (!t.events.empty()) {
      out.write(reinterpret_cast<const char*>(t.events.data()),
                static_cast<std::streamsize>(t.events.size() * sizeof(Event)));
    }
  }
  out.flush();
  return static_cast<bool>(out);
}

TraceLoadResult load_trace(const std::string& path, TraceSnapshot& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return TraceLoadResult::kOpenFailed;

  std::uint32_t magic = 0, version = 0, nthreads = 0, reserved = 0;
  if (!get_pod(in, magic)) return TraceLoadResult::kTruncated;
  if (magic != kMagic) return TraceLoadResult::kBadMagic;
  if (!get_pod(in, version)) return TraceLoadResult::kTruncated;
  if (version < kMinVersion || version > kVersion) {
    return TraceLoadResult::kBadVersion;
  }

  out = TraceSnapshot{};
  if (!get_pod(in, out.cycles_per_second)) return TraceLoadResult::kTruncated;
  if (!get_pod(in, out.base_tsc)) return TraceLoadResult::kTruncated;
  if (!get_pod(in, nthreads)) return TraceLoadResult::kTruncated;
  if (!get_pod(in, reserved)) return TraceLoadResult::kTruncated;
  if (nthreads > kMaxThreads) return TraceLoadResult::kCorrupt;

  out.threads.reserve(nthreads);
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    ThreadTrace t;
    std::uint32_t tid = 0;
    std::uint64_t count = 0;
    if (!get_pod(in, tid)) return TraceLoadResult::kTruncated;
    if (!get_pod(in, reserved)) return TraceLoadResult::kTruncated;
    if (!get_pod(in, t.recorded)) return TraceLoadResult::kTruncated;
    if (!get_pod(in, t.dropped)) return TraceLoadResult::kTruncated;
    if (!get_pod(in, count)) return TraceLoadResult::kTruncated;
    if (count > kMaxEventsPerThread || count > t.recorded) {
      return TraceLoadResult::kCorrupt;
    }
    t.tid = static_cast<std::uint16_t>(tid);
    t.events.resize(static_cast<std::size_t>(count));
    if (count > 0) {
      const std::streamsize bytes =
          static_cast<std::streamsize>(count * sizeof(Event));
      in.read(reinterpret_cast<char*>(t.events.data()), bytes);
      if (in.gcount() != bytes) return TraceLoadResult::kTruncated;
    }
    out.threads.push_back(std::move(t));
  }
  // Trailing garbage means the writer and reader disagree about the format.
  char extra = 0;
  in.read(&extra, 1);
  if (in.gcount() != 0) return TraceLoadResult::kCorrupt;
  return TraceLoadResult::kOk;
}

}  // namespace ht::telemetry
