// Binary on-disk format for drained telemetry traces ("HTEL" files).
//
// Layout (little-endian, fixed-width):
//   u32 magic 'HTEL' | u32 version | f64 cycles_per_second | u64 base_tsc |
//   u32 thread_count | u32 reserved |
//   per thread: u32 tid | u32 reserved | u64 recorded | u64 dropped |
//               u64 event_count | event_count * Event (32 raw bytes each)
//
// Like recording_io, loads report WHY a file was rejected so tools can exit
// with a documented code instead of a generic failure.
#pragma once

#include <string>

#include "telemetry/telemetry.hpp"

namespace ht::telemetry {

enum class TraceLoadResult {
  kOk = 0,
  kOpenFailed,
  kBadMagic,
  kBadVersion,
  kTruncated,
  kCorrupt,  // implausible counts (guards giant allocations)
};

const char* trace_load_result_name(TraceLoadResult r);

bool save_trace(const TraceSnapshot& snap, const std::string& path);

TraceLoadResult load_trace(const std::string& path, TraceSnapshot& out);

}  // namespace ht::telemetry
