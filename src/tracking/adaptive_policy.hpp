// Profile-guided adaptive policy (paper §6): decides, per object, whether it
// should be in pessimistic or optimistic states.
//
// Cost–benefit model (§6.1): an object should be optimistic iff
//     Tpess*Npess >= TnonConfl*NnonConfl + Tconfl*Nconfl
// which, with Npess = NnonConfl + Nconfl, reduces to
//     NnonConfl >= Kconfl * Nconfl,     Kconfl = (Tconfl-Tpess)/(Tpess-TnonConfl).
//
// Online policy (§6.2):
//   * every object starts optimistic (WrExOpt of its allocating thread);
//   * an optimistic object moves to pessimistic states once it has triggered
//     Cutoff_confl conflicting transitions that used explicit coordination
//     (implicit coordination costs about as much as a pessimistic transition
//     and is not counted — footnote 7);
//   * a pessimistic object moves back once
//     NnonConfl >= Kconfl*Nconfl + Inertia (Eq. 5), and thereafter must stay
//     optimistic ("Checks and balances");
//   * extension (§7.5 suggestion, off by default): a pessimistic object whose
//     accesses keep triggering *contended* transitions — i.e. coordination
//     anyway — escapes back to optimistic states.
#pragma once

#include <atomic>
#include <cstdint>

#include "metadata/object_meta.hpp"

namespace ht {

struct PolicyConfig {
  std::uint32_t cutoff_confl = 4;  // §7.3 default
  std::uint32_t k_confl = 200;     // §7.3 default
  std::uint32_t inertia = 100;     // §7.3 default
  // Fig 7 "Hybrid tracking w/infinite cutoff": no object ever goes
  // pessimistic; measures hybrid tracking's costs without its benefits.
  bool infinite_cutoff = false;
  // §7.5 extension: escape to optimistic after this many contended
  // pessimistic transitions (0 disables).
  std::uint32_t contended_escape_threshold = 0;
  // §6.2 alternative: "the policy could allow repeated transitions from
  // optimistic to pessimistic, but with a greater Cutoff_confl value."
  // When > 1, an object that already made one pessimistic round trip may
  // transfer again once its conflict count reaches
  // cutoff_confl * repess_cutoff_multiplier (0/1 keeps the default
  // stay-optimistic rule).
  std::uint32_t repess_cutoff_multiplier = 0;

  static PolicyConfig paper_defaults() { return PolicyConfig{}; }
  static PolicyConfig infinite() {
    PolicyConfig c;
    c.infinite_cutoff = true;
    return c;
  }
  static PolicyConfig with_escape(std::uint32_t threshold = 8) {
    PolicyConfig c;
    c.contended_escape_threshold = threshold;
    return c;
  }
  static PolicyConfig with_repess(std::uint32_t multiplier = 4) {
    PolicyConfig c;
    c.repess_cutoff_multiplier = multiplier;
    return c;
  }
};

class AdaptivePolicy {
 public:
  explicit AdaptivePolicy(PolicyConfig cfg = {}) : cfg_(cfg) {}
  // The degraded flag is a plain value for copies (trackers are normally
  // constructed in place; a copy snapshots the current mode).
  AdaptivePolicy(const AdaptivePolicy& o)
      : cfg_(o.cfg_), degraded_(o.degraded()) {}
  AdaptivePolicy& operator=(const AdaptivePolicy& o) {
    cfg_ = o.cfg_;
    degraded_.store(o.degraded(), std::memory_order_relaxed);
    return *this;
  }

  const PolicyConfig& config() const { return cfg_; }

  // Degradation-governor override (src/resilience/, DESIGN.md §11): while
  // degraded, every conflicting transition transfers to pessimistic and no
  // unlock goes back — global coarse mode on top of the per-object policy,
  // flipped under coordination storms and restored under calm.
  void set_degraded(bool d) { degraded_.store(d, std::memory_order_relaxed); }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  // Called when an optimistic conflicting transition completes. Counts the
  // conflict (explicit coordination only) and decides whether the object
  // transfers to a pessimistic state (Fig 10 line 46, Eq. 4).
  bool to_pess_on_conflict(ObjectMeta& m, bool used_explicit) {
    if (degraded()) return true;
    if (cfg_.infinite_cutoff) return false;
    if (!used_explicit) return false;
    const ProfileWord p =
        m.profile().update([](ProfileWord w) { return w.with_opt_conflict_inc(); });
    if (p.must_stay_opt()) {
      // §6.2 alternative: a second (or later) trip is allowed at an
      // escalated cutoff, so only persistently conflicting objects re-pay
      // the transfer.
      if (cfg_.repess_cutoff_multiplier <= 1) return false;
      return p.opt_conflicts() >=
             static_cast<std::uint64_t>(cfg_.cutoff_confl) *
                 cfg_.repess_cutoff_multiplier;
    }
    return p.opt_conflicts() >= cfg_.cutoff_confl;
  }

  // Profiling of pessimistic transitions: all of them are counted, split by
  // whether they involve conflicting states (§6.2 "Efficient profiling").
  void note_pess_transition(ObjectMeta& m, bool conflicting) {
    m.profile().update([conflicting](ProfileWord w) {
      return conflicting ? w.with_pess_confl_inc() : w.with_pess_non_confl_inc();
    });
  }

  void note_pess_contended(ObjectMeta& m) {
    m.profile().update([](ProfileWord w) { return w.with_contended_inc(); });
  }

  void note_became_pess(ObjectMeta& m) {
    m.profile().update([](ProfileWord w) { return w.with_was_pess(); });
  }

  // Unlock-time decision (Fig 10c): should the object transfer to an
  // optimistic state? Pure query — call commit_go_opt once the unlocking CAS
  // has actually landed (an unlock CAS can fail when a concurrent reader
  // joins, in which case the decision must not leave side effects).
  bool should_go_opt(ObjectMeta& m) const {
    if (degraded()) return false;
    const ProfileWord p = m.profile().load();
    const bool by_formula =
        static_cast<std::uint64_t>(p.pess_non_confl()) >=
        static_cast<std::uint64_t>(cfg_.k_confl) * p.pess_confl() +
            cfg_.inertia;
    const bool by_escape = cfg_.contended_escape_threshold != 0 &&
                           p.contended() >= cfg_.contended_escape_threshold;
    return by_formula || by_escape;
  }

  // Pins the object optimistic (§6.2 "Checks and balances") and re-arms the
  // pessimistic counters.
  void commit_go_opt(ObjectMeta& m) {
    m.profile().update([](ProfileWord w) {
      return w.with_must_stay_opt().with_pess_counters_cleared();
    });
  }

  bool to_opt_on_unlock(ObjectMeta& m) {
    if (!should_go_opt(m)) return false;
    commit_go_opt(m);
    return true;
  }

 private:
  PolicyConfig cfg_;
  std::atomic<bool> degraded_{false};
};

}  // namespace ht
