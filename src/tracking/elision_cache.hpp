// Epoch-tagged barrier elision (DESIGN.md §15): a per-thread ownership cache
// that lets the trackers skip the state-word load entirely for objects this
// thread confirmed it owned earlier in the current *poll epoch*.
//
// Soundness rests on the protocol's safe-point revocation invariant (paper
// §2.2): a thread's optimistic ownership (WrExOpt/RdExOpt, RdSh freshness)
// and its *held* pessimistic locks can only be taken away after the thread
// itself participates — it responds at a safe point, parks at a blocking
// boundary, or is quarantined. ThreadContext::elision_epoch is bumped at
// exactly those participation points, so a cache entry stamped with the
// current epoch proves no revocation-capable event has happened since the
// tracker last confirmed ownership — the access would take the same-state /
// reentrant no-op path, and skipping it loses nothing. Quarantine seizes
// ownership *without* the victim's participation; the per-thread
// `elision_on` kill switch (stored false into the victim before any state is
// seized) closes that one hole, since the victim cannot bump its own
// non-atomic epoch from another thread.
//
// States that can be revoked WITHOUT the owner reaching a safe point —
// hybrid-model unlocked pessimistic states (any thread may CAS them to
// LOCKED) and everything the standalone pessimistic tracker does — are never
// inserted; see Tracker::kElidable and the insert sites.
//
// The cache is direct-mapped and tiny: a probe is one load of a 16-byte
// entry plus two compares, deliberately cheaper than the atomic state-word
// load + compare it replaces. Invalidation is O(1): bumping the epoch stales
// every entry at once, so safe points pay one increment, not a cache walk.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ht {

class ObjectMeta;

// Compile-time gate: -DHT_ELISION=OFF (CMake) defines HT_ELISION_DISABLED,
// and the HT_CHECK_TRANSITIONS shadow checker disables elision structurally —
// it validates every transition the trackers take, including same-state fast
// paths, so no access may bypass the trackers while it is watching.
#if defined(HT_ELISION_DISABLED) || defined(HT_CHECK_TRANSITIONS_ENABLED)
#define HT_ELISION_RUNTIME 0
#else
#define HT_ELISION_RUNTIME 1
#endif

class ElisionCache {
 public:
  // 64 direct-mapped entries (1 KiB): covers a hot loop's working set while
  // keeping reset()/clear cost trivial. Conflict misses just fall back to
  // the tracker fast path.
  static constexpr std::size_t kEntries = 64;

  void clear() {
    for (Entry& e : entries_) e = Entry{};
  }

  // A store hit requires a write-kind entry stamped with the current epoch.
  bool hit_store(const ObjectMeta* obj, std::uint64_t epoch) const {
    const Entry& e = entries_[slot(obj)];
    return e.obj == obj && e.tag == write_tag(epoch);
  }

  // A load hit accepts either kind: write ownership subsumes read ownership
  // in every tracked state (a WrEx owner / write-lock holder may read).
  bool hit_load(const ObjectMeta* obj, std::uint64_t epoch) const {
    const Entry& e = entries_[slot(obj)];
    return e.obj == obj && (e.tag >> 1) == epoch;
  }

  // Insert on fast-path confirmation. A read insert must not downgrade a
  // same-epoch write entry for the same object (write subsumes read).
  void insert(const ObjectMeta* obj, std::uint64_t epoch, bool is_write) {
    Entry& e = entries_[slot(obj)];
    if (!is_write && e.obj == obj && e.tag == write_tag(epoch)) return;
    e.obj = obj;
    e.tag = (epoch << 1) | (is_write ? 1u : 0u);
  }

 private:
  struct Entry {
    const ObjectMeta* obj = nullptr;
    // (epoch << 1) | write_bit. Epoch 0 is never current (reset() starts
    // the epoch at 1), so a default entry can never hit.
    std::uint64_t tag = 0;
  };

  static std::uint64_t write_tag(std::uint64_t epoch) {
    return (epoch << 1) | 1u;
  }

  // Same shift telemetry::object_id uses: ObjectMeta is at least 16 bytes,
  // so >>4 keeps neighboring objects from landing in one slot.
  static std::size_t slot(const ObjectMeta* obj) {
    return (reinterpret_cast<std::uintptr_t>(obj) >> 4) & (kEntries - 1);
  }

  Entry entries_[kEntries] = {};
};

// Structural elision traits, detected by TrackedVar/TrackedArray:
//
//   kElidable — the tracker declares that its same-state / reentrant paths
//     are pure no-ops this cache may skip. Trackers with an active
//     dependence sink set it false (the recorder must observe per-access
//     edges), the standalone pessimistic tracker sets it false (it CAS-locks
//     on EVERY access — nothing is redundant), and trackers without the
//     member (custom test doubles) default to non-elidable.
//
//   kStatsOn — mirrors the tracker's kStats template flag so hit/miss
//     counters cost nothing on the kStats=false bench configurations.
template <typename Tracker>
inline constexpr bool tracker_elidable_v = [] {
  if constexpr (requires { Tracker::kElidable; }) {
    return static_cast<bool>(Tracker::kElidable);
  } else {
    return false;
  }
}();

template <typename Tracker>
inline constexpr bool tracker_counts_stats_v = [] {
  if constexpr (requires { Tracker::kStatsOn; }) {
    return static_cast<bool>(Tracker::kStatsOn);
  } else {
    return true;  // unknown trackers keep the counters (correct, just warm)
  }
}();

}  // namespace ht
