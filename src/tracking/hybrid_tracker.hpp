// Hybrid tracking (paper §3, Table 3, Fig 10): objects move between
// optimistic states (Octet-style, no sync on the fast path) and pessimistic
// states (reader–writer locking of the state word) under an adaptive policy.
//
// Deferred unlocking (§3.1) is the load-bearing idea: a pessimistic state a
// thread locks stays locked until the thread's next program-synchronization
// release operation or responding safe point, where the whole lock buffer
// flushes. Locking therefore contends only when the program has an
// object-level data race, in which case the accessor falls back to the same
// coordination machinery optimistic tracking uses.
//
// Recorder edge discipline (DESIGN.md §4.4): a transition records
//   * (owner, counter read after the response)     after coordination,
//   * (owner, owner's current counter)             when the old state is an
//     *unlocked* pessimistic state with a named owner — sound because the
//     owner's flush bumped its counter after its last access and before
//     unlocking, and
//   * one edge per other thread at its current counter for every other
//     dependence-bearing case (RdSh-involving and locked-state joins), whose
//     prior accessors the state word does not name.
#pragma once

#include <atomic>

#include "common/spin.hpp"

#include "metadata/object_meta.hpp"
#include "resilience/seizure.hpp"
#include "tracking/adaptive_policy.hpp"
#include "tracking/tracker_common.hpp"
#include "tracking/tracking_modes.hpp"

namespace ht {

struct HybridConfig {
  PolicyConfig policy;
  WrExReadMode wr_ex_read_mode = WrExReadMode::kFull;
};

template <bool kStats = false, typename Sink = NullSink>
class HybridTracker {
 public:
  static constexpr const char* kName = "hybrid";
  using Token = EmptyToken;
  // Barrier elision (DESIGN.md §15): same-state optimistic confirmations and
  // reentrant *held-lock* hits may be cached — both are revocable only at
  // this thread's safe points (or by quarantine, which trips the victim's
  // elision_on kill switch). Unlocked pessimistic states are never inserted:
  // any thread may CAS them to a locked state with no owner safe point.
  // Disabled structurally when a dependence sink needs per-access events.
  static constexpr bool kElidable = !Sink::kActive;
  static constexpr bool kStatsOn = kStats;

  explicit HybridTracker(Runtime& rt, HybridConfig cfg = {},
                         Sink* sink = nullptr)
      : runtime_(&rt), policy_(cfg.policy), mode_(cfg.wr_ex_read_mode),
        sink_(sink) {}

  StateWord initial_state(ThreadContext& ctx) const {
    // "Each object newly allocated by thread T starts in the WrExOpt_T
    // state" (§6.2).
    return StateWord::wr_ex_opt(ctx.id);
  }

  // Installs the deferred-unlocking flush as the thread's responding-safe-
  // point hook (PSROs, explicit responses, blocking entry, thread exit).
  void attach_thread(ThreadContext& ctx) {
    ctx.flush_self = this;
    ctx.flush_fn = [](void* self, ThreadContext& c) {
      static_cast<HybridTracker*>(self)->flush(c);
    };
  }

  AdaptivePolicy& policy() { return policy_; }

  // --- store --------------------------------------------------------------
  Token pre_store(ThreadContext& ctx, ObjectMeta& m) {
    const StateWord s = m.load_state();
    if (s.raw() == ctx.fast_wr_ex_opt) {  // Fig 10a
      if constexpr (kStats) ++ctx.stats.opt_same;
      if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                           .actor = ctx.id,
                           .object = &m,
                           .from = s,
                           .to = s,
                           .access = analysis::AccessKind::kWrite,
                           .rel = analysis::ActorRel::kOwner,
                           .mode = mode_});
      return {};
    }
    store_slow(ctx, m);
    return {};
  }
  void post_store(ThreadContext&, ObjectMeta&, Token) {}

  // --- batched store (DESIGN.md §13) ---------------------------------------
  // Secures write ownership of every object in `objs` before the caller
  // performs the stores. Conflicting optimistic objects are all moved to Int
  // first, partitioned by their named owner, and each owner's group is
  // settled by ONE coordinate_batch() round trip — that owner's one
  // flush-and-bump covers its whole group, and each object records its edge
  // at the shared post-bump counter. Everything else (same-state, upgrades,
  // pessimistic/contended/RdSh states, CAS losses) takes the scalar
  // pre_store retry loop after the groups have landed, so a leftover never
  // spins on this thread's own Int.
  static constexpr std::size_t kMaxStoreBatch = 16;
  void pre_store_batch(ThreadContext& ctx, ObjectMeta* const* objs,
                       std::size_t n) {
    Runtime& rt = *runtime_;
    BatchConflict pend[kMaxStoreBatch];
    bool scalar[kMaxStoreBatch];
    std::size_t np = 0;
    const std::size_t lim = n < kMaxStoreBatch ? n : kMaxStoreBatch;
    for (std::size_t i = 0; i < lim; ++i) {
      scalar[i] = false;
      ObjectMeta& m = *objs[i];
      const StateWord s = m.load_state();
      if (s.raw() == ctx.fast_wr_ex_opt) {
        if constexpr (kStats) ++ctx.stats.opt_same;
        if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
        HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                             .actor = ctx.id,
                             .object = &m,
                             .from = s,
                             .to = s,
                             .access = analysis::AccessKind::kWrite,
                             .rel = analysis::ActorRel::kOwner,
                             .mode = mode_});
        continue;
      }
      // Batchable: an optimistic conflict with a named owner. (RdSh
      // conflicts coordinate with *all* others and stay scalar; a duplicate
      // of a group member reads our own Int here and stays scalar,
      // resolving after the groups land.)
      const bool opt_conflict = (s.kind() == StateKind::kWrExOpt ||
                                 s.kind() == StateKind::kRdExOpt) &&
                                s.tid() != ctx.id;
      if (!opt_conflict) {
        scalar[i] = true;
        continue;
      }
      rt.check_self_quarantine(ctx);
      StateWord expected = s;
      if (!m.cas_state(expected, StateWord::intermediate(ctx.id))) {
        scalar[i] = true;  // raced: let the retry loop reclassify
        continue;
      }
      HT_TELEM_TRANSITION(ctx, &m, s, StateWord::intermediate(ctx.id));
      pend[np++] = BatchConflict{&m, s};
    }

    if (np != 0) settle_store_batch(ctx, pend, np);

    for (std::size_t i = 0; i < lim; ++i) {
      if (scalar[i]) pre_store(ctx, *objs[i]);
    }
    for (std::size_t i = lim; i < n; ++i) pre_store(ctx, *objs[i]);
  }

  // --- load ---------------------------------------------------------------
  Token pre_load(ThreadContext& ctx, ObjectMeta& m) {
    const StateWord s = m.load_state();
    if (s.raw() == ctx.fast_wr_ex_opt || s.raw() == ctx.fast_rd_ex_opt ||
        (s.kind() == StateKind::kRdShOpt && ctx.rd_sh_count >= s.counter())) {
      if constexpr (kStats) ++ctx.stats.opt_same;
      if constexpr (kElidable)
        ctx.elision_insert(&m, /*is_write=*/s.raw() == ctx.fast_wr_ex_opt);
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                           .actor = ctx.id,
                           .object = &m,
                           .from = s,
                           .to = s,
                           .access = analysis::AccessKind::kRead,
                           .rel = analysis::ActorRel::kOwner,
                           .mode = mode_});
      return {};
    }
    load_slow(ctx, m);
    return {};
  }
  void post_load(ThreadContext&, ObjectMeta&, Token) {}

  // Deferred unlocking's buffer flush (Fig 10c); public so tests can force
  // flushes, normally reached via the thread hooks.
  void flush(ThreadContext& ctx) {
    // The flush is the revocation event for held-lock elision entries (the
    // unlocked states it leaves behind are CAS-lockable by anyone), so the
    // epoch advances here — not only at the runtime safe points that
    // normally invoke this hook — keeping direct flush() calls (tests,
    // future call sites) sound. Bare increment: the elision_flushes stat
    // counts safe-point flushes, which the runtime sites account for.
    ++ctx.elision_epoch;
    HT_TELEM_CYCLES(telem_t0);
    for (ObjectMeta* m : ctx.lock_buffer) unlock_one(ctx, *m);
    // Emitted after the unlock loop so arg1 can carry the cycles the flush
    // took (the profiler's deferred-flush attribution category); arg0 stays
    // the entry count, read before the clear.
    HT_TELEM_EVENT_IF(!ctx.lock_buffer.empty(), ctx, kDeferredFlush,
                      ctx.lock_buffer.size(), ::ht::read_cycles() - telem_t0,
                      0);
    ctx.lock_buffer.clear();
    ctx.rd_set.clear();
  }

  Runtime& runtime() { return *runtime_; }

 private:
  // Unlocks one lock-buffer entry (Table 3 "Pessimistic unlock / Pess->Opt"
  // rows). Exclusive write locks cannot change under us, but read-locked
  // states can be joined by concurrent readers (RdExRLock -> RdShRLock(2)),
  // so unlocking CAS-loops on the current state.
  void unlock_one(ThreadContext& ctx, ObjectMeta& m) {
    for (;;) {
      StateWord s = m.load_state();
      // Quarantine tolerance: between buffering and this flush, a survivor
      // may have seized this entry from us (we were quarantined but had not
      // yet parked), leaving a state we no longer own — unlocked, Int, or
      // re-locked by the seizer's successor. Such entries are simply no
      // longer ours to unlock; skip them. Without quarantines this is
      // impossible and remains a hard protocol violation.
      const bool ours = (s.kind() == StateKind::kWrExWLock ||
                         s.kind() == StateKind::kWrExRLock ||
                         s.kind() == StateKind::kRdExRLock)
                            ? s.tid() == ctx.id
                            : s.kind() == StateKind::kRdShRLock;
      if (!ours) {
        HT_ASSERT(runtime_->has_quarantined(),
                  "lock-buffer entry in a state we do not hold");
        return;
      }
      switch (s.kind()) {
        case StateKind::kWrExWLock: {
          // Sole owner of a write lock — but the unlock still CASes rather
          // than blind-stores: a quarantined-but-not-yet-parked thread
          // flushing here must lose cleanly to a concurrent seizure instead
          // of clobbering the seized state (conceptually the transition is
          // still the owner's sole-owner store, so the observation keeps
          // Mechanism::kStore).
          const bool to_opt = policy_.should_go_opt(m);
          const StateWord next = to_opt ? StateWord::wr_ex_opt(ctx.id)
                                        : StateWord::wr_ex_pess(ctx.id);
          StateWord expected = s;
          if (!m.cas_state(expected, next)) break;  // seized: reload
          HT_TELEM_TRANSITION(ctx, &m, s, next);
          HT_CHECK_TRANSITION(
              {.family = analysis::TrackerFamily::kHybrid,
               .actor = ctx.id,
               .object = &m,
               .from = s,
               .to = next,
               .access = analysis::AccessKind::kUnlock,
               .rel = analysis::ActorRel::kOwner,
               .policy = to_opt ? analysis::PolicyChoice::kOpt
                                : analysis::PolicyChoice::kPess,
               .mode = mode_,
               .taken = analysis::Mechanism::kStore,
               .in_lock_buffer = analysis::lb_member(ctx, &m),
               .in_rd_set = analysis::rs_member(ctx, &m)});
          commit_unlock(ctx, m, to_opt);
          return;
        }
        case StateKind::kWrExRLock: {
          HT_DASSERT(s.tid() == ctx.id, "flushing a lock we do not hold");
          const bool to_opt = policy_.should_go_opt(m);
          const StateWord next = to_opt ? StateWord::wr_ex_opt(ctx.id)
                                        : StateWord::wr_ex_pess(ctx.id);
          StateWord expected = s;
          if (m.cas_state(expected, next)) {
            HT_TELEM_TRANSITION(ctx, &m, s, next);
            HT_CHECK_TRANSITION(
                {.family = analysis::TrackerFamily::kHybrid,
                 .actor = ctx.id,
                 .object = &m,
                 .from = s,
                 .to = next,
                 .access = analysis::AccessKind::kUnlock,
                 .rel = analysis::ActorRel::kOwner,
                 .policy = to_opt ? analysis::PolicyChoice::kOpt
                                  : analysis::PolicyChoice::kPess,
                 .mode = mode_,
                 .taken = analysis::Mechanism::kCas,
                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                 .in_rd_set = analysis::rs_member(ctx, &m)});
            commit_unlock(ctx, m, to_opt);
            return;
          }
          break;  // a reader joined: state became RdShRLock
        }
        case StateKind::kRdExRLock: {
          HT_DASSERT(s.tid() == ctx.id, "flushing a lock we do not hold");
          const bool to_opt = policy_.should_go_opt(m);
          const StateWord next = to_opt ? StateWord::rd_ex_opt(ctx.id)
                                        : StateWord::rd_ex_pess(ctx.id);
          StateWord expected = s;
          if (m.cas_state(expected, next)) {
            HT_TELEM_TRANSITION(ctx, &m, s, next);
            HT_CHECK_TRANSITION(
                {.family = analysis::TrackerFamily::kHybrid,
                 .actor = ctx.id,
                 .object = &m,
                 .from = s,
                 .to = next,
                 .access = analysis::AccessKind::kUnlock,
                 .rel = analysis::ActorRel::kOwner,
                 .policy = to_opt ? analysis::PolicyChoice::kOpt
                                  : analysis::PolicyChoice::kPess,
                 .mode = mode_,
                 .taken = analysis::Mechanism::kCas,
                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                 .in_rd_set = analysis::rs_member(ctx, &m)});
            commit_unlock(ctx, m, to_opt);
            return;
          }
          break;
        }
        case StateKind::kRdShRLock: {
          const std::uint32_t n = s.rdlock_count();
          HT_DASSERT(n >= 1, "RdShRLock with zero holders");
          StateWord next;
          bool to_opt = false;
          if (n > 1) {
            next = StateWord::rd_sh_rlock(s.counter(), n - 1);
          } else {
            to_opt = policy_.should_go_opt(m);
            next = to_opt ? StateWord::rd_sh_opt(s.counter())
                          : StateWord::rd_sh_pess(s.counter());
          }
          StateWord expected = s;
          if (m.cas_state(expected, next)) {
            HT_TELEM_TRANSITION(ctx, &m, s, next);
            HT_CHECK_TRANSITION(
                {.family = analysis::TrackerFamily::kHybrid,
                 .actor = ctx.id,
                 .object = &m,
                 .from = s,
                 .to = next,
                 .access = analysis::AccessKind::kUnlock,
                 .rel = analysis::ActorRel::kOwner,
                 .sole_holder = n == 1,
                 .policy = to_opt ? analysis::PolicyChoice::kOpt
                                  : analysis::PolicyChoice::kPess,
                 .mode = mode_,
                 .taken = analysis::Mechanism::kCas,
                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                 .in_rd_set = analysis::rs_member(ctx, &m)});
            if (n == 1) commit_unlock(ctx, m, to_opt);
            return;
          }
          break;  // another holder joined or left: recompute
        }
        default:
          HT_ASSERT(false, "lock-buffer entry in a non-locked state");
      }
    }
  }

  // Lazy ownership reclamation (DESIGN.md §11): a state owned by a
  // quarantined thread will never be released by it — coordinate() with the
  // dead owner succeeds implicitly, so without this check a contended slow
  // path would livelock re-reading the same locked state forever. Returns
  // true when the caller should reload the state word.
  bool seize_if_quarantined(ThreadContext& ctx, ObjectMeta& m, StateWord s) {
    Runtime& rt = *runtime_;
    if (!rt.has_quarantined() || !rt.thread_quarantined(s.tid())) return false;
    resilience::seize_object(ctx, m, s.tid());
    return true;
  }

  // ==== store slow path (Fig 10b generalized to all Table 3 rows) ==========
  void store_slow(ThreadContext& ctx, ObjectMeta& m) {
    Runtime& rt = *runtime_;
    bool contended = false;
    // Int waits must cede the CPU (same idiom as the pessimistic contended
    // lock): the holder keeps the Int across a whole coordination round
    // trip, and on oversubscribed cores a pure spin burns the scheduling
    // quantum that holder — or the owner draining a batch mailbox — needs.
    Backoff backoff;
    for (;;) {
      // Quarantined victims must not lock or Int fresh states after the
      // sweep ran (DESIGN.md §11.2); park before acquiring, never after.
      rt.check_self_quarantine(ctx);
      StateWord s = m.load_state();
      switch (s.kind()) {
        // ---- optimistic ----------------------------------------------------
        case StateKind::kWrExOpt:
          if (s.tid() == ctx.id) {
            if constexpr (kStats) ++ctx.stats.opt_same;
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kWrite,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_});
            return;
          }
          if (opt_conflicting(ctx, m, s, /*is_store=*/true)) return;
          break;
        case StateKind::kRdExOpt:
          if (s.tid() == ctx.id) {
            StateWord expected = s;
            if (m.cas_state(expected, StateWord::wr_ex_opt(ctx.id))) {
              if constexpr (kStats) ++ctx.stats.opt_upgrading;
              HT_TELEM_TRANSITION(ctx, &m, s, StateWord::wr_ex_opt(ctx.id));
              HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                   .actor = ctx.id,
                                   .object = &m,
                                   .from = s,
                                   .to = StateWord::wr_ex_opt(ctx.id),
                                   .access = analysis::AccessKind::kWrite,
                                   .rel = analysis::ActorRel::kOwner,
                                   .mode = mode_,
                                   .taken = analysis::Mechanism::kCas});
              return;
            }
            break;
          }
          if (opt_conflicting(ctx, m, s, /*is_store=*/true)) return;
          break;
        case StateKind::kRdShOpt:
          if (opt_conflicting(ctx, m, s, /*is_store=*/true)) return;
          break;
        case StateKind::kInt:
          HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kHybrid,
                              .actor = ctx.id,
                              .object = &m,
                              .from = s,
                              .access = analysis::AccessKind::kWrite,
                              .rel = analysis::ActorRel::kOther,
                              .mode = mode_});
          if (seize_if_quarantined(ctx, m, s)) break;
          rt.fault_point_slow_path(ctx);
          rt.respond_while_waiting(ctx);
          if (!schedule::virtualized()) backoff.pause();
          break;

        // ---- pessimistic unlocked: uncontended lock acquisition -------------
        case StateKind::kWrExPess:
        case StateKind::kRdExPess: {
          const bool confl = s.tid() != ctx.id;
          StateWord expected = s;
          if (m.cas_state(expected, StateWord::wr_ex_wlock(ctx.id))) {
            ctx.lock_buffer.push_back(&m);
            HT_TELEM_TRANSITION(ctx, &m, s, StateWord::wr_ex_wlock(ctx.id));
            finish_pess(ctx, m, confl, /*reentrant=*/false, contended);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = StateWord::wr_ex_wlock(ctx.id),
                                 .access = analysis::AccessKind::kWrite,
                                 .rel = confl ? analysis::ActorRel::kOther
                                              : analysis::ActorRel::kOwner,
                                 .mode = mode_,
                                 .taken = analysis::Mechanism::kCas,
                                 .in_lock_buffer = analysis::lb_member(ctx, &m)});
            if (confl) record_owner_edge(ctx, s.tid());
            return;
          }
          break;
        }
        case StateKind::kRdShPess: {
          StateWord expected = s;
          if (m.cas_state(expected, StateWord::wr_ex_wlock(ctx.id))) {
            ctx.lock_buffer.push_back(&m);
            HT_TELEM_TRANSITION(ctx, &m, s, StateWord::wr_ex_wlock(ctx.id));
            finish_pess(ctx, m, /*confl=*/true, /*reentrant=*/false, contended);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = StateWord::wr_ex_wlock(ctx.id),
                                 .access = analysis::AccessKind::kWrite,
                                 .rel = analysis::ActorRel::kOther,
                                 .mode = mode_,
                                 .taken = analysis::Mechanism::kCas,
                                 .in_lock_buffer = analysis::lb_member(ctx, &m)});
            record_all_edges(ctx);
            return;
          }
          break;
        }

        // ---- pessimistic locked ---------------------------------------------
        case StateKind::kWrExWLock:
          if (s.tid() == ctx.id) {  // reentrant (Table 3 row 1)
            // A held write lock is only released by this thread's own flush
            // (epoch bump) or seized from a quarantined self (kill switch).
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/true);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kWrite,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_,
                                 .in_lock_buffer = analysis::lb_member(ctx, &m)});
            return;
          }
          HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kHybrid,
                              .actor = ctx.id,
                              .object = &m,
                              .from = s,
                              .access = analysis::AccessKind::kWrite,
                              .rel = analysis::ActorRel::kOther,
                              .mode = mode_});
          if (seize_if_quarantined(ctx, m, s)) break;
          pess_contended(ctx, m, s, contended);
          break;
        case StateKind::kWrExRLock:
        case StateKind::kRdExRLock:
          if (s.tid() == ctx.id) {  // upgrade own read lock to a write lock
            StateWord expected = s;
            if (m.cas_state(expected, StateWord::wr_ex_wlock(ctx.id))) {
              // Already in the lock buffer from the read-lock acquisition.
              HT_TELEM_TRANSITION(ctx, &m, s, StateWord::wr_ex_wlock(ctx.id));
              finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/false, contended);
              HT_CHECK_TRANSITION(
                  {.family = analysis::TrackerFamily::kHybrid,
                   .actor = ctx.id,
                   .object = &m,
                   .from = s,
                   .to = StateWord::wr_ex_wlock(ctx.id),
                   .access = analysis::AccessKind::kWrite,
                   .rel = analysis::ActorRel::kOwner,
                   .mode = mode_,
                   .taken = analysis::Mechanism::kCas,
                   .in_lock_buffer = analysis::lb_member(ctx, &m),
                   .in_rd_set = analysis::rs_member(ctx, &m)});
              return;
            }
            break;
          }
          HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kHybrid,
                              .actor = ctx.id,
                              .object = &m,
                              .from = s,
                              .access = analysis::AccessKind::kWrite,
                              .rel = analysis::ActorRel::kOther,
                              .mode = mode_});
          if (seize_if_quarantined(ctx, m, s)) break;
          pess_contended(ctx, m, s, contended);
          break;
        case StateKind::kRdShRLock:
          if (s.rdlock_count() == 1 && ctx.rd_set.contains(&m)) {
            // Sole read-lock holder is this thread: upgrade in place rather
            // than deadlocking against our own lock.
            StateWord expected = s;
            if (m.cas_state(expected, StateWord::wr_ex_wlock(ctx.id))) {
              HT_TELEM_TRANSITION(ctx, &m, s, StateWord::wr_ex_wlock(ctx.id));
              finish_pess(ctx, m, /*confl=*/true, /*reentrant=*/false, contended);
              HT_CHECK_TRANSITION(
                  {.family = analysis::TrackerFamily::kHybrid,
                   .actor = ctx.id,
                   .object = &m,
                   .from = s,
                   .to = StateWord::wr_ex_wlock(ctx.id),
                   .access = analysis::AccessKind::kWrite,
                   .rel = analysis::ActorRel::kOwner,
                   .sole_holder = true,
                   .mode = mode_,
                   .taken = analysis::Mechanism::kCas,
                   .in_lock_buffer = analysis::lb_member(ctx, &m),
                   .in_rd_set = analysis::rs_member(ctx, &m)});
              record_all_edges(ctx);
              return;
            }
            break;
          }
          HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kHybrid,
                              .actor = ctx.id,
                              .object = &m,
                              .from = s,
                              .access = analysis::AccessKind::kWrite,
                              .rel = ctx.rd_set.contains(&m)
                                         ? analysis::ActorRel::kOwner
                                         : analysis::ActorRel::kOther,
                              .sole_holder = s.rdlock_count() == 1,
                              .mode = mode_});
          pess_contended(ctx, m, s, contended);
          // Share-lock holders are anonymous (footnote 4), so a quarantined
          // holder cannot be seized eagerly — but it also never decrements
          // the count. pess_contended just completed a full coordination
          // round with every live thread; if the word is still bit-for-bit
          // unchanged, the remaining holders can only be dead: break the
          // share through Int into RdShPess. (The rare ABA with a live
          // holder whose flush-and-rejoin restored the identical word is
          // tolerated — that holder's later flush skips the entry under
          // quarantine tolerance.)
          if (rt.has_quarantined() && m.load_state().raw() == s.raw()) {
            StateWord expected = s;
            if (m.cas_state(expected, StateWord::intermediate(ctx.id))) {
              HT_TELEM_TRANSITION(ctx, &m, s, StateWord::intermediate(ctx.id));
              m.store_state(StateWord::rd_sh_pess(s.counter()));
              HT_TELEM_TRANSITION(ctx, &m, StateWord::intermediate(ctx.id),
                                  StateWord::rd_sh_pess(s.counter()));
              HT_TELEM_EVENT(ctx, kSeizure, 0, telemetry::object_id(&m),
                             kNoThread);
            }
          }
          break;

        case StateKind::kPessLockedSentinel:
          HT_ASSERT(false, "hybrid tracker saw a standalone-pessimistic state");
      }
    }
  }

  // ==== load slow path ========================================================
  void load_slow(ThreadContext& ctx, ObjectMeta& m) {
    Runtime& rt = *runtime_;
    bool contended = false;
    Backoff backoff;  // Int waits cede the CPU (see store_slow)
    for (;;) {
      rt.check_self_quarantine(ctx);
      StateWord s = m.load_state();
      switch (s.kind()) {
        // ---- optimistic ----------------------------------------------------
        case StateKind::kWrExOpt:
          if (s.tid() == ctx.id) {
            if constexpr (kStats) ++ctx.stats.opt_same;
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_});
            return;
          }
          if (opt_conflicting(ctx, m, s, /*is_store=*/false)) return;
          break;
        case StateKind::kRdExOpt: {
          if (s.tid() == ctx.id) {
            if constexpr (kStats) ++ctx.stats.opt_same;
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/false);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_});
            return;
          }
          // Upgrading: RdEx_T1 read by T2 -> RdShOpt with a fresh counter.
          const std::uint32_t c = rt.next_rd_sh_counter();
          StateWord expected = s;
          if (m.cas_state(expected, StateWord::rd_sh_opt(c))) {
            if (ctx.rd_sh_count < c) ctx.rd_sh_count = c;
            record_all_edges(ctx);
            if constexpr (kStats) ++ctx.stats.opt_upgrading;
            HT_TELEM_TRANSITION(ctx, &m, s, StateWord::rd_sh_opt(c));
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = StateWord::rd_sh_opt(c),
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOther,
                                 .mode = mode_,
                                 .taken = analysis::Mechanism::kCas});
            return;
          }
          break;
        }
        case StateKind::kRdShOpt:
          if (ctx.rd_sh_count >= s.counter()) {
            if constexpr (kStats) ++ctx.stats.opt_same;
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/false);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_});
            return;
          }
          std::atomic_thread_fence(std::memory_order_seq_cst);
          ctx.rd_sh_count = s.counter();
          record_all_edges(ctx);
          if constexpr (kStats) ++ctx.stats.opt_fence;
          HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                               .actor = ctx.id,
                               .object = &m,
                               .from = s,
                               .to = s,
                               .access = analysis::AccessKind::kRead,
                               .rel = analysis::ActorRel::kOther,
                               .mode = mode_,
                               .taken = analysis::Mechanism::kFence});
          return;
        case StateKind::kInt:
          HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kHybrid,
                              .actor = ctx.id,
                              .object = &m,
                              .from = s,
                              .access = analysis::AccessKind::kRead,
                              .rel = analysis::ActorRel::kOther,
                              .mode = mode_});
          if (seize_if_quarantined(ctx, m, s)) break;
          rt.fault_point_slow_path(ctx);
          rt.respond_while_waiting(ctx);
          if (!schedule::virtualized()) backoff.pause();
          break;

        // ---- pessimistic unlocked -------------------------------------------
        case StateKind::kWrExPess: {
          if (s.tid() == ctx.id) {
            // §7.1: the full model read-locks the owner's WrEx state so a
            // second reader can share without contention; the prototype
            // write-locks it; the unsound alternate downgrades to RdEx.
            StateWord next;
            bool read_lock = true;
            switch (mode_) {
              case WrExReadMode::kFull:
                next = StateWord::wr_ex_rlock(ctx.id);
                break;
              case WrExReadMode::kOmitWrExRLock:
                next = StateWord::wr_ex_wlock(ctx.id);
                read_lock = false;
                break;
              case WrExReadMode::kUnsoundDowngrade:
                next = StateWord::rd_ex_rlock(ctx.id);
                break;
            }
            StateWord expected = s;
            if (m.cas_state(expected, next)) {
              ctx.lock_buffer.push_back(&m);
              if (read_lock) ctx.rd_set.insert(&m);
              HT_TELEM_TRANSITION(ctx, &m, s, next);
              finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/false, contended);
              HT_CHECK_TRANSITION(
                  {.family = analysis::TrackerFamily::kHybrid,
                   .actor = ctx.id,
                   .object = &m,
                   .from = s,
                   .to = next,
                   .access = analysis::AccessKind::kRead,
                   .rel = analysis::ActorRel::kOwner,
                   .mode = mode_,
                   .taken = analysis::Mechanism::kCas,
                   .in_lock_buffer = analysis::lb_member(ctx, &m),
                   .in_rd_set = analysis::rs_member(ctx, &m)});
              return;
            }
            break;
          }
          // Cross-thread read of WrExPess_T1 -> RdExRLock_T2 (Table 3).
          StateWord expected = s;
          if (m.cas_state(expected, StateWord::rd_ex_rlock(ctx.id))) {
            ctx.lock_buffer.push_back(&m);
            ctx.rd_set.insert(&m);
            HT_TELEM_TRANSITION(ctx, &m, s, StateWord::rd_ex_rlock(ctx.id));
            finish_pess(ctx, m, /*confl=*/true, /*reentrant=*/false, contended);
            HT_CHECK_TRANSITION(
                {.family = analysis::TrackerFamily::kHybrid,
                 .actor = ctx.id,
                 .object = &m,
                 .from = s,
                 .to = StateWord::rd_ex_rlock(ctx.id),
                 .access = analysis::AccessKind::kRead,
                 .rel = analysis::ActorRel::kOther,
                 .mode = mode_,
                 .taken = analysis::Mechanism::kCas,
                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                 .in_rd_set = analysis::rs_member(ctx, &m)});
            record_owner_edge(ctx, s.tid());
            return;
          }
          break;
        }
        case StateKind::kRdExPess: {
          if (s.tid() == ctx.id) {
            StateWord expected = s;
            if (m.cas_state(expected, StateWord::rd_ex_rlock(ctx.id))) {
              ctx.lock_buffer.push_back(&m);
              ctx.rd_set.insert(&m);
              HT_TELEM_TRANSITION(ctx, &m, s, StateWord::rd_ex_rlock(ctx.id));
              finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/false, contended);
              HT_CHECK_TRANSITION(
                  {.family = analysis::TrackerFamily::kHybrid,
                   .actor = ctx.id,
                   .object = &m,
                   .from = s,
                   .to = StateWord::rd_ex_rlock(ctx.id),
                   .access = analysis::AccessKind::kRead,
                   .rel = analysis::ActorRel::kOwner,
                   .mode = mode_,
                   .taken = analysis::Mechanism::kCas,
                   .in_lock_buffer = analysis::lb_member(ctx, &m),
                   .in_rd_set = analysis::rs_member(ctx, &m)});
              return;
            }
            break;
          }
          // RdExPess_T1 read by T2 -> RdShRLock(1) with a fresh counter.
          const std::uint32_t c = rt.next_rd_sh_counter();
          StateWord expected = s;
          if (m.cas_state(expected, StateWord::rd_sh_rlock(c, 1))) {
            if (ctx.rd_sh_count < c) ctx.rd_sh_count = c;
            ctx.lock_buffer.push_back(&m);
            ctx.rd_set.insert(&m);
            HT_TELEM_TRANSITION(ctx, &m, s, StateWord::rd_sh_rlock(c, 1));
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/false, contended);
            HT_CHECK_TRANSITION(
                {.family = analysis::TrackerFamily::kHybrid,
                 .actor = ctx.id,
                 .object = &m,
                 .from = s,
                 .to = StateWord::rd_sh_rlock(c, 1),
                 .access = analysis::AccessKind::kRead,
                 .rel = analysis::ActorRel::kOther,
                 .mode = mode_,
                 .taken = analysis::Mechanism::kCas,
                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                 .in_rd_set = analysis::rs_member(ctx, &m)});
            record_owner_edge(ctx, s.tid());
            return;
          }
          break;
        }
        case StateKind::kRdShPess: {
          StateWord expected = s;
          if (m.cas_state(expected,
                          StateWord::rd_sh_rlock(s.counter(), 1))) {
            if (ctx.rd_sh_count < s.counter()) ctx.rd_sh_count = s.counter();
            ctx.lock_buffer.push_back(&m);
            ctx.rd_set.insert(&m);
            HT_TELEM_TRANSITION(ctx, &m, s,
                                StateWord::rd_sh_rlock(s.counter(), 1));
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/false, contended);
            HT_CHECK_TRANSITION(
                {.family = analysis::TrackerFamily::kHybrid,
                 .actor = ctx.id,
                 .object = &m,
                 .from = s,
                 .to = StateWord::rd_sh_rlock(s.counter(), 1),
                 .access = analysis::AccessKind::kRead,
                 .rel = analysis::ActorRel::kOther,
                 .mode = mode_,
                 .taken = analysis::Mechanism::kCas,
                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                 .in_rd_set = analysis::rs_member(ctx, &m)});
            record_all_edges(ctx);
            return;
          }
          break;
        }

        // ---- pessimistic locked ----------------------------------------------
        case StateKind::kWrExWLock:
          if (s.tid() == ctx.id) {  // reentrant
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/true);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_,
                                 .in_lock_buffer = analysis::lb_member(ctx, &m)});
            return;
          }
          HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kHybrid,
                              .actor = ctx.id,
                              .object = &m,
                              .from = s,
                              .access = analysis::AccessKind::kRead,
                              .rel = analysis::ActorRel::kOther,
                              .mode = mode_});
          if (seize_if_quarantined(ctx, m, s)) break;
          pess_contended(ctx, m, s, contended);
          break;
        case StateKind::kWrExRLock:
          if (s.tid() == ctx.id) {  // reentrant (own read lock)
            // Read-kind entry only: a second reader may still join this
            // share without our safe point, but we stay in rd_set, so our
            // elided reads remain reentrant no-ops under the joined state.
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/false);
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/true);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_,
                                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                                 .in_rd_set = analysis::rs_member(ctx, &m)});
            return;
          }
          // Second concurrent reader: WrExRLock_T1 -> RdShRLock(2).
          // Seize first if the holder is quarantined — joining would count a
          // dead thread as a share holder that never decrements.
          if (seize_if_quarantined(ctx, m, s)) break;
          if (join_read_share(ctx, m, s, /*initial_holders=*/2,
                              /*confl=*/true, contended))
            return;
          break;
        case StateKind::kRdExRLock:
          if (s.tid() == ctx.id) {  // reentrant
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/false);
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/true);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner,
                                 .mode = mode_,
                                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                                 .in_rd_set = analysis::rs_member(ctx, &m)});
            return;
          }
          if (seize_if_quarantined(ctx, m, s)) break;
          if (join_read_share(ctx, m, s, /*initial_holders=*/2,
                              /*confl=*/false, contended))
            return;
          break;
        case StateKind::kRdShRLock: {
          if (ctx.rd_set.contains(&m)) {  // reentrant
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/false);
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/true);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner,
                                 .sole_holder = s.rdlock_count() == 1,
                                 .mode = mode_,
                                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                                 .in_rd_set = analysis::rs_member(ctx, &m)});
            return;
          }
          // Join: RdShRLock(n) -> RdShRLock(n+1), same counter.
          StateWord expected = s;
          if (m.cas_state(expected,
                          StateWord::rd_sh_rlock(s.counter(),
                                                 s.rdlock_count() + 1))) {
            if (ctx.rd_sh_count < s.counter()) ctx.rd_sh_count = s.counter();
            ctx.lock_buffer.push_back(&m);
            ctx.rd_set.insert(&m);
            finish_pess(ctx, m, /*confl=*/false, /*reentrant=*/false, contended);
            HT_CHECK_TRANSITION(
                {.family = analysis::TrackerFamily::kHybrid,
                 .actor = ctx.id,
                 .object = &m,
                 .from = s,
                 .to = StateWord::rd_sh_rlock(s.counter(),
                                              s.rdlock_count() + 1),
                 .access = analysis::AccessKind::kRead,
                 .rel = analysis::ActorRel::kOther,
                 .mode = mode_,
                 .taken = analysis::Mechanism::kCas,
                 .in_lock_buffer = analysis::lb_member(ctx, &m),
                 .in_rd_set = analysis::rs_member(ctx, &m)});
            record_all_edges(ctx);
            return;
          }
          break;
        }

        case StateKind::kPessLockedSentinel:
          HT_ASSERT(false, "hybrid tracker saw a standalone-pessimistic state");
      }
    }
  }

  // RdExRLock_T1 / WrExRLock_T1 read by T2 -> RdShRLock(holders) with a
  // fresh global counter (Table 3). The old holder's lock-buffer entry keeps
  // working: its flush decrements the RdShRLock count.
  bool join_read_share(ThreadContext& ctx, ObjectMeta& m, StateWord s,
                       std::uint32_t initial_holders, bool confl,
                       bool contended) {
    const std::uint32_t c = runtime_->next_rd_sh_counter();
    StateWord expected = s;
    if (!m.cas_state(expected, StateWord::rd_sh_rlock(c, initial_holders)))
      return false;
    if (ctx.rd_sh_count < c) ctx.rd_sh_count = c;
    ctx.lock_buffer.push_back(&m);
    ctx.rd_set.insert(&m);
    HT_TELEM_TRANSITION(ctx, &m, s,
                        StateWord::rd_sh_rlock(c, initial_holders));
    finish_pess(ctx, m, confl, /*reentrant=*/false, contended);
    HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                         .actor = ctx.id,
                         .object = &m,
                         .from = s,
                         .to = StateWord::rd_sh_rlock(c, initial_holders),
                         .access = analysis::AccessKind::kRead,
                         .rel = analysis::ActorRel::kOther,
                         .mode = mode_,
                         .taken = analysis::Mechanism::kCas,
                         .in_lock_buffer = analysis::lb_member(ctx, &m),
                         .in_rd_set = analysis::rs_member(ctx, &m)});
    // The prior holder has not flushed since locking, so a single-owner
    // current-counter edge would be unsound; fan out conservatively.
    record_all_edges(ctx);
    return true;
  }

  // Optimistic conflicting transition with adaptive-policy landing state
  // (Fig 10b lines 41-53). Returns false if the CAS to Int lost a race.
  bool opt_conflicting(ThreadContext& ctx, ObjectMeta& m, StateWord s,
                       bool is_store) {
    Runtime& rt = *runtime_;
    StateWord expected = s;
    if (!m.cas_state(expected, StateWord::intermediate(ctx.id))) return false;
    HT_TELEM_TRANSITION(ctx, &m, s, StateWord::intermediate(ctx.id));

    bool any_explicit = false;
    {
      IntGuard guard(m, s, ctx.id);
      if (s.is_rd_sh()) {
        any_explicit = rt.coordinate_all_others(ctx);
        record_all_edges(ctx);
      } else {
        const Runtime::CoordResult r = rt.coordinate(ctx, s.tid());
        any_explicit = !r.implicit;
        if constexpr (Sink::kActive) sink_->edge(ctx, s.tid(), r.src_release);
      }
      guard.disarm();
    }

    const bool went_pess = policy_.to_pess_on_conflict(m, any_explicit);
    const StateWord landed =
        went_pess ? (is_store ? StateWord::wr_ex_wlock(ctx.id)
                              : StateWord::rd_ex_rlock(ctx.id))
                  : (is_store ? StateWord::wr_ex_opt(ctx.id)
                              : StateWord::rd_ex_opt(ctx.id));
    // The landing CASes from our own Int rather than blind-storing: if this
    // thread was quarantined between its last wait check and coordinate()'s
    // return, a survivor has already seized the Int and owns the object —
    // the seized state must win and we park.
    StateWord intw = StateWord::intermediate(ctx.id);
    if (!m.cas_state(intw, landed)) rt.quarantined_self_park(ctx);
    HT_TELEM_TRANSITION(ctx, &m, StateWord::intermediate(ctx.id), landed);
    if (went_pess) {
      policy_.note_became_pess(m);
      if (!is_store) ctx.rd_set.insert(&m);
      ctx.lock_buffer.push_back(&m);
      if constexpr (kStats) ++ctx.stats.opt_to_pess;
    }
    HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                         .actor = ctx.id,
                         .object = &m,
                         .from = s,
                         .to = landed,
                         .access = is_store ? analysis::AccessKind::kWrite
                                            : analysis::AccessKind::kRead,
                         .rel = analysis::ActorRel::kOther,
                         .policy = went_pess ? analysis::PolicyChoice::kPess
                                             : analysis::PolicyChoice::kOpt,
                         .mode = mode_,
                         .taken = analysis::Mechanism::kCoordination,
                         .in_lock_buffer = analysis::lb_member(ctx, &m),
                         .in_rd_set = analysis::rs_member(ctx, &m)});
    if constexpr (kStats) {
      (any_explicit ? ctx.stats.opt_confl_explicit
                    : ctx.stats.opt_confl_implicit)++;
    }
    HT_TELEM_EVENT(ctx, kOptConflict, 0, telemetry::object_id(&m),
                   (any_explicit ? telemetry::kFlagExplicit : 0u) |
                       (is_store ? telemetry::kFlagStore : 0u) |
                       (went_pess ? telemetry::kFlagWentPess : 0u));
    return true;
  }

  // One conflicting optimistic object already moved to Int(self), waiting on
  // the group's coordinate_batch round (DESIGN.md §13).
  struct BatchConflict {
    ObjectMeta* m;
    StateWord from;
  };

  // Settles the pending Int(self) objects: partitions them by their named
  // owner, issues ONE scatter-gather multi-round (all owners' requests
  // posted before any wait, so the round trips overlap and the Int hold
  // window stays ~one round trip), then lands each object exactly as
  // opt_conflicting would have.
  void settle_store_batch(ThreadContext& ctx, const BatchConflict* pend,
                          std::size_t np) {
    Runtime& rt = *runtime_;
    Runtime::BatchGroup groups[kMaxStoreBatch];
    std::uint8_t gidx[kMaxStoreBatch];
    std::size_t ng = 0;
    for (std::size_t i = 0; i < np; ++i) {
      const ThreadId owner = pend[i].from.tid();
      std::size_t g = 0;
      while (g < ng && groups[g].owner != owner) ++g;
      if (g == ng) {
        groups[ng].owner = owner;
        groups[ng].n_objects = 0;
        ++ng;
      }
      ++groups[g].n_objects;
      gidx[i] = static_cast<std::uint8_t>(g);
    }
    try {
      rt.coordinate_batch_multi(ctx, groups, ng);
    } catch (...) {
      // Unwinding (RegionRestart, ThreadQuarantined, CoordinationStalled):
      // restore every pending Int, same as IntGuard does for the scalar
      // path — nothing has landed yet. A restore CAS that fails lost to a
      // seizure, which owns the object now. Responses already gathered are
      // simply abandoned (a response transfers no state, only a counter
      // stamp).
      for (std::size_t i = 0; i < np; ++i) {
        StateWord intw = StateWord::intermediate(ctx.id);
        (void)pend[i].m->cas_state(intw, pend[i].from);
      }
      throw;
    }
    for (std::size_t i = 0; i < np; ++i) {
      ObjectMeta& m = *pend[i].m;
      const ThreadId owner = groups[gidx[i]].owner;
      const bool any_explicit = !groups[gidx[i]].result.implicit;
      // The owner's single flush-and-bump precedes its response, so its
      // group's shared post-bump counter covers its prior accesses to every
      // object in the group (all were Int before the round trip started).
      if constexpr (Sink::kActive) {
        sink_->edge(ctx, owner, groups[gidx[i]].result.src_release);
      }
      const bool went_pess = policy_.to_pess_on_conflict(m, any_explicit);
      const StateWord landed = went_pess ? StateWord::wr_ex_wlock(ctx.id)
                                         : StateWord::wr_ex_opt(ctx.id);
      StateWord intw = StateWord::intermediate(ctx.id);
      // As in opt_conflicting: a failed landing CAS means a survivor seized
      // the Int after quarantining us; park immediately. Remaining group
      // members stay Int and are reclaimed by the seizure sweep.
      if (!m.cas_state(intw, landed)) rt.quarantined_self_park(ctx);
      HT_TELEM_TRANSITION(ctx, &m, StateWord::intermediate(ctx.id), landed);
      if (went_pess) {
        policy_.note_became_pess(m);
        ctx.lock_buffer.push_back(&m);
        if constexpr (kStats) ++ctx.stats.opt_to_pess;
      }
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kHybrid,
                           .actor = ctx.id,
                           .object = &m,
                           .from = pend[i].from,
                           .to = landed,
                           .access = analysis::AccessKind::kWrite,
                           .rel = analysis::ActorRel::kOther,
                           .policy = went_pess ? analysis::PolicyChoice::kPess
                                               : analysis::PolicyChoice::kOpt,
                           .mode = mode_,
                           .taken = analysis::Mechanism::kCoordination,
                           .in_lock_buffer = analysis::lb_member(ctx, &m),
                           .in_rd_set = analysis::rs_member(ctx, &m)});
      if constexpr (kStats) {
        (any_explicit ? ctx.stats.opt_confl_explicit
                      : ctx.stats.opt_confl_implicit)++;
      }
      HT_TELEM_EVENT(ctx, kOptConflict, 0, telemetry::object_id(&m),
                     (any_explicit ? telemetry::kFlagExplicit : 0u) |
                         telemetry::kFlagStore |
                         (went_pess ? telemetry::kFlagWentPess : 0u));
    }
  }

  // Contended pessimistic transition (§3.2): coordinate so the holder(s)
  // unlock early at a responding safe point, then let the caller retry. The
  // access is classified contended exactly once no matter how many
  // coordination rounds its retries need (Table 2 counts transitions, and
  // one access performs one transition).
  void pess_contended(ThreadContext& ctx, ObjectMeta& m, StateWord s,
                      bool& contended) {
    Runtime& rt = *runtime_;
    if (!contended) {
      contended = true;
      policy_.note_pess_contended(m);
    }
    HT_TELEM_CYCLES(telem_t0);
    if (s.kind() == StateKind::kRdShRLock) {
      rt.coordinate_all_others(ctx);  // holders unknown (footnote 4)
    } else {
      rt.coordinate(ctx, s.tid());
    }
    HT_TELEM_ELAPSED(ctx, kPessWait, telem_t0, telemetry::object_id(&m), 0);
    // Edges for the eventual transition are recorded by the uncontended
    // retry ("T2 then records its uncontended transition ... as described
    // above", §4.2); the holders' responses were logged by the runtime.
  }

  void commit_unlock(ThreadContext& ctx, ObjectMeta& m, bool to_opt) {
    if (to_opt) {
      policy_.commit_go_opt(m);
      if constexpr (kStats) ++ctx.stats.pess_to_opt;
      HT_TELEM_EVENT(ctx, kPolicyPessToOpt, 0, telemetry::object_id(&m), 0);
    }
    (void)ctx;
    (void)m;
  }

  void finish_pess(ThreadContext& ctx, ObjectMeta& m, bool confl,
                   bool reentrant, bool contended = false) {
    policy_.note_pess_transition(m, confl);
    if constexpr (kStats) {
      if (contended) {
        ++ctx.stats.pess_contended;
      } else {
        ++ctx.stats.pess_uncontended;
        if (reentrant) ++ctx.stats.pess_reentrant;
      }
    }
    HT_TELEM_EVENT(ctx, kPessAcquire, 0, telemetry::object_id(&m),
                   (contended ? telemetry::kFlagContended : 0u) |
                       (reentrant ? telemetry::kFlagReentrant : 0u));
    (void)reentrant;
    (void)contended;
  }

  void record_owner_edge(ThreadContext& ctx, ThreadId owner) {
    if constexpr (Sink::kActive) {
      const ThreadContext& o = runtime_->registry().context(owner);
      sink_->edge(ctx, owner,
                  o.owner_side.release_counter.load(std::memory_order_acquire));
    }
    (void)owner;
    (void)ctx;
  }

  void record_all_edges(ThreadContext& ctx) {
    if constexpr (Sink::kActive) sink_->edge_all_others(ctx, *runtime_);
    (void)ctx;
  }

  Runtime* runtime_;
  AdaptivePolicy policy_;
  WrExReadMode mode_;
  Sink* sink_;
};

}  // namespace ht
