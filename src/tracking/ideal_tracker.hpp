// The Fig 7 "Ideal" configuration: optimistic tracking with coordination for
// conflicting transitions elided — conflicting transitions become bare CASes.
//
// This is UNSOUND (it can miss dependences and violates instrumentation-
// access atomicity); the paper uses it purely as an estimated upper bound on
// what hybrid tracking could recover: "the cost of all conflicting
// transitions becoming pessimistic and all same-state transitions remaining
// optimistic" (§7.5).
#pragma once

#include <atomic>

#include "metadata/object_meta.hpp"
#include "tracking/tracker_common.hpp"

namespace ht {

template <bool kStats = false>
class IdealTracker {
 public:
  static constexpr const char* kName = "ideal";
  using Token = EmptyToken;
  // Elidable like the optimistic tracker: optimistic-only states, no sink.
  static constexpr bool kElidable = true;
  static constexpr bool kStatsOn = kStats;

  explicit IdealTracker(Runtime& rt) : runtime_(&rt) {}

  StateWord initial_state(ThreadContext& ctx) const {
    return StateWord::wr_ex_opt(ctx.id);
  }
  void attach_thread(ThreadContext&) {}

  Token pre_store(ThreadContext& ctx, ObjectMeta& m) {
    const StateWord s = m.load_state();
    if (s.raw() == ctx.fast_wr_ex_opt) {
      if constexpr (kStats) ++ctx.stats.opt_same;
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kIdeal,
                           .actor = ctx.id,
                           .object = &m,
                           .from = s,
                           .to = s,
                           .access = analysis::AccessKind::kWrite,
                           .rel = analysis::ActorRel::kOwner});
      return {};
    }
    slow(ctx, m, /*is_store=*/true);
    return {};
  }
  void post_store(ThreadContext&, ObjectMeta&, Token) {}

  // Batched-store API parity (DESIGN.md §13). Ideal elides coordination, so
  // there is no round trip to amortize — each store is just its bare CAS.
  void pre_store_batch(ThreadContext& ctx, ObjectMeta* const* objs,
                       std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) (void)pre_store(ctx, *objs[i]);
  }

  Token pre_load(ThreadContext& ctx, ObjectMeta& m) {
    const StateWord s = m.load_state();
    if (s.raw() == ctx.fast_wr_ex_opt || s.raw() == ctx.fast_rd_ex_opt ||
        (s.kind() == StateKind::kRdShOpt && ctx.rd_sh_count >= s.counter())) {
      if constexpr (kStats) ++ctx.stats.opt_same;
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kIdeal,
                           .actor = ctx.id,
                           .object = &m,
                           .from = s,
                           .to = s,
                           .access = analysis::AccessKind::kRead,
                           .rel = analysis::ActorRel::kOwner});
      return {};
    }
    slow(ctx, m, /*is_store=*/false);
    return {};
  }
  void post_load(ThreadContext&, ObjectMeta&, Token) {}

  Runtime& runtime() { return *runtime_; }

 private:
  void slow(ThreadContext& ctx, ObjectMeta& m, bool is_store) {
    Runtime& rt = *runtime_;
    for (;;) {
      StateWord s = m.load_state();
      if (s.raw() == ctx.fast_wr_ex_opt ||
          (!is_store && s.raw() == ctx.fast_rd_ex_opt)) {
        if constexpr (kStats) ++ctx.stats.opt_same;
        HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kIdeal,
                             .actor = ctx.id,
                             .object = &m,
                             .from = s,
                             .to = s,
                             .access = is_store ? analysis::AccessKind::kWrite
                                                : analysis::AccessKind::kRead,
                             .rel = analysis::ActorRel::kOwner});
        return;
      }
      StateWord next;
      bool conflicting = false;
      if (is_store) {
        next = StateWord::wr_ex_opt(ctx.id);
        conflicting = !(s.kind() == StateKind::kRdExOpt && s.tid() == ctx.id);
      } else {
        switch (s.kind()) {
          case StateKind::kRdShOpt:
            if (ctx.rd_sh_count >= s.counter()) {
              if constexpr (kStats) ++ctx.stats.opt_same;
              HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kIdeal,
                                   .actor = ctx.id,
                                   .object = &m,
                                   .from = s,
                                   .to = s,
                                   .access = analysis::AccessKind::kRead,
                                   .rel = analysis::ActorRel::kOwner});
              return;
            }
            std::atomic_thread_fence(std::memory_order_seq_cst);
            ctx.rd_sh_count = s.counter();
            if constexpr (kStats) ++ctx.stats.opt_fence;
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kIdeal,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOther,
                                 .taken = analysis::Mechanism::kFence});
            return;
          case StateKind::kRdExOpt:
            next = StateWord::rd_sh_opt(rt.next_rd_sh_counter());
            break;
          case StateKind::kWrExOpt:
            next = StateWord::rd_ex_opt(ctx.id);
            conflicting = true;
            break;
          default:
            HT_ASSERT(false, "ideal tracker saw a non-optimistic state");
            return;
        }
      }
      StateWord expected = s;
      if (m.cas_state(expected, next)) {
        if (next.kind() == StateKind::kRdShOpt &&
            ctx.rd_sh_count < next.counter()) {
          ctx.rd_sh_count = next.counter();
        }
        HT_TELEM_TRANSITION(ctx, &m, s, next);
        HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kIdeal,
                             .actor = ctx.id,
                             .object = &m,
                             .from = s,
                             .to = next,
                             .access = is_store ? analysis::AccessKind::kWrite
                                                : analysis::AccessKind::kRead,
                             .rel = s.has_owner() && s.tid() == ctx.id
                                        ? analysis::ActorRel::kOwner
                                        : analysis::ActorRel::kOther,
                             .taken = analysis::Mechanism::kCas});
        if constexpr (kStats) {
          // Elided coordination still counts as a conflicting transition so
          // statistics runs show what the Ideal configuration skipped.
          (conflicting ? ctx.stats.opt_confl_implicit
                       : ctx.stats.opt_upgrading)++;
        }
        HT_TELEM_EVENT_IF(conflicting, ctx, kOptConflict, 0,
                          telemetry::object_id(&m),
                          telemetry::kFlagElided |
                              (is_store ? telemetry::kFlagStore : 0u));
        (void)conflicting;
        return;
      }
    }
  }

  Runtime* runtime_;
};

}  // namespace ht
