// Baseline "tracker": no instrumentation at all. Workloads run under this to
// produce the unmodified-runtime baseline times that every overhead figure
// divides by (the paper's "overhead added over unmodified Jikes RVM", §7.5).
#pragma once

#include "metadata/object_meta.hpp"
#include "tracking/tracker_common.hpp"

namespace ht {

class NullTracker {
 public:
  static constexpr const char* kName = "none";
  using Token = EmptyToken;

  explicit NullTracker(Runtime& rt) : runtime_(&rt) {}

  StateWord initial_state(ThreadContext& ctx) const {
    return StateWord::wr_ex_opt(ctx.id);
  }
  void attach_thread(ThreadContext&) {}

  Token pre_load(ThreadContext&, ObjectMeta&) { return {}; }
  void post_load(ThreadContext&, ObjectMeta&, Token) {}
  Token pre_store(ThreadContext&, ObjectMeta&) { return {}; }
  void post_store(ThreadContext&, ObjectMeta&, Token) {}

  Runtime& runtime() { return *runtime_; }

 private:
  Runtime* runtime_;
};

}  // namespace ht
