// Optimistic tracking (paper §2.2; Octet [11]): no synchronization at all on
// the fast path (same-state transitions), an atomic operation for upgrading
// transitions, a memory fence for RdSh fence transitions, and full
// inter-thread coordination for conflicting transitions.
//
// Conflicting transitions follow Fig 1: CAS the state to the intermediate
// Int_T (only one thread coordinates per object at a time), perform a round
// trip with the owner thread(s) — implicit if the owner is blocked —, then
// install the new state. While waiting, the requester itself acts as a safe
// point so that mutual coordination cannot deadlock (Fig 1 line 18).
#pragma once

#include <atomic>

#include "common/spin.hpp"

#include "metadata/object_meta.hpp"
#include "resilience/seizure.hpp"
#include "tracking/tracker_common.hpp"

namespace ht {

template <bool kStats = false, typename Sink = NullSink>
class OptimisticTracker {
 public:
  static constexpr const char* kName = "optimistic";
  using Token = EmptyToken;
  // Barrier elision (DESIGN.md §15): every state this tracker can confirm on
  // its fast path (WrExOpt/RdExOpt self, fresh RdSh) is revocable only
  // through this thread's safe points, so same-state accesses may be elided —
  // unless a dependence sink is attached, which must see every access.
  static constexpr bool kElidable = !Sink::kActive;
  static constexpr bool kStatsOn = kStats;

  explicit OptimisticTracker(Runtime& rt, Sink* sink = nullptr)
      : runtime_(&rt), sink_(sink) {}

  // Fig 6 limit study: when enabled, each conflicting transition that used
  // explicit coordination increments the object's profile word, giving the
  // per-object conflict census the adaptive policy's evaluation rests on.
  void enable_conflict_census() { census_ = true; }

  StateWord initial_state(ThreadContext& ctx) const {
    return StateWord::wr_ex_opt(ctx.id);
  }
  void attach_thread(ThreadContext&) {}

  // --- store ------------------------------------------------------------------
  Token pre_store(ThreadContext& ctx, ObjectMeta& m) {
    // Fast path (Fig 10a shape): a single load and compare.
    const StateWord s = m.load_state();
    if (s.raw() == ctx.fast_wr_ex_opt) {
      if constexpr (kStats) ++ctx.stats.opt_same;
      if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                           .actor = ctx.id,
                           .object = &m,
                           .from = s,
                           .to = s,
                           .access = analysis::AccessKind::kWrite,
                           .rel = analysis::ActorRel::kOwner});
      return {};
    }
    store_slow(ctx, m);
    return {};
  }
  void post_store(ThreadContext&, ObjectMeta&, Token) {}

  // --- batched store (DESIGN.md §13) -------------------------------------------
  // Same shape as HybridTracker::pre_store_batch: conflicting optimistic
  // objects move to Int together, one coordinate_batch() round per distinct
  // owner settles each owner's group (every object's edge stamps that
  // owner's shared post-bump counter), and all other cases fall back to the
  // scalar retry loop after the groups land.
  static constexpr std::size_t kMaxStoreBatch = 16;
  void pre_store_batch(ThreadContext& ctx, ObjectMeta* const* objs,
                       std::size_t n) {
    Runtime& rt = *runtime_;
    BatchConflict pend[kMaxStoreBatch];
    bool scalar[kMaxStoreBatch];
    std::size_t np = 0;
    const std::size_t lim = n < kMaxStoreBatch ? n : kMaxStoreBatch;
    for (std::size_t i = 0; i < lim; ++i) {
      scalar[i] = false;
      ObjectMeta& m = *objs[i];
      const StateWord s = m.load_state();
      if (s.raw() == ctx.fast_wr_ex_opt) {
        if constexpr (kStats) ++ctx.stats.opt_same;
        if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
        HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                             .actor = ctx.id,
                             .object = &m,
                             .from = s,
                             .to = s,
                             .access = analysis::AccessKind::kWrite,
                             .rel = analysis::ActorRel::kOwner});
        continue;
      }
      const bool opt_conflict = (s.kind() == StateKind::kWrExOpt ||
                                 s.kind() == StateKind::kRdExOpt) &&
                                s.tid() != ctx.id;
      if (!opt_conflict) {
        scalar[i] = true;
        continue;
      }
      rt.check_self_quarantine(ctx);
      StateWord expected = s;
      if (!m.cas_state(expected, StateWord::intermediate(ctx.id))) {
        scalar[i] = true;
        continue;
      }
      HT_TELEM_TRANSITION(ctx, &m, s, StateWord::intermediate(ctx.id));
      pend[np++] = BatchConflict{&m, s};
    }

    if (np != 0) settle_store_batch(ctx, pend, np);

    for (std::size_t i = 0; i < lim; ++i) {
      if (scalar[i]) pre_store(ctx, *objs[i]);
    }
    for (std::size_t i = lim; i < n; ++i) pre_store(ctx, *objs[i]);
  }

  // --- load -------------------------------------------------------------------
  Token pre_load(ThreadContext& ctx, ObjectMeta& m) {
    const StateWord s = m.load_state();
    if (s.raw() == ctx.fast_wr_ex_opt || s.raw() == ctx.fast_rd_ex_opt ||
        (s.kind() == StateKind::kRdShOpt && ctx.rd_sh_count >= s.counter())) {
      if constexpr (kStats) ++ctx.stats.opt_same;
      if constexpr (kElidable)
        ctx.elision_insert(&m, /*is_write=*/s.raw() == ctx.fast_wr_ex_opt);
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                           .actor = ctx.id,
                           .object = &m,
                           .from = s,
                           .to = s,
                           .access = analysis::AccessKind::kRead,
                           .rel = analysis::ActorRel::kOwner});
      return {};
    }
    load_slow(ctx, m);
    return {};
  }
  void post_load(ThreadContext&, ObjectMeta&, Token) {}

  Runtime& runtime() { return *runtime_; }

 private:
  void store_slow(ThreadContext& ctx, ObjectMeta& m) {
    Runtime& rt = *runtime_;
    // Int waits must cede the CPU (same idiom as the pessimistic contended
    // lock): the holder keeps the Int across a whole coordination round
    // trip, and on oversubscribed cores a pure spin burns the scheduling
    // quantum that holder — or the owner draining a batch mailbox — needs.
    Backoff backoff;
    for (;;) {
      // Park quarantined victims before they start a fresh coordination
      // (DESIGN.md §11.2); an in-flight Int is unwound by its IntGuard.
      rt.check_self_quarantine(ctx);
      StateWord s = m.load_state();
      if (s.raw() == ctx.fast_wr_ex_opt) {
        // Another iteration (or a racing thread handing the state back)
        // already produced the state we need.
        if constexpr (kStats) ++ctx.stats.opt_same;
        if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/true);
        HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                             .actor = ctx.id,
                             .object = &m,
                             .from = s,
                             .to = s,
                             .access = analysis::AccessKind::kWrite,
                             .rel = analysis::ActorRel::kOwner});
        return;
      }
      if (s.kind() == StateKind::kRdExOpt && s.tid() == ctx.id) {
        // Upgrading: RdEx_T -> WrEx_T, atomic but coordination-free.
        StateWord expected = s;
        if (m.cas_state(expected, StateWord::wr_ex_opt(ctx.id))) {
          if constexpr (kStats) ++ctx.stats.opt_upgrading;
          HT_TELEM_TRANSITION(ctx, &m, s, StateWord::wr_ex_opt(ctx.id));
          HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                               .actor = ctx.id,
                               .object = &m,
                               .from = s,
                               .to = StateWord::wr_ex_opt(ctx.id),
                               .access = analysis::AccessKind::kWrite,
                               .rel = analysis::ActorRel::kOwner,
                               .taken = analysis::Mechanism::kCas});
          return;
        }
        continue;
      }
      if (s.is_intermediate()) {
        HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kOptimistic,
                            .actor = ctx.id,
                            .object = &m,
                            .from = s,
                            .access = analysis::AccessKind::kWrite,
                            .rel = analysis::ActorRel::kOther});
        // An Int abandoned by a quarantined thread never resolves on its
        // own; reclaim it (landing optimistic — this tracker has no
        // pessimistic states) instead of waiting forever.
        if (rt.has_quarantined() && rt.thread_quarantined(s.tid())) {
          resilience::seize_object(ctx, m, s.tid(), /*land_pessimistic=*/false);
          continue;
        }
        rt.fault_point_slow_path(ctx);
        rt.respond_while_waiting(ctx);
        if (!schedule::virtualized()) backoff.pause();
        continue;
      }
      if (conflicting_transition(ctx, m, s, StateWord::wr_ex_opt(ctx.id)))
        return;
    }
  }

  void load_slow(ThreadContext& ctx, ObjectMeta& m) {
    Runtime& rt = *runtime_;
    Backoff backoff;  // Int waits cede the CPU (see store_slow)
    for (;;) {
      rt.check_self_quarantine(ctx);
      StateWord s = m.load_state();
      if (s.raw() == ctx.fast_wr_ex_opt || s.raw() == ctx.fast_rd_ex_opt) {
        if constexpr (kStats) ++ctx.stats.opt_same;
        if constexpr (kElidable)
          ctx.elision_insert(&m, /*is_write=*/s.raw() == ctx.fast_wr_ex_opt);
        HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                             .actor = ctx.id,
                             .object = &m,
                             .from = s,
                             .to = s,
                             .access = analysis::AccessKind::kRead,
                             .rel = analysis::ActorRel::kOwner});
        return;
      }
      switch (s.kind()) {
        case StateKind::kRdShOpt: {
          if (ctx.rd_sh_count >= s.counter()) {
            if constexpr (kStats) ++ctx.stats.opt_same;
            if constexpr (kElidable) ctx.elision_insert(&m, /*is_write=*/false);
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = s,
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOwner});
            return;
          }
          // Fence transition (Table 1): first read of this RdSh epoch by T.
          std::atomic_thread_fence(std::memory_order_seq_cst);
          ctx.rd_sh_count = s.counter();
          if constexpr (Sink::kActive) sink_->edge_all_others(ctx, rt);
          if constexpr (kStats) ++ctx.stats.opt_fence;
          HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                               .actor = ctx.id,
                               .object = &m,
                               .from = s,
                               .to = s,
                               .access = analysis::AccessKind::kRead,
                               .rel = analysis::ActorRel::kOther,
                               .taken = analysis::Mechanism::kFence});
          return;
        }
        case StateKind::kRdExOpt: {
          // Upgrading: RdEx_T1 read by T2 -> RdSh_c with a fresh counter.
          const std::uint32_t c = rt.next_rd_sh_counter();
          StateWord expected = s;
          if (m.cas_state(expected, StateWord::rd_sh_opt(c))) {
            if (ctx.rd_sh_count < c) ctx.rd_sh_count = c;
            if constexpr (Sink::kActive) sink_->edge_all_others(ctx, rt);
            if constexpr (kStats) ++ctx.stats.opt_upgrading;
            HT_TELEM_TRANSITION(ctx, &m, s, StateWord::rd_sh_opt(c));
            HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                                 .actor = ctx.id,
                                 .object = &m,
                                 .from = s,
                                 .to = StateWord::rd_sh_opt(c),
                                 .access = analysis::AccessKind::kRead,
                                 .rel = analysis::ActorRel::kOther,
                                 .taken = analysis::Mechanism::kCas});
            return;
          }
          continue;
        }
        case StateKind::kInt:
          HT_CHECK_CONTENDED({.family = analysis::TrackerFamily::kOptimistic,
                              .actor = ctx.id,
                              .object = &m,
                              .from = s,
                              .access = analysis::AccessKind::kRead,
                              .rel = analysis::ActorRel::kOther});
          if (rt.has_quarantined() && rt.thread_quarantined(s.tid())) {
            resilience::seize_object(ctx, m, s.tid(),
                                     /*land_pessimistic=*/false);
            continue;
          }
          rt.fault_point_slow_path(ctx);
          rt.respond_while_waiting(ctx);
          if (!schedule::virtualized()) backoff.pause();
          continue;
        case StateKind::kWrExOpt: {
          if (conflicting_transition(ctx, m, s, StateWord::rd_ex_opt(ctx.id)))
            return;
          continue;
        }
        default:
          HT_ASSERT(false, "optimistic tracker saw a pessimistic state");
      }
    }
  }

  // Conflicting transition via Int + coordination (Fig 1). Returns false if
  // the initial CAS lost a race and the caller should re-examine the state.
  bool conflicting_transition(ThreadContext& ctx, ObjectMeta& m, StateWord old_state,
                              StateWord new_state) {
    Runtime& rt = *runtime_;
    StateWord expected = old_state;
    if (!m.cas_state(expected, StateWord::intermediate(ctx.id))) return false;
    HT_TELEM_TRANSITION(ctx, &m, old_state, StateWord::intermediate(ctx.id));

    bool any_explicit = false;
    {
      IntGuard guard(m, old_state, ctx.id);  // enforcer regions may unwind the wait
      if (old_state.is_rd_sh()) {
        // Prior readers are unknown: coordinate with every other thread
        // (paper footnote 4).
        any_explicit = rt.coordinate_all_others(ctx);
        if constexpr (Sink::kActive) sink_->edge_all_others(ctx, rt);
      } else {
        const Runtime::CoordResult r = rt.coordinate(ctx, old_state.tid());
        any_explicit = !r.implicit;
        if constexpr (Sink::kActive)
          sink_->edge(ctx, old_state.tid(), r.src_release);
      }
      guard.disarm();
    }
    // CAS, not store: a survivor may have seized our Int if this thread was
    // quarantined mid-coordination; the seized state wins and we park.
    StateWord intw = StateWord::intermediate(ctx.id);
    if (!m.cas_state(intw, new_state)) rt.quarantined_self_park(ctx);
    HT_TELEM_TRANSITION(ctx, &m, StateWord::intermediate(ctx.id), new_state);
    HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                         .actor = ctx.id,
                         .object = &m,
                         .from = old_state,
                         .to = new_state,
                         .access = new_state.kind() == StateKind::kWrExOpt
                                       ? analysis::AccessKind::kWrite
                                       : analysis::AccessKind::kRead,
                         .rel = analysis::ActorRel::kOther,
                         .taken = analysis::Mechanism::kCoordination});
    if (census_ && any_explicit) {
      m.profile().update(
          [](ProfileWord w) { return w.with_opt_conflict_inc(); });
    }
    if constexpr (kStats) {
      (any_explicit ? ctx.stats.opt_confl_explicit
                    : ctx.stats.opt_confl_implicit)++;
    }
    HT_TELEM_EVENT(ctx, kOptConflict, 0, telemetry::object_id(&m),
                   (any_explicit ? telemetry::kFlagExplicit : 0u) |
                       (new_state.kind() == StateKind::kWrExOpt
                            ? telemetry::kFlagStore
                            : 0u));
    (void)any_explicit;
    return true;
  }

  struct BatchConflict {
    ObjectMeta* m;
    StateWord from;
  };

  // Settles the pending Int(self) objects with ONE scatter-gather
  // multi-round (one request per distinct owner, all posted before any
  // wait), landing each WrExOpt(self) exactly as conflicting_transition
  // would.
  void settle_store_batch(ThreadContext& ctx, const BatchConflict* pend,
                          std::size_t np) {
    Runtime& rt = *runtime_;
    Runtime::BatchGroup groups[kMaxStoreBatch];
    std::uint8_t gidx[kMaxStoreBatch];
    std::size_t ng = 0;
    for (std::size_t i = 0; i < np; ++i) {
      const ThreadId owner = pend[i].from.tid();
      std::size_t g = 0;
      while (g < ng && groups[g].owner != owner) ++g;
      if (g == ng) {
        groups[ng].owner = owner;
        groups[ng].n_objects = 0;
        ++ng;
      }
      ++groups[g].n_objects;
      gidx[i] = static_cast<std::uint8_t>(g);
    }
    try {
      rt.coordinate_batch_multi(ctx, groups, ng);
    } catch (...) {
      // Restore every pending Int — nothing has landed yet; responses
      // already gathered are simply abandoned.
      for (std::size_t i = 0; i < np; ++i) {
        StateWord intw = StateWord::intermediate(ctx.id);
        (void)pend[i].m->cas_state(intw, pend[i].from);
      }
      throw;
    }
    for (std::size_t i = 0; i < np; ++i) {
      ObjectMeta& m = *pend[i].m;
      const ThreadId owner = groups[gidx[i]].owner;
      const bool any_explicit = !groups[gidx[i]].result.implicit;
      if constexpr (Sink::kActive) {
        sink_->edge(ctx, owner, groups[gidx[i]].result.src_release);
      }
      const StateWord landed = StateWord::wr_ex_opt(ctx.id);
      StateWord intw = StateWord::intermediate(ctx.id);
      if (!m.cas_state(intw, landed)) rt.quarantined_self_park(ctx);
      HT_TELEM_TRANSITION(ctx, &m, StateWord::intermediate(ctx.id), landed);
      HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kOptimistic,
                           .actor = ctx.id,
                           .object = &m,
                           .from = pend[i].from,
                           .to = landed,
                           .access = analysis::AccessKind::kWrite,
                           .rel = analysis::ActorRel::kOther,
                           .taken = analysis::Mechanism::kCoordination});
      if (census_ && any_explicit) {
        m.profile().update(
            [](ProfileWord w) { return w.with_opt_conflict_inc(); });
      }
      if constexpr (kStats) {
        (any_explicit ? ctx.stats.opt_confl_explicit
                      : ctx.stats.opt_confl_implicit)++;
      }
      HT_TELEM_EVENT(ctx, kOptConflict, 0, telemetry::object_id(&m),
                     (any_explicit ? telemetry::kFlagExplicit : 0u) |
                         telemetry::kFlagStore);
    }
  }

  Runtime* runtime_;
  Sink* sink_;
  bool census_ = false;
};

}  // namespace ht
