// Pessimistic tracking (paper §2.1): a small critical section around every
// access and its instrumentation, implemented by CAS-locking the object's
// state word to a LOCKED sentinel, classifying the old state, performing the
// program access, and unlocking to the new last-access state.
//
// This is the paper's model of what FastTrack-style analyses and STMs do: an
// atomic operation at *every* access, with cost largely independent of how
// many cross-thread dependences the program has.
#pragma once

#include "metadata/object_meta.hpp"
#include "tracking/tracker_common.hpp"
#include "common/spin.hpp"

namespace ht {

template <bool kStats = false, typename Sink = NullSink>
class PessimisticTracker {
 public:
  static constexpr const char* kName = "pessimistic";
  // Never elidable: every access CAS-locks the state word, and any thread may
  // take an unlocked pessimistic state at any time without this thread
  // reaching a safe point — no access is ever a redundant no-op.
  static constexpr bool kElidable = false;
  static constexpr bool kStatsOn = kStats;

  // The critical section spans the program access: pre_* locks the state and
  // computes the successor state; post_* publishes it (the §2.1 pseudocode's
  // "memfence; o.state = WrExT" — the release store is the fence).
  struct Token {
    StateWord next;
  };

  // The paper builds no recorder/enforcer on pessimistic tracking ("We have
  // not implemented or evaluated pessimistic runtime support", §7.6), so the
  // sink is accepted for interface uniformity but unused.
  explicit PessimisticTracker(Runtime& rt, Sink* sink = nullptr)
      : runtime_(&rt), sink_(sink) {}

  StateWord initial_state(ThreadContext& ctx) const {
    return StateWord::wr_ex_pess(ctx.id);
  }
  void attach_thread(ThreadContext&) {}

  Token pre_store(ThreadContext& ctx, ObjectMeta& m) {
    const StateWord old = lock(ctx, m);
    if constexpr (kStats) {
      const bool same =
          old.kind() == StateKind::kWrExPess && old.tid() == ctx.id;
      (same ? ctx.stats.pess_alone_same : ctx.stats.pess_alone_cross)++;
    }
    HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kPessAlone,
                         .actor = ctx.id,
                         .object = &m,
                         .from = old,
                         .to = StateWord::wr_ex_pess(ctx.id),
                         .access = analysis::AccessKind::kWrite,
                         .rel = old.has_owner() && old.tid() == ctx.id
                                    ? analysis::ActorRel::kOwner
                                    : analysis::ActorRel::kOther,
                         .taken = analysis::Mechanism::kCas});
    (void)old;
    return Token{StateWord::wr_ex_pess(ctx.id)};
  }

  void post_store(ThreadContext& ctx, ObjectMeta& m, Token tok) {
    (void)ctx;
    m.store_state(tok.next, std::memory_order_release);
    HT_TELEM_TRANSITION(ctx, &m, StateWord::pess_locked_sentinel(ctx.id),
                        tok.next);
  }

  Token pre_load(ThreadContext& ctx, ObjectMeta& m) {
    const StateWord old = lock(ctx, m);
    StateWord next;
    bool same = false;
    switch (old.kind()) {
      case StateKind::kWrExPess:
        // R by owner keeps WrEx (Table 1 row 1); R by another thread makes
        // it read-exclusive for the reader.
        same = old.tid() == ctx.id;
        next = same ? old : StateWord::rd_ex_pess(ctx.id);
        break;
      case StateKind::kRdExPess:
        same = old.tid() == ctx.id;
        next = same ? old
                    : StateWord::rd_sh_pess(runtime_->next_rd_sh_counter());
        break;
      case StateKind::kRdShPess:
        same = true;  // reads of read-shared are same-state (Table 1 row 3)
        next = old;
        break;
      default:
        HT_ASSERT(false, "pessimistic tracker saw a hybrid-model state");
        next = old;
    }
    if constexpr (kStats) {
      (same ? ctx.stats.pess_alone_same : ctx.stats.pess_alone_cross)++;
    }
    HT_CHECK_TRANSITION({.family = analysis::TrackerFamily::kPessAlone,
                         .actor = ctx.id,
                         .object = &m,
                         .from = old,
                         .to = next,
                         .access = analysis::AccessKind::kRead,
                         .rel = old.has_owner() && old.tid() == ctx.id
                                    ? analysis::ActorRel::kOwner
                                    : analysis::ActorRel::kOther,
                         .taken = analysis::Mechanism::kCas});
    return Token{next};
  }

  void post_load(ThreadContext& ctx, ObjectMeta& m, Token tok) {
    (void)ctx;
    m.store_state(tok.next, std::memory_order_release);
    HT_TELEM_TRANSITION(ctx, &m, StateWord::pess_locked_sentinel(ctx.id),
                        tok.next);
  }

  Runtime& runtime() { return *runtime_; }

 private:
  // "do { s = o.state; } while (s == LOCKED || !CAS(&o.state, s, LOCKED))"
  StateWord lock(ThreadContext& ctx, ObjectMeta& m) {
    // Uncontended first attempt, outside the timed wait loop.
    {
      runtime_->check_self_quarantine(ctx);
      StateWord s = m.load_state();
      if (s.kind() != StateKind::kPessLockedSentinel) {
        StateWord expected = s;
        if (m.cas_state(expected,
                        StateWord::pess_locked_sentinel(ctx.id))) {
          HT_TELEM_TRANSITION(ctx, &m, s,
                              StateWord::pess_locked_sentinel(ctx.id));
          return s;
        }
      }
    }
    return lock_contended(ctx, m);
  }

  StateWord lock_contended(ThreadContext& ctx, ObjectMeta& m) {
    HT_TELEM_CYCLES(telem_t0);
    Backoff backoff;
    for (;;) {
      runtime_->fault_point_slow_path(ctx);
      schedule::wait_point();  // contended-lock spin is a wait point
      runtime_->check_self_quarantine(ctx);
      if (!schedule::virtualized()) backoff.pause();
      StateWord s = m.load_state();
      if (s.kind() != StateKind::kPessLockedSentinel) {
        StateWord expected = s;
        if (m.cas_state(expected,
                        StateWord::pess_locked_sentinel(ctx.id))) {
          HT_TELEM_TRANSITION(ctx, &m, s,
                              StateWord::pess_locked_sentinel(ctx.id));
          HT_TELEM_ELAPSED(ctx, kPessWait, telem_t0,
                           telemetry::object_id(&m), 0);
          return s;
        }
      }
    }
  }

  Runtime* runtime_;
  Sink* sink_;
};

}  // namespace ht
