// Object-granularity tracking: multiple fields sharing ONE last-access state
// word — the paper's actual metadata granularity ("This paper uses the term
// 'object' to refer to any unit of shared memory"; the implementation adds
// two header words per *object*, §7.1).
//
// This granularity is what makes "object-level data races" (§3.1) a distinct
// concept: two threads touching *different fields* of the same object
// without synchronization still contend on the object's single state word —
// "two unsynchronized, conflicting accesses to the same object, but not
// necessarily the same field or array element" (Fig 2(b)). TrackedVar<T>
// models single-field objects; TrackedObject<T, N> models the general case.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <type_traits>

#include "enforcer/region.hpp"
#include "metadata/object_meta.hpp"
#include "runtime/thread_context.hpp"

namespace ht {

template <typename T, std::size_t N>
class TrackedObject {
  static_assert(N >= 1, "objects have at least one field");
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "tracked payloads must fit the undo log's 64-bit entries");

 public:
  TrackedObject() {
    for (auto& f : fields_) f.store(T{}, std::memory_order_relaxed);
  }
  TrackedObject(const TrackedObject&) = delete;
  TrackedObject& operator=(const TrackedObject&) = delete;

  static constexpr std::size_t field_count() { return N; }

  template <typename Tracker>
  void init(Tracker& tracker, ThreadContext& ctx, T v = T{}) {
    meta_.reset(tracker.initial_state(ctx));
    for (auto& f : fields_) f.store(v, std::memory_order_relaxed);
  }

  // One instrumentation action covers whichever field is accessed: all
  // fields share the object's state (the paper's per-object granularity).
  template <typename Tracker>
  T load_field(Tracker& tracker, ThreadContext& ctx, std::size_t i) {
    HT_DASSERT(i < N, "field index out of range");
    ++ctx.point_index;
    auto tok = tracker.pre_load(ctx, meta_);
    const T v = fields_[i].load(std::memory_order_relaxed);
    tracker.post_load(ctx, meta_, tok);
    return v;
  }

  template <typename Tracker>
  void store_field(Tracker& tracker, ThreadContext& ctx, std::size_t i, T v) {
    HT_DASSERT(i < N, "field index out of range");
    ++ctx.point_index;
    auto tok = tracker.pre_store(ctx, meta_);
    if (ctx.undo_log != nullptr) {
      ctx.undo_log->push(&fields_[i],
                         bits_of(fields_[i].load(std::memory_order_relaxed)),
                         &restore_bits);
    }
    fields_[i].store(v, std::memory_order_relaxed);
    tracker.post_store(ctx, meta_, tok);
  }

  T raw_field(std::size_t i) const {
    return fields_[i].load(std::memory_order_relaxed);
  }

  ObjectMeta& meta() { return meta_; }
  const ObjectMeta& meta() const { return meta_; }

 private:
  static std::uint64_t bits_of(T v) {
    std::uint64_t b = 0;
    __builtin_memcpy(&b, &v, sizeof(T));
    return b;
  }
  static void restore_bits(void* addr, std::uint64_t bits) {
    T v;
    __builtin_memcpy(&v, &bits, sizeof(T));
    static_cast<std::atomic<T>*>(addr)->store(v, std::memory_order_relaxed);
  }

  ObjectMeta meta_;
  std::array<std::atomic<T>, N> fields_;
};

}  // namespace ht
