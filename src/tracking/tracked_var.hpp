// Tracked shared memory: the C++ stand-in for the paper's JIT-inserted
// instrumentation barriers (DESIGN.md substitution 1).
//
// Every load/store runs the tracker's instrumentation before (and, for the
// pessimistic tracker, after) the program access, giving the same
// instrumentation–access atomicity the VM barriers provide. The payload
// lives in a std::atomic accessed with relaxed ordering so that *program*
// data races — which the trackers must handle soundly — are expressible
// without C++ undefined behavior; ordering comes from the trackers, exactly
// as in the paper.
#pragma once

#include <atomic>
#include <type_traits>

#include "enforcer/region.hpp"
#include "metadata/object_meta.hpp"
#include "runtime/thread_context.hpp"

namespace ht {

template <typename T>
class TrackedVar {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "tracked payloads must fit the undo log's 64-bit entries");

 public:
  TrackedVar() : value_(T{}) {}
  TrackedVar(const TrackedVar&) = delete;
  TrackedVar& operator=(const TrackedVar&) = delete;

  // (Re)initialize under `tracker` as freshly allocated by `ctx`'s thread.
  template <typename Tracker>
  void init(Tracker& tracker, ThreadContext& ctx, T v = T{}) {
    meta_.reset(tracker.initial_state(ctx));
    value_.store(v, std::memory_order_relaxed);
  }

  template <typename Tracker>
  T load(Tracker& tracker, ThreadContext& ctx) {
    ++ctx.point_index;
    // Barrier elision (DESIGN.md §15): a current-epoch cache hit proves the
    // tracker would take its same-state / reentrant no-op path, so the
    // instrumentation call is skipped entirely. The point-index bump above
    // is NOT skipped — elision must not perturb the recorder's deterministic
    // point numbering.
#if HT_ELISION_RUNTIME
    if constexpr (tracker_elidable_v<Tracker>) {
      if (ctx.elision_on.load(std::memory_order_relaxed)) {
        if (ctx.elision_cache.hit_load(&meta_, ctx.elision_epoch)) {
          if constexpr (tracker_counts_stats_v<Tracker>) {
            ++ctx.stats.elision_hits;
          }
          return value_.load(std::memory_order_relaxed);
        }
        if constexpr (tracker_counts_stats_v<Tracker>) {
          ++ctx.stats.elision_misses;
        }
      }
    }
#endif
    auto tok = tracker.pre_load(ctx, meta_);
    const T v = value_.load(std::memory_order_relaxed);
    tracker.post_load(ctx, meta_, tok);
    return v;
  }

  template <typename Tracker>
  void store(Tracker& tracker, ThreadContext& ctx, T v) {
    ++ctx.point_index;
    // Elided stores still run the undo-log push: the write-kind cache hit
    // proves write ownership was secured earlier this epoch, so the old-value
    // read cannot race, and region rollback must cover every store.
#if HT_ELISION_RUNTIME
    if constexpr (tracker_elidable_v<Tracker>) {
      if (ctx.elision_on.load(std::memory_order_relaxed)) {
        if (ctx.elision_cache.hit_store(&meta_, ctx.elision_epoch)) {
          if constexpr (tracker_counts_stats_v<Tracker>) {
            ++ctx.stats.elision_hits;
          }
          if (ctx.undo_log != nullptr) {
            ctx.undo_log->push(
                &value_, bits_of(value_.load(std::memory_order_relaxed)),
                &restore_bits);
          }
          value_.store(v, std::memory_order_relaxed);
          return;
        }
        if constexpr (tracker_counts_stats_v<Tracker>) {
          ++ctx.stats.elision_misses;
        }
      }
    }
#endif
    auto tok = tracker.pre_store(ctx, meta_);
    if (ctx.undo_log != nullptr) {
      // Inside an SBRS region: log the old value for rollback. The tracker
      // has already secured write access, so the read cannot race.
      ctx.undo_log->push(&value_, bits_of(value_.load(std::memory_order_relaxed)),
                         &restore_bits);
    }
    value_.store(v, std::memory_order_relaxed);
    tracker.post_store(ctx, meta_, tok);
  }

  // Uninstrumented access: baseline harnesses and the replayer (replay runs
  // no tracking; ordering comes from replayed happens-before waits).
  T raw_load() const { return value_.load(std::memory_order_relaxed); }
  void raw_store(T v) { value_.store(v, std::memory_order_relaxed); }

  // Store to a slot whose write ownership was already secured at this
  // instrumentation point (batched store, DESIGN.md §13): undo logging and
  // the value write only — no point bump, no tracker call.
  void store_prepared(ThreadContext& ctx, T v) {
    if (ctx.undo_log != nullptr) {
      ctx.undo_log->push(&value_,
                         bits_of(value_.load(std::memory_order_relaxed)),
                         &restore_bits);
    }
    value_.store(v, std::memory_order_relaxed);
  }

  ObjectMeta& meta() { return meta_; }
  const ObjectMeta& meta() const { return meta_; }

 private:
  static std::uint64_t bits_of(T v) {
    std::uint64_t b = 0;
    __builtin_memcpy(&b, &v, sizeof(T));
    return b;
  }
  static void restore_bits(void* addr, std::uint64_t bits) {
    T v;
    __builtin_memcpy(&v, &bits, sizeof(T));
    static_cast<std::atomic<T>*>(addr)->store(v, std::memory_order_relaxed);
  }

  ObjectMeta meta_;
  std::atomic<T> value_;
};

// Batched store (DESIGN.md §13): ONE instrumentation point covering all `n`
// stores. The tracker secures write ownership of every object before any
// value is written, so a tracker with a batched slow path folds the group's
// conflicting transitions into a single coordination round; trackers without
// one (pessimistic, null) degrade to per-access scalar stores, each its own
// point. Replay-sound because all edges recorded at the single point precede
// all `n` raw stores.
template <typename Tracker, typename T>
void store_batch(Tracker& tracker, ThreadContext& ctx,
                 TrackedVar<T>* const* vars, const T* values, std::size_t n) {
  constexpr std::size_t kCap = 32;
  if constexpr (requires(ObjectMeta* const* mm) {
                  tracker.pre_store_batch(ctx, mm, n);
                }) {
    if (n != 0 && n <= kCap) {
      ++ctx.point_index;
      ObjectMeta* metas[kCap];
      for (std::size_t i = 0; i < n; ++i) metas[i] = &vars[i]->meta();
      tracker.pre_store_batch(ctx, metas, n);
      for (std::size_t i = 0; i < n; ++i) {
        vars[i]->store_prepared(ctx, values[i]);
      }
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) vars[i]->store(tracker, ctx, values[i]);
}

// Array of tracked slots sharing one metadata granularity choice: the paper
// tracks whole objects ("the term 'object' refers to any unit of shared
// memory"), and Jikes RVM gives arrays a single header — so the default
// array form uses one ObjectMeta per element block of `kBlock` elements,
// with kBlock=1 meaning per-element metadata.
template <typename T>
class TrackedArray {
 public:
  explicit TrackedArray(std::size_t n) : vars_(n) {}

  template <typename Tracker>
  void init_all(Tracker& tracker, ThreadContext& ctx, T v = T{}) {
    for (auto& var : vars_) var.init(tracker, ctx, v);
  }

  std::size_t size() const { return vars_.size(); }
  TrackedVar<T>& operator[](std::size_t i) { return vars_[i]; }
  const TrackedVar<T>& operator[](std::size_t i) const { return vars_[i]; }

 private:
  std::vector<TrackedVar<T>> vars_;
};

}  // namespace ht
