// Shared pieces of the tracker implementations: the dependence-sink concept
// (how the recorder observes happens-before edges), access tokens, the
// intermediate-state guard used when a coordination wait unwinds, and the
// transition-conformance hooks.
#pragma once

#include <cstdint>

#include "metadata/object_meta.hpp"
#include "runtime/runtime.hpp"
#include "runtime/thread_context.hpp"
// HT_TELEM_* event macros (zero-cost unless HT_TELEMETRY=ON), used by every
// tracker plus the enforcer and recorder.
#include "telemetry/telemetry.hpp"

// Shadow-checking hooks (CMake option HT_CHECK_TRANSITIONS). Call sites pass
// a braced ht::analysis::TransitionObs initializer; with the option off the
// macro discards its argument tokens entirely, so the observation struct,
// its designated initializers, and any membership scans inside them are
// never compiled — disabled builds pay nothing.
#ifdef HT_CHECK_TRANSITIONS_ENABLED
#include "analysis/transition_checker.hpp"
#define HT_CHECK_TRANSITION(...) \
  ::ht::analysis::check_transition(::ht::analysis::TransitionObs __VA_ARGS__)
#define HT_CHECK_CONTENDED(...) \
  ::ht::analysis::check_contended(::ht::analysis::TransitionObs __VA_ARGS__)
#else
#define HT_CHECK_TRANSITION(...) ((void)0)
#define HT_CHECK_CONTENDED(...) ((void)0)
#endif

namespace ht {

// A dependence sink receives the happens-before edges a tracker identifies
// (paper §4: the recorder "identifies and records happens-before edges ...
// that transitively imply all cross-thread dependences"). Trackers are
// templated on the sink; the default NullSink makes every call vanish.
//
//   edge(ctx, src, value)  — sink access (at ctx.point_index) must follow
//                            thread `src` reaching release counter `value`.
//   edge_all_others(ctx)   — conservative fan-out edge: one edge per other
//                            registered thread at its current counter (used
//                            for RdSh-involving transitions whose prior
//                            accessors the state word does not name).
struct NullSink {
  static constexpr bool kActive = false;
  void edge(ThreadContext&, ThreadId, std::uint64_t) {}
  void edge_all_others(ThreadContext&, Runtime&) {}
};

inline NullSink g_null_sink;

// Empty access token for trackers whose instrumentation completes before the
// program access (optimistic/hybrid/null/ideal). The pessimistic tracker's
// token carries the post-access unlock target instead.
struct EmptyToken {};

// Restores an object's old state if a coordination wait unwinds (via
// RegionRestart, or ThreadQuarantined when the waiter itself was
// quarantined) while the thread owns the intermediate (Int) state. Without
// this, an aborted region would leave the object permanently wedged.
//
// The restore is a CAS from our own Int word, not a blind store: if the
// unwinding thread was quarantined, a survivor may have seized the Int
// (resilience::seize_object) between the throw and this destructor, and the
// seized state must win. Outside quarantine nobody else ever replaces our
// Int, so the CAS always succeeds there.
class IntGuard {
 public:
  IntGuard(ObjectMeta& m, StateWord old_state, ThreadId owner)
      : m_(m), old_(old_state), owner_(owner) {}
  ~IntGuard() {
    if (armed_) {
      StateWord expected = StateWord::intermediate(owner_);
      (void)m_.cas_state(expected, old_);
    }
  }
  IntGuard(const IntGuard&) = delete;
  IntGuard& operator=(const IntGuard&) = delete;

  void disarm() { armed_ = false; }

 private:
  ObjectMeta& m_;
  StateWord old_;
  ThreadId owner_;
  bool armed_ = true;
};

const char* tracker_display_name(const char* key);

}  // namespace ht
