#include "tracking/tracker_common.hpp"

#include <cstring>

namespace ht {

// Display names used by the bench harnesses, matching the paper's figure
// legends.
const char* tracker_display_name(const char* key) {
  if (std::strcmp(key, "none") == 0) return "Baseline (no tracking)";
  if (std::strcmp(key, "pessimistic") == 0) return "Pessimistic tracking";
  if (std::strcmp(key, "optimistic") == 0) return "Optimistic tracking";
  if (std::strcmp(key, "hybrid") == 0) return "Hybrid tracking";
  if (std::strcmp(key, "hybrid-inf") == 0)
    return "Hybrid tracking w/infinite cutoff";
  if (std::strcmp(key, "ideal") == 0) return "Ideal";
  return key;
}

}  // namespace ht
