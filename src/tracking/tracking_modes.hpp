// Tracker configuration enums shared between the trackers and the
// conformance layer (src/analysis/). Kept free of tracker includes so the
// transition model can name them without pulling in tracker internals.
#pragma once

#include <cstdint>

namespace ht {

// What a read by the owner of WrExPess_T transitions to (paper §7.1).
enum class WrExReadMode : std::uint8_t {
  kFull,            // -> WrExRLock_T: the complete model (needs 64-bit words)
  kOmitWrExRLock,   // -> WrExWLock_T: the paper's 32-bit prototype
  kUnsoundDowngrade // -> RdExRLock_T: the paper's unsound alternate config
};

inline constexpr int kWrExReadModeCount = 3;

}  // namespace ht
