#include "tracking/transition_stats.hpp"

#include <cstdio>

#include "common/stats.hpp"

namespace ht {

TransitionStats& TransitionStats::operator+=(const TransitionStats& o) {
  opt_same += o.opt_same;
  opt_upgrading += o.opt_upgrading;
  opt_fence += o.opt_fence;
  opt_confl_explicit += o.opt_confl_explicit;
  opt_confl_implicit += o.opt_confl_implicit;
  pess_uncontended += o.pess_uncontended;
  pess_reentrant += o.pess_reentrant;
  pess_contended += o.pess_contended;
  opt_to_pess += o.opt_to_pess;
  pess_to_opt += o.pess_to_opt;
  pess_alone_same += o.pess_alone_same;
  pess_alone_cross += o.pess_alone_cross;
  coordination_rounds += o.coordination_rounds;
  responding_safepoints += o.responding_safepoints;
  psros += o.psros;
  region_restarts += o.region_restarts;
  return *this;
}

std::string TransitionStats::table2_row() const {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%10s %10s %10s %5.0f%% %10s %9s %9s",
                format_sci(static_cast<double>(opt_same)).c_str(),
                format_sci(static_cast<double>(opt_conflicting())).c_str(),
                format_sci(static_cast<double>(pess_uncontended)).c_str(),
                100.0 * reentrant_fraction(),
                format_sci(static_cast<double>(pess_contended)).c_str(),
                format_sci(static_cast<double>(opt_to_pess)).c_str(),
                format_sci(static_cast<double>(pess_to_opt)).c_str());
  return buf;
}

}  // namespace ht
