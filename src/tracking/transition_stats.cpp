#include "tracking/transition_stats.hpp"

#include <cstdio>
#include <utility>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace ht {

namespace {

// One table drives both directions of the JSON conversion, so a counter
// added here can never serialize without also parsing back.
using Field = std::pair<const char*, std::uint64_t TransitionStats::*>;

constexpr Field kFields[] = {
    {"opt_same", &TransitionStats::opt_same},
    {"opt_upgrading", &TransitionStats::opt_upgrading},
    {"opt_fence", &TransitionStats::opt_fence},
    {"opt_confl_explicit", &TransitionStats::opt_confl_explicit},
    {"opt_confl_implicit", &TransitionStats::opt_confl_implicit},
    {"pess_uncontended", &TransitionStats::pess_uncontended},
    {"pess_reentrant", &TransitionStats::pess_reentrant},
    {"pess_contended", &TransitionStats::pess_contended},
    {"opt_to_pess", &TransitionStats::opt_to_pess},
    {"pess_to_opt", &TransitionStats::pess_to_opt},
    {"pess_alone_same", &TransitionStats::pess_alone_same},
    {"pess_alone_cross", &TransitionStats::pess_alone_cross},
    {"coordination_rounds", &TransitionStats::coordination_rounds},
    {"responding_safepoints", &TransitionStats::responding_safepoints},
    {"psros", &TransitionStats::psros},
    {"region_restarts", &TransitionStats::region_restarts},
    {"elision_hits", &TransitionStats::elision_hits},
    {"elision_misses", &TransitionStats::elision_misses},
    {"elision_flushes", &TransitionStats::elision_flushes},
    {"coord_batch_rounds", &TransitionStats::coord_batch_rounds},
    {"coord_batch_objects", &TransitionStats::coord_batch_objects},
};

}  // namespace

TransitionStats& TransitionStats::operator+=(const TransitionStats& o) {
  opt_same += o.opt_same;
  opt_upgrading += o.opt_upgrading;
  opt_fence += o.opt_fence;
  opt_confl_explicit += o.opt_confl_explicit;
  opt_confl_implicit += o.opt_confl_implicit;
  pess_uncontended += o.pess_uncontended;
  pess_reentrant += o.pess_reentrant;
  pess_contended += o.pess_contended;
  opt_to_pess += o.opt_to_pess;
  pess_to_opt += o.pess_to_opt;
  pess_alone_same += o.pess_alone_same;
  pess_alone_cross += o.pess_alone_cross;
  coordination_rounds += o.coordination_rounds;
  responding_safepoints += o.responding_safepoints;
  psros += o.psros;
  region_restarts += o.region_restarts;
  elision_hits += o.elision_hits;
  elision_misses += o.elision_misses;
  elision_flushes += o.elision_flushes;
  coord_batch_rounds += o.coord_batch_rounds;
  coord_batch_objects += o.coord_batch_objects;
  return *this;
}

std::string TransitionStats::table2_row() const {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%10s %10s %10s %5.0f%% %10s %9s %9s",
                format_sci(static_cast<double>(opt_same)).c_str(),
                format_sci(static_cast<double>(opt_conflicting())).c_str(),
                format_sci(static_cast<double>(pess_uncontended)).c_str(),
                100.0 * reentrant_fraction(),
                format_sci(static_cast<double>(pess_contended)).c_str(),
                format_sci(static_cast<double>(opt_to_pess)).c_str(),
                format_sci(static_cast<double>(pess_to_opt)).c_str());
  return buf;
}

std::string TransitionStats::to_json() const {
  json::Object obj;
  for (const auto& [name, member] : kFields) obj[name] = json::Value(this->*member);
  return json::Value(std::move(obj)).dump();
}

std::optional<TransitionStats> TransitionStats::from_json(
    const std::string& text) {
  json::Value v;
  if (!json::parse(text, v) || !v.is_object()) return std::nullopt;
  TransitionStats out;
  for (const auto& [name, member] : kFields) {
    if (!v.contains(name)) continue;
    const json::Value& f = v.at(name);
    if (!f.is_number()) return std::nullopt;
    out.*member = f.as_u64();
  }
  return out;
}

}  // namespace ht
