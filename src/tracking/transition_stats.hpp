// Per-thread transition counters, matching the columns of the paper's
// Table 2 plus the §2.2 coordination-kind split.
//
// The paper collects statistics in separate statistics-gathering runs (§7.2)
// so that counting does not perturb the timed runs; trackers therefore take a
// compile-time `kStats` switch and only touch these counters when it is on.
// Counters are thread-local (each ThreadContext owns one) and merged after
// the threads join, so increments are plain loads/stores.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ht {

struct TransitionStats {
  // --- optimistic transitions (Table 1 / Table 3 lower half) ---------------
  std::uint64_t opt_same = 0;        // same-state, no sync
  std::uint64_t opt_upgrading = 0;   // RdEx->WrEx (by owner), RdEx->RdSh
  std::uint64_t opt_fence = 0;       // RdSh read with stale rdShCount
  std::uint64_t opt_confl_explicit = 0;  // conflicting, explicit coordination
  std::uint64_t opt_confl_implicit = 0;  // conflicting, implicit only

  // --- pessimistic transitions (hybrid model, Table 3 upper half) ----------
  std::uint64_t pess_uncontended = 0;  // incl. reentrant
  std::uint64_t pess_reentrant = 0;    // subset of uncontended: no atomic op
  std::uint64_t pess_contended = 0;    // triggered coordination

  // --- state transfers by the adaptive policy ------------------------------
  std::uint64_t opt_to_pess = 0;
  std::uint64_t pess_to_opt = 0;

  // --- standalone pessimistic tracker (§2.1) -------------------------------
  std::uint64_t pess_alone_same = 0;   // last accessor unchanged
  std::uint64_t pess_alone_cross = 0;  // potential cross-thread dependence

  // --- substrate events -----------------------------------------------------
  std::uint64_t coordination_rounds = 0;   // coordinate() calls (per remote)
  std::uint64_t responding_safepoints = 0;
  std::uint64_t psros = 0;
  std::uint64_t region_restarts = 0;

  // --- barrier elision (DESIGN.md §15) --------------------------------------
  // Hits/misses are counted by the TrackedVar probe only when the tracker's
  // kStats flag is on (same discipline as every tracker counter); flushes
  // (epoch bumps at revocation-capable safe points) are substrate events and
  // count unconditionally, like responding_safepoints.
  std::uint64_t elision_hits = 0;
  std::uint64_t elision_misses = 0;
  std::uint64_t elision_flushes = 0;

  // --- batched coordination (DESIGN.md §13) ---------------------------------
  // Requester-side only: rounds answered through coordinate_batch and the
  // objects they covered. coord_batch_rounds is a subset of
  // coordination_rounds; objects/rounds is the realized batch factor.
  std::uint64_t coord_batch_rounds = 0;
  std::uint64_t coord_batch_objects = 0;

  std::uint64_t opt_conflicting() const {
    return opt_confl_explicit + opt_confl_implicit;
  }
  std::uint64_t opt_total() const {
    return opt_same + opt_upgrading + opt_fence + opt_conflicting();
  }
  std::uint64_t pess_total() const {
    return pess_uncontended + pess_contended;
  }
  std::uint64_t accesses() const {
    // Elided accesses bypass the tracker entirely, so no tracker counter
    // sees them; the cache hit count stands in, keeping the conservation
    // property (every program access counted exactly once).
    return opt_total() + pess_total() + pess_alone_same + pess_alone_cross +
           elision_hits;
  }
  double elision_hit_rate() const {
    const std::uint64_t probes = elision_hits + elision_misses;
    return probes == 0 ? 0.0
                       : static_cast<double>(elision_hits) /
                             static_cast<double>(probes);
  }
  double reentrant_fraction() const {
    return pess_uncontended == 0
               ? 0.0
               : static_cast<double>(pess_reentrant) /
                     static_cast<double>(pess_uncontended);
  }

  TransitionStats& operator+=(const TransitionStats& o);

  // One Table-2-style row: "opt-same opt-confl pess-uncont %reent
  // pess-cont opt->pess pess->opt".
  std::string table2_row() const;

  // Flat JSON object of all counters, one key per field (same names as the
  // members). Round-trips through from_json; --json bench reports embed it
  // verbatim.
  std::string to_json() const;

  // Parses a to_json() object. Unknown keys are ignored (older readers keep
  // working when counters are added); missing keys stay zero. Returns
  // nullopt if `text` is not a JSON object or a counter is not a number.
  static std::optional<TransitionStats> from_json(const std::string& text);
};

}  // namespace ht
