// Access APIs: the bridge between workload bodies and the runtime-support
// configurations. One workload body, compiled against:
//
//   DirectApi<Tracker>     — dependence tracking alone (Fig 7/8), and — with
//                            a DependenceRecorder sink attached — the
//                            recorder configurations (Fig 9a);
//   EnforcerApi<Tracker>   — region serializability enforcement (Fig 9b);
//   ReplayApi              — deterministic replay of a recording (no
//                            tracking, synchronization elided, §7.6);
//
// DirectApi<NullTracker> is the unmodified-runtime baseline every overhead
// figure divides by.
#pragma once

#include "enforcer/rs_enforcer.hpp"
#include "recorder/recorder.hpp"
#include "recorder/replayer.hpp"
#include "runtime/sync.hpp"
#include "workload/workload.hpp"

namespace ht {

template <typename Tracker>
class DirectApi {
 public:
  DirectApi(Runtime& rt, Tracker& tracker,
            DependenceRecorder* recorder = nullptr)
      : rt_(&rt), tracker_(&tracker), recorder_(recorder) {}

  void begin_thread(ThreadId) {
    ctx_ = &rt_->register_thread();
    tracker_->attach_thread(*ctx_);
    if (recorder_ != nullptr) recorder_->attach_thread(*ctx_);
  }
  void end_thread() { rt_->unregister_thread(*ctx_); }

  template <typename Data>
  void init_data(Data& data, ThreadId /*tid*/ = 0) {
    data.init_for_thread(*tracker_, *ctx_);
  }

  std::uint64_t load(TrackedVar<std::uint64_t>& v) {
    return v.load(*tracker_, *ctx_);
  }
  void store(TrackedVar<std::uint64_t>& v, std::uint64_t x) {
    v.store(*tracker_, *ctx_, x);
  }
  // Batched store (DESIGN.md §13): one instrumentation point, one
  // coordination round for a single-owner conflicting group.
  void store_batch(TrackedVar<std::uint64_t>* const* vars,
                   const std::uint64_t* values, std::size_t n) {
    ht::store_batch(*tracker_, *ctx_, vars, values, n);
  }
  void lock(ProgramLock& l) { l.acquire(*ctx_); }
  void unlock(ProgramLock& l) { l.release(*ctx_); }
  void poll() { rt_->poll(*ctx_); }
  template <typename F>
  void region(F&& f) {
    f();
  }

  // Driver rendezvous (barriers between init/warmup/body phases) are
  // blocking safe points: a parked thread must remain an implicit
  // coordination target or other threads' warm-up conflicts deadlock.
  void begin_wait() { rt_->begin_blocking(*ctx_); }
  void end_wait() { rt_->end_blocking(*ctx_); }

  TransitionStats take_stats() const { return ctx_->stats; }
  void reset_stats() { ctx_->stats = TransitionStats{}; }
  ThreadContext& context() { return *ctx_; }

 private:
  Runtime* rt_;
  Tracker* tracker_;
  DependenceRecorder* recorder_;
  ThreadContext* ctx_ = nullptr;
};

template <typename Tracker>
class EnforcerApi {
 public:
  EnforcerApi(Runtime& rt, RsEnforcer<Tracker>& enforcer)
      : rt_(&rt), enforcer_(&enforcer) {}

  void begin_thread(ThreadId) {
    ctx_ = &rt_->register_thread();
    enforcer_->attach_thread(*ctx_);  // tracker hooks + region-abort hook
  }
  void end_thread() { rt_->unregister_thread(*ctx_); }

  template <typename Data>
  void init_data(Data& data, ThreadId /*tid*/ = 0) {
    data.init_for_thread(enforcer_->tracker(), *ctx_);
  }

  std::uint64_t load(TrackedVar<std::uint64_t>& v) {
    const std::uint64_t x = v.load(enforcer_->tracker(), *ctx_);
    ++ctx_->region_access_count;  // after: the access has acquired its state
    return x;
  }
  void store(TrackedVar<std::uint64_t>& v, std::uint64_t x) {
    v.store(enforcer_->tracker(), *ctx_, x);
    ++ctx_->region_access_count;
  }
  void store_batch(TrackedVar<std::uint64_t>* const* vars,
                   const std::uint64_t* values, std::size_t n) {
    ht::store_batch(enforcer_->tracker(), *ctx_, vars, values, n);
    ctx_->region_access_count += n;
  }
  void lock(ProgramLock& l) { l.acquire(*ctx_); }
  void unlock(ProgramLock& l) { l.release(*ctx_); }
  void poll() { rt_->poll(*ctx_); }
  template <typename F>
  void region(F&& f) {
    enforcer_->run_region(*ctx_, std::forward<F>(f));
  }

  void begin_wait() { rt_->begin_blocking(*ctx_); }
  void end_wait() { rt_->end_blocking(*ctx_); }

  TransitionStats take_stats() const { return ctx_->stats; }
  void reset_stats() { ctx_->stats = TransitionStats{}; }
  ThreadContext& context() { return *ctx_; }

 private:
  Runtime* rt_;
  RsEnforcer<Tracker>* enforcer_;
  ThreadContext* ctx_ = nullptr;
};

// Replays a recording: every instrumentation point advances the replay
// cursor (applying logged bumps and blocking on logged edges), then performs
// the raw access. Locks are elided — replayed dependences already order
// everything the locks ordered.
class ReplayApi {
 public:
  explicit ReplayApi(Replayer& rp) : rp_(&rp) {}

  void begin_thread(ThreadId tid) { tid_ = tid; }
  void end_thread() { rp_->at_thread_end(tid_); }

  template <typename Data>
  void init_data(Data& data, ThreadId tid = 0) {
    if (tid == 0) data.raw_reset_values();
  }

  std::uint64_t load(TrackedVar<std::uint64_t>& v) {
    rp_->at_point(tid_);
    return v.raw_load();
  }
  void store(TrackedVar<std::uint64_t>& v, std::uint64_t x) {
    rp_->at_point(tid_);
    v.raw_store(x);
  }
  // A recorded batch was one instrumentation point covering all n stores;
  // its edges must be honored before any of the raw stores happen. Mirrors
  // ht::store_batch's point accounting for batch-capable trackers (the ones
  // recordings are made with): oversized batches fell back to one point per
  // store on the record side.
  void store_batch(TrackedVar<std::uint64_t>* const* vars,
                   const std::uint64_t* values, std::size_t n) {
    if (n == 0) return;
    if (n > 32) {
      for (std::size_t i = 0; i < n; ++i) {
        rp_->at_point(tid_);
        vars[i]->raw_store(values[i]);
      }
      return;
    }
    rp_->at_point(tid_);
    for (std::size_t i = 0; i < n; ++i) vars[i]->raw_store(values[i]);
  }
  // Lock acquire was one instrumentation point; release was a PSRO.
  void lock(ProgramLock&) { rp_->at_point(tid_); }
  void unlock(ProgramLock&) { rp_->at_psro(tid_); }
  void poll() { rp_->at_point(tid_); }
  template <typename F>
  void region(F&& f) {
    f();
  }

  // Replay threads synchronize through replayed release counters, not
  // runtime status, so rendezvous need no blocking announcement.
  void begin_wait() {}
  void end_wait() {}

  TransitionStats take_stats() const { return TransitionStats{}; }
  void reset_stats() {}

 private:
  Replayer* rp_;
  ThreadId tid_ = 0;
};

}  // namespace ht
