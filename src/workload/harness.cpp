#include "workload/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace ht {

int trials_from_env(int fallback) {
  if (const char* v = std::getenv("HT_TRIALS")) {
    const int n = std::atoi(v);
    if (n >= 1) return n;
  }
  return fallback;
}

double scale_from_env(double fallback) {
  if (const char* v = std::getenv("HT_SCALE")) {
    const double s = std::atof(v);
    if (s > 0) return s;
  }
  return fallback;
}

Overhead overhead_vs(const RunStats& base, const RunStats& config) {
  HT_ASSERT(!base.empty() && !config.empty(), "overhead of empty stats");
  const double b = base.median();
  Overhead o;
  o.median_pct = (config.median() / b - 1.0) * 100.0;
  o.mean_pct = (config.mean() / b - 1.0) * 100.0;
  o.ci_half_pct = config.ci95_half_width() / b * 100.0;
  return o;
}

json::Value run_stats_json(const RunStats& s) {
  json::Object o;
  json::Array samples;
  samples.reserve(s.count());
  for (double v : s.samples()) samples.emplace_back(v);
  o["samples"] = json::Value(std::move(samples));
  o["count"] = json::Value(static_cast<std::uint64_t>(s.count()));
  if (!s.empty()) {
    o["median"] = json::Value(s.median());
    o["mean"] = json::Value(s.mean());
    o["min"] = json::Value(s.min());
    o["max"] = json::Value(s.max());
    o["p10"] = json::Value(s.percentile(10));
    o["p90"] = json::Value(s.percentile(90));
  }
  o["stddev"] = json::Value(s.stddev());
  o["ci95_half_width"] = json::Value(s.ci95_half_width());
  return json::Value(std::move(o));
}

void BenchJsonReport::set_meta(const std::string& key, json::Value value) {
  meta_[key] = std::move(value);
}

json::Object& BenchJsonReport::row(const std::string& workload,
                                   const std::string& config) {
  for (Row& r : rows_) {
    if (r.workload == workload && r.config == config) return r.fields;
  }
  rows_.push_back(Row{workload, config, {}});
  return rows_.back().fields;
}

void BenchJsonReport::add_series(const std::string& workload,
                                 const std::string& config,
                                 const TrialSeries& series) {
  json::Object& f = row(workload, config);
  f["seconds"] = run_stats_json(series.seconds);
  f["cycles"] = run_stats_json(series.cycles);
  f["join_skew_seconds"] = run_stats_json(series.join_skew);
}

void BenchJsonReport::add_stats(const std::string& workload,
                                const std::string& config,
                                const TransitionStats& stats) {
  json::Value parsed;
  const bool ok = json::parse(stats.to_json(), parsed);
  HT_ASSERT(ok, "TransitionStats::to_json produced invalid JSON");
  row(workload, config)["stats"] = std::move(parsed);
}

void BenchJsonReport::add_value(const std::string& workload,
                                const std::string& config,
                                const std::string& key, json::Value value) {
  json::Object& f = row(workload, config);
  if (!f.count("values")) f["values"] = json::Value(json::Object{});
  json::Object& vals = f["values"].as_object();
  vals[key] = std::move(value);
}

std::string BenchJsonReport::to_json() const {
  json::Object top;
  top["bench"] = json::Value(bench_);
  top["meta"] = json::Value(meta_);
  json::Array rows;
  rows.reserve(rows_.size());
  for (const Row& r : rows_) {
    json::Object o = r.fields;
    o["workload"] = json::Value(r.workload);
    o["config"] = json::Value(r.config);
    rows.emplace_back(std::move(o));
  }
  top["rows"] = json::Value(std::move(rows));
  return json::Value(std::move(top)).dump();
}

bool BenchJsonReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = to_json();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "error: short write to %s\n", path.c_str());
  return ok;
}

std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

void print_table_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

void print_overhead_header(const std::vector<std::string>& config_names) {
  std::printf("%-12s", "workload");
  for (const auto& n : config_names) std::printf(" %22s", n.c_str());
  std::printf("\n");
  print_table_rule(12 + 23 * static_cast<int>(config_names.size()));
}

void print_overhead_row(const std::string& workload,
                        const std::vector<Overhead>& cells) {
  std::printf("%-12s", workload.c_str());
  for (const Overhead& o : cells) {
    char cell[64];
    std::snprintf(cell, sizeof cell, "%7.1f%% (±%5.1f%%)", o.median_pct,
                  o.ci_half_pct);
    std::printf(" %22s", cell);
  }
  std::printf("\n");
}

void print_geomean_row(
    const std::vector<std::vector<double>>& per_config_medians) {
  std::printf("%-12s", "geomean");
  for (const auto& medians : per_config_medians) {
    std::vector<double> fractions;
    fractions.reserve(medians.size());
    for (double pct : medians) fractions.push_back(pct / 100.0);
    char cell[64];
    std::snprintf(cell, sizeof cell, "%7.1f%%",
                  geomean_overhead(fractions) * 100.0);
    std::printf(" %22s", cell);
  }
  std::printf("\n");
}

}  // namespace ht
