#include "workload/harness.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace ht {

int trials_from_env(int fallback) {
  if (const char* v = std::getenv("HT_TRIALS")) {
    const int n = std::atoi(v);
    if (n >= 1) return n;
  }
  return fallback;
}

double scale_from_env(double fallback) {
  if (const char* v = std::getenv("HT_SCALE")) {
    const double s = std::atof(v);
    if (s > 0) return s;
  }
  return fallback;
}

Overhead overhead_vs(const RunStats& base, const RunStats& config) {
  HT_ASSERT(!base.empty() && !config.empty(), "overhead of empty stats");
  const double b = base.median();
  Overhead o;
  o.median_pct = (config.median() / b - 1.0) * 100.0;
  o.mean_pct = (config.mean() / b - 1.0) * 100.0;
  o.ci_half_pct = config.ci95_half_width() / b * 100.0;
  return o;
}

void print_table_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

void print_overhead_header(const std::vector<std::string>& config_names) {
  std::printf("%-12s", "workload");
  for (const auto& n : config_names) std::printf(" %22s", n.c_str());
  std::printf("\n");
  print_table_rule(12 + 23 * static_cast<int>(config_names.size()));
}

void print_overhead_row(const std::string& workload,
                        const std::vector<Overhead>& cells) {
  std::printf("%-12s", workload.c_str());
  for (const Overhead& o : cells) {
    char cell[64];
    std::snprintf(cell, sizeof cell, "%7.1f%% (±%5.1f%%)", o.median_pct,
                  o.ci_half_pct);
    std::printf(" %22s", cell);
  }
  std::printf("\n");
}

void print_geomean_row(
    const std::vector<std::vector<double>>& per_config_medians) {
  std::printf("%-12s", "geomean");
  for (const auto& medians : per_config_medians) {
    std::vector<double> fractions;
    fractions.reserve(medians.size());
    for (double pct : medians) fractions.push_back(pct / 100.0);
    char cell[64];
    std::snprintf(cell, sizeof cell, "%7.1f%%",
                  geomean_overhead(fractions) * 100.0);
    std::printf(" %22s", cell);
  }
  std::printf("\n");
}

}  // namespace ht
