// Measurement harness shared by the figure benches: trial repetition, the
// paper's reporting statistics ("the median of 20 trial runs; we also show
// the mean as the center of 95% confidence intervals", §7.2), and overhead
// computation against the no-tracking baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "workload/workload.hpp"

namespace ht {

// Trial count: HT_TRIALS env var, else `fallback` (the paper uses 20; the
// benches default lower so the full suite runs in minutes).
int trials_from_env(int fallback = 5);

// Workload scale: HT_SCALE env var (multiplies ops_per_thread), default 1.
double scale_from_env(double fallback = 1.0);

// Runs `discard` untimed warm-up trials (CPU-governor ramp-up and allocator
// warm-up otherwise skew whichever configuration measures first), then
// `trials` timed trials.
template <typename RunFn>
RunStats run_trials(int trials, RunFn&& fn, int discard = 1) {
  RunStats s;
  for (int i = 0; i < discard; ++i) (void)fn();
  for (int i = 0; i < trials; ++i) {
    const WorkloadRunResult r = fn();
    s.add(r.seconds);
  }
  return s;
}

struct Overhead {
  double median_pct = 0;   // median(config)/median(base) - 1
  double mean_pct = 0;     // mean-based center of the CI
  double ci_half_pct = 0;  // 95% CI half width (as % of base median)
};

Overhead overhead_vs(const RunStats& base, const RunStats& config);

// --- row printing -----------------------------------------------------------
void print_table_rule(int width = 96);
void print_overhead_header(const std::vector<std::string>& config_names);
void print_overhead_row(const std::string& workload,
                        const std::vector<Overhead>& cells);
void print_geomean_row(const std::vector<std::vector<double>>& per_config_medians);

}  // namespace ht
