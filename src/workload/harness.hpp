// Measurement harness shared by the figure benches: trial repetition, the
// paper's reporting statistics ("the median of 20 trial runs; we also show
// the mean as the center of 95% confidence intervals", §7.2), and overhead
// computation against the no-tracking baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"
#include "tracking/transition_stats.hpp"
#include "workload/workload.hpp"

namespace ht {

// Trial count: HT_TRIALS env var, else `fallback` (the paper uses 20; the
// benches default lower so the full suite runs in minutes).
int trials_from_env(int fallback = 5);

// Workload scale: HT_SCALE env var (multiplies ops_per_thread), default 1.
double scale_from_env(double fallback = 1.0);

// Runs `discard` untimed warm-up trials (CPU-governor ramp-up and allocator
// warm-up otherwise skew whichever configuration measures first), then
// `trials` timed trials.
template <typename RunFn>
RunStats run_trials(int trials, RunFn&& fn, int discard = 1) {
  RunStats s;
  for (int i = 0; i < discard; ++i) (void)fn();
  for (int i = 0; i < trials; ++i) {
    const WorkloadRunResult r = fn();
    s.add(r.seconds);
  }
  return s;
}

struct Overhead {
  double median_pct = 0;   // median(config)/median(base) - 1
  double mean_pct = 0;     // mean-based center of the CI
  double ci_half_pct = 0;  // 95% CI half width (as % of base median)
};

Overhead overhead_vs(const RunStats& base, const RunStats& config);

// --- JSON bench reports ------------------------------------------------------

// Per-trial sample series beyond wall seconds: the same timed window in raw
// cycle_timer ticks and the thread-join skew, both taken from
// WorkloadRunResult. Archived by --json reports so trace timestamps can be
// related to trial times and so skewed (tail-runs-alone) trials are visible.
struct TrialSeries {
  RunStats seconds;
  RunStats cycles;     // cycle_timer ticks
  RunStats join_skew;  // seconds between first and last worker finishing
};

// run_trials, but keeping all three per-trial sample series.
template <typename RunFn>
TrialSeries run_trial_series(int trials, RunFn&& fn, int discard = 1) {
  TrialSeries s;
  for (int i = 0; i < discard; ++i) (void)fn();
  for (int i = 0; i < trials; ++i) {
    const WorkloadRunResult r = fn();
    s.seconds.add(r.seconds);
    s.cycles.add(static_cast<double>(r.cycles));
    s.join_skew.add(r.join_skew_seconds);
  }
  return s;
}

// Summary of one RunStats series as a JSON object: the raw samples plus the
// paper's reporting statistics (median, mean, 95% CI) and percentiles.
json::Value run_stats_json(const RunStats& s);

// Machine-readable bench output (the --json flag every fig*/table2 harness
// takes). One report holds rows keyed by (workload, config); a row can carry
// trial series, merged TransitionStats, and free-form named values — CI
// archives the files as BENCH_*.json artifacts.
class BenchJsonReport {
 public:
  explicit BenchJsonReport(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  // Report-wide metadata (trial count, scale, tracker identity, ...).
  void set_meta(const std::string& key, json::Value value);

  void add_series(const std::string& workload, const std::string& config,
                  const TrialSeries& series);
  void add_stats(const std::string& workload, const std::string& config,
                 const TransitionStats& stats);
  void add_value(const std::string& workload, const std::string& config,
                 const std::string& key, json::Value value);

  std::string to_json() const;

  // Writes to_json() to `path`; returns false (after perror-style stderr
  // output) if the file cannot be written.
  bool write(const std::string& path) const;

 private:
  json::Object& row(const std::string& workload, const std::string& config);

  struct Row {
    std::string workload;
    std::string config;
    json::Object fields;
  };

  std::string bench_;
  json::Object meta_;
  std::vector<Row> rows_;  // insertion-ordered
};

// Scans argv for `--json <path>`; returns the path or "" when absent. The
// flag is shared by every bench harness; unrelated arguments are ignored.
std::string json_path_from_args(int argc, char** argv);

// --- row printing -----------------------------------------------------------
void print_table_rule(int width = 96);
void print_overhead_header(const std::vector<std::string>& config_names);
void print_overhead_row(const std::string& workload,
                        const std::vector<Overhead>& cells);
void print_geomean_row(const std::vector<std::vector<double>>& per_config_medians);

}  // namespace ht
