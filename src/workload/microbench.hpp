// The paper's Fig 8 stress microbenchmarks, translated verbatim:
//
//   syncInc:  for (i...) { synchronized (gLock) { gCounter++; } }
//   racyInc:  for (i...) { gCounter++; }
//
// Eight threads each increment one global counter. syncInc is the hybrid
// model's best case (high conflict, object-level data-race free: deferred
// unlocking eliminates nearly all coordination); racyInc is its worst case
// (every increment is a true data race).
#pragma once

#include <cstdint>

#include "runtime/sync.hpp"
#include "tracking/tracked_var.hpp"
#include "workload/workload.hpp"

namespace ht {

struct MicrobenchData {
  TrackedVar<std::uint64_t> counter;
  ProgramLock lock;

  template <typename Tracker>
  void init_for_thread(Tracker& tracker, ThreadContext& ctx) {
    if (ctx.id == 0) counter.init(tracker, ctx, 0);
  }
  void raw_reset_values() { counter.raw_store(0); }
};

// Increment loop bodies. The increment is a tracked load + tracked store —
// the same two accesses the JVM's gCounter++ performs — wrapped in a region
// so the identical body also runs under the RS enforcer.
// yield_every: scheduler-yield cadence in iterations (0 = never); see
// WorkloadConfig::yield_every_regions for why single-core interleaving needs
// this. The paper's 32-core machine interleaves the eight incrementing
// threads at instruction granularity; a small cadence approximates that.
template <typename Api>
std::uint64_t sync_inc_body(Api& api, MicrobenchData& d, std::uint64_t iters,
                            std::uint32_t yield_every = 16) {
  std::uint64_t last = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    api.lock(d.lock);
    api.region([&] {
      last = api.load(d.counter);
      api.store(d.counter, last + 1);
    });
    api.unlock(d.lock);
    api.poll();
    schedule::cadence_point(i, yield_every);
  }
  return last;
}

template <typename Api>
std::uint64_t racy_inc_body(Api& api, MicrobenchData& d, std::uint64_t iters,
                            std::uint32_t yield_every = 16) {
  std::uint64_t last = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    api.region([&] {
      last = api.load(d.counter);
      api.store(d.counter, last + 1);
    });
    api.poll();
    schedule::cadence_point(i, yield_every);
  }
  return last;
}

// Runs a microbenchmark over `threads` threads.
template <typename MakeApi, typename Body>
WorkloadRunResult run_microbench(int threads, MicrobenchData& d,
                                 MakeApi&& make_api, Body&& body) {
  return run_threads(
      threads, std::forward<MakeApi>(make_api),
      [&d](auto& api, ThreadId tid) { api.init_data(d, tid); },
      std::forward<Body>(body));
}

}  // namespace ht
