#include "workload/profiles.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ht {

namespace {

// Baseline: read-mostly shared data and private work, with every conflict
// vector zeroed — each profile opts into its own conflict character. At
// HT_SCALE=1 the absolute counts are ~1e4x below the paper's (runs are
// seconds, not minutes); the *rates* and orderings are what matter, and
// first-touch warm-up (each shared object's first reader conflicts with the
// allocating thread) sets a floor that fades with larger HT_SCALE.
WorkloadConfig base(const char* name, double scale) {
  WorkloadConfig c;
  c.name = name;
  c.threads = 8;
  c.ops_per_thread =
      static_cast<std::uint64_t>(200'000 * (scale <= 0 ? 1.0 : scale));
  c.accesses_per_region = 4;
  c.readshare_p100k = 10'000;
  c.sharedgen_p100k = 0;
  c.readshare_write_pct = 0;
  return c;
}

}  // namespace

std::vector<WorkloadConfig> paper_profiles(double scale) {
  std::vector<WorkloadConfig> v;

  // eclipse6: large, mildly conflicting, synchronized (Table 2: conflicts
  // ~1e-5 of accesses but substantial pessimistic usage).
  {
    WorkloadConfig c = base("eclipse6", scale);
    c.sharedgen_p100k = 300;
    c.hotsync_p100k = 50;
    c.hot_objects = 16;
    v.push_back(c);
  }
  // hsqldb6: conflicts under one coarse database lock -> owners are blocked
  // -> implicit coordination dominates; hybrid gains little (§7.5).
  {
    WorkloadConfig c = base("hsqldb6", scale);
    c.hotglobal_p100k = 600;
    c.hot_objects = 32;
    v.push_back(c);
  }
  // lusearch6: almost no communication.
  {
    WorkloadConfig c = base("lusearch6", scale);
    c.sharedgen_p100k = 2;
    v.push_back(c);
  }
  // xalan6: high-conflict but well-synchronized (per-object locks on a hot
  // table) — the paper's biggest hybrid win (65% -> 24% overhead).
  {
    WorkloadConfig c = base("xalan6", scale);
    c.hotsync_p100k = 640;
    c.hot_objects = 16;
    v.push_back(c);
  }
  // avrora9: conflicts both synchronized and racy, spread over many objects
  // (the Fig 6 exception); large contended-transition counts.
  {
    WorkloadConfig c = base("avrora9", scale);
    c.hotsync_p100k = 200;
    c.hotracy_p100k = 500;
    c.hot_objects = 192;
    v.push_back(c);
  }
  // jython9 / luindex9: effectively single-threaded heaps.
  {
    WorkloadConfig c = base("jython9", scale);
    c.readshare_p100k = 2'000;
    v.push_back(c);
  }
  {
    WorkloadConfig c = base("luindex9", scale);
    c.readshare_p100k = 1'000;
    v.push_back(c);
  }
  // lusearch9: near-zero conflicts.
  {
    WorkloadConfig c = base("lusearch9", scale);
    c.sharedgen_p100k = 1;
    v.push_back(c);
  }
  // pmd9: moderate synchronized sharing.
  {
    WorkloadConfig c = base("pmd9", scale);
    c.sharedgen_p100k = 100;
    c.hotsync_p100k = 30;
    c.hot_objects = 32;
    v.push_back(c);
  }
  // sunflow9: read-shared scene data; most pessimistic accesses (if any)
  // reentrant.
  {
    WorkloadConfig c = base("sunflow9", scale);
    c.readshare_p100k = 30'000;
    c.sharedgen_p100k = 2;
    v.push_back(c);
  }
  // xalan9: like xalan6.
  {
    WorkloadConfig c = base("xalan9", scale);
    c.hotsync_p100k = 680;
    c.hot_objects = 16;
    v.push_back(c);
  }
  // pjbb2000: moderate synchronized conflicts.
  {
    WorkloadConfig c = base("pjbb2000", scale);
    c.hotsync_p100k = 220;
    c.hot_objects = 64;
    v.push_back(c);
  }
  // pjbb2005: the highest-conflict program; synchronized + true races ->
  // both big hybrid wins and residual contended coordination.
  {
    WorkloadConfig c = base("pjbb2005", scale);
    c.hotsync_p100k = 1'600;
    c.hotracy_p100k = 700;
    c.hotglobal_p100k = 400;
    c.hot_objects = 32;
    v.push_back(c);
  }
  return v;
}

std::vector<WorkloadConfig> recorder_profiles(double scale) {
  std::vector<WorkloadConfig> v = paper_profiles(scale);
  std::erase_if(v, [](const WorkloadConfig& c) {
    return std::strcmp(c.name, "eclipse6") == 0;
  });
  return v;
}

std::optional<WorkloadConfig> find_profile(const char* name, double scale) {
  for (const WorkloadConfig& c : paper_profiles(scale)) {
    if (std::strcmp(c.name, name) == 0) return c;
  }
  return std::nullopt;
}

std::string known_profile_names() {
  std::string names;
  for (const WorkloadConfig& c : paper_profiles(1.0)) {
    if (!names.empty()) names += ' ';
    names += c.name;
  }
  return names;
}

std::string unknown_profile_message(const char* name) {
  return std::string("unknown workload profile '") + name +
         "'; valid profiles: " + known_profile_names();
}

WorkloadConfig profile_by_name(const char* name, double scale) {
  if (std::optional<WorkloadConfig> c = find_profile(name, scale)) return *c;
  std::fprintf(stderr, "%s\n", unknown_profile_message(name).c_str());
  std::exit(2);
}

}  // namespace ht
