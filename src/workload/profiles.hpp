// Named workload profiles calibrated to the paper's benchmark suite
// (DaCapo 2006-10-MR2 / 9.12-bach, SPECjbb2000/2005; §7.2 and Table 2).
//
// Each profile targets the corresponding benchmark's *conflict character*:
// the fraction of accesses triggering optimistic conflicting transitions
// (Table 2: Conflicting / Same-state), whether conflicts are synchronized
// (xalan: deferred unlocking wins), racy (avrora9/pjbb2005: contended
// pessimistic transitions), or resolved under a coarse global lock
// (hsqldb6: implicit coordination), and how read-shared the heap is
// (sunflow9: 92% reentrant).
//
// Absolute access counts are scaled down from the paper's 1e9-1e10 range so
// the whole evaluation runs in minutes on one core; the `scale` parameter
// multiplies ops_per_thread for longer runs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace ht {

// All 13 profiles, in the paper's Table 2 order.
std::vector<WorkloadConfig> paper_profiles(double scale = 1.0);

// Subset used by Fig 9(a) (the recorder section drops eclipse6, which the
// optimistic replayer cannot replay).
std::vector<WorkloadConfig> recorder_profiles(double scale = 1.0);

// Look up one profile by name; nullopt for unknown names.
std::optional<WorkloadConfig> find_profile(const char* name,
                                           double scale = 1.0);

// "eclipse6 hsqldb6 ... pjbb2005" — every valid profile name.
std::string known_profile_names();

// The error message harnesses and examples print before exiting nonzero:
// names the unknown profile and lists every valid one.
std::string unknown_profile_message(const char* name);

// Look up one profile by name; on unknown names prints
// unknown_profile_message to stderr and exits with status 2 (callers that
// want to handle the error themselves use find_profile).
WorkloadConfig profile_by_name(const char* name, double scale = 1.0);

}  // namespace ht
