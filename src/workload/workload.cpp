#include "workload/workload.hpp"

namespace ht {

WorkloadData::WorkloadData(const WorkloadConfig& cfg) {
  private_pools_.reserve(static_cast<std::size_t>(cfg.threads));
  for (int t = 0; t < cfg.threads; ++t) {
    private_pools_.push_back(
        std::make_unique<std::vector<TrackedVar<std::uint64_t>>>(
            cfg.private_objects));
  }
  general_ = std::vector<TrackedVar<std::uint64_t>>(cfg.general_objects);
  readshare_ = std::vector<TrackedVar<std::uint64_t>>(cfg.readshare_objects);
  hot_ = std::vector<TrackedVar<std::uint64_t>>(cfg.hot_objects);
  const int locks = cfg.locks >= 1 ? cfg.locks : 1;
  locks_.reserve(static_cast<std::size_t>(locks));
  for (int i = 0; i < locks; ++i) {
    locks_.push_back(std::make_unique<ProgramLock>());
  }
}

void WorkloadData::raw_reset_values() {
  for (auto& pool : private_pools_)
    for (auto& v : *pool) v.raw_store(0);
  for (auto& v : general_) v.raw_store(0);
  for (auto& v : readshare_) v.raw_store(0);
  for (auto& v : hot_) v.raw_store(0);
}

std::vector<std::uint32_t> WorkloadData::per_object_conflict_counts() const {
  std::vector<std::uint32_t> counts;
  counts.reserve(hot_.size() + general_.size() + readshare_.size());
  for (const auto& v : hot_)
    counts.push_back(v.meta().profile().load().opt_conflicts());
  for (const auto& v : general_)
    counts.push_back(v.meta().profile().load().opt_conflicts());
  for (const auto& v : readshare_)
    counts.push_back(v.meta().profile().load().opt_conflicts());
  return counts;
}

}  // namespace ht
