// Synthetic workloads standing in for the paper's DaCapo / SPECjbb
// benchmarks (DESIGN.md substitution 3).
//
// A workload is a set of threads executing statically-bounded regions over
// four object populations:
//   private     — thread-local objects (fast-path, same-state accesses)
//   readshare   — read-mostly objects that settle into RdSh states
//   sharedgen   — general shared objects accessed under per-object locks
//   hot         — a small set of high-conflict objects, accessed either
//                 well-synchronized (hotsync: the hybrid model's sweet spot,
//                 like the paper's syncInc) or racily (hotracy: object-level
//                 data races, like avrora9/pjbb2005), or under one global
//                 lock (hotglobal: conflicts resolved by implicit
//                 coordination because owners are usually blocked, like
//                 hsqldb6).
//
// Region kinds are drawn per-mille from the config; everything is
// deterministic per (seed, thread id) so the replayer can re-execute the
// identical per-thread instruction streams (DESIGN.md §4.4).
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/cycle_timer.hpp"
#include "common/xorshift.hpp"
#include "runtime/sync.hpp"
#include "schedule/schedule_point.hpp"
#include "tracking/tracked_var.hpp"
#include "tracking/transition_stats.hpp"

namespace ht {

struct WorkloadConfig {
  const char* name = "unnamed";
  int threads = 8;
  std::uint64_t ops_per_thread = 100'000;  // tracked accesses per thread
  std::uint32_t accesses_per_region = 4;

  // Region-kind weights, per 100 000 regions; the rest are private regions.
  // (Conflict rates in the paper's Table 2 span 1e-6..1e-2 of accesses, so
  // per-mille granularity is too coarse.)
  std::uint32_t readshare_p100k = 10'000;
  std::uint32_t sharedgen_p100k = 4'000;
  std::uint32_t hotsync_p100k = 0;    // hot object under its own lock
  std::uint32_t hotracy_p100k = 0;    // hot object, no lock (object-level race)
  std::uint32_t hotglobal_p100k = 0;  // hot object under one global lock
  std::uint32_t batchxfer_p100k = 0;  // batched store over a hot-object group
                                      // (one instrumentation point,
                                      // DESIGN.md §13)

  // Pool sizes.
  std::size_t private_objects = 512;  // per thread
  std::size_t general_objects = 512;
  std::size_t readshare_objects = 256;
  std::size_t hot_objects = 16;
  int locks = 64;

  // Write fractions (percent).
  std::uint32_t write_pct = 30;
  std::uint32_t readshare_write_pct = 2;

  std::uint64_t base_seed = 0x9e3779b9;

  // Yield to the scheduler every N regions (0 = never). On a multi-core host
  // the paper's threads run truly concurrently; on a single-core container a
  // thread would otherwise run whole quanta (or to completion) alone, so no
  // cross-thread conflicts would materialize against *running* owners.
  // Periodic yields interleave the threads at region granularity, restoring
  // the concurrency structure the paper's machine provides. The yield cost
  // is identical across trackers (it is part of the workload, outside
  // instrumentation), so overhead ratios remain comparable.
  std::uint32_t yield_every_regions = 64;

  std::uint64_t regions_per_thread() const {
    return ops_per_thread / accesses_per_region;
  }
};

inline constexpr std::uint32_t kMaxRegionAccesses = 16;

// The shared heap of a workload. Allocatable once and re-initialized per
// trial (metadata reset to the trial tracker's initial states, values to 0).
class WorkloadData {
 public:
  explicit WorkloadData(const WorkloadConfig& cfg);

  // Per-thread initialization, mirroring allocation in the paper's model:
  // each object starts owned by its allocating thread (§6.2), so thread T
  // initializes its own private pool and thread 0 the shared pools. Called
  // by every thread before the start barrier.
  template <typename Tracker>
  void init_for_thread(Tracker& tracker, ThreadContext& ctx) {
    if (ctx.id < private_pools_.size()) {
      for (auto& v : *private_pools_[ctx.id]) v.init(tracker, ctx, 0);
    }
    if (ctx.id == 0) {
      for (auto& v : general_) v.init(tracker, ctx, 0);
      for (auto& v : readshare_) v.init(tracker, ctx, 0);
      for (auto& v : hot_) v.init(tracker, ctx, 0);
    }
  }

  // Whole-heap initialization from one thread (unit tests, single-threaded
  // uses).
  template <typename Tracker>
  void init_all(Tracker& tracker, ThreadContext& ctx) {
    for (auto& pool : private_pools_)
      for (auto& v : *pool) v.init(tracker, ctx, 0);
    for (auto& v : general_) v.init(tracker, ctx, 0);
    for (auto& v : readshare_) v.init(tracker, ctx, 0);
    for (auto& v : hot_) v.init(tracker, ctx, 0);
  }

  // Replay-side reset: values only, metadata untouched (replay runs no
  // tracking). Must produce the same initial values as init_all.
  void raw_reset_values();

  TrackedVar<std::uint64_t>& private_obj(ThreadId tid, std::size_t i) {
    return (*private_pools_[tid])[i % private_pools_[tid]->size()];
  }
  TrackedVar<std::uint64_t>& general(std::size_t i) {
    return general_[i % general_.size()];
  }
  TrackedVar<std::uint64_t>& readshare(std::size_t i) {
    return readshare_[i % readshare_.size()];
  }
  TrackedVar<std::uint64_t>& hot(std::size_t i) {
    return hot_[i % hot_.size()];
  }
  std::size_t hot_count() const { return hot_.size(); }
  std::size_t general_count() const { return general_.size(); }

  ProgramLock& lock(std::size_t i) { return *locks_[i % locks_.size()]; }
  ProgramLock& global_lock() { return *locks_[0]; }
  std::size_t lock_count() const { return locks_.size(); }

  // Census of optimistic conflicting transitions per hot/general object,
  // used by the Fig 6 limit study (reads each object's profile word).
  std::vector<std::uint32_t> per_object_conflict_counts() const;

  // Untimed warm-up: every thread reads the shared pools once, settling
  // first-touch ownership transfers (allocator -> readers -> RdSh) outside
  // the timed window. On this container an explicit coordination round trip
  // costs a multi-thread scheduling cycle (~0.5 ms), so the one-time
  // first-touch conflicts would otherwise dominate low-conflict profiles —
  // an artifact the paper's long runs amortize away. Deterministic per
  // thread, so the replayer re-executes it identically.
  template <typename Api>
  void warmup_shared(Api& api) {
    for (auto& v : readshare_) {
      (void)api.load(v);
      api.poll();
    }
    for (auto& v : general_) {
      (void)api.load(v);
      api.poll();
    }
    for (auto& v : hot_) {
      (void)api.load(v);
      api.poll();
    }
  }

  // Visits every object's metadata (tests: post-run invariant sweeps).
  template <typename Fn>
  void for_each_meta(Fn&& fn) {
    for (auto& pool : private_pools_)
      for (auto& v : *pool) fn(v.meta());
    for (auto& v : general_) fn(v.meta());
    for (auto& v : readshare_) fn(v.meta());
    for (auto& v : hot_) fn(v.meta());
  }

 private:
  std::vector<std::unique_ptr<std::vector<TrackedVar<std::uint64_t>>>>
      private_pools_;
  std::vector<TrackedVar<std::uint64_t>> general_;
  std::vector<TrackedVar<std::uint64_t>> readshare_;
  std::vector<TrackedVar<std::uint64_t>> hot_;
  std::vector<std::unique_ptr<ProgramLock>> locks_;
};

// ---------------------------------------------------------------------------
// Per-thread workload body. Api is one of the access APIs in apis.hpp
// (direct tracking, enforcer-wrapped, replay, baseline).
// ---------------------------------------------------------------------------

enum class RegionKind : std::uint8_t {
  kPrivate,
  kReadShare,
  kSharedGen,
  kHotSync,
  kHotRacy,
  kHotGlobal,
  kBatchXfer
};

struct RegionPlan {
  RegionKind kind;
  std::uint32_t accesses;
  // Per access: object selector and write flag + value.
  std::uint64_t obj_sel[kMaxRegionAccesses];
  bool is_write[kMaxRegionAccesses];
  std::uint64_t wr_val[kMaxRegionAccesses];
};

// Draws the next region's deterministic plan.
inline RegionPlan plan_region(Xoshiro256& rng, const WorkloadConfig& cfg) {
  RegionPlan p;
  const std::uint32_t dice =
      static_cast<std::uint32_t>(rng.next_below(100'000));
  std::uint32_t acc = cfg.readshare_p100k;
  if (dice < acc) {
    p.kind = RegionKind::kReadShare;
  } else if (dice < (acc += cfg.sharedgen_p100k)) {
    p.kind = RegionKind::kSharedGen;
  } else if (dice < (acc += cfg.hotsync_p100k)) {
    p.kind = RegionKind::kHotSync;
  } else if (dice < (acc += cfg.hotracy_p100k)) {
    p.kind = RegionKind::kHotRacy;
  } else if (dice < (acc += cfg.hotglobal_p100k)) {
    p.kind = RegionKind::kHotGlobal;
  } else if (dice < (acc += cfg.batchxfer_p100k)) {
    p.kind = RegionKind::kBatchXfer;
  } else {
    p.kind = RegionKind::kPrivate;
  }
  p.accesses = cfg.accesses_per_region < kMaxRegionAccesses
                   ? cfg.accesses_per_region
                   : kMaxRegionAccesses;
  // Hot / sharedgen regions focus on one object (a critical section over one
  // record); other kinds spread across their pool.
  const std::uint64_t focus = rng.next();
  const std::uint32_t wpct =
      p.kind == RegionKind::kReadShare ? cfg.readshare_write_pct : cfg.write_pct;
  for (std::uint32_t i = 0; i < p.accesses; ++i) {
    const bool focused = p.kind == RegionKind::kSharedGen ||
                         p.kind == RegionKind::kHotSync ||
                         p.kind == RegionKind::kHotRacy ||
                         p.kind == RegionKind::kHotGlobal;
    // BatchXfer writes a contiguous hot-object group (the objects a prior
    // writer owns together), so its one batched point can cover the group
    // with a single coordination round.
    p.obj_sel[i] = p.kind == RegionKind::kBatchXfer ? focus + i
                   : focused                        ? focus
                                                    : rng.next();
    p.is_write[i] =
        p.kind == RegionKind::kBatchXfer || rng.chance(wpct, 100);
    p.wr_val[i] = rng.next();
  }
  return p;
}

// Executes one thread's whole workload; returns a checksum over every loaded
// value (the record/replay value-determinism witness).
template <typename Api>
std::uint64_t workload_thread_body(Api& api, const WorkloadConfig& cfg,
                                   WorkloadData& data, ThreadId tid) {
  Xoshiro256 rng(cfg.base_seed * 1000003ULL + tid);
  std::uint64_t checksum = 0;
  std::uint64_t vals[kMaxRegionAccesses];
  const std::uint64_t regions = cfg.regions_per_thread();

  for (std::uint64_t r = 0; r < regions; ++r) {
    const RegionPlan p = plan_region(rng, cfg);

    ProgramLock* lock = nullptr;
    switch (p.kind) {
      case RegionKind::kSharedGen:
        lock = &data.lock(p.obj_sel[0] % data.general_count());
        break;
      case RegionKind::kHotSync:
        lock = &data.lock(p.obj_sel[0] % data.hot_count());
        break;
      case RegionKind::kHotGlobal:
        lock = &data.global_lock();
        break;
      default:
        break;
    }

    if (lock != nullptr) api.lock(*lock);
    // A quarantined thread parks by throwing out of a safe point inside the
    // region; the program mutex it holds must not go down with it (tracker
    // state is seized by the sweep, but no runtime can reclaim an OS mutex).
    // Raw abandon, not api.unlock: release(ctx) runs safe-point bookkeeping
    // this thread may no longer perform.
    try {
    // The region body is re-executable: all inputs come from the plan, all
    // loaded values land in `vals` (overwritten on restart), and all stores
    // are tracked (undone by the enforcer on restart).
    api.region([&] {
      if (p.kind == RegionKind::kBatchXfer) {
        // One batched instrumentation point over the whole hot-object group
        // (DESIGN.md §13): the tracker secures all objects with at most one
        // coordination round before any value is written.
        TrackedVar<std::uint64_t>* objs[kMaxRegionAccesses];
        for (std::uint32_t i = 0; i < p.accesses; ++i) {
          objs[i] = &data.hot(p.obj_sel[i]);
          vals[i] = 0;
        }
        api.store_batch(objs, p.wr_val, p.accesses);
        return;
      }
      for (std::uint32_t i = 0; i < p.accesses; ++i) {
        TrackedVar<std::uint64_t>* obj;
        switch (p.kind) {
          case RegionKind::kPrivate:
            obj = &data.private_obj(tid, p.obj_sel[i]);
            break;
          case RegionKind::kReadShare:
            obj = &data.readshare(p.obj_sel[i]);
            break;
          case RegionKind::kSharedGen:
            obj = &data.general(p.obj_sel[i]);
            break;
          default:
            obj = &data.hot(p.obj_sel[i]);
            break;
        }
        if (p.is_write[i]) {
          api.store(*obj, p.wr_val[i]);
          vals[i] = 0;
        } else {
          vals[i] = api.load(*obj);
        }
      }
    });
    } catch (const ThreadQuarantined&) {
      if (lock != nullptr) lock->abandon();
      throw;
    }
    if (lock != nullptr) api.unlock(*lock);

    for (std::uint32_t i = 0; i < p.accesses; ++i) {
      checksum = checksum * 0x100000001b3ULL + vals[i];
    }
    api.poll();
    schedule::cadence_point(r, cfg.yield_every_regions);
  }
  return checksum;
}

// ---------------------------------------------------------------------------
// Thread driver: spawns cfg-many threads, runs `body(api, tid)` in each, and
// returns wall time plus merged statistics. Thread spawn/join act as the
// fork/join PSROs the paper lists — the APIs handle the release semantics in
// begin_thread/end_thread.
// ---------------------------------------------------------------------------

struct WorkloadRunResult {
  double seconds = 0;
  // The same timed window in raw cycle_timer ticks (0 when the counter is
  // unavailable). Bench --json reports archive it next to `seconds` so trace
  // timestamps (also in ticks) can be related to trial wall times without
  // trusting the cycles-per-second calibration.
  std::uint64_t cycles = 0;
  // Spread between the first and last worker finishing its body: large skew
  // means the tail thread ran partly alone and the trial measured less
  // contention than configured.
  double join_skew_seconds = 0;
  TransitionStats stats;
  // The unmerged per-thread counters behind `stats` (index = ThreadId).
  // Bench --json reports export the per-thread fast-path hit counts and
  // elision hit rates from here; skew across threads is itself a signal
  // (one thread missing its ownership cache means its objects are churning).
  std::vector<TransitionStats> per_thread_stats;
  std::vector<std::uint64_t> checksums;
  // Threads that ended by ThreadQuarantined instead of completing their body
  // (DESIGN.md §11.2). Their checksum slot is whatever they had accumulated
  // when the lease blow landed; value-determinism checks only apply to runs
  // with quarantined == 0.
  int quarantined = 0;
};

// `init(api, tid)` runs on every thread after registration but before the
// start barrier, so the heap is initialized (each pool owned by its
// allocating thread) before any thread enters the timed window.
template <typename MakeApi, typename Init, typename Warmup, typename Body>
WorkloadRunResult run_threads(int nthreads, MakeApi&& make_api, Init&& init,
                              Warmup&& warmup, Body&& body) {
  WorkloadRunResult result;
  result.checksums.assign(static_cast<std::size_t>(nthreads), 0);
  std::vector<TransitionStats> stats(static_cast<std::size_t>(nthreads));
  std::vector<std::chrono::steady_clock::time_point> finished(
      static_cast<std::size_t>(nthreads));

  // Two rendezvous: init (single-owner setup) must complete everywhere
  // before warm-up touches shared data, and warm-up must complete before
  // the timed window opens.
  std::barrier init_barrier(nthreads);
  std::barrier start_barrier(nthreads + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));

  std::atomic<int> quarantined_total{0};
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      const ThreadId tid = static_cast<ThreadId>(t);
      auto api = make_api(tid);
      api.begin_thread(tid);
      // Quarantine tolerance (DESIGN.md §11.2): a thread whose lease was
      // revoked ends its run at the throw, but it must still *arrive* at
      // both barriers or every healthy thread deadlocks. It arrives without
      // begin_wait/end_wait — those are runtime safe points and would
      // re-park it — which is safe precisely because it is quarantined:
      // coordination against it succeeds implicitly while it waits.
      bool quarantined = false;
      const auto step = [&](auto&& fn) {
        if (quarantined) return;
        try {
          fn();
        } catch (const ThreadQuarantined&) {
          quarantined = true;
        }
      };
      step([&] { init(api, tid); });
      step([&] { api.begin_wait(); });
      init_barrier.arrive_and_wait();
      step([&] { api.end_wait(); });
      step([&] { warmup(api, tid); });
      api.reset_stats();  // report steady-state statistics, not warm-up
      step([&] { api.begin_wait(); });
      start_barrier.arrive_and_wait();
      step([&] { api.end_wait(); });
      step([&] {
        result.checksums[static_cast<std::size_t>(t)] = body(api, tid);
      });
      finished[static_cast<std::size_t>(t)] = std::chrono::steady_clock::now();
      stats[static_cast<std::size_t>(t)] = api.take_stats();
      // A quarantined thread stays registered (implicit coordination must
      // keep succeeding against its terminal status); only healthy threads
      // run the exit-flush PSRO. end_thread itself may discover a quarantine
      // that landed after the body finished.
      step([&] { api.end_thread(); });
      if (quarantined) quarantined_total.fetch_add(1, std::memory_order_relaxed);
    });
  }

  start_barrier.arrive_and_wait();
  WallTimer timer;
  const std::uint64_t cycles0 = read_cycles();
  for (auto& th : threads) th.join();
  result.cycles = read_cycles() - cycles0;
  result.seconds = timer.elapsed_seconds();
  result.quarantined = quarantined_total.load(std::memory_order_relaxed);
  for (const auto& s : stats) result.stats += s;
  result.per_thread_stats = std::move(stats);
  auto [first, last] = std::minmax_element(finished.begin(), finished.end());
  result.join_skew_seconds =
      std::chrono::duration<double>(*last - *first).count();
  return result;
}

// Back-compat overload without a warm-up phase.
template <typename MakeApi, typename Init, typename Body>
WorkloadRunResult run_threads(int nthreads, MakeApi&& make_api, Init&& init,
                              Body&& body) {
  return run_threads(nthreads, std::forward<MakeApi>(make_api),
                     std::forward<Init>(init), [](auto&, ThreadId) {},
                     std::forward<Body>(body));
}

// Convenience wrapper for the standard workload body.
template <typename MakeApi>
WorkloadRunResult run_workload(const WorkloadConfig& cfg, WorkloadData& data,
                               MakeApi&& make_api) {
  return run_threads(
      cfg.threads, std::forward<MakeApi>(make_api),
      [&data](auto& api, ThreadId tid) { api.init_data(data, tid); },
      [&data](auto& api, ThreadId) { data.warmup_shared(api); },
      [&cfg, &data](auto& api, ThreadId tid) {
        return workload_thread_body(api, cfg, data, tid);
      });
}

}  // namespace ht
