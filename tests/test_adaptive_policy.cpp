// Adaptive-policy unit tests: the Eq. 4/5 decision formulas, footnote-7
// explicit-only counting, the no-repeat rule ("Checks and balances"), the
// infinite-cutoff configuration, and the §7.5 contended-escape extension.
#include "tracking/adaptive_policy.hpp"

#include <gtest/gtest.h>

namespace ht {
namespace {

TEST(AdaptivePolicy, TransfersAfterCutoffExplicitConflicts) {
  AdaptivePolicy p(PolicyConfig{});  // cutoff 4
  ObjectMeta m;
  m.reset(StateWord::wr_ex_opt(0));
  EXPECT_FALSE(p.to_pess_on_conflict(m, true));  // 1
  EXPECT_FALSE(p.to_pess_on_conflict(m, true));  // 2
  EXPECT_FALSE(p.to_pess_on_conflict(m, true));  // 3
  EXPECT_TRUE(p.to_pess_on_conflict(m, true));   // 4 >= cutoff
}

TEST(AdaptivePolicy, ImplicitConflictsDoNotCount) {
  PolicyConfig cfg;
  cfg.cutoff_confl = 1;
  AdaptivePolicy p(cfg);
  ObjectMeta m;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.to_pess_on_conflict(m, false));
  EXPECT_EQ(m.profile().load().opt_conflicts(), 0u);
  EXPECT_TRUE(p.to_pess_on_conflict(m, true));
}

TEST(AdaptivePolicy, InfiniteCutoffNeverTransfers) {
  AdaptivePolicy p(PolicyConfig::infinite());
  ObjectMeta m;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(p.to_pess_on_conflict(m, true));
}

TEST(AdaptivePolicy, Equation5GovernsReturnToOptimistic) {
  PolicyConfig cfg;
  cfg.k_confl = 10;
  cfg.inertia = 5;
  AdaptivePolicy p(cfg);
  ObjectMeta m;

  // 1 conflicting pessimistic transition -> need >= 10*1 + 5 non-conflicting.
  p.note_pess_transition(m, /*conflicting=*/true);
  for (int i = 0; i < 14; ++i) p.note_pess_transition(m, false);
  EXPECT_FALSE(p.should_go_opt(m));  // 14 < 15
  p.note_pess_transition(m, false);
  EXPECT_TRUE(p.should_go_opt(m));  // 15 >= 15
}

TEST(AdaptivePolicy, InertiaBlocksPrematureReturn) {
  PolicyConfig cfg;
  cfg.k_confl = 10;
  cfg.inertia = 100;
  AdaptivePolicy p(cfg);
  ObjectMeta m;
  // Zero conflicts, but fewer than Inertia non-conflicting transitions.
  for (int i = 0; i < 99; ++i) p.note_pess_transition(m, false);
  EXPECT_FALSE(p.should_go_opt(m));
  p.note_pess_transition(m, false);
  EXPECT_TRUE(p.should_go_opt(m));
}

TEST(AdaptivePolicy, ObjectsMustStayOptimisticAfterOneRoundTrip) {
  PolicyConfig cfg;
  cfg.cutoff_confl = 1;
  cfg.inertia = 1;
  AdaptivePolicy p(cfg);
  ObjectMeta m;
  EXPECT_TRUE(p.to_pess_on_conflict(m, true));
  p.note_pess_transition(m, false);
  EXPECT_TRUE(p.to_opt_on_unlock(m));
  // Second trip is forbidden regardless of further conflicts (§6.2).
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.to_pess_on_conflict(m, true));
}

TEST(AdaptivePolicy, CommitClearsPessCountersAndPins) {
  PolicyConfig cfg;
  cfg.inertia = 1;
  AdaptivePolicy p(cfg);
  ObjectMeta m;
  p.note_pess_transition(m, false);
  ASSERT_TRUE(p.should_go_opt(m));
  p.commit_go_opt(m);
  const ProfileWord w = m.profile().load();
  EXPECT_TRUE(w.must_stay_opt());
  EXPECT_EQ(w.pess_non_confl(), 0u);
}

TEST(AdaptivePolicy, ShouldGoOptIsPure) {
  PolicyConfig cfg;
  cfg.inertia = 1;
  AdaptivePolicy p(cfg);
  ObjectMeta m;
  p.note_pess_transition(m, false);
  const std::uint64_t before = m.profile().load().raw();
  EXPECT_TRUE(p.should_go_opt(m));
  EXPECT_TRUE(p.should_go_opt(m));
  EXPECT_EQ(m.profile().load().raw(), before);
}

TEST(AdaptivePolicy, ContendedEscapeReturnsRacyObjectsToOptimistic) {
  // §7.5: "Hybrid tracking could alleviate this deficiency by modifying the
  // adaptive policy to switch a pessimistic object back to optimistic states
  // if accesses to it trigger coordination frequently."
  AdaptivePolicy p(PolicyConfig::with_escape(3));
  ObjectMeta m;
  // Lots of conflicting pessimistic transitions: Eq. 5 will never fire.
  for (int i = 0; i < 50; ++i) p.note_pess_transition(m, true);
  EXPECT_FALSE(p.should_go_opt(m));
  p.note_pess_contended(m);
  p.note_pess_contended(m);
  EXPECT_FALSE(p.should_go_opt(m));
  p.note_pess_contended(m);
  EXPECT_TRUE(p.should_go_opt(m));
}

TEST(AdaptivePolicy, EscapeDisabledByDefault) {
  AdaptivePolicy p(PolicyConfig{});
  ObjectMeta m;
  for (int i = 0; i < 100; ++i) {
    p.note_pess_transition(m, true);
    p.note_pess_contended(m);
  }
  EXPECT_FALSE(p.should_go_opt(m));
}

TEST(AdaptivePolicy, RepessAllowsSecondTripAtEscalatedCutoff) {
  // §6.2 alternative: "the policy could allow repeated transitions from
  // optimistic to pessimistic, but with a greater Cutoff_confl value."
  PolicyConfig cfg = PolicyConfig::with_repess(/*multiplier=*/3);
  cfg.cutoff_confl = 2;
  cfg.inertia = 1;
  AdaptivePolicy p(cfg);
  ObjectMeta m;

  // First trip at the base cutoff (2 conflicts).
  EXPECT_FALSE(p.to_pess_on_conflict(m, true));
  EXPECT_TRUE(p.to_pess_on_conflict(m, true));
  p.note_pess_transition(m, false);
  EXPECT_TRUE(p.to_opt_on_unlock(m));  // returns, pinned... but repess allowed

  // Second trip requires cutoff * multiplier = 6 total conflicts.
  EXPECT_FALSE(p.to_pess_on_conflict(m, true));  // 3
  EXPECT_FALSE(p.to_pess_on_conflict(m, true));  // 4
  EXPECT_FALSE(p.to_pess_on_conflict(m, true));  // 5
  EXPECT_TRUE(p.to_pess_on_conflict(m, true));   // 6 >= 6
}

TEST(AdaptivePolicy, RepessDisabledKeepsStayOptRule) {
  PolicyConfig cfg;
  cfg.cutoff_confl = 1;
  cfg.inertia = 1;
  AdaptivePolicy p(cfg);
  ObjectMeta m;
  EXPECT_TRUE(p.to_pess_on_conflict(m, true));
  p.note_pess_transition(m, false);
  EXPECT_TRUE(p.to_opt_on_unlock(m));
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(p.to_pess_on_conflict(m, true));
}

TEST(AdaptivePolicy, PaperDefaultParameterValues) {
  const PolicyConfig c = PolicyConfig::paper_defaults();
  EXPECT_EQ(c.cutoff_confl, 4u);
  EXPECT_EQ(c.k_confl, 200u);
  EXPECT_EQ(c.inertia, 100u);
  EXPECT_FALSE(c.infinite_cutoff);
  EXPECT_EQ(c.contended_escape_threshold, 0u);
}

}  // namespace
}  // namespace ht
