// Access-API contract tests: instrumentation-point discipline (the replayer
// depends on every API advancing point indices identically), lock elision in
// replay, enforcer access counting, and stats plumbing.
#include <gtest/gtest.h>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/null_tracker.hpp"
#include "workload/apis.hpp"

namespace ht {
namespace {

TEST(DirectApi, AdvancesPointIndexPerInstrumentationPoint) {
  Runtime rt;
  NullTracker tracker(rt);
  DirectApi<NullTracker> api(rt, tracker);
  api.begin_thread(0);
  ThreadContext& ctx = api.context();

  TrackedVar<std::uint64_t> v;
  v.init(tracker, ctx, 0);
  ProgramLock lock;

  const std::uint64_t p0 = ctx.point_index;
  (void)api.load(v);      // +1
  api.store(v, 1);        // +1
  api.lock(lock);         // +1
  api.unlock(lock);       // +1 (PSRO)
  api.poll();             // +1
  EXPECT_EQ(ctx.point_index, p0 + 5);
  api.end_thread();
}

TEST(ReplayApi, MirrorsPointIndexDiscipline) {
  // A recording with no events: replay must advance through the same number
  // of points without touching any event machinery.
  Recording rec;
  rec.threads.resize(1);
  Replayer rp(rec);
  ReplayApi api(rp);
  api.begin_thread(0);

  TrackedVar<std::uint64_t> v;
  v.raw_store(7);
  ProgramLock lock;

  EXPECT_EQ(api.load(v), 7u);
  api.store(v, 9);
  EXPECT_EQ(v.raw_load(), 9u);
  api.lock(lock);    // elided: must not actually acquire
  api.lock(lock);    // would deadlock if real
  api.unlock(lock);  // PSRO point: bumps replay release counter
  EXPECT_EQ(rp.release_counter(0), 1u);
  api.end_thread();
  EXPECT_EQ(rp.release_counter(0), 2u);  // thread-end bump
}

TEST(EnforcerApi, CountsAccessesWithinRegion) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  RsEnforcer<HybridTracker<>> enf(rt, tracker);
  EnforcerApi<HybridTracker<>> api(rt, enf);
  api.begin_thread(0);
  ThreadContext& ctx = api.context();

  TrackedVar<std::uint64_t> v;
  v.init(tracker, ctx, 0);

  api.region([&] {
    EXPECT_EQ(ctx.region_access_count, 0u);
    (void)api.load(v);
    EXPECT_EQ(ctx.region_access_count, 1u);
    api.store(v, 2);
    EXPECT_EQ(ctx.region_access_count, 2u);
  });
  EXPECT_FALSE(ctx.in_region);
  EXPECT_EQ(ctx.undo_log, nullptr);
  api.end_thread();
}

TEST(EnforcerApi, RegionWritesAreUndoLogged) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  RsEnforcer<HybridTracker<>> enf(rt, tracker);
  EnforcerApi<HybridTracker<>> api(rt, enf);
  api.begin_thread(0);
  ThreadContext& ctx = api.context();

  TrackedVar<std::uint64_t> v;
  v.init(tracker, ctx, 5);
  api.region([&] {
    api.store(v, 6);
    ASSERT_NE(ctx.undo_log, nullptr);
    EXPECT_EQ(ctx.undo_log->size(), 1u);
  });
  EXPECT_EQ(v.raw_load(), 6u);  // committed
  api.end_thread();
}

TEST(DirectApi, StatsSnapshotTracksContext) {
  Runtime rt;
  HybridTracker<true> tracker(rt, HybridConfig{});
  DirectApi<HybridTracker<true>> api(rt, tracker);
  api.begin_thread(0);
  TrackedVar<std::uint64_t> v;
  v.init(tracker, api.context(), 0);
  api.store(v, 1);
  api.store(v, 2);
  const TransitionStats snap = api.take_stats();
  EXPECT_EQ(snap.opt_same + snap.elision_hits, 2u);
  api.end_thread();
}

TEST(RunThreads, MergesStatsAndChecksums) {
  Runtime rt;
  NullTracker tracker(rt);
  const auto r = run_threads(
      3, [&](ThreadId) { return DirectApi<NullTracker>(rt, tracker); },
      [](auto&, ThreadId) {}, [](auto&, ThreadId tid) {
        return static_cast<std::uint64_t>(tid) + 100;
      });
  ASSERT_EQ(r.checksums.size(), 3u);
  EXPECT_EQ(r.checksums[0], 100u);
  EXPECT_EQ(r.checksums[2], 102u);
  EXPECT_GE(r.seconds, 0.0);
}

}  // namespace
}  // namespace ht
