// Chaos tests: randomized multi-threaded schedules driving the raw tracker
// and runtime APIs directly — random accesses, random PSROs, random blocking
// windows, random thread exits — asserting only the invariants that must
// hold under ANY schedule. This is the failure-injection layer: scenarios
// the structured workloads never produce (blocking mid-lock-buffer, exits
// while holding read shares, PSRO storms) appear here with high probability.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/xorshift.hpp"
#include "faultinject/fault_injector.hpp"
#include "test_util.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

struct ChaosCase {
  std::uint64_t seed;
  int threads;
  int objects;
};

class ChaosP : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosP, HybridSurvivesRandomSchedules) {
  const ChaosCase c = GetParam();
  Runtime rt;
  HybridConfig hc;
  hc.policy.cutoff_confl = 2;  // aggressive transfers: more pessimistic churn
  hc.policy.inertia = 8;
  hc.policy.k_confl = 4;       // and frequent returns to optimistic
  HybridTracker<true> tracker(rt, hc);

  std::vector<TrackedVar<std::uint64_t>> vars(
      static_cast<std::size_t>(c.objects));
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < c.threads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext& ctx = rt.register_thread();
      tracker.attach_thread(ctx);
      if (ctx.id == 0) {
        for (auto& v : vars) v.init(tracker, ctx, 0);
      }
      ready.fetch_add(1);
      while (ready.load() < c.threads) {
        rt.poll(ctx);
        std::this_thread::yield();
      }
      Xoshiro256 rng(c.seed * 977 + static_cast<std::uint64_t>(t));
      const int ops = 2'000 + static_cast<int>(rng.next_below(2'000));
      for (int i = 0; i < ops; ++i) {
        auto& v = vars[rng.next_below(static_cast<std::uint64_t>(c.objects))];
        switch (rng.next_below(8)) {
          case 0:
          case 1:
          case 2:
            v.store(tracker, ctx, rng.next());
            break;
          case 3:
          case 4:
          case 5:
            (void)v.load(tracker, ctx);
            break;
          case 6:
            rt.psro(ctx);
            break;
          case 7:
            // Random blocking window: flushes, parks, wakes.
            rt.begin_blocking(ctx);
            if (rng.chance(1, 2)) std::this_thread::yield();
            rt.end_blocking(ctx);
            break;
        }
        rt.poll(ctx);
        if (rng.chance(1, 8)) std::this_thread::yield();
      }
      rt.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();

  // Invariants under any schedule: every object quiescent (no locks, no Int,
  // valid kind) once all threads have flushed and exited.
  for (auto& v : vars) {
    const StateWord s = v.meta().load_state();
    EXPECT_TRUE(s.is_optimistic() || s.is_pess_unlocked()) << s.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosP,
    ::testing::Values(ChaosCase{11, 2, 4}, ChaosCase{22, 3, 2},
                      ChaosCase{33, 4, 8}, ChaosCase{44, 4, 1},
                      ChaosCase{55, 6, 3}, ChaosCase{66, 3, 16}),
    [](const ::testing::TestParamInfo<ChaosCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_t" +
             std::to_string(param_info.param.threads) + "_o" +
             std::to_string(param_info.param.objects);
    });

// Injector-driven chaos: the same random schedules, but with the fault
// injector perturbing them — slow polls, skipped poll windows, bounded
// coordination stalls, tracker slow-path delays, and (in the second test)
// injected thread deaths. The invariants must hold anyway; the watchdog runs
// in kContinue mode so stall windows are diagnosed, not fatal.
void run_injected_chaos(FaultConfig fc, std::uint64_t seed, int nthreads,
                        int objects) {
  FaultInjector inj(fc);
  RuntimeConfig rc;
  rc.fault_injector = &inj;
  rc.watchdog.stall_epochs = 512;  // diagnose injected stalls while we wait
  std::atomic<int> dumps{0};
  rc.watchdog.sink = [&](const CoordStallDiagnostic&) { ++dumps; };
  Runtime rt(rc);

  HybridConfig hc;
  hc.policy.cutoff_confl = 2;
  hc.policy.inertia = 8;
  hc.policy.k_confl = 4;
  HybridTracker<true> tracker(rt, hc);

  std::vector<TrackedVar<std::uint64_t>> vars(
      static_cast<std::size_t>(objects));
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext& ctx = rt.register_thread();
      tracker.attach_thread(ctx);
      if (ctx.id == 0) {
        for (auto& v : vars) v.init(tracker, ctx, 0);
      }
      ready.fetch_add(1);
      while (ready.load() < nthreads) {
        rt.poll(ctx);
        std::this_thread::yield();
      }
      Xoshiro256 rng(seed * 977 + static_cast<std::uint64_t>(t));
      const int ops = 2'000 + static_cast<int>(rng.next_below(2'000));
      for (int i = 0; i < ops; ++i) {
        auto& v = vars[rng.next_below(static_cast<std::uint64_t>(objects))];
        switch (rng.next_below(8)) {
          case 0:
          case 1:
          case 2:
            v.store(tracker, ctx, rng.next());
            break;
          case 3:
          case 4:
          case 5:
            (void)v.load(tracker, ctx);
            break;
          case 6:
            rt.psro(ctx);
            break;
          case 7:
            rt.begin_blocking(ctx);
            if (rng.chance(1, 2)) std::this_thread::yield();
            rt.end_blocking(ctx);
            break;
        }
        rt.poll(ctx);
        if (rng.chance(1, 8)) std::this_thread::yield();
      }
      rt.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(inj.total_fired(), 0u) << inj.summary();
  for (auto& v : vars) {
    const StateWord s = v.meta().load_state();
    EXPECT_TRUE(s.is_optimistic() || s.is_pess_unlocked()) << s.to_string();
  }
}

TEST(ChaosInjected, HybridSurvivesFaultySchedules) {
  FaultConfig fc;
  fc.seed = 99;
  fc.delay_spins = 500;
  fc.stall_polls = 64;
  fc.enable(FaultSite::kPollDelay, 1'000)
      .enable(FaultSite::kPollSkip, 3'000)
      .enable(FaultSite::kCoordStall, 150)
      .enable(FaultSite::kSlowPathDelay, 2'000);
  run_injected_chaos(fc, 77, 4, 8);
}

TEST(ChaosInjected, HybridSurvivesInjectedDeaths) {
  // Death suppresses only deterministic safe points: the dead thread still
  // answers requests at its PSROs, blocking entries, and coordination waits,
  // so progress stays live (the rationale in fault_injector.hpp).
  FaultConfig fc;
  fc.seed = 5;
  fc.stall_polls = 32;
  fc.enable(FaultSite::kThreadDeath, 150)
      .enable(FaultSite::kPollSkip, 2'000)
      .enable(FaultSite::kCoordStall, 100);
  run_injected_chaos(fc, 123, 4, 4);
}

TEST(Chaos, OptimisticSurvivesBlockingStorms) {
  Runtime rt;
  OptimisticTracker<> tracker(rt);
  TrackedVar<std::uint64_t> var;
  std::atomic<int> ready{0};
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext& ctx = rt.register_thread();
      if (ctx.id == 0) var.init(tracker, ctx, 0);
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        rt.poll(ctx);
        std::this_thread::yield();
      }
      Xoshiro256 rng(1234 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 3'000; ++i) {
        if (rng.chance(1, 3)) {
          rt.begin_blocking(ctx);
          rt.end_blocking(ctx);
        }
        if (rng.chance(1, 2)) {
          var.store(tracker, ctx, rng.next());
        } else {
          (void)var.load(tracker, ctx);
        }
        rt.poll(ctx);
        std::this_thread::yield();
      }
      rt.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(var.meta().load_state().is_optimistic());
}

}  // namespace
}  // namespace ht
