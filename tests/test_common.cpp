// Unit tests for the common utility layer.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/cache_line.hpp"
#include "common/flat_set.hpp"
#include "common/json.hpp"
#include "common/mpsc_queue.hpp"
#include "common/spin.hpp"
#include "common/stats.hpp"
#include "common/xorshift.hpp"
#include "telemetry/metrics.hpp"

namespace ht {
namespace {

// --- RunStats ---------------------------------------------------------------

TEST(RunStats, MedianOddEven) {
  RunStats s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(RunStats, MeanAndStddev) {
  RunStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_GT(s.ci95_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunStats, SingleSampleHasZeroCi) {
  RunStats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunStats, EmptyStatsNeverReturnNan) {
  const RunStats s;
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(RunStats, PercentileInterpolatesBetweenSortedSamples) {
  RunStats s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), s.median());
  // rank = 0.25 * 3 = 0.75 -> 1.0 + 0.75 * (2.0 - 1.0)
  EXPECT_DOUBLE_EQ(s.percentile(25), 1.75);
  // Out-of-range requests clamp to the extremes.
  EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(200), 4.0);
}

TEST(RunStats, PercentileOfSingleSample) {
  RunStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(10), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 7.0);
}

TEST(GeomeanOverhead, MatchesHandComputation) {
  // (1.10 * 1.21)^(1/2) - 1 = 0.1537...
  EXPECT_NEAR(geomean_overhead({0.10, 0.21}), 0.15372, 1e-4);
  EXPECT_NEAR(geomean_overhead({0.0, 0.0}), 0.0, 1e-12);
  // Speedups (negative overhead) participate correctly.
  EXPECT_LT(geomean_overhead({-0.5, 0.0}), 0.0);
}

TEST(FormatSci, SmallIntegersPrintPlainly) {
  EXPECT_EQ(format_sci(0), "0");
  EXPECT_EQ(format_sci(7), "7");
  EXPECT_EQ(format_sci(99), "99");
}

TEST(FormatSci, LargeValuesUseMantissaExponent) {
  EXPECT_EQ(format_sci(1.2e10), "1.2e10");
  EXPECT_EQ(format_sci(6.1e8), "6.1e8");
  EXPECT_EQ(format_sci(130), "1.3e2");
}

// --- json ---------------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  json::Object o;
  o["n"] = json::Value(std::uint64_t{18446744073709551615ull} / 2);  // 2^63-ish
  o["s"] = json::Value(std::string("a\"b\\c\n"));
  o["b"] = json::Value(true);
  o["arr"] = json::Value(json::Array{json::Value(1.5), json::Value()});
  const std::string text = json::Value(std::move(o)).dump();

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(text, parsed, &error)) << error;
  EXPECT_EQ(parsed.at("s").as_string(), "a\"b\\c\n");
  EXPECT_TRUE(parsed.at("b").as_bool());
  EXPECT_DOUBLE_EQ(parsed.at("arr").at(0).as_double(), 1.5);
  EXPECT_TRUE(parsed.at("arr").at(1).is_null());
  EXPECT_TRUE(parsed.at("missing").is_null());
}

TEST(Json, RejectsMalformedInput) {
  json::Value v;
  std::string error;
  EXPECT_FALSE(json::parse("", v, &error));
  EXPECT_FALSE(json::parse("{\"a\":1", v, &error));
  EXPECT_FALSE(json::parse("{} trailing", v, &error));
  EXPECT_FALSE(json::parse("{\"a\":1}x", v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Json, IntegersSurviveExactly) {
  EXPECT_EQ(json::Value(std::uint64_t{123456789012345ull}).dump(),
            "123456789012345");
  json::Value v;
  ASSERT_TRUE(json::parse("123456789012345", v));
  EXPECT_EQ(v.as_u64(), 123456789012345ull);
}

// --- Log2Histogram ------------------------------------------------------------

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1000);
  EXPECT_EQ(h.total_weight(), 6u);
  EXPECT_EQ(h.cumulative_le(0), 1u);
  EXPECT_EQ(h.cumulative_le(1), 2u);
  EXPECT_EQ(h.cumulative_le(3), 4u);  // 0,1,{2,3}
  EXPECT_EQ(h.cumulative_le(4), 5u);
  EXPECT_EQ(h.cumulative_le(1 << 20), 6u);
}

TEST(Log2Histogram, WeightsAccumulate) {
  Log2Histogram h;
  h.add(5, 10);
  h.add(6, 20);
  EXPECT_EQ(h.total_weight(), 30u);
  EXPECT_EQ(h.cumulative_le(7), 30u);
}

TEST(Log2Histogram, EmptyHistogramHasNoWeightAnywhere) {
  const Log2Histogram h;
  EXPECT_EQ(h.total_weight(), 0u);
  EXPECT_EQ(h.cumulative_le(0), 0u);
  EXPECT_EQ(h.cumulative_le(~std::uint64_t{0}), 0u);
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.bucket(i), 0u);
  }
}

TEST(Log2Histogram, ZeroValueLandsInBucketZero) {
  Log2Histogram h;
  h.add(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.cumulative_le(0), 1u);
  EXPECT_EQ(Log2Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_floor(1), 1u);
}

TEST(Log2Histogram, MaxValueClampsToOverflowBucket) {
  // 64 - clz(UINT64_MAX) = 64, far past the default 40 buckets: the value
  // must land in the last (overflow) bucket, not index out of range.
  Log2Histogram h;
  h.add(~std::uint64_t{0});
  h.add((std::uint64_t{1} << 40));  // first value past the covered range
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 2u);
  EXPECT_EQ(h.total_weight(), 2u);
  EXPECT_EQ(h.cumulative_le(~std::uint64_t{0}), 2u);
}

// --- LatencyHistogram edge cases ---------------------------------------------

TEST(LatencyHistogram, ZeroSamplesExportEmpty) {
  const telemetry::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogram, ValueZeroCountsWithoutAffectingSumOrMax) {
  telemetry::LatencyHistogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.buckets().bucket(0), 1u);
}

TEST(LatencyHistogram, MaxValueSaturatesOverflowBucketAndMax) {
  telemetry::LatencyHistogram h;
  h.add(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_EQ(h.buckets().bucket(h.buckets().bucket_count() - 1), 1u);
}

// --- Xoshiro ---------------------------------------------------------------------

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Xoshiro256 a2(42), c2(43);
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= a2.next() != c2.next();
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, NextBelowIsInRange) {
  Xoshiro256 r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 16ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Xoshiro, ChanceIsRoughlyCalibrated) {
  Xoshiro256 r(7);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(25, 100) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.02);
}

// --- FlatPtrSet ---------------------------------------------------------------------

TEST(FlatPtrSet, InsertContainsClear) {
  FlatPtrSet s;
  int dummy[100];
  EXPECT_TRUE(s.empty());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.insert(&dummy[i]));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(s.insert(&dummy[i]));
  EXPECT_EQ(s.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.contains(&dummy[i]));
  s.clear();
  EXPECT_TRUE(s.empty());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(s.contains(&dummy[i]));
}

TEST(FlatPtrSet, GrowsPastInitialCapacity) {
  FlatPtrSet s(16);
  std::vector<std::unique_ptr<int>> ptrs;
  for (int i = 0; i < 1000; ++i) {
    ptrs.push_back(std::make_unique<int>(i));
    EXPECT_TRUE(s.insert(ptrs.back().get()));
  }
  EXPECT_EQ(s.size(), 1000u);
  for (const auto& p : ptrs) EXPECT_TRUE(s.contains(p.get()));
}

TEST(FlatPtrSet, SurvivesClearReuseCycles) {
  // The pessimistic read set is cleared wholesale at every lock-buffer
  // flush and immediately refilled; membership must stay exact across many
  // such cycles (no stale tombstones, no leaked load factor).
  FlatPtrSet s(16);
  int dummy[64];
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 64; ++i) EXPECT_TRUE(s.insert(&dummy[i]));
    EXPECT_EQ(s.size(), 64u);
    for (int i = 0; i < 64; ++i) EXPECT_TRUE(s.contains(&dummy[i]));
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.contains(&dummy[cycle % 64]));
  }
}

TEST(FlatPtrSet, DuplicateInsertsNeverGrowSize) {
  FlatPtrSet s(16);
  int x = 0;
  EXPECT_TRUE(s.insert(&x));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(s.insert(&x));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatPtrSet, GrowPreservesMembershipAcrossLoadFactorBoundary) {
  // Cross the 3/4 load boundary of the smallest table exactly: capacity 16
  // grows when the 13th insertion would exceed 12/16.
  FlatPtrSet s(1);  // rounds up to the 16-slot minimum
  std::vector<std::unique_ptr<int>> ptrs;
  for (int i = 0; i < 13; ++i) {
    ptrs.push_back(std::make_unique<int>(i));
    EXPECT_TRUE(s.insert(ptrs.back().get()));
    // Every earlier pointer survives each incremental rehash.
    for (const auto& p : ptrs) EXPECT_TRUE(s.contains(p.get()));
  }
  EXPECT_EQ(s.size(), 13u);
}

TEST(FlatPtrSet, ClearOnEmptyIsIdempotent) {
  FlatPtrSet s;
  s.clear();
  s.clear();
  EXPECT_TRUE(s.empty());
  int x = 0;
  EXPECT_FALSE(s.contains(&x));
}

// --- CachePadded ---------------------------------------------------------------------

TEST(CachePadded, WrapsValueInAnAlignedLine) {
  static_assert(kCacheLine == 64, "padding fixed at 64 bytes by design");
  static_assert(alignof(CachePadded<std::uint32_t>) == kCacheLine);
  static_assert(sizeof(CachePadded<std::uint32_t>) == kCacheLine);
  // A value wider than one line pads up to whole lines, never truncates.
  struct Wide {
    char bytes[kCacheLine + 1];
  };
  static_assert(sizeof(CachePadded<Wide>) % kCacheLine == 0);
  static_assert(sizeof(CachePadded<Wide>) >= sizeof(Wide));

  CachePadded<std::uint64_t> p(7);
  EXPECT_EQ(*p, 7u);
  *p = 9;
  EXPECT_EQ(*p, 9u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&p) % kCacheLine, 0u);
}

TEST(CachePadded, AdjacentElementsLandOnDistinctLines) {
  // The whole point: two hot counters that are neighbors in memory must not
  // share a line (one spinner's invalidations would stall the other).
  CachePadded<std::atomic<std::uint64_t>> counters[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&counters[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&counters[1].value);
  EXPECT_GE(b > a ? b - a : a - b, kCacheLine);
  EXPECT_NE(a / kCacheLine, b / kCacheLine);
  counters[0].value.store(1);
  counters[1]->store(2);
  EXPECT_EQ(counters[0]->load(), 1u);
  EXPECT_EQ(counters[1]->load(), 2u);
}

// --- MpscQueue ------------------------------------------------------------------------

struct Node {
  Node* next = nullptr;
  int value = 0;
};

TEST(MpscQueue, FifoWithinOneProducer) {
  MpscQueue<Node> q;
  Node nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].value = i;
    q.push(&nodes[i]);
  }
  Node* head = q.drain();
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->value, i);
    head = head->next;
  }
  EXPECT_EQ(head, nullptr);
  EXPECT_TRUE(q.empty_relaxed());
}

TEST(MpscQueue, DrainPreservesPerProducerFifoOrder) {
  // The coordination mailbox answers each requester's entries in the order
  // that requester pushed them (a batch round's response stamps must pair
  // with the round that asked). Global order across producers is
  // unspecified; per-producer order is the contract under test.
  MpscQueue<Node> q;
  constexpr int kProducers = 4, kPerProducer = 500;
  std::vector<std::vector<Node>> nodes(kProducers,
                                       std::vector<Node>(kPerProducer));
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].value = p * kPerProducer + i;
        q.push(&nodes[p][i]);
      }
    });
  }
  for (auto& t : producers) t.join();
  std::vector<int> last_seen(kProducers, -1);
  int total = 0;
  for (Node* n = q.drain(); n != nullptr; n = n->next) {
    const int p = n->value / kPerProducer;
    const int i = n->value % kPerProducer;
    EXPECT_GT(i, last_seen[p]) << "producer " << p << " reordered";
    last_seen[p] = i;
    ++total;
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
}

TEST(MpscQueue, NodesWrapAcrossDrainCycles) {
  // Requesters reuse a tiny fixed node pool (ThreadContext keeps 4), so the
  // same node objects flow through push/drain many times; each cycle must
  // see a self-consistent list with no carryover from the previous drain.
  MpscQueue<Node> q;
  Node pool[4];
  for (int cycle = 0; cycle < 100; ++cycle) {
    const int n = 1 + cycle % 4;
    for (int i = 0; i < n; ++i) {
      pool[i].value = cycle * 10 + i;
      q.push(&pool[i]);
    }
    EXPECT_FALSE(q.empty_relaxed());
    int i = 0;
    for (Node* head = q.drain(); head != nullptr; head = head->next, ++i) {
      EXPECT_EQ(head->value, cycle * 10 + i);
    }
    EXPECT_EQ(i, n);
    EXPECT_TRUE(q.empty_relaxed());
    EXPECT_EQ(q.drain(), nullptr);  // double drain is harmless
  }
}

TEST(MpscQueue, DrainWhileProducersAreStillPushing) {
  // The consumer drains at safe points while requesters keep arriving; every
  // node must surface in exactly one drain, and interleaved drains must
  // never corrupt the per-producer FIFO contract.
  MpscQueue<Node> q;
  constexpr int kProducers = 3, kPerProducer = 2000;
  std::vector<std::vector<Node>> nodes(kProducers,
                                       std::vector<Node>(kPerProducer));
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].value = p * kPerProducer + i;
        q.push(&nodes[p][i]);
      }
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  int total = 0;
  const auto consume = [&] {
    for (Node* n = q.drain(); n != nullptr; n = n->next) {
      const int p = n->value / kPerProducer;
      const int i = n->value % kPerProducer;
      EXPECT_GT(i, last_seen[p]);
      last_seen[p] = i;
      ++total;
    }
  };
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) consume();
    consume();  // final sweep after the last push
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_TRUE(q.empty_relaxed());
}

TEST(MpscQueue, ConcurrentProducersLoseNothing) {
  MpscQueue<Node> q;
  constexpr int kProducers = 4, kPerProducer = 1000;
  std::vector<std::vector<Node>> nodes(kProducers,
                                       std::vector<Node>(kPerProducer));
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].value = p * kPerProducer + i;
        q.push(&nodes[p][i]);
      }
    });
  }
  for (auto& t : producers) t.join();
  std::set<int> seen;
  for (Node* n = q.drain(); n != nullptr; n = n->next) seen.insert(n->value);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

// --- Backoff -------------------------------------------------------------------------

TEST(Backoff, EscalatesToYielding) {
  Backoff b(3);
  EXPECT_FALSE(b.yielding());
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_TRUE(b.yielding());
  b.reset();
  EXPECT_FALSE(b.yielding());
}

TEST(Backoff, EscalatesToSleepingAfterYieldBudget) {
  Backoff b(/*spins_before_yield=*/1, /*yields_before_sleep=*/4);
  EXPECT_FALSE(b.sleeping());
  for (int i = 0; i < 4; ++i) b.pause();  // 1 spin + 3 yields
  EXPECT_FALSE(b.sleeping());
  b.pause();  // the yield budget is spent: waits are sleep ticks from here
  EXPECT_TRUE(b.sleeping());
  EXPECT_TRUE(b.yielding());  // sleeping implies the CPU was ceded
  b.reset();
  EXPECT_FALSE(b.sleeping());
  EXPECT_FALSE(b.yielding());
}

}  // namespace
}  // namespace ht
