// Batched coordination rounds (DESIGN.md §13): one mailbox round trip covers
// a whole single-owner group of conflicting transitions, the owner's single
// flush-and-bump stamps every object's edge, and recordings made with
// batching stay structurally valid, lint-clean, and replayable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "analysis/hb_engine/hb_engine.hpp"
#include "analysis/trace_lint.hpp"
#include "recorder/recorder.hpp"
#include "recorder/recording_io.hpp"
#include "recorder/recording_validate.hpp"
#include "recorder/replayer.hpp"
#include "test_util.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

namespace ht {
namespace {

using testing::BlockedThread;

TEST(CoordBatch, ImplicitAgainstBlockedOwnerCountsOneRound) {
  Runtime rt;
  ThreadContext& me = rt.register_thread();
  BlockedThread owner(rt);
  const std::uint64_t before =
      owner.ctx().owner_side.release_counter.load(std::memory_order_acquire);
  const Runtime::CoordResult r = rt.coordinate_batch(me, owner.ctx().id, 5);
  EXPECT_TRUE(r.implicit);
  EXPECT_GE(r.src_release, before);
  EXPECT_EQ(me.stats.coordination_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_objects, 5u);
}

TEST(CoordBatch, ExplicitMailboxRoundStampsPostBumpCounter) {
  Runtime rt;
  ThreadContext& me = rt.register_thread();
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::thread owner_thread([&] {
    ThreadContext& oc = rt.register_thread();
    ready.store(true, std::memory_order_release);
    while (!done.load(std::memory_order_acquire)) {
      rt.poll(oc);
      std::this_thread::yield();
    }
    rt.unregister_thread(oc);
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
  // Owner id: contexts register in order, me == 0, owner == 1.
  const Runtime::CoordResult r = rt.coordinate_batch(me, 1, 3);
  EXPECT_FALSE(r.implicit);
  EXPECT_GE(r.src_release, 1u);  // the answering flush bumped at least once
  EXPECT_EQ(me.stats.coordination_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_objects, 3u);
  done.store(true, std::memory_order_release);
  owner_thread.join();
}

TEST(CoordBatch, PoolExhaustionDegradesToScalarRound) {
  Runtime rt;
  ThreadContext& me = rt.register_thread();
  BlockedThread owner(rt);
  owner.wake();  // running owner: the scalar fallback must ticket explicitly
  std::atomic<bool> done{false};
  std::thread responder([&] {
    while (!done.load(std::memory_order_acquire)) {
      rt.poll(owner.ctx());
      std::this_thread::yield();
    }
  });
  // Exhaust the requester-side node pool so coordinate_batch cannot post.
  for (auto& n : me.batch_pool.nodes) {
    n.consumed.store(false, std::memory_order_relaxed);
  }
  const Runtime::CoordResult r = rt.coordinate_batch(me, owner.ctx().id, 4);
  done.store(true, std::memory_order_release);
  responder.join();
  EXPECT_FALSE(r.implicit);
  // One round trip answered all four objects; the fallback must not
  // double-count rounds.
  EXPECT_EQ(me.stats.coordination_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_objects, 4u);
  for (auto& n : me.batch_pool.nodes) {
    n.consumed.store(true, std::memory_order_relaxed);
  }
  owner.block_again();
}

TEST(CoordBatch, HybridStoreBatchSettlesGroupWithOneImplicitRound) {
  Runtime rt;
  HybridTracker<true> tracker(rt);
  constexpr std::size_t kN = 8;
  ThreadContext& owner_ctx = rt.register_thread();
  std::vector<TrackedVar<std::uint64_t>> vars(kN);
  for (auto& v : vars) v.init(tracker, owner_ctx, 7);
  rt.begin_blocking(owner_ctx);  // group resolves implicitly

  ThreadContext& me = rt.register_thread();
  tracker.attach_thread(me);
  TrackedVar<std::uint64_t>* ptrs[kN];
  std::uint64_t vals[kN];
  for (std::size_t i = 0; i < kN; ++i) {
    ptrs[i] = &vars[i];
    vals[i] = 100 + i;
  }
  const std::uint64_t point_before = me.point_index;
  store_batch(tracker, me, ptrs, vals, kN);

  // ONE instrumentation point, ONE coordination round, kN conflicts settled.
  EXPECT_EQ(me.point_index, point_before + 1);
  EXPECT_EQ(me.stats.coordination_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_objects, kN);
  EXPECT_EQ(me.stats.opt_confl_implicit + me.stats.opt_confl_explicit, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(vars[i].raw_load(), 100 + i);
    const StateWord s = vars[i].meta().load_state();
    EXPECT_EQ(s.tid(), me.id) << "object " << i << " state " << s.to_string();
  }
  rt.end_blocking(owner_ctx);
}

TEST(CoordBatch, OptimisticStoreBatchAgainstRunningOwnerIsExplicit) {
  Runtime rt;
  OptimisticTracker<true> tracker(rt);
  constexpr std::size_t kN = 6;
  std::vector<TrackedVar<std::uint64_t>> vars(kN);
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::thread owner_thread([&] {
    ThreadContext& oc = rt.register_thread();
    for (auto& v : vars) v.init(tracker, oc, 1);
    ready.store(true, std::memory_order_release);
    while (!done.load(std::memory_order_acquire)) {
      rt.poll(oc);
      std::this_thread::yield();
    }
    rt.unregister_thread(oc);
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  ThreadContext& me = rt.register_thread();
  TrackedVar<std::uint64_t>* ptrs[kN];
  std::uint64_t vals[kN];
  for (std::size_t i = 0; i < kN; ++i) {
    ptrs[i] = &vars[i];
    vals[i] = 200 + i;
  }
  store_batch(tracker, me, ptrs, vals, kN);
  done.store(true, std::memory_order_release);
  owner_thread.join();

  EXPECT_EQ(me.stats.coord_batch_rounds, 1u);
  EXPECT_EQ(me.stats.coord_batch_objects, kN);
  EXPECT_EQ(me.stats.opt_confl_explicit, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(vars[i].raw_load(), 200 + i);
    EXPECT_TRUE(testing::state_is(vars[i].meta(), StateKind::kWrExOpt, me.id));
  }
}

TEST(CoordBatch, MixedOwnersSplitIntoPerOwnerGroups) {
  Runtime rt;
  HybridTracker<true> tracker(rt);
  ThreadContext& a = rt.register_thread();
  ThreadContext& b = rt.register_thread();
  std::vector<TrackedVar<std::uint64_t>> vars(8);
  for (std::size_t i = 0; i < 4; ++i) vars[i].init(tracker, a, 0);
  for (std::size_t i = 4; i < 8; ++i) vars[i].init(tracker, b, 0);
  rt.begin_blocking(a);
  rt.begin_blocking(b);

  ThreadContext& me = rt.register_thread();
  tracker.attach_thread(me);
  TrackedVar<std::uint64_t>* ptrs[8];
  std::uint64_t vals[8];
  for (std::size_t i = 0; i < 8; ++i) {
    ptrs[i] = &vars[i];
    vals[i] = i;
  }
  store_batch(tracker, me, ptrs, vals, 8);

  // Conflicts partition by owner: one batched round per distinct owner,
  // 2 rounds for 8 conflicts (instead of 8 unbatched).
  EXPECT_EQ(me.stats.coord_batch_rounds, 2u);
  EXPECT_EQ(me.stats.coord_batch_objects, 8u);
  EXPECT_EQ(me.stats.coordination_rounds, 2u);
  EXPECT_EQ(me.stats.opt_confl_implicit + me.stats.opt_confl_explicit, 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(vars[i].raw_load(), i);
    EXPECT_EQ(vars[i].meta().load_state().tid(), me.id);
  }
  rt.end_blocking(a);
  rt.end_blocking(b);
}

TEST(CoordBatch, DuplicateObjectsInOneBatchResolveAfterGroupLands) {
  // A duplicate of a group member reads this thread's own Int during pass 1
  // and must defer to the scalar loop AFTER the group lands — a same-batch
  // self-deadlock here would hang the test.
  Runtime rt;
  HybridTracker<true> tracker(rt);
  ThreadContext& owner_ctx = rt.register_thread();
  TrackedVar<std::uint64_t> v;
  v.init(tracker, owner_ctx, 3);
  rt.begin_blocking(owner_ctx);

  ThreadContext& me = rt.register_thread();
  tracker.attach_thread(me);
  TrackedVar<std::uint64_t>* ptrs[3] = {&v, &v, &v};
  const std::uint64_t vals[3] = {10, 11, 12};
  store_batch(tracker, me, ptrs, vals, 3);
  EXPECT_EQ(v.raw_load(), 12u);  // last store in batch order wins
  EXPECT_EQ(v.meta().load_state().tid(), me.id);
  rt.end_blocking(owner_ctx);
}

// --- recording soundness under batching -----------------------------------

WorkloadConfig batchxfer_config(std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.name = "batchxfer";
  cfg.threads = 4;
  cfg.ops_per_thread = 6'000;
  cfg.accesses_per_region = 8;
  cfg.readshare_p100k = 5'000;
  cfg.sharedgen_p100k = 2'000;
  cfg.batchxfer_p100k = 30'000;
  cfg.hot_objects = 16;
  cfg.base_seed = seed;
  return cfg;
}

TEST(CoordBatch, BatchedRecordingValidatesLintsAnalyzesAndReplays) {
  const WorkloadConfig cfg = batchxfer_config(11);
  WorkloadData data(cfg);

  Runtime rt;
  DependenceRecorder recorder(rt);
  using Tracker = HybridTracker<true, DependenceRecorder>;
  Tracker tracker(rt, HybridConfig{}, &recorder);
  const WorkloadRunResult recorded = run_workload(cfg, data, [&](ThreadId) {
    return DirectApi<Tracker>(rt, tracker, &recorder);
  });
  ASSERT_EQ(recorded.quarantined, 0);
  // The contended profile actually exercised batching.
  EXPECT_GT(recorded.stats.coord_batch_rounds, 0u);
  EXPECT_GT(recorded.stats.coord_batch_objects,
            recorded.stats.coord_batch_rounds);

  const Recording recording =
      recorder.take_recording(static_cast<ThreadId>(cfg.threads));

  // recording_validate: structurally well-formed.
  const ValidationResult v = validate_recording(recording);
  EXPECT_TRUE(v.ok()) << v.to_string();

  // trace_lint + trace_analyze equivalents over the saved file.
  const std::string path =
      ::testing::TempDir() + "coord_batch_recording.bin";
  ASSERT_TRUE(save_recording(recording, path));
  const analysis::FileLintResult lint = analysis::lint_recording_file(path);
  EXPECT_TRUE(lint.load.complete());
  EXPECT_TRUE(lint.lint.structure.ok()) << lint.lint.structure.to_string();
  EXPECT_TRUE(lint.lint.issues.empty());
  const analysis::RecordingAnalysisReport report =
      analysis::analyze_recording_file(path);
  EXPECT_EQ(report.exit_code(), kExitOk) << report.to_string();
  std::remove(path.c_str());

  // Replay: every batched point's edges precede its raw stores, so loaded
  // values are deterministic.
  Replayer replayer(recording);
  const WorkloadRunResult replayed =
      run_workload(cfg, data, [&](ThreadId) { return ReplayApi(replayer); });
  for (int t = 0; t < cfg.threads; ++t) {
    EXPECT_EQ(recorded.checksums[static_cast<std::size_t>(t)],
              replayed.checksums[static_cast<std::size_t>(t)])
        << "thread " << t << " diverged (recording: " << recording.summary()
        << ")";
  }
}

}  // namespace
}  // namespace ht
