// Coordination-protocol edge cases and failure injection: request floods,
// blocked-owner races, RdSh fan-out with mixed running/blocked/exited
// owners, watermark semantics, and the Int-state guard.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

using testing::BlockedThread;
using testing::state_is;

TEST(Coordination, OneResponseAnswersAllPendingRequesters) {
  // The watermark scheme means a single responding safe point satisfies any
  // number of outstanding tickets — the paper's "whenever a safe point
  // responds ... to coordination request(s)".
  Runtime rt;
  ThreadContext& owner = rt.register_thread();
  constexpr int kRequesters = 6;
  std::atomic<int> done{0};
  std::vector<std::thread> reqs;
  for (int i = 0; i < kRequesters; ++i) {
    reqs.emplace_back([&] {
      ThreadContext& me = rt.register_thread();
      (void)rt.coordinate(me, owner.id);
      done.fetch_add(1);
    });
  }
  // Wait until every requester has (at least potentially) ticketed, then
  // respond; keep polling until all are through.
  while (done.load() < kRequesters) {
    rt.poll(owner);
    std::this_thread::yield();
  }
  for (auto& t : reqs) t.join();
  // Far fewer responding safe points than requesters is the common case.
  EXPECT_LE(owner.stats.responding_safepoints,
            static_cast<std::uint64_t>(kRequesters));
}

TEST(Coordination, RequestFloodDoesNotWedgeOwner) {
  Runtime rt;
  ThreadContext& owner = rt.register_thread();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rounds{0};
  std::thread flooder([&] {
    ThreadContext& me = rt.register_thread();
    while (!stop.load()) {
      (void)rt.coordinate(me, owner.id);
      rounds.fetch_add(1);
    }
  });
  for (int i = 0; i < 20000; ++i) {
    rt.poll(owner);
    if (i % 64 == 0) std::this_thread::yield();
  }
  stop.store(true);
  // The flooder may be mid-wait; answer it until it exits.
  while (rounds.load() == 0 || !stop.load()) {
    rt.poll(owner);
    std::this_thread::yield();
    if (stop.load() && rounds.load() > 0) break;
  }
  flooder.join();
  EXPECT_GT(rounds.load(), 0u);
}

TEST(Coordination, BlockedOwnerWakesThroughEpochStorm) {
  // Requesters hammer implicit coordination while the owner blocks/unblocks
  // repeatedly; the epoch CAS discipline must never lose a wake-up.
  Runtime rt;
  ThreadContext& owner = rt.register_thread();
  std::atomic<bool> stop{false};
  std::vector<std::thread> reqs;
  for (int i = 0; i < 3; ++i) {
    reqs.emplace_back([&] {
      ThreadContext& me = rt.register_thread();
      while (!stop.load()) {
        (void)rt.coordinate(me, owner.id);
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    rt.begin_blocking(owner);
    std::this_thread::yield();
    rt.end_blocking(owner);
    rt.poll(owner);
  }
  stop.store(true);
  // Keep the owner responsive while requesters drain out of their waits.
  for (int i = 0; i < 100000; ++i) {
    rt.poll(owner);
    std::this_thread::yield();
    bool all_done = true;
    for (auto& t : reqs) all_done &= t.joinable();
    (void)all_done;
    if (i > 1000) break;
  }
  rt.begin_blocking(owner);  // park so stragglers finish implicitly
  for (auto& t : reqs) t.join();
  rt.end_blocking(owner);
  SUCCEED();
}

TEST(Coordination, RdShConflictWithMixedOwnerStates) {
  // Write to a RdSh object whose readers are: one blocked, one exited, one
  // running (driven by this thread). Coordination must handle all three.
  Runtime rt;
  OptimisticTracker<true> tracker(rt);
  ThreadContext& alloc = rt.register_thread();
  TrackedVar<std::uint64_t> var;
  var.init(tracker, alloc, 5);

  ThreadContext& exiter = rt.register_thread();
  BlockedThread blocked(rt);
  // Both contexts run on this OS thread, so the conflicting first read must
  // find the owner at a blocking safe point (implicit coordination).
  rt.begin_blocking(alloc);
  (void)var.load(tracker, exiter);       // conflicting -> RdExOpt(exiter)
  ThreadContext& reader2 = rt.register_thread();
  (void)var.load(tracker, reader2);      // upgrade -> RdShOpt
  rt.end_blocking(alloc);
  ASSERT_TRUE(state_is(var.meta(), StateKind::kRdShOpt));

  rt.unregister_thread(exiter);          // one reader exits

  // Writer thread conflicts with everyone; this thread polls for the
  // running contexts it owns (alloc, reader2).
  std::atomic<bool> done{false};
  std::thread writer([&] {
    ThreadContext& w = rt.register_thread();
    var.store(tracker, w, 9);
    EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, w.id));
    done.store(true);
  });
  while (!done.load()) {
    rt.poll(alloc);
    rt.poll(reader2);
    std::this_thread::yield();
  }
  writer.join();
  EXPECT_EQ(var.raw_load(), 9u);
}

TEST(Coordination, IntStateBlocksThirdPartiesUntilResolved) {
  // While a conflicting transition holds Int, other accessors spin at safe
  // points; once resolved they proceed against the new state.
  Runtime rt;
  OptimisticTracker<> tracker(rt);
  ThreadContext& owner = rt.register_thread();
  TrackedVar<std::uint64_t> var;
  var.init(tracker, owner, 1);

  // Fabricate a stuck Int held by a registered-but-parked requester.
  BlockedThread parked(rt);
  var.meta().reset(StateWord::intermediate(parked.ctx().id));

  std::atomic<bool> read_done{false};
  std::thread reader([&] {
    ThreadContext& r = rt.register_thread();
    EXPECT_EQ(var.load(tracker, r), 1u);
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(read_done.load());  // still spinning on Int
  // Resolve the Int as its holder would.
  var.meta().store_state(StateWord::wr_ex_opt(parked.ctx().id));
  reader.join();
  EXPECT_TRUE(read_done.load());
}

TEST(Coordination, ExitedThreadsNeverBlockRdShFanOut) {
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  for (int i = 0; i < 5; ++i) {
    ThreadContext& t = rt.register_thread();
    rt.unregister_thread(t);
  }
  EXPECT_FALSE(rt.coordinate_all_others(self));  // all implicit, immediate
  EXPECT_EQ(self.stats.coordination_rounds, 5u);
}

}  // namespace
}  // namespace ht
