// Barrier-elision soundness suite (DESIGN.md §15).
//
// Layers, bottom up:
//   * ElisionCache unit semantics — epoch tagging, write-subsumes-read,
//     no-downgrade inserts, direct-mapped eviction;
//   * ThreadContext / Runtime wiring — the kill switches (RuntimeConfig,
//     race-detector attach, quarantine) and the epoch bumps at every
//     revocation-capable safe point;
//   * tracker integration — elided accesses keep the conservation property,
//     undo logging, and lock-buffer release behavior intact;
//   * whole-schedule equivalence — exhaustive DFS over the builtin programs
//     with elision on vs off must reach the SAME set of final memory
//     outcomes, and race verdicts must be unaffected.
//
// The suite is meaningful in every build flavor: with HT_ELISION=OFF (or
// under HT_CHECK_TRANSITIONS) the probe compiles away, elision_hits stays 0,
// and the equivalence tests degenerate to self-comparisons — still green.
#include "tracking/elision_cache.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "raceck/race_detector.hpp"
#include "schedule/explorer.hpp"
#include "schedule/program.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "tracking/tracked_var.hpp"
#include "workload/apis.hpp"

namespace ht {
namespace {

// --- cache unit semantics ----------------------------------------------------

TEST(ElisionCacheUnit, EpochTagGatesEveryHit) {
  ElisionCache cache;
  TrackedVar<std::uint64_t> var;
  const ObjectMeta* m = &var.meta();

  EXPECT_FALSE(cache.hit_load(m, 1));  // empty cache never hits
  cache.insert(m, /*epoch=*/1, /*is_write=*/true);
  EXPECT_TRUE(cache.hit_store(m, 1));
  EXPECT_TRUE(cache.hit_load(m, 1));
  // Any other epoch — older or newer — misses: a bump stales everything.
  EXPECT_FALSE(cache.hit_store(m, 2));
  EXPECT_FALSE(cache.hit_load(m, 2));
  EXPECT_FALSE(cache.hit_load(m, 0));
}

TEST(ElisionCacheUnit, WriteSubsumesReadButNotConversely) {
  ElisionCache cache;
  TrackedVar<std::uint64_t> var;
  const ObjectMeta* m = &var.meta();

  cache.insert(m, 3, /*is_write=*/false);
  EXPECT_TRUE(cache.hit_load(m, 3));
  EXPECT_FALSE(cache.hit_store(m, 3));  // read ownership can't serve a store

  cache.insert(m, 3, /*is_write=*/true);
  EXPECT_TRUE(cache.hit_store(m, 3));
  // A later read insert must not downgrade the same-epoch write entry.
  cache.insert(m, 3, /*is_write=*/false);
  EXPECT_TRUE(cache.hit_store(m, 3));
}

TEST(ElisionCacheUnit, DefaultEntriesNeverHitAtEpochZero) {
  // reset() starts elision_epoch at 1 precisely so the zero tags of a
  // cleared cache can never match; assert the representation invariant.
  ElisionCache cache;
  TrackedVar<std::uint64_t> var;
  EXPECT_FALSE(cache.hit_load(&var.meta(), 0));
  EXPECT_FALSE(cache.hit_store(&var.meta(), 0));
}

TEST(ElisionCacheUnit, DirectMappedEvictionFallsBackToMiss) {
  // 200 objects over 64 slots: by pigeonhole some pair collides. Eviction
  // must be silent replacement — the evicted object misses, nothing else.
  ElisionCache cache;
  std::vector<TrackedVar<std::uint64_t>> vars(200);
  bool saw_eviction = false;
  for (std::size_t i = 1; i < vars.size(); ++i) {
    cache.clear();
    cache.insert(&vars[0].meta(), 5, /*is_write=*/true);
    ASSERT_TRUE(cache.hit_store(&vars[0].meta(), 5));
    cache.insert(&vars[i].meta(), 5, /*is_write=*/true);
    EXPECT_TRUE(cache.hit_store(&vars[i].meta(), 5));
    if (!cache.hit_store(&vars[0].meta(), 5)) saw_eviction = true;
  }
  EXPECT_TRUE(saw_eviction) << "no slot collision in 200 objects over 64 "
                               "slots — slot() is not direct-mapped";
}

// --- kill switches and epoch bumps -------------------------------------------

TEST(ElisionWiring, RuntimeConfigSeedsTheKillSwitch) {
  {
    Runtime rt;
    ThreadContext& ctx = rt.register_thread();
    EXPECT_EQ(ctx.elision_on.load(std::memory_order_relaxed),
              HT_ELISION_RUNTIME != 0);
  }
  {
    RuntimeConfig rc;
    rc.elision = false;
    Runtime rt(rc);
    ThreadContext& ctx = rt.register_thread();
    EXPECT_FALSE(ctx.elision_on.load(std::memory_order_relaxed));
  }
}

TEST(ElisionWiring, RaceDetectorAttachDisablesElision) {
  // Bypass matrix: race-checked runs must observe every access unelided.
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  RaceDetector rd;
  rd.attach_thread(ctx);
  EXPECT_FALSE(ctx.elision_on.load(std::memory_order_relaxed));
}

TEST(ElisionWiring, QuarantineStoresTheKillSwitchIntoTheVictim) {
  // Quarantine seizes ownership without the victim's participation — the
  // one revocation the epoch cannot cover. The kill switch must land before
  // any state is seized (it is stored right after the status CAS).
  Runtime rt;
  ThreadContext& self = rt.register_thread();
  ThreadContext& victim = rt.register_thread();
  ASSERT_TRUE(rt.quarantine_thread(self, victim.id));
  EXPECT_FALSE(victim.elision_on.load(std::memory_order_relaxed));
}

TEST(ElisionWiring, EpochBumpInvalidatesAndSafePointsBump) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  TrackedVar<std::uint64_t> var;
  ctx.elision_on.store(true, std::memory_order_relaxed);

  ctx.elision_insert(&var.meta(), /*is_write=*/true);
  EXPECT_TRUE(ctx.elide_store(&var.meta()));
  const std::uint64_t epoch_before = ctx.elision_epoch;
  ctx.bump_elision_epoch();
  EXPECT_EQ(ctx.elision_epoch, epoch_before + 1);
  EXPECT_FALSE(ctx.elide_store(&var.meta()));
  EXPECT_EQ(ctx.stats.elision_flushes, 1u);

  // Revocation-capable runtime safe points flush too: a PSRO (deferred
  // locks release — other threads may take them immediately after) and a
  // blocking window (implicit coordination revokes ownership while parked).
  ctx.elision_insert(&var.meta(), /*is_write=*/true);
  rt.psro(ctx);
  EXPECT_FALSE(ctx.elide_store(&var.meta()));
  ctx.elision_insert(&var.meta(), /*is_write=*/true);
  rt.begin_blocking(ctx);
  rt.end_blocking(ctx);
  EXPECT_FALSE(ctx.elide_store(&var.meta()));
  EXPECT_GE(ctx.stats.elision_flushes, 3u);
}

TEST(ElisionWiring, KillSwitchMakesEveryProbeMiss) {
  Runtime rt;
  ThreadContext& ctx = rt.register_thread();
  TrackedVar<std::uint64_t> var;
  ctx.elision_on.store(true, std::memory_order_relaxed);
  ctx.elision_insert(&var.meta(), /*is_write=*/true);
  ASSERT_TRUE(ctx.elide_store(&var.meta()));
  ctx.elision_on.store(false, std::memory_order_relaxed);
  EXPECT_FALSE(ctx.elide_store(&var.meta()));
  EXPECT_FALSE(ctx.elide_load(&var.meta()));
}

// --- tracker integration -----------------------------------------------------

TEST(ElisionTracking, OptimisticHotLoopConservesAccessCounts) {
  Runtime rt;
  OptimisticTracker<true> tracker(rt);
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);

  constexpr std::uint64_t kN = 1000;
  for (std::uint64_t i = 0; i < kN; ++i) var.store(tracker, ctx, i);
  for (std::uint64_t i = 0; i < kN; ++i) (void)var.load(tracker, ctx);

  EXPECT_EQ(ctx.stats.accesses(), 2 * kN);
  EXPECT_EQ(var.raw_load(), kN - 1);
#if HT_ELISION_RUNTIME
  // All but the first (inserting) access hit the cache.
  EXPECT_EQ(ctx.stats.elision_hits, 2 * kN - 1);
  EXPECT_GT(ctx.stats.elision_hit_rate(), 0.99);
#else
  EXPECT_EQ(ctx.stats.elision_hits, 0u);
#endif
}

TEST(ElisionTracking, HybridReentrantHeldLockLoopStaysLockedUntilFlush) {
  Runtime rt;
  HybridTracker<true> tracker(rt, HybridConfig{});
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  var.meta().reset(StateWord::wr_ex_pess(ctx.id));

  constexpr std::uint64_t kN = 500;
  for (std::uint64_t i = 1; i <= kN; ++i) var.store(tracker, ctx, i);
  // Elided or not, the write lock is still held and the value is current.
  EXPECT_EQ(var.meta().load_state().kind(), StateKind::kWrExWLock);
  EXPECT_EQ(var.raw_load(), kN);
  EXPECT_EQ(ctx.stats.accesses(), kN);

  // flush() is itself a revocation event: it must release the lock AND
  // stale the cache, so post-flush accesses re-run the tracker. The
  // post-flush kind depends on the adaptive policy's view: elided accesses
  // skip profiling (state stays WrExPess), while an elision-off build
  // profiles all kN non-conflicting accesses and returns the object to
  // optimistic — both are legal, only the held lock is not.
  tracker.flush(ctx);
  const StateKind post = var.meta().load_state().kind();
  EXPECT_NE(post, StateKind::kWrExWLock);
  EXPECT_TRUE(post == StateKind::kWrExPess || post == StateKind::kWrExOpt);
  EXPECT_FALSE(ctx.elide_store(&var.meta()));
}

TEST(ElisionTracking, ElidedStoresStillFeedTheUndoLog) {
  // Region rollback must restore through elided stores: the undo-log push
  // happens in TrackedVar::store on BOTH the elided and the tracked path.
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  RsEnforcer<HybridTracker<>> enf(rt, tracker);
  EnforcerApi<HybridTracker<>> api(rt, enf);
  api.begin_thread(0);
  ThreadContext& ctx = api.context();
  TrackedVar<std::uint64_t> v;
  v.init(tracker, ctx, 7);
  api.region([&] {
    api.store(v, 1);
    api.store(v, 2);  // elided when the cache is live
    ASSERT_NE(ctx.undo_log, nullptr);
    EXPECT_EQ(ctx.undo_log->size(), 2u);
  });
  EXPECT_EQ(v.raw_load(), 2u);
  api.end_thread();
}

TEST(ElisionTracking, StandalonePessimisticNeverElides) {
  static_assert(!tracker_elidable_v<PessimisticTracker<true>>,
                "standalone pessimistic CAS-locks every access; its states "
                "are takeable without the owner reaching a safe point");
  Runtime rt;
  PessimisticTracker<true> tracker(rt);
  ThreadContext& ctx = rt.register_thread();
  tracker.attach_thread(ctx);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, ctx, 0);
  for (int i = 0; i < 100; ++i) var.store(tracker, ctx, 1);
  EXPECT_EQ(ctx.stats.elision_hits, 0u);
  EXPECT_EQ(ctx.stats.accesses(), 100u);
}

}  // namespace
}  // namespace ht

// --- whole-schedule equivalence ----------------------------------------------

namespace ht::schedule {
namespace {

constexpr std::uint64_t kBudget = 4096;

struct EquivCase {
  Family family;
  std::string program;
};

std::string equiv_case_name(const ::testing::TestParamInfo<EquivCase>& info) {
  std::string n = std::string(family_name(info.param.family)) + "_" +
                  info.param.program;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class ElisionEquivalenceP : public ::testing::TestWithParam<EquivCase> {};

// The set of reachable final-memory outcomes over ALL interleavings must be
// identical with the ownership cache on and off. (Final tracker STATES may
// legitimately differ under the hybrid adaptive policy — elided accesses
// skip profiling by design — so the key is program-visible memory.)
TEST_P(ElisionEquivalenceP, OutcomeSetsMatchOnVsOff) {
  const EquivCase& c = GetParam();
  const Program* prog = find_builtin(c.program);
  ASSERT_NE(prog, nullptr) << c.program;

  auto outcome_set = [&](bool elision) {
    Explorer ex(c.family, prog->nthreads());
    ex.run_config().elision = elision;
    std::set<std::vector<std::uint64_t>> outcomes;
    ex.check_policy().extra = [&](const RunResult& r) -> std::string {
      outcomes.insert(r.final_values);
      return "";
    };
    const ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
    EXPECT_FALSE(out.violation.has_value())
        << c.program << " elision=" << elision << ": "
        << out.violation->to_string();
    EXPECT_TRUE(out.stats.complete) << c.program << " elision=" << elision;
    return outcomes;
  };

  const auto with_elision = outcome_set(true);
  const auto without = outcome_set(false);
  EXPECT_EQ(with_elision, without)
      << c.program << ": elision changed the reachable final memory";
}

std::vector<EquivCase> equiv_cases() {
  // The standalone pessimistic family is structurally non-elidable
  // (kElidable = false), so on-vs-off is a self-comparison there; spend the
  // exhaustive budget on the two families with live caches.
  std::vector<EquivCase> cases;
  for (Family f : {Family::kOptimistic, Family::kHybrid}) {
    for (const NamedProgram& np : builtin_programs()) {
      cases.push_back({f, np.name});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Builtins, ElisionEquivalenceP,
                         ::testing::ValuesIn(equiv_cases()), equiv_case_name);

// Race verdicts are elision-independent twice over: the explorer drives the
// detector explicitly before each tracked access, and attach_thread stores
// the kill switch anyway (bypass matrix). Assert the end-to-end property on
// the canonical racy/synchronized pair under the hybrid tracker.
TEST(ElisionRaceVerdicts, UnaffectedByElisionConfig) {
  for (const char* name : {"locked-inc", "racy-inc"}) {
    const Program* prog = find_builtin(name);
    ASSERT_NE(prog, nullptr) << name;
    std::uint64_t racy_schedules[2] = {0, 0};
    for (int e = 0; e < 2; ++e) {
      Explorer ex(Family::kHybrid, prog->nthreads());
      ex.run_config().race_detect = true;
      ex.run_config().elision = (e == 1);
      ex.check_policy().extra = [&](const RunResult& r) -> std::string {
        if (r.races.total() > 0) ++racy_schedules[e];
        return "";
      };
      const ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
      EXPECT_FALSE(out.violation.has_value()) << out.violation->to_string();
      EXPECT_TRUE(out.stats.complete);
    }
    EXPECT_EQ(racy_schedules[0], racy_schedules[1]) << name;
    if (std::string(name) == "racy-inc") {
      EXPECT_GT(racy_schedules[1], 0u) << "race oracle went dead";
    } else {
      EXPECT_EQ(racy_schedules[1], 0u) << "locked-inc must never race";
    }
  }
}

}  // namespace
}  // namespace ht::schedule
