// Region serializability enforcement (paper §5): executed regions must be
// serializable even for racy programs.
//
// Tests use two classic witnesses:
//   * atomic increments — racy load+store regions on one counter must sum
//     exactly (lost updates would show non-serializable interleavings);
//   * the x==y invariant — writer regions keep two variables equal; reader
//     regions must never observe them unequal.
// Both run under the optimistic enforcer [36] and the hybrid enforcer (§5.2).
#include <gtest/gtest.h>

#include <thread>

#include "enforcer/rs_enforcer.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/microbench.hpp"

namespace ht {
namespace {

template <typename Tracker, typename MakeTracker>
void racy_increments_become_atomic(MakeTracker&& make_tracker) {
  Runtime rt;
  Tracker tracker = make_tracker(rt);
  RsEnforcer<Tracker> enforcer(rt, tracker);
  MicrobenchData data;

  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 3'000;
  const WorkloadRunResult r = run_microbench(
      kThreads, data,
      [&](ThreadId) { return EnforcerApi<Tracker>(rt, enforcer); },
      [&](auto& api, ThreadId) { return racy_inc_body(api, data, kIters); });

  EXPECT_EQ(data.counter.raw_load(), kThreads * kIters)
      << "lost updates: regions were not serializable"
      << " (restarts: " << r.stats.region_restarts << ")";
}

TEST(RsEnforcer, OptimisticEnforcerMakesRacyIncrementsAtomic) {
  racy_increments_become_atomic<OptimisticTracker<true>>(
      [](Runtime& rt) { return OptimisticTracker<true>(rt); });
}

TEST(RsEnforcer, HybridEnforcerMakesRacyIncrementsAtomic) {
  racy_increments_become_atomic<HybridTracker<true>>(
      [](Runtime& rt) { return HybridTracker<true>(rt, HybridConfig{}); });
}

TEST(RsEnforcer, HybridEnforcerWithEscapePolicyStaysSound) {
  HybridConfig cfg;
  cfg.policy = PolicyConfig::with_escape(4);
  racy_increments_become_atomic<HybridTracker<true>>(
      [cfg](Runtime& rt) { return HybridTracker<true>(rt, cfg); });
}

// Without the enforcer the same racy increments lose updates with near
// certainty; this pins down that the test above is actually discriminating.
TEST(RsEnforcer, WithoutEnforcerRacyIncrementsLoseUpdates) {
  Runtime rt;
  OptimisticTracker<> tracker(rt);
  MicrobenchData data;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 20'000;
  (void)run_microbench(
      kThreads, data,
      [&](ThreadId) {
        return DirectApi<OptimisticTracker<>>(rt, tracker);
      },
      [&](auto& api, ThreadId) { return racy_inc_body(api, data, kIters); });
  // Not asserted as a hard inequality on principle (a miracle schedule could
  // preserve every update), but with 80k racy increments on shared hardware
  // the practical probability of losing none is nil; tolerate it by only
  // requiring <=.
  EXPECT_LE(data.counter.raw_load(), kThreads * kIters);
}

struct XyData {
  TrackedVar<std::uint64_t> x, y;
  template <typename T>
  void init_for_thread(T& trk, ThreadContext& ctx) {
    if (ctx.id != 0) return;
    x.init(trk, ctx, 0);
    y.init(trk, ctx, 0);
  }
  void raw_reset_values() {}
};

template <typename Tracker, typename MakeTracker>
void x_equals_y_invariant(MakeTracker&& make_tracker) {
  Runtime rt;
  Tracker tracker = make_tracker(rt);
  RsEnforcer<Tracker> enforcer(rt, tracker);
  XyData data;

  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;
  std::atomic<std::uint64_t> violations{0};

  (void)run_threads(
      kThreads, [&](ThreadId) { return EnforcerApi<Tracker>(rt, enforcer); },
      [&](auto& api, ThreadId tid) { api.init_data(data, tid); },
      [&](auto& api, ThreadId tid) -> std::uint64_t {
        if (tid % 2 == 0) {
          for (int i = 0; i < kIters; ++i) {
            api.region([&] {
              api.store(data.x, api.load(data.x) + 1);
              api.store(data.y, api.load(data.y) + 1);
            });
            api.poll();
          }
        } else {
          for (int i = 0; i < kIters; ++i) {
            std::uint64_t a = 0, b = 0;
            api.region([&] {
              a = api.load(data.x);
              b = api.load(data.y);
            });
            if (a != b) violations.fetch_add(1);
            api.poll();
          }
        }
        return 0;
      });

  EXPECT_EQ(violations.load(), 0u) << "readers saw a torn writer region";
  EXPECT_EQ(data.x.raw_load(), data.y.raw_load());
  EXPECT_EQ(data.x.raw_load(), static_cast<std::uint64_t>(kThreads / 2) * kIters);
}

TEST(RsEnforcer, OptimisticEnforcerPreservesXyInvariant) {
  x_equals_y_invariant<OptimisticTracker<true>>(
      [](Runtime& rt) { return OptimisticTracker<true>(rt); });
}

TEST(RsEnforcer, HybridEnforcerPreservesXyInvariant) {
  x_equals_y_invariant<HybridTracker<true>>(
      [](Runtime& rt) { return HybridTracker<true>(rt, HybridConfig{}); });
}

TEST(RsEnforcer, RestartsRollBackPartialWrites) {
  // Deterministic restart: the region writes x, then responds to a pending
  // request from its own slow-path wait on y (owned by a running thread that
  // simultaneously requests x). After everything settles, x must reflect
  // whole regions only.
  Runtime rt;
  HybridTracker<true> tracker(rt, HybridConfig{});
  RsEnforcer<HybridTracker<true>> enforcer(rt, tracker);

  TrackedVar<std::uint64_t> x, y;
  std::atomic<int> phase{0};

  std::thread a([&] {
    ThreadContext& ctx = rt.register_thread();
    enforcer.attach_thread(ctx);
    x.init(tracker, ctx, 0);
    y.init(tracker, ctx, 0);
    // Give y away so the other thread owns it.
    phase.store(1);
    while (phase.load() < 2) rt.poll(ctx);
    // Region: write x (we own it), then read y (owned by b, which is
    // spinning on a request for x) -> forced response -> restart.
    enforcer.run_region(ctx, [&] {
      x.store(tracker, ctx, x.load(tracker, ctx) + 1);
      (void)y.load(tracker, ctx);
    });
    phase.store(3);
    while (phase.load() < 4) rt.poll(ctx);
    rt.unregister_thread(ctx);
  });

  std::thread b([&] {
    ThreadContext& ctx = rt.register_thread();
    enforcer.attach_thread(ctx);
    while (phase.load() < 1) std::this_thread::yield();
    y.store(tracker, ctx, 100);  // take ownership of y (a polls)
    phase.store(2);
    // Hammer x so thread a's region keeps conflicting.
    while (phase.load() < 3) {
      enforcer.run_region(ctx, [&] {
        x.store(tracker, ctx, x.load(tracker, ctx) + 1);
      });
      rt.poll(ctx);
    }
    phase.store(4);
    rt.unregister_thread(ctx);
  });

  a.join();
  b.join();
  // x's final value = 1 (a's region, exactly once) + b's increments; the key
  // property is that a's increment is applied exactly once despite restarts.
  // b's count is unknown, but every region incremented exactly once, so x is
  // consistent with total region executions — which the atomicity tests
  // already pin down; here we only require that a's restarts did not leak
  // (x >= 1) and the run terminated.
  EXPECT_GE(x.raw_load(), 1u);
}

}  // namespace
}  // namespace ht
