// Fault injection and the hardening it exists to test: the coordination
// watchdog (stall detection + structured diagnostics + fail-fast policy),
// bounded-wait coordination, and the crash-tolerant v2 recording format
// (injected short writes / torn files load their longest valid prefix).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "faultinject/fault_injector.hpp"
#include "recorder/recording_io.hpp"
#include "recorder/recording_validate.hpp"
#include "runtime/runtime.hpp"
#include "test_util.hpp"

namespace ht {
namespace {

// --- injector unit behavior ----------------------------------------------------

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.enable(FaultSite::kPollSkip, 10'000).enable(FaultSite::kCoordStall, 500);
  cfg.stall_polls = 8;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 2'000; ++i) {
    EXPECT_EQ(a.at_safe_point(3), b.at_safe_point(3)) << "probe " << i;
  }
  EXPECT_EQ(a.total_fired(), b.total_fired());
  EXPECT_GT(a.total_fired(), 0u);
}

TEST(FaultInjector, ThreadSlotsDrawIndependentStreams) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.enable(FaultSite::kPollSkip, 10'000);
  FaultInjector inj(cfg);
  bool diverged = false;
  FaultInjector other(cfg);
  for (int i = 0; i < 2'000 && !diverged; ++i) {
    diverged = inj.at_safe_point(0) != other.at_safe_point(1);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, DeathIsPermanent) {
  FaultConfig cfg;
  cfg.enable(FaultSite::kThreadDeath, 100'000);  // fires on the first probe
  FaultInjector inj(cfg);
  EXPECT_FALSE(inj.thread_dead(5));
  EXPECT_TRUE(inj.at_safe_point(5));
  EXPECT_TRUE(inj.thread_dead(5));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(inj.at_safe_point(5));
  EXPECT_EQ(inj.fired(FaultSite::kThreadDeath), 1u);  // dead threads stay dead
  EXPECT_TRUE(inj.thread_suppressed(5));
  EXPECT_FALSE(inj.thread_dead(6));
}

TEST(FaultInjector, StallWindowIsBounded) {
  FaultConfig cfg;
  cfg.enable(FaultSite::kCoordStall, 100'000);
  cfg.stall_polls = 16;
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.at_safe_point(0));  // window opens
  EXPECT_TRUE(inj.thread_suppressed(0));
  for (std::uint32_t i = 0; i < cfg.stall_polls; ++i) {
    EXPECT_TRUE(inj.at_safe_point(0));
  }
  // The window has drained; the thread is live again (until the next probe
  // fires, which with a 100% rate is immediately).
  EXPECT_FALSE(inj.thread_suppressed(0));
  EXPECT_TRUE(inj.at_safe_point(0));
  EXPECT_TRUE(inj.thread_suppressed(0));
  EXPECT_EQ(inj.fired(FaultSite::kCoordStall), 2u);
}

// --- watchdog ------------------------------------------------------------------

// A second context registered on the test thread and simply never polled is
// the purest silent owner: running status, frozen fingerprint.
TEST(Watchdog, FailFastThrowsWithDiagnostic) {
  RuntimeConfig cfg;
  cfg.watchdog.stall_epochs = 128;
  cfg.watchdog.on_stall = WatchdogConfig::OnStall::kFailFast;
  std::vector<CoordStallDiagnostic> dumps;
  cfg.watchdog.sink = [&](const CoordStallDiagnostic& d) {
    dumps.push_back(d);
  };
  Runtime rt(cfg);
  ThreadContext& self = rt.register_thread();
  ThreadContext& owner = rt.register_thread();  // never polls, never blocks

  bool threw = false;
  try {
    rt.coordinate(self, owner.id);
  } catch (const CoordinationStalled& e) {
    threw = true;
    EXPECT_EQ(e.diagnostic.requester, self.id);
    EXPECT_EQ(e.diagnostic.owner, owner.id);
    EXPECT_EQ(e.diagnostic.ticket, 1u);
    EXPECT_EQ(e.diagnostic.stalled_epochs, cfg.watchdog.stall_epochs);
    EXPECT_GE(e.diagnostic.waited_epochs, cfg.watchdog.stall_epochs);
    EXPECT_FALSE(e.diagnostic.owner_sample.blocked);
    EXPECT_FALSE(e.diagnostic.owner_sample.exited);
    EXPECT_EQ(e.diagnostic.owner_sample.pending_requests(), 1u);
    EXPECT_EQ(e.diagnostic.threads.size(), 2u);
    const std::string text = e.diagnostic.to_string();
    EXPECT_NE(text.find("watchdog"), std::string::npos);
    EXPECT_NE(text.find("coordination stall"), std::string::npos);
  }
  EXPECT_TRUE(threw);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].owner, owner.id);
}

// The acceptance scenario: a real thread whose safe points are suppressed by
// an injected stall (it keeps executing, never reaches an observable poll).
// The watchdog must detect and diagnose it within the configured bound.
TEST(Watchdog, DetectsInjectedStallWithinBound) {
  FaultConfig fc;
  fc.enable(FaultSite::kCoordStall, 100'000);  // stall from the first poll on
  fc.stall_polls = 1'000'000;
  FaultInjector inj(fc);

  RuntimeConfig cfg;
  cfg.fault_injector = &inj;
  cfg.watchdog.stall_epochs = 150;
  cfg.watchdog.on_stall = WatchdogConfig::OnStall::kFailFast;
  std::atomic<int> dump_count{0};
  cfg.watchdog.sink = [&](const CoordStallDiagnostic&) { ++dump_count; };
  Runtime rt(cfg);

  ThreadContext& self = rt.register_thread();
  std::atomic<ThreadId> owner_id{kNoThread};
  std::atomic<bool> stop{false};
  std::thread owner([&] {
    ThreadContext& ctx = rt.register_thread();
    owner_id.store(ctx.id);
    while (!stop.load(std::memory_order_relaxed)) {
      rt.poll(ctx);  // suppressed: the injected stall swallows every poll
      std::this_thread::yield();
    }
    rt.unregister_thread(ctx);
  });
  while (owner_id.load() == kNoThread) std::this_thread::yield();

  bool threw = false;
  try {
    rt.coordinate(self, owner_id.load());
  } catch (const CoordinationStalled& e) {
    threw = true;
    // Detection happened at exactly the configured bound of silent epochs.
    EXPECT_EQ(e.diagnostic.stalled_epochs, cfg.watchdog.stall_epochs);
    EXPECT_EQ(e.diagnostic.owner, owner_id.load());
    EXPECT_FALSE(e.diagnostic.owner_sample.blocked);
    EXPECT_GE(e.diagnostic.owner_sample.pending_requests(), 1u);
  }
  stop.store(true);
  owner.join();
  EXPECT_TRUE(threw);
  EXPECT_EQ(dump_count.load(), 1);
  EXPECT_GE(inj.fired(FaultSite::kCoordStall), 1u);
  EXPECT_TRUE(inj.thread_suppressed(owner_id.load()));
}

// kContinue: the stall is diagnosed but the wait survives it and completes
// once the owner revives.
TEST(Watchdog, ContinuePolicyRecoversWhenOwnerRevives) {
  RuntimeConfig cfg;
  cfg.watchdog.stall_epochs = 100;
  cfg.watchdog.on_stall = WatchdogConfig::OnStall::kContinue;
  cfg.watchdog.max_dumps = 5;
  std::atomic<int> dump_count{0};
  cfg.watchdog.sink = [&](const CoordStallDiagnostic&) { ++dump_count; };
  Runtime rt(cfg);

  ThreadContext& self = rt.register_thread();
  std::atomic<ThreadId> owner_id{kNoThread};
  std::atomic<bool> stop{false};
  std::thread owner([&] {
    ThreadContext& ctx = rt.register_thread();
    owner_id.store(ctx.id);
    // Stall (no safe points at all) until the watchdog has complained once,
    // then revive and answer the pending request.
    while (dump_count.load() == 0) std::this_thread::yield();
    rt.poll(ctx);
    while (!stop.load(std::memory_order_relaxed)) std::this_thread::yield();
    rt.unregister_thread(ctx);
  });
  while (owner_id.load() == kNoThread) std::this_thread::yield();

  const Runtime::CoordResult r = rt.coordinate(self, owner_id.load());
  EXPECT_FALSE(r.implicit);
  EXPECT_GE(dump_count.load(), 1);
  stop.store(true);
  owner.join();
}

TEST(Watchdog, BoundedCoordinationGivesUpOnSilentOwner) {
  RuntimeConfig cfg;
  cfg.watchdog.enabled = false;  // the bound IS the policy here
  Runtime rt(cfg);
  ThreadContext& self = rt.register_thread();
  ThreadContext& owner = rt.register_thread();  // silent

  const auto r = rt.coordinate_bounded(self, owner.id, 64);
  EXPECT_FALSE(r.has_value());

  // The abandoned ticket is harmless: the owner's next safe point answers it.
  EXPECT_EQ(rt.sample_thread(owner.id).pending_requests(), 1u);
  rt.poll(owner);
  EXPECT_EQ(rt.sample_thread(owner.id).pending_requests(), 0u);

  // And a bounded wait against a responsive owner completes normally.
  testing::BlockedThread parked(rt);
  const auto ok = rt.coordinate_bounded(self, parked.ctx().id, 64);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->implicit);
}

// --- crash-tolerant recordings -------------------------------------------------

Recording big_recording() {
  Recording r;
  r.threads.resize(3);
  auto fill = [](ThreadLog& log, std::size_t n, std::uint64_t salt,
                 ThreadId src) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool resp = i % 5 == 0;
      log.events.push_back(LogEvent{
          salt + i, resp ? LogEventType::kResponse : LogEventType::kEdge,
          resp ? kNoThread : src, salt * 3 + i});
    }
  };
  fill(r.threads[0], 1'200, 10, 1);  // 3 chunks at 512 events/chunk
  fill(r.threads[1], 700, 5'000'000, 2);
  // thread 2 stays empty
  return r;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

// Every thread's loaded log must be a prefix of the original's.
void expect_prefix_of(const Recording& loaded, const Recording& orig) {
  ASSERT_EQ(loaded.threads.size(), orig.threads.size());
  for (std::size_t t = 0; t < orig.threads.size(); ++t) {
    const auto& le = loaded.threads[t].events;
    const auto& oe = orig.threads[t].events;
    ASSERT_LE(le.size(), oe.size()) << "thread " << t;
    EXPECT_TRUE(std::equal(le.begin(), le.end(), oe.begin()))
        << "thread " << t << " is not a prefix";
  }
}

TEST(FaultRecordingIo, TruncationAtAnyOffsetLoadsLongestValidPrefix) {
  const Recording orig = big_recording();
  const std::string path = temp_path("ht_fi_trunc_sweep.bin");
  ASSERT_TRUE(save_recording(orig, path));
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 30'000u);

  int salvaged_with_chunks = 0;
  for (std::size_t cut = 0; cut < bytes.size(); cut += 97) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    const RecordingLoadResult r = load_recording_ex(path);
    EXPECT_FALSE(r.complete()) << "cut=" << cut;
    if (r.recording.has_value()) {
      EXPECT_TRUE(r.partial) << "cut=" << cut;
      expect_prefix_of(*r.recording, orig);
      if (r.chunks_loaded > 0) ++salvaged_with_chunks;
    }
  }
  // Most cuts past the first chunk salvage real data.
  EXPECT_GT(salvaged_with_chunks, 100);

  // Sanity: the untruncated file still loads completely and exactly.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const RecordingLoadResult full = load_recording_ex(path);
  ASSERT_TRUE(full.complete()) << full.to_string();
  expect_prefix_of(orig, *full.recording);  // equal sizes => equality
  expect_prefix_of(*full.recording, orig);
  std::remove(path.c_str());
}

TEST(FaultRecordingIo, WriterCrashWithoutFinishLeavesLoadablePrefix) {
  const std::string path = temp_path("ht_fi_crash.bin");
  const Recording orig = big_recording();
  {
    RecordingStreamWriter w(path, 3);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.append(0, orig.threads[0].events.data(), 100));
    ASSERT_TRUE(w.append(1, orig.threads[1].events.data(), 50));
    // No finish(): the destructor models a crash, leaving no trailer.
  }
  const RecordingLoadResult r = load_recording_ex(path);
  ASSERT_TRUE(r.recording.has_value());
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.error, RecordingLoadError::kTruncated);
  EXPECT_EQ(r.chunks_loaded, 2u);
  EXPECT_EQ(r.recording->threads[0].events.size(), 100u);
  EXPECT_EQ(r.recording->threads[1].events.size(), 50u);
  expect_prefix_of(*r.recording, orig);
  // check_recording_file reports the reason and validates the salvage.
  const FileCheckResult fc = check_recording_file(path);
  EXPECT_FALSE(fc.ok());
  EXPECT_TRUE(fc.structure.ok());
  EXPECT_NE(fc.to_string().find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FaultRecordingIo, InjectedShortWritesLeaveLoadablePrefixes) {
  const Recording orig = big_recording();
  const std::string path = temp_path("ht_fi_shortwrite.bin");
  int failures = 0;
  int salvaged_with_chunks = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    FaultConfig fc;
    fc.seed = seed;
    fc.enable(FaultSite::kIoShortWrite, 20'000);
    FaultInjector inj(fc);
    if (save_recording(orig, path, &inj)) continue;  // no fault drawn
    ++failures;
    EXPECT_GE(inj.fired(FaultSite::kIoShortWrite), 1u);
    const RecordingLoadResult r = load_recording_ex(path);
    EXPECT_NE(r.error, RecordingLoadError::kNone) << "seed " << seed;
    if (r.recording.has_value()) {
      expect_prefix_of(*r.recording, orig);
      if (r.chunks_loaded > 0) ++salvaged_with_chunks;
    }
  }
  EXPECT_GE(failures, 1);
  EXPECT_GE(salvaged_with_chunks, 1);
  std::remove(path.c_str());
}

TEST(FaultRecordingIo, InjectedOpenFailureIsReportedNotFatal) {
  const Recording orig = big_recording();
  const std::string path = temp_path("ht_fi_openfail.bin");
  ASSERT_TRUE(save_recording(orig, path));

  FaultConfig fc;
  fc.enable(FaultSite::kIoOpenFail, 100'000);
  FaultInjector inj(fc);
  EXPECT_FALSE(save_recording(orig, temp_path("ht_fi_openfail2.bin"), &inj));
  const RecordingLoadResult r = load_recording_ex(path, &inj);
  EXPECT_FALSE(r.recording.has_value());
  EXPECT_EQ(r.error, RecordingLoadError::kIo);
  EXPECT_GE(inj.fired(FaultSite::kIoOpenFail), 2u);
  std::remove(path.c_str());
}

TEST(FaultRecordingIo, InjectedReadFailureSalvagesAndReports) {
  const Recording orig = big_recording();
  const std::string path = temp_path("ht_fi_readfail.bin");
  ASSERT_TRUE(save_recording(orig, path));

  FaultConfig fc;
  fc.enable(FaultSite::kIoReadFail, 100'000);  // fails before the first chunk
  FaultInjector inj(fc);
  const RecordingLoadResult r = load_recording_ex(path, &inj);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.error, RecordingLoadError::kIo);
  ASSERT_TRUE(r.recording.has_value());  // header was read: empty prefix
  EXPECT_TRUE(r.partial);
  expect_prefix_of(*r.recording, orig);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ht
