// Harness utilities: overhead math, env knobs, trial statistics.
#include "workload/harness.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ht {
namespace {

RunStats stats_of(std::initializer_list<double> xs) {
  RunStats s;
  for (double x : xs) s.add(x);
  return s;
}

TEST(OverheadVs, MedianBased) {
  const RunStats base = stats_of({1.0, 1.0, 1.0});
  const RunStats cfg = stats_of({1.5, 1.4, 1.6});
  const Overhead o = overhead_vs(base, cfg);
  EXPECT_NEAR(o.median_pct, 50.0, 1e-9);
  EXPECT_NEAR(o.mean_pct, 50.0, 1e-9);
  EXPECT_GT(o.ci_half_pct, 0.0);
}

TEST(OverheadVs, SpeedupIsNegative) {
  const RunStats base = stats_of({2.0});
  const RunStats cfg = stats_of({1.0});
  EXPECT_NEAR(overhead_vs(base, cfg).median_pct, -50.0, 1e-9);
}

TEST(OverheadVs, OutlierRobustness) {
  // The paper reports medians exactly because means are outlier-sensitive
  // (sunflow9's slow trials, §7.5).
  const RunStats base = stats_of({1.0, 1.0, 1.0});
  const RunStats cfg = stats_of({1.1, 1.1, 9.0});
  const Overhead o = overhead_vs(base, cfg);
  EXPECT_NEAR(o.median_pct, 10.0, 1e-6);
  EXPECT_GT(o.mean_pct, 200.0);
}

TEST(TrialsFromEnv, ReadsAndValidates) {
  unsetenv("HT_TRIALS");
  EXPECT_EQ(trials_from_env(7), 7);
  setenv("HT_TRIALS", "12", 1);
  EXPECT_EQ(trials_from_env(7), 12);
  setenv("HT_TRIALS", "0", 1);
  EXPECT_EQ(trials_from_env(7), 7);  // invalid -> fallback
  setenv("HT_TRIALS", "garbage", 1);
  EXPECT_EQ(trials_from_env(7), 7);
  unsetenv("HT_TRIALS");
}

TEST(ScaleFromEnv, ReadsAndValidates) {
  unsetenv("HT_SCALE");
  EXPECT_DOUBLE_EQ(scale_from_env(1.0), 1.0);
  setenv("HT_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(1.0), 2.5);
  setenv("HT_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(1.0), 1.0);
  unsetenv("HT_SCALE");
}

TEST(RunTrials, CollectsOneSamplePerTrialAfterDiscard) {
  int calls = 0;
  const RunStats s = run_trials(4, [&] {
    WorkloadRunResult r;
    r.seconds = ++calls * 0.5;
    return r;
  });
  // One discarded warm-up call plus four timed trials.
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(s.count(), 4u);
  // Samples are calls 2..5 -> 1.0, 1.5, 2.0, 2.5.
  EXPECT_DOUBLE_EQ(s.median(), 1.75);
}

TEST(RunTrials, DiscardZeroKeepsEveryCall) {
  int calls = 0;
  const RunStats s = run_trials(
      2,
      [&] {
        WorkloadRunResult r;
        r.seconds = ++calls * 1.0;
        return r;
      },
      /*discard=*/0);
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  (void)s;
}

}  // namespace
}  // namespace ht
