// Harness utilities: overhead math, env knobs, trial statistics.
#include "workload/harness.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ht {
namespace {

RunStats stats_of(std::initializer_list<double> xs) {
  RunStats s;
  for (double x : xs) s.add(x);
  return s;
}

TEST(OverheadVs, MedianBased) {
  const RunStats base = stats_of({1.0, 1.0, 1.0});
  const RunStats cfg = stats_of({1.5, 1.4, 1.6});
  const Overhead o = overhead_vs(base, cfg);
  EXPECT_NEAR(o.median_pct, 50.0, 1e-9);
  EXPECT_NEAR(o.mean_pct, 50.0, 1e-9);
  EXPECT_GT(o.ci_half_pct, 0.0);
}

TEST(OverheadVs, SpeedupIsNegative) {
  const RunStats base = stats_of({2.0});
  const RunStats cfg = stats_of({1.0});
  EXPECT_NEAR(overhead_vs(base, cfg).median_pct, -50.0, 1e-9);
}

TEST(OverheadVs, OutlierRobustness) {
  // The paper reports medians exactly because means are outlier-sensitive
  // (sunflow9's slow trials, §7.5).
  const RunStats base = stats_of({1.0, 1.0, 1.0});
  const RunStats cfg = stats_of({1.1, 1.1, 9.0});
  const Overhead o = overhead_vs(base, cfg);
  EXPECT_NEAR(o.median_pct, 10.0, 1e-6);
  EXPECT_GT(o.mean_pct, 200.0);
}

TEST(TrialsFromEnv, ReadsAndValidates) {
  unsetenv("HT_TRIALS");
  EXPECT_EQ(trials_from_env(7), 7);
  setenv("HT_TRIALS", "12", 1);
  EXPECT_EQ(trials_from_env(7), 12);
  setenv("HT_TRIALS", "0", 1);
  EXPECT_EQ(trials_from_env(7), 7);  // invalid -> fallback
  setenv("HT_TRIALS", "garbage", 1);
  EXPECT_EQ(trials_from_env(7), 7);
  unsetenv("HT_TRIALS");
}

TEST(ScaleFromEnv, ReadsAndValidates) {
  unsetenv("HT_SCALE");
  EXPECT_DOUBLE_EQ(scale_from_env(1.0), 1.0);
  setenv("HT_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(1.0), 2.5);
  setenv("HT_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(1.0), 1.0);
  unsetenv("HT_SCALE");
}

TEST(RunTrials, CollectsOneSamplePerTrialAfterDiscard) {
  int calls = 0;
  const RunStats s = run_trials(4, [&] {
    WorkloadRunResult r;
    r.seconds = ++calls * 0.5;
    return r;
  });
  // One discarded warm-up call plus four timed trials.
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(s.count(), 4u);
  // Samples are calls 2..5 -> 1.0, 1.5, 2.0, 2.5.
  EXPECT_DOUBLE_EQ(s.median(), 1.75);
}

TEST(RunTrials, DiscardZeroKeepsEveryCall) {
  int calls = 0;
  const RunStats s = run_trials(
      2,
      [&] {
        WorkloadRunResult r;
        r.seconds = ++calls * 1.0;
        return r;
      },
      /*discard=*/0);
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  (void)s;
}

TEST(RunTrialSeries, CollectsSecondsCyclesAndSkewPerTrial) {
  int calls = 0;
  const TrialSeries series = run_trial_series(3, [&] {
    WorkloadRunResult r;
    ++calls;
    r.seconds = calls * 0.5;
    r.cycles = static_cast<std::uint64_t>(calls) * 100;
    r.join_skew_seconds = calls * 0.001;
    return r;
  });
  EXPECT_EQ(calls, 4);  // one discarded warm-up + three timed
  EXPECT_EQ(series.seconds.count(), 3u);
  EXPECT_EQ(series.cycles.count(), 3u);
  EXPECT_EQ(series.join_skew.count(), 3u);
  // Timed trials are calls 2..4.
  EXPECT_DOUBLE_EQ(series.seconds.median(), 1.5);
  EXPECT_DOUBLE_EQ(series.cycles.median(), 300.0);
  EXPECT_DOUBLE_EQ(series.join_skew.median(), 0.003);
}

TEST(BenchJsonReport, ProducesParsableReportWithRowsAndMeta) {
  BenchJsonReport report("test_bench");
  report.set_meta("trials", json::Value(3));

  TrialSeries series;
  for (double v : {1.0, 2.0, 3.0}) {
    series.seconds.add(v);
    series.cycles.add(v * 1000);
    series.join_skew.add(v / 1000);
  }
  report.add_series("wl", "hybrid", series);
  TransitionStats stats;
  stats.opt_same = 42;
  report.add_stats("wl", "hybrid", stats);
  report.add_value("wl", "hybrid", "knee", json::Value(7));

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(report.to_json(), parsed, &error)) << error;
  EXPECT_EQ(parsed.at("bench").as_string(), "test_bench");
  EXPECT_EQ(parsed.at("meta").at("trials").as_u64(), 3u);
  ASSERT_EQ(parsed.at("rows").as_array().size(), 1u);  // same row reused
  const json::Value& row = parsed.at("rows").at(0);
  EXPECT_EQ(row.at("workload").as_string(), "wl");
  EXPECT_EQ(row.at("config").as_string(), "hybrid");
  EXPECT_DOUBLE_EQ(row.at("seconds").at("median").as_double(), 2.0);
  EXPECT_EQ(row.at("seconds").at("samples").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(row.at("cycles").at("mean").as_double(), 2000.0);
  EXPECT_EQ(row.at("stats").at("opt_same").as_u64(), 42u);
  EXPECT_EQ(row.at("values").at("knee").as_u64(), 7u);
}

TEST(BenchJsonReport, WriteCreatesFileLoadableAsJson) {
  BenchJsonReport report("write_test");
  report.add_value("w", "c", "x", json::Value(1));
  const std::string path = ::testing::TempDir() + "ht_bench_report.json";
  ASSERT_TRUE(report.write(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  json::Value parsed;
  EXPECT_TRUE(json::parse(std::string(buf, n > 0 ? n - 1 : 0), parsed));
}

TEST(JsonPathFromArgs, FindsFlagOrReturnsEmpty) {
  const char* argv1[] = {"bench", "--json", "out.json"};
  EXPECT_EQ(json_path_from_args(3, const_cast<char**>(argv1)), "out.json");
  const char* argv2[] = {"bench"};
  EXPECT_EQ(json_path_from_args(1, const_cast<char**>(argv2)), "");
  const char* argv3[] = {"bench", "--json"};  // missing value
  EXPECT_EQ(json_path_from_args(2, const_cast<char**>(argv3)), "");
}

}  // namespace
}  // namespace ht
