// The offline happens-before engine on hand-built traces: dependence
// anchoring, vector clocks, critical path, predictive races, region
// serializability, analytics JSON, and the whole-file driver's exit codes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "analysis/hb_engine/hb_engine.hpp"
#include "analysis/hb_engine/hb_order.hpp"
#include "analysis/hb_engine/hb_trace.hpp"
#include "recorder/recording_io.hpp"
#include "recorder/recording_validate.hpp"

namespace ht::analysis {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TraceEvent bump(ThreadId t, std::uint64_t stamp) {
  TraceEvent e;
  e.kind = TraceEventKind::kBump;
  e.thread = t;
  e.value = stamp;
  return e;
}

TraceEvent edge(ThreadId t, ThreadId src, std::uint64_t value) {
  TraceEvent e;
  e.kind = TraceEventKind::kEdge;
  e.thread = t;
  e.src = src;
  e.value = value;
  return e;
}

TraceEvent access(ThreadId t, bool write, int obj, std::uint64_t seq) {
  TraceEvent e;
  e.kind = write ? TraceEventKind::kWrite : TraceEventKind::kRead;
  e.thread = t;
  e.obj = obj;
  e.seq = seq;
  e.point = seq;
  return e;
}

TraceEvent lock_op(ThreadId t, bool release, int lock, std::uint64_t seq) {
  TraceEvent e;
  e.kind = release ? TraceEventKind::kRelease : TraceEventKind::kAcquire;
  e.thread = t;
  e.lock = lock;
  e.seq = seq;
  e.point = seq;
  return e;
}

// --- HbOrder -----------------------------------------------------------------

TEST(HbOrder, ProgramOrderChainsEachThread) {
  Trace tr;
  tr.threads = {{bump(0, 1), bump(0, 2), bump(0, 3)}};
  const HbOrder hb = HbOrder::build(tr);
  EXPECT_TRUE(hb.acyclic());
  EXPECT_EQ(hb.node_count(), 3u);
  EXPECT_EQ(hb.cross_arc_count(), 0u);
  EXPECT_TRUE(hb.happens_before({0, 0}, {0, 2}));
  EXPECT_FALSE(hb.happens_before({0, 2}, {0, 0}));
  EXPECT_EQ(hb.critical_path_length(), 3u);
}

TEST(HbOrder, EdgeAnchorsToLastBumpStampedAtOrBelow) {
  Trace tr;
  tr.threads.resize(2);
  tr.threads[0] = {bump(0, 1), bump(0, 2), bump(0, 3)};
  tr.threads[1] = {edge(1, 0, 2)};
  const HbOrder hb = HbOrder::build(tr);
  EXPECT_TRUE(hb.acyclic());
  EXPECT_EQ(hb.cross_arc_count(), 1u);
  // Anchored to the stamp-2 bump: it and its predecessors are ordered
  // before the edge, the stamp-3 bump is not.
  EXPECT_TRUE(hb.happens_before({0, 1}, {1, 0}));
  EXPECT_TRUE(hb.happens_before({0, 0}, {1, 0}));
  EXPECT_FALSE(hb.happens_before({0, 2}, {1, 0}));
  EXPECT_TRUE(hb.concurrent({0, 2}, {1, 0}));
}

TEST(HbOrder, ZeroStampBumpsDoNotAnchor) {
  // Legacy recordings stamp bumps 0 ("unknown"): the edge is treated as
  // satisfied by unlogged bumps rather than mis-anchored.
  Trace tr;
  tr.threads.resize(2);
  tr.threads[0] = {bump(0, 0), bump(0, 0)};
  tr.threads[1] = {edge(1, 0, 1)};
  const HbOrder hb = HbOrder::build(tr);
  EXPECT_TRUE(hb.acyclic());
  EXPECT_EQ(hb.cross_arc_count(), 0u);
  EXPECT_TRUE(hb.concurrent({0, 1}, {1, 0}));
}

TEST(HbOrder, MutualWaitIsCyclic) {
  // Each thread's edge needs the other's bump, and each bump comes after
  // the edge in program order: no real-time execution produces this.
  Trace tr;
  tr.threads.resize(2);
  tr.threads[0] = {edge(0, 1, 1), bump(0, 1)};
  tr.threads[1] = {edge(1, 0, 1), bump(1, 1)};
  const HbOrder hb = HbOrder::build(tr);
  EXPECT_FALSE(hb.acyclic());
  EXPECT_EQ(hb.unsorted_count(), 4u);
  EXPECT_TRUE(hb.first_cyclic().has_value());
  EXPECT_EQ(hb.critical_path_length(), 0u);
}

TEST(HbOrder, LockArcsOrderReleaseToNextAcquire) {
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  tr.threads[0] = {lock_op(0, false, 0, 0), access(0, true, 0, 1),
                   lock_op(0, true, 0, 2)};
  tr.threads[1] = {lock_op(1, false, 0, 3), access(1, true, 0, 4),
                   lock_op(1, true, 0, 5)};
  const HbOrder hb = HbOrder::build(tr);
  EXPECT_TRUE(hb.acyclic());
  EXPECT_EQ(hb.cross_arc_count(), 1u);  // T0's release -> T1's acquire
  EXPECT_TRUE(hb.happens_before({0, 2}, {1, 0}));
  EXPECT_TRUE(hb.happens_before({0, 1}, {1, 1}));  // transitively
}

// --- predictive races --------------------------------------------------------

TEST(PredictiveRaces, UnorderedConflictingWritesReported) {
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  tr.threads[0] = {access(0, true, 0, 0)};
  tr.threads[1] = {access(1, true, 0, 1)};
  const HbOrder hb = HbOrder::build(tr);
  const PredictiveRaceReport rep = predictive_races(tr, hb);
  EXPECT_TRUE(rep.applicable);
  ASSERT_EQ(rep.races.size(), 1u);
  EXPECT_EQ(rep.races[0].obj, 0);
  EXPECT_TRUE(rep.races[0].write_write);
  EXPECT_EQ(rep.racy_object_mask, 1u);
}

TEST(PredictiveRaces, LockOrderedAccessesAreNotRaces) {
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  tr.threads[0] = {lock_op(0, false, 0, 0), access(0, true, 0, 1),
                   lock_op(0, true, 0, 2)};
  tr.threads[1] = {lock_op(1, false, 0, 3), access(1, true, 0, 4),
                   lock_op(1, true, 0, 5)};
  const HbOrder hb = HbOrder::build(tr);
  const PredictiveRaceReport rep = predictive_races(tr, hb);
  EXPECT_TRUE(rep.applicable);
  EXPECT_TRUE(rep.races.empty());
  EXPECT_EQ(rep.racy_object_mask, 0u);
  EXPECT_EQ(rep.pairs_checked, 1u);
}

TEST(PredictiveRaces, ReadReadIsNotAConflict) {
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  tr.threads[0] = {access(0, false, 0, 0)};
  tr.threads[1] = {access(1, false, 0, 1)};
  const HbOrder hb = HbOrder::build(tr);
  const PredictiveRaceReport rep = predictive_races(tr, hb);
  EXPECT_TRUE(rep.races.empty());
  EXPECT_EQ(rep.pairs_checked, 0u);
}

TEST(PredictiveRaces, SyncOnlyTracesAreNotApplicable) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 1});
  r.threads[1].events.push_back({5, LogEventType::kEdge, 0, 1});
  const Trace tr = trace_from_recording(r);
  const HbOrder hb = HbOrder::build(tr);
  const PredictiveRaceReport rep = predictive_races(tr, hb);
  EXPECT_FALSE(rep.applicable);
  EXPECT_TRUE(rep.races.empty());
}

// --- region serializability --------------------------------------------------

TEST(RegionSerializability, InterleavedUnsyncedIncrementsCycle) {
  // The racy-inc shape: both threads load obj0, then both store it. Each
  // thread's region reads the value the OTHER region overwrites, so no
  // serial order of the two regions explains the observed conflicts.
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  tr.threads[0] = {access(0, false, 0, 0), access(0, true, 0, 2)};
  tr.threads[1] = {access(1, false, 0, 1), access(1, true, 0, 3)};
  const HbOrder hb = HbOrder::build(tr);
  const RegionSerializabilityReport rep =
      check_region_serializability(tr, hb);
  EXPECT_EQ(rep.regions, 2u);
  EXPECT_FALSE(rep.serializable);
  EXPECT_FALSE(rep.violating.empty());
}

TEST(RegionSerializability, SerialExecutionIsSerializable) {
  // Same ops, but thread 0 finished before thread 1 started: all conflict
  // arcs point one way.
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  tr.threads[0] = {access(0, false, 0, 0), access(0, true, 0, 1)};
  tr.threads[1] = {access(1, false, 0, 2), access(1, true, 0, 3)};
  const HbOrder hb = HbOrder::build(tr);
  const RegionSerializabilityReport rep =
      check_region_serializability(tr, hb);
  EXPECT_TRUE(rep.serializable);
  EXPECT_TRUE(rep.violating.empty());
}

TEST(RegionSerializability, LockBoundariesSplitRegionsAndSerialize) {
  // Lock-synchronized increments interleave at region granularity but each
  // critical section is its own region, ordered by the lock arcs.
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  tr.threads[0] = {lock_op(0, false, 0, 0), access(0, false, 0, 1),
                   access(0, true, 0, 2), lock_op(0, true, 0, 3)};
  tr.threads[1] = {lock_op(1, false, 0, 4), access(1, false, 0, 5),
                   access(1, true, 0, 6), lock_op(1, true, 0, 7)};
  const HbOrder hb = HbOrder::build(tr);
  const RegionSerializabilityReport rep =
      check_region_serializability(tr, hb);
  EXPECT_GT(rep.regions, 2u);
  EXPECT_TRUE(rep.serializable) << "violating regions: " << rep.violating.size();
}

TEST(RegionSerializability, SyncOnlyCycleIsUnserializable) {
  Trace tr;
  tr.threads.resize(2);
  tr.threads[0] = {edge(0, 1, 1), bump(0, 1)};
  tr.threads[1] = {edge(1, 0, 1), bump(1, 1)};
  const HbOrder hb = HbOrder::build(tr);
  const RegionSerializabilityReport rep =
      check_region_serializability(tr, hb);
  EXPECT_FALSE(rep.serializable);
}

// --- analytics ---------------------------------------------------------------

TEST(TraceAnalytics, CountsAndJsonShape) {
  Trace tr;
  tr.threads.resize(2);
  tr.threads[0] = {bump(0, 1), bump(0, 2)};
  tr.threads[1] = {edge(1, 0, 1), edge(1, 0, 2)};
  const HbOrder hb = HbOrder::build(tr);
  const TraceAnalytics a = analyze_trace(tr, hb);
  EXPECT_EQ(a.threads, 2u);
  EXPECT_EQ(a.events, 4u);
  EXPECT_EQ(a.cross_arcs, 2u);
  EXPECT_GT(a.critical_path, 0u);
  EXPECT_DOUBLE_EQ(a.cross_arc_density, 0.5);
  ASSERT_EQ(a.edges_out.size(), 2u);
  EXPECT_EQ(a.edges_out[0], 2u);  // both arcs leave thread 0
  EXPECT_EQ(a.edges_in[1], 2u);   // and land in thread 1
  const std::string js = a.to_json().dump();
  EXPECT_NE(js.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(js.find("\"cross_arc_density\""), std::string::npos);
  EXPECT_NE(js.find("\"object_ranking\""), std::string::npos);
}

TEST(TraceAnalytics, ObjectRankingOrdersByConflicts) {
  Trace tr;
  tr.annotated = true;
  tr.threads.resize(2);
  // obj 1: two conflicting pairs; obj 0: one.
  tr.threads[0] = {access(0, true, 1, 0), access(0, true, 1, 1),
                   access(0, true, 0, 2)};
  tr.threads[1] = {access(1, true, 1, 3), access(1, true, 0, 4)};
  const HbOrder hb = HbOrder::build(tr);
  const TraceAnalytics a = analyze_trace(tr, hb);
  ASSERT_GE(a.object_ranking.size(), 2u);
  EXPECT_EQ(a.object_ranking[0].obj, 1);
  EXPECT_GT(a.object_ranking[0].conflicting_pairs,
            a.object_ranking[1].conflicting_pairs);
}

// --- whole-file driver -------------------------------------------------------

TEST(AnalyzeRecordingFile, CleanRecordingExitsZero) {
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({3, LogEventType::kResponse, kNoThread, 1});
  r.threads[0].events.push_back({8, LogEventType::kRegionEnd, kNoThread, 2});
  r.threads[1].events.push_back({5, LogEventType::kEdge, 0, 1});
  const std::string path = temp_path("ht_hb_clean.bin");
  ASSERT_TRUE(save_recording(r, path));
  const RecordingAnalysisReport rep = analyze_recording_file(path);
  EXPECT_TRUE(rep.hb_acyclic);
  EXPECT_TRUE(rep.rs.serializable);
  EXPECT_EQ(rep.exit_code(), kExitOk) << rep.to_string();
  EXPECT_NE(rep.to_string().find("serializable"), std::string::npos);
  EXPECT_NE(rep.to_json().dump().find("\"exit_code\":0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(AnalyzeRecordingFile, InjectedCycleExitsUnserializable) {
  // The trace_analyze --make-violation fixture: per-thread stamps are
  // monotone but the cross-thread dependence graph is cyclic.
  Recording r;
  r.threads.resize(2);
  r.threads[0].events.push_back({0, LogEventType::kEdge, 1, 1});
  r.threads[0].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  r.threads[1].events.push_back({0, LogEventType::kEdge, 0, 1});
  r.threads[1].events.push_back({1, LogEventType::kResponse, kNoThread, 1});
  const std::string path = temp_path("ht_hb_cyclic.bin");
  ASSERT_TRUE(save_recording(r, path));
  const RecordingAnalysisReport rep = analyze_recording_file(path);
  EXPECT_FALSE(rep.hb_acyclic);
  EXPECT_FALSE(rep.rs.serializable);
  EXPECT_EQ(rep.exit_code(), kExitUnserializable) << rep.to_string();
  EXPECT_NE(rep.to_string().find("NOT serializable"), std::string::npos);
  std::remove(path.c_str());
}

TEST(AnalyzeRecordingFile, MissingFileMapsToLoadError) {
  const RecordingAnalysisReport rep =
      analyze_recording_file(temp_path("ht_hb_does_not_exist.bin"));
  EXPECT_FALSE(rep.load.recording.has_value());
  EXPECT_NE(rep.exit_code(), kExitOk);
  EXPECT_NE(rep.exit_code(), kExitUnserializable);
}

}  // namespace
}  // namespace ht::analysis
