// Cross-validation of the offline predictive race detector (ISSUE 7's
// acceptance bar): for every builtin program, exhaustively explore all
// interleavings with the runtime FastTrack detector armed, and feed every
// executed schedule through the offline hb_engine via the scheduler's on_op
// observer. The offline detector predicts races from ONE observed schedule;
// exhaustive exploration observes every schedule. The two must agree
// exactly — same racy-object set, no false positives, no misses:
//
//   * per run, the runtime detector's racy objects are a subset of the
//     offline prediction (prediction sees races the observed order happened
//     to hide), and
//   * over the whole exhaustive tree, the union of runtime-detected racy
//     objects equals the union of offline predictions.
//
// The quarantine program is excluded: a quarantined thread's remaining ops
// are skipped, so its access set is schedule-dependent and the "predict from
// one schedule" premise does not hold.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/hb_engine/hb_engine.hpp"
#include "analysis/hb_engine/hb_order.hpp"
#include "analysis/hb_engine/hb_trace.hpp"
#include "schedule/explorer.hpp"
#include "schedule/program.hpp"

namespace ht::schedule {
namespace {

constexpr std::uint64_t kBudget = 4096;  // > largest exhaustive tree

// Structural adapter: the analysis library is layered below schedule/, so
// it consumes OpViews rather than Ops.
analysis::OpView to_view(const Op& op) {
  using K = analysis::OpView::Kind;
  analysis::OpView v;
  v.obj = op.obj;
  v.lock = op.lock;
  switch (op.kind) {
    case OpKind::kLoad: v.kind = K::kLoad; break;
    case OpKind::kStore:
    case OpKind::kStoreReg: v.kind = K::kStore; break;
    case OpKind::kPsro: v.kind = K::kPsro; break;
    case OpKind::kBlockWindow: v.kind = K::kBlockWindow; break;
    case OpKind::kLockAcquire: v.kind = K::kLockAcquire; break;
    case OpKind::kLockRelease: v.kind = K::kLockRelease; break;
    case OpKind::kQuarantine: v.kind = K::kOther; break;
  }
  return v;
}

std::size_t annotated_op_count(const Program& p) {
  std::size_t n = 0;
  for (const std::vector<Op>& ops : p.threads) {
    for (const Op& op : ops) {
      if (op.kind != OpKind::kQuarantine) ++n;
    }
  }
  return n;
}

std::string case_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string n = info.param;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class PredictiveP : public ::testing::TestWithParam<std::string> {};

TEST_P(PredictiveP, OfflinePredictionMatchesExhaustiveDetection) {
  const Program* prog = find_builtin(GetParam());
  ASSERT_NE(prog, nullptr) << GetParam();
  const int nthreads = prog->nthreads();
  const std::size_t expected_ops = annotated_op_count(*prog);

  Explorer ex(Family::kHybrid, nthreads);
  ex.run_config().race_detect = true;

  auto builder = std::make_unique<analysis::TraceBuilder>(nthreads);
  ex.run_config().on_op = [&builder](const OpStep& s) {
    builder->on_op(s.seq, s.slot, to_view(s.op));
  };

  std::uint64_t detected_union = 0;   // runtime FastTrack, all schedules
  std::uint64_t predicted_union = 0;  // offline hb_engine, all schedules
  std::uint64_t runs_checked = 0;
  std::string failure;
  ex.check_policy().extra = [&](const RunResult& r) -> std::string {
    const analysis::Trace trace = builder->take();
    *builder = analysis::TraceBuilder(nthreads);
    if (!r.complete()) return "";  // require_complete reports it
    // One extra call per executed schedule, with the observer having seen
    // every op: anything else would silently cross-validate garbage.
    if (trace.total_events() != expected_ops) {
      return "observer saw " + std::to_string(trace.total_events()) +
             " op(s), want " + std::to_string(expected_ops);
    }
    const analysis::HbOrder hb = analysis::HbOrder::build(trace);
    if (!hb.acyclic()) return "annotated trace graph not acyclic";
    const analysis::PredictiveRaceReport rep =
        analysis::predictive_races(trace, hb);
    if (!rep.applicable) return "annotated trace not applicable";
    // Runtime-detected races manifest in the observed order, which the
    // offline HB also leaves unordered: a miss here is unsoundness.
    if ((r.racy_object_mask & ~rep.racy_object_mask) != 0) {
      return "offline prediction missed runtime-detected race(s)";
    }
    detected_union |= r.racy_object_mask;
    predicted_union |= rep.racy_object_mask;
    ++runs_checked;
    return "";
  };

  ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
  EXPECT_FALSE(out.violation.has_value()) << out.violation->to_string();
  EXPECT_TRUE(out.stats.complete) << "tree not exhausted within budget";
  EXPECT_GT(runs_checked, 0u);
  // Exact agreement: every offline-predicted race manifests in SOME
  // exhaustively explored schedule (no false positives), and every runtime
  // race was predicted (no misses, already enforced per run).
  EXPECT_EQ(predicted_union, detected_union)
      << "predicted 0x" << std::hex << predicted_union << ", detected 0x"
      << detected_union;
}

std::vector<std::string> validation_programs() {
  std::vector<std::string> names;
  for (const NamedProgram& np : builtin_programs()) {
    if (!np.program.has_quarantine()) names.push_back(np.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, PredictiveP,
                         ::testing::ValuesIn(validation_programs()),
                         case_name);

// Documented ground truth for the two canonical endpoints, so a regression
// that turns BOTH detectors off together cannot slip through the equality.
TEST(Predictive, RacyIncRacesAndLockedIncDoesNot) {
  for (const auto& [name, want_mask] :
       {std::pair<const char*, std::uint64_t>{"racy-inc", 1},
        std::pair<const char*, std::uint64_t>{"locked-inc", 0}}) {
    const Program* prog = find_builtin(name);
    ASSERT_NE(prog, nullptr);
    Explorer ex(Family::kHybrid, prog->nthreads());
    auto builder = std::make_unique<analysis::TraceBuilder>(prog->nthreads());
    ex.run_config().on_op = [&builder](const OpStep& s) {
      builder->on_op(s.seq, s.slot, to_view(s.op));
    };
    std::uint64_t predicted = 0;
    ex.check_policy().extra = [&](const RunResult&) -> std::string {
      const analysis::Trace trace = builder->take();
      *builder = analysis::TraceBuilder(prog->nthreads());
      const analysis::HbOrder hb = analysis::HbOrder::build(trace);
      predicted |= analysis::predictive_races(trace, hb).racy_object_mask;
      return "";
    };
    ExploreOutcome out = ex.explore_exhaustive(*prog, kBudget);
    EXPECT_FALSE(out.violation.has_value()) << out.violation->to_string();
    EXPECT_EQ(predicted, want_mask) << name;
  }
}

}  // namespace
}  // namespace ht::schedule
