// Hybrid tracking tests: every Table 3 transition family, deferred unlocking
// (lock buffer + flush at PSROs and responding safe points), reentrancy,
// contended fallbacks, the adaptive policy's state transfers, and the §7.1
// WrExRLock configuration modes.
//
// Objects are pushed into pessimistic states either through the policy
// (repeat conflicts past Cutoff_confl) or, for targeted transition tests, by
// a policy with cutoff 1 so the first explicit conflict transfers.
#include "tracking/hybrid_tracker.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/xorshift.hpp"
#include "runtime/sync.hpp"
#include "test_util.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

using testing::BlockedThread;
using testing::state_is;

using Tracker = HybridTracker</*kStats=*/true>;

HybridConfig cutoff1_config() {
  HybridConfig c;
  c.policy.cutoff_confl = 1;
  return c;
}

struct HybridFixture : ::testing::Test {
  Runtime rt;
  Tracker tracker{rt, cutoff1_config()};
  ThreadContext& t0 = rt.register_thread();
  TrackedVar<std::uint64_t> var;

  void SetUp() override {
    tracker.attach_thread(t0);
    var.init(tracker, t0, 7);
  }

  // Registers and attaches a fresh context.
  ThreadContext& fresh_thread() {
    ThreadContext& c = rt.register_thread();
    tracker.attach_thread(c);
    return c;
  }

  // Forces the object into WrExWLock(owner) via an explicit-conflict pattern:
  // owner writes while the previous owner is blocked... with cutoff 1 a
  // single conflicting write by `owner` transfers the object to pessimistic.
  void make_wr_ex_wlock(ThreadContext& owner, BlockedThread& victim) {
    // victim owns first
    (void)victim;  // victim is blocked; var currently owned by t0.
    var.store(tracker, owner, 100);  // conflicting -> policy -> WrExWLock
  }
};

TEST_F(HybridFixture, StartsOptimistic) {
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, t0.id));
  var.store(tracker, t0, 1);
  EXPECT_EQ(t0.stats.opt_same, 1u);
}

TEST_F(HybridFixture, ImplicitConflictDoesNotTransferToPess) {
  // Footnote 7: the policy counts only explicit-coordination conflicts, so
  // an implicit conflict (owner blocked) leaves the object optimistic even
  // with cutoff 1.
  rt.begin_blocking(t0);
  ThreadContext& t1 = fresh_thread();
  var.store(tracker, t1, 9);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, t1.id));
  EXPECT_EQ(t1.stats.opt_confl_implicit, 1u);
  EXPECT_EQ(t1.stats.opt_to_pess, 0u);
  rt.end_blocking(t0);
}

TEST_F(HybridFixture, ExplicitConflictTransfersToPessimistic) {
  ThreadContext& t1 = fresh_thread();
  std::atomic<bool> done{false};
  std::thread writer([&] {
    var.store(tracker, t1, 9);  // explicit conflict with running t0
    done.store(true);
  });
  while (!done.load()) {
    rt.poll(t0);
    std::this_thread::yield();
  }
  writer.join();
  // cutoff 1: the object landed write-locked by t1 and is in t1's buffer.
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, t1.id));
  EXPECT_EQ(t1.stats.opt_to_pess, 1u);
  ASSERT_EQ(t1.lock_buffer.size(), 1u);
  EXPECT_EQ(t1.lock_buffer[0], &var.meta());
  // Flush unlocks to WrExPess (fresh pessimistic counters keep it pess).
  tracker.flush(t1);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t1.id));
  EXPECT_TRUE(t1.lock_buffer.empty());
}

// ---- pessimistic uncontended transitions (Table 3) --------------------------

struct PessStateFixture : HybridFixture {
  ThreadContext* owner = nullptr;  // pessimistic owner of var (unlocked)

  void SetUp() override {
    HybridFixture::SetUp();
    // Drive var to WrExPess(t1) deterministically: explicit conflict by t1
    // (t0 polls), then flush t1.
    ThreadContext& t1 = fresh_thread();
    std::atomic<bool> done{false};
    std::thread writer([&] {
      var.store(tracker, t1, 50);
      done.store(true);
    });
    while (!done.load()) {
      rt.poll(t0);
      std::this_thread::yield();
    }
    writer.join();
    tracker.flush(t1);
    ASSERT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t1.id));
    owner = &t1;
  }
};

TEST_F(PessStateFixture, WriteByOwnerLocksWrExWLock) {
  var.store(tracker, *owner, 51);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, owner->id));
  EXPECT_EQ(owner->stats.pess_uncontended, 1u);
  EXPECT_EQ(owner->stats.pess_reentrant, 0u);
  // Reentrant same-state write and read while write-locked. Barrier elision
  // may serve the trailing accesses from the ownership cache (a reentrant
  // held-lock access is exactly the case it targets), so count cache hits
  // alongside the reentrant counters.
  var.store(tracker, *owner, 52);
  (void)var.load(tracker, *owner);
  EXPECT_EQ(owner->stats.pess_uncontended + owner->stats.elision_hits, 3u);
  EXPECT_EQ(owner->stats.pess_reentrant + owner->stats.elision_hits, 2u);
  tracker.flush(*owner);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, owner->id));
}

TEST_F(PessStateFixture, ReadByOwnerTakesWrExRLockInFullModel) {
  (void)var.load(tracker, *owner);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExRLock, owner->id));
  EXPECT_TRUE(owner->rd_set.contains(&var.meta()));
  // Reentrant re-read.
  (void)var.load(tracker, *owner);
  EXPECT_EQ(owner->stats.pess_reentrant, 1u);
  // Own write upgrades the read lock in place (no new buffer entry).
  var.store(tracker, *owner, 60);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, owner->id));
  EXPECT_EQ(owner->lock_buffer.size(), 1u);
  tracker.flush(*owner);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, owner->id));
}

TEST_F(PessStateFixture, CrossReadOfWrExPessTakesRdExRLock) {
  EXPECT_EQ(var.load(tracker, t0), 50u);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdExRLock, t0.id));
  EXPECT_EQ(t0.stats.pess_uncontended, 1u);
  tracker.flush(t0);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdExPess, t0.id));
}

TEST_F(PessStateFixture, CrossWriteOfWrExPessTakesWrExWLock) {
  var.store(tracker, t0, 61);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, t0.id));
  tracker.flush(t0);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t0.id));
}

TEST_F(PessStateFixture, ReadShareFormationAndJoin) {
  // owner read-locks its WrExPess -> WrExRLock; t0 joins -> RdShRLock(2).
  (void)var.load(tracker, *owner);
  (void)var.load(tracker, t0);
  StateWord s = var.meta().load_state();
  EXPECT_EQ(s.kind(), StateKind::kRdShRLock);
  EXPECT_EQ(s.rdlock_count(), 2u);
  EXPECT_TRUE(t0.rd_set.contains(&var.meta()));
  EXPECT_GE(t0.rd_sh_count, s.counter());

  // Third reader joins: n=3.
  ThreadContext& t2 = fresh_thread();
  (void)var.load(tracker, t2);
  s = var.meta().load_state();
  EXPECT_EQ(s.rdlock_count(), 3u);

  // Reentrant reads do not change n.
  (void)var.load(tracker, t0);
  EXPECT_EQ(var.meta().load_state().rdlock_count(), 3u);

  // Flushes decrement; the last unlock yields RdShPess with the counter kept.
  tracker.flush(*owner);
  EXPECT_EQ(var.meta().load_state().rdlock_count(), 2u);
  tracker.flush(t2);
  EXPECT_EQ(var.meta().load_state().rdlock_count(), 1u);
  tracker.flush(t0);
  const StateWord fin = var.meta().load_state();
  EXPECT_EQ(fin.kind(), StateKind::kRdShPess);
  EXPECT_EQ(fin.counter(), s.counter());
}

TEST_F(PessStateFixture, RdShPessReadLocksAndWriteReclaims) {
  // Form RdShPess as in ReadShareFormationAndJoin.
  (void)var.load(tracker, *owner);
  (void)var.load(tracker, t0);
  tracker.flush(*owner);
  tracker.flush(t0);
  ASSERT_TRUE(state_is(var.meta(), StateKind::kRdShPess));

  // A read of unlocked RdShPess takes a single read lock, same counter.
  const std::uint32_t c = var.meta().load_state().counter();
  (void)var.load(tracker, t0);
  StateWord s = var.meta().load_state();
  EXPECT_EQ(s.kind(), StateKind::kRdShRLock);
  EXPECT_EQ(s.counter(), c);
  EXPECT_EQ(s.rdlock_count(), 1u);
  tracker.flush(t0);

  // A write of unlocked RdShPess write-locks directly.
  var.store(tracker, t0, 70);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, t0.id));
  tracker.flush(t0);
}

TEST_F(PessStateFixture, SoleReadLockHolderUpgradesToWriteWithoutDeadlock) {
  (void)var.load(tracker, t0);  // RdExRLock(t0)
  var.store(tracker, t0, 80);   // must not deadlock against our own lock
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, t0.id));
  tracker.flush(t0);
}

TEST_F(PessStateFixture, SoleRdShRLockHolderUpgradesToWrite) {
  // Form RdShPess, then read-lock it solo, then write.
  (void)var.load(tracker, *owner);
  (void)var.load(tracker, t0);
  tracker.flush(*owner);
  tracker.flush(t0);
  (void)var.load(tracker, t0);  // RdShRLock(1), sole holder t0
  var.store(tracker, t0, 90);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, t0.id));
  tracker.flush(t0);
}

TEST_F(PessStateFixture, ContendedTransitionFallsBackToCoordination) {
  // owner write-locks; t0's write is contended and coordinates; owner's
  // responding safe point flushes, letting t0 proceed.
  var.store(tracker, *owner, 51);
  ASSERT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, owner->id));

  std::atomic<bool> done{false};
  std::thread contender([&] {
    var.store(tracker, t0, 61);
    done.store(true);
  });
  while (!done.load()) {
    rt.poll(*owner);  // responding safe point: flush + answer
    std::this_thread::yield();
  }
  contender.join();
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExWLock, t0.id));
  EXPECT_GE(t0.stats.pess_contended, 1u);
  EXPECT_TRUE(owner->lock_buffer.empty());  // flushed when responding
  tracker.flush(t0);
}

TEST_F(PessStateFixture, PsroFlushesLockBuffer) {
  var.store(tracker, *owner, 51);
  ASSERT_FALSE(owner->lock_buffer.empty());
  rt.psro(*owner);
  EXPECT_TRUE(owner->lock_buffer.empty());
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, owner->id));
}

TEST_F(PessStateFixture, BlockingFlushesLockBuffer) {
  var.store(tracker, *owner, 51);
  rt.begin_blocking(*owner);
  EXPECT_TRUE(owner->lock_buffer.empty());
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, owner->id));
  rt.end_blocking(*owner);
}

TEST_F(PessStateFixture, PolicyReturnsLowConflictObjectToOptimistic) {
  // Rack up non-conflicting pessimistic transitions past K*0 + Inertia, then
  // flush: the object must go back to optimistic and stay there.
  HybridConfig cfg;
  cfg.policy.cutoff_confl = 1;
  cfg.policy.k_confl = 10;
  cfg.policy.inertia = 5;
  Tracker t2(rt, cfg);
  t2.attach_thread(*owner);
  // The policy only profiles transitions the tracker actually sees; disable
  // elision so all 6 writes reach it (elided accesses skip profiling by
  // design — they change performance counters, never policy inputs).
  owner->elision_on.store(false, std::memory_order_relaxed);
  // var is WrExPess(owner); 6 owner writes = 6 non-conflicting transitions.
  for (int i = 0; i < 6; ++i) var.store(t2, *owner, 1);
  t2.flush(*owner);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, owner->id));
  EXPECT_EQ(owner->stats.pess_to_opt, 1u);
  EXPECT_TRUE(var.meta().profile().load().must_stay_opt());
}

// ---- WrExRLock configuration modes (§7.1) ------------------------------------

TEST(HybridModes, PrototypeModeWriteLocksOnOwnerRead) {
  Runtime rt;
  HybridConfig cfg = cutoff1_config();
  cfg.wr_ex_read_mode = WrExReadMode::kOmitWrExRLock;
  Tracker tracker(rt, cfg);
  ThreadContext& t0 = rt.register_thread();
  tracker.attach_thread(t0);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, t0, 0);
  // Push to WrExPess(t0) via a blocked victim is impossible (implicit not
  // counted); set the state directly instead — unit scope.
  var.meta().reset(StateWord::wr_ex_pess(t0.id));
  (void)var.load(tracker, t0);
  EXPECT_TRUE(testing::state_is(var.meta(), StateKind::kWrExWLock, t0.id));
  tracker.flush(t0);
}

TEST(HybridModes, UnsoundModeDowngradesOnOwnerRead) {
  Runtime rt;
  HybridConfig cfg = cutoff1_config();
  cfg.wr_ex_read_mode = WrExReadMode::kUnsoundDowngrade;
  Tracker tracker(rt, cfg);
  ThreadContext& t0 = rt.register_thread();
  tracker.attach_thread(t0);
  TrackedVar<std::uint64_t> var;
  var.init(tracker, t0, 0);
  var.meta().reset(StateWord::wr_ex_pess(t0.id));
  (void)var.load(tracker, t0);
  EXPECT_TRUE(testing::state_is(var.meta(), StateKind::kRdExRLock, t0.id));
  tracker.flush(t0);
}

// ---- multithreaded stress ------------------------------------------------------

TEST(HybridStress, MixedWorkloadKeepsMetadataConsistent) {
  Runtime rt;
  HybridTracker<> tracker(rt, HybridConfig{});
  constexpr int kThreads = 4;
  constexpr int kObjects = 32;
  constexpr int kOps = 20000;
  std::vector<TrackedVar<std::uint64_t>> vars(kObjects);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext& ctx = rt.register_thread();
      tracker.attach_thread(ctx);
      if (ctx.id == 0) {
        for (auto& v : vars) v.init(tracker, ctx, 0);
      }
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        rt.poll(ctx);
        std::this_thread::yield();
      }
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      for (int i = 0; i < kOps; ++i) {
        auto& v = vars[rng.next_below(kObjects)];
        if (rng.chance(40, 100)) {
          v.store(tracker, ctx, rng.next());
        } else {
          (void)v.load(tracker, ctx);
        }
        if (rng.chance(1, 16)) rt.psro(ctx);
        rt.poll(ctx);
      }
      rt.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();
  // After all threads flushed and exited, every state must be unlocked.
  for (auto& v : vars) {
    const StateWord s = v.meta().load_state();
    EXPECT_TRUE(s.is_optimistic() || s.is_pess_unlocked()) << s.to_string();
  }
}

}  // namespace
}  // namespace ht
