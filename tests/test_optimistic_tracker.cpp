// Optimistic (Octet) tracking tests: Table 1's same-state, upgrading, fence
// and conflicting transitions, implicit vs explicit coordination, and a
// multithreaded stress for metadata integrity.
#include "tracking/optimistic_tracker.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/xorshift.hpp"
#include "test_util.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

using testing::BlockedThread;
using testing::state_is;

using Tracker = OptimisticTracker</*kStats=*/true>;

struct OptFixture : ::testing::Test {
  Runtime rt;
  Tracker tracker{rt};
  ThreadContext& t0 = rt.register_thread();
  TrackedVar<std::uint64_t> var;

  void SetUp() override { var.init(tracker, t0, 7); }
};

TEST_F(OptFixture, SameStateAccessesAreFastPath) {
  var.store(tracker, t0, 1);
  (void)var.load(tracker, t0);
  // With barrier elision compiled in, the second access may be served by the
  // ownership cache instead of the tracker fast path; either way both count
  // as same-state accesses and neither coordinates.
  EXPECT_EQ(t0.stats.opt_same + t0.stats.elision_hits, 2u);
  EXPECT_EQ(t0.stats.opt_conflicting(), 0u);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, t0.id));
}

TEST_F(OptFixture, ConflictingReadOfBlockedOwner) {
  // t0 owns the object, then blocks; a reader coordinates implicitly.
  Runtime& r = rt;
  r.begin_blocking(t0);
  ThreadContext& t1 = r.register_thread();
  EXPECT_EQ(var.load(tracker, t1), 7u);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdExOpt, t1.id));
  EXPECT_EQ(t1.stats.opt_confl_implicit, 1u);
  EXPECT_EQ(t1.stats.opt_confl_explicit, 0u);
  r.end_blocking(t0);
}

TEST_F(OptFixture, ConflictingWriteOfBlockedOwner) {
  rt.begin_blocking(t0);
  ThreadContext& t1 = rt.register_thread();
  var.store(tracker, t1, 99);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, t1.id));
  EXPECT_EQ(t1.stats.opt_confl_implicit, 1u);
  rt.end_blocking(t0);
  // Conflicting back: t1 must be at a safe point for t0's read to complete —
  // park it (both contexts are driven by this one OS thread).
  rt.begin_blocking(t1);
  EXPECT_EQ(var.load(tracker, t0), 99u);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdExOpt, t0.id));
  rt.end_blocking(t1);
}

TEST_F(OptFixture, UpgradeOwnReadToWrite) {
  rt.begin_blocking(t0);
  ThreadContext& t1 = rt.register_thread();
  (void)var.load(tracker, t1);  // RdExOpt(t1)
  var.store(tracker, t1, 5);    // upgrading, no coordination
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, t1.id));
  EXPECT_EQ(t1.stats.opt_upgrading, 1u);
  EXPECT_EQ(t1.stats.opt_conflicting(), 1u);  // only the initial read
  rt.end_blocking(t0);
}

TEST_F(OptFixture, SecondReaderUpgradesToRdSh) {
  rt.begin_blocking(t0);
  ThreadContext& t1 = rt.register_thread();
  ThreadContext& t2 = rt.register_thread();
  (void)var.load(tracker, t1);  // RdExOpt(t1), implicit conflict
  (void)var.load(tracker, t2);  // upgrade to RdShOpt, CAS only
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdShOpt));
  EXPECT_EQ(t2.stats.opt_upgrading, 1u);
  EXPECT_EQ(t2.stats.opt_conflicting(), 0u);
  const StateWord s = var.meta().load_state();
  EXPECT_GE(t2.rd_sh_count, s.counter());  // the upgrader saw its own epoch
  rt.end_blocking(t0);
}

TEST_F(OptFixture, RdShReadersFenceOncePerEpoch) {
  rt.begin_blocking(t0);
  ThreadContext& t1 = rt.register_thread();
  ThreadContext& t2 = rt.register_thread();
  ThreadContext& t3 = rt.register_thread();
  (void)var.load(tracker, t1);
  (void)var.load(tracker, t2);  // RdShOpt
  (void)var.load(tracker, t3);  // fence transition (t3 stale)
  EXPECT_EQ(t3.stats.opt_fence, 1u);
  (void)var.load(tracker, t3);  // now same-state
  EXPECT_EQ(t3.stats.opt_same, 1u);
  EXPECT_EQ(t3.stats.opt_fence, 1u);
  rt.end_blocking(t0);
}

TEST_F(OptFixture, WriteToRdShCoordinatesWithAllThreads) {
  rt.begin_blocking(t0);
  ThreadContext& t1 = rt.register_thread();
  ThreadContext& t2 = rt.register_thread();
  (void)var.load(tracker, t1);
  (void)var.load(tracker, t2);  // RdShOpt
  // t2 writes: must coordinate with t0 (blocked) and t1 (running — but t1
  // shares this OS thread, so park it first to keep the test single-threaded).
  rt.begin_blocking(t1);
  var.store(tracker, t2, 1);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExOpt, t2.id));
  EXPECT_EQ(t2.stats.opt_confl_implicit, 1u);
  // Rounds: one per other registered thread (t0, t1).
  EXPECT_GE(t2.stats.coordination_rounds, 2u);
  rt.end_blocking(t1);
  rt.end_blocking(t0);
}

TEST_F(OptFixture, ExplicitCoordinationWithRunningOwner) {
  ThreadContext& t1 = rt.register_thread();
  std::atomic<bool> done{false};
  // Reader runs on another OS thread; the owner (this thread) polls.
  std::thread reader([&] {
    EXPECT_EQ(var.load(tracker, t1), 7u);
    done.store(true);
  });
  while (!done.load()) {
    rt.poll(t0);
    std::this_thread::yield();
  }
  reader.join();
  EXPECT_EQ(t1.stats.opt_confl_explicit, 1u);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdExOpt, t1.id));
}

TEST(OptimisticStress, ManyThreadsManyObjects) {
  Runtime rt;
  OptimisticTracker<> tracker(rt);
  // Conflict-heavy by design (most accesses hit foreign-owned objects), so
  // the op count stays small: every conflict is a cross-thread round trip,
  // and the test box timeshares one core.
  constexpr int kThreads = 4;
  constexpr int kObjects = 256;
  constexpr int kOps = 3000;
  std::vector<TrackedVar<std::uint64_t>> vars(kObjects);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext& ctx = rt.register_thread();
      if (ctx.id == 0) {
        for (auto& v : vars) v.init(tracker, ctx, 0);
      }
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        rt.poll(ctx);
        std::this_thread::yield();
      }
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        auto& v = vars[rng.next_below(kObjects)];
        if (rng.chance(30, 100)) {
          v.store(tracker, ctx, rng.next());
        } else {
          (void)v.load(tracker, ctx);
        }
        rt.poll(ctx);
      }
      rt.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();
  for (auto& v : vars) {
    const StateWord s = v.meta().load_state();
    EXPECT_TRUE(s.is_optimistic()) << s.to_string();
  }
}

}  // namespace
}  // namespace ht
