// Pessimistic tracking (§2.1): the lock-classify-access-unlock cycle and its
// Table 1 state transitions, plus a multithreaded atomicity stress.
#include "tracking/pessimistic_tracker.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"
#include "tracking/tracked_var.hpp"

namespace ht {
namespace {

using testing::state_is;

using Tracker = PessimisticTracker</*kStats=*/true>;

struct PessFixture : ::testing::Test {
  Runtime rt;
  Tracker tracker{rt};
  ThreadContext& t0 = rt.register_thread();
  ThreadContext& t1 = rt.register_thread();
  TrackedVar<std::uint64_t> var;

  void SetUp() override { var.init(tracker, t0, 7); }
};

TEST_F(PessFixture, InitialStateIsWrExOfAllocator) {
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t0.id));
}

TEST_F(PessFixture, WriteByOwnerIsSameState) {
  var.store(tracker, t0, 9);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t0.id));
  EXPECT_EQ(t0.stats.pess_alone_same, 1u);
  EXPECT_EQ(t0.stats.pess_alone_cross, 0u);
  EXPECT_EQ(var.load(tracker, t0), 9u);
}

TEST_F(PessFixture, ReadByOwnerKeepsWrEx) {
  EXPECT_EQ(var.load(tracker, t0), 7u);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t0.id));
}

TEST_F(PessFixture, ReadByOtherMakesRdEx) {
  EXPECT_EQ(var.load(tracker, t1), 7u);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdExPess, t1.id));
  EXPECT_EQ(t1.stats.pess_alone_cross, 1u);
}

TEST_F(PessFixture, SecondReaderMakesRdSh) {
  (void)var.load(tracker, t1);                // WrEx(t0) -> RdEx(t1)
  (void)var.load(tracker, t0);                // RdEx(t1) -> RdSh
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdShPess));
  // Reads of RdSh stay RdSh and count as same-state.
  const std::uint64_t before = t1.stats.pess_alone_same;
  (void)var.load(tracker, t1);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kRdShPess));
  EXPECT_EQ(t1.stats.pess_alone_same, before + 1);
}

TEST_F(PessFixture, WriteAfterRdShReclaimsWrEx) {
  (void)var.load(tracker, t1);
  (void)var.load(tracker, t0);
  var.store(tracker, t0, 11);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t0.id));
  EXPECT_EQ(var.load(tracker, t0), 11u);
}

TEST_F(PessFixture, CrossThreadWritesAlternateOwnership) {
  var.store(tracker, t1, 1);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t1.id));
  var.store(tracker, t0, 2);
  EXPECT_TRUE(state_is(var.meta(), StateKind::kWrExPess, t0.id));
  EXPECT_EQ(t0.stats.pess_alone_cross + t1.stats.pess_alone_cross, 2u);
}

TEST(PessimisticStress, RacyIncrementsAreNeverLost) {
  // Instrumentation-access atomicity: because the state word is locked
  // across the access, a racy read-modify-write through the tracker would
  // still lose updates — so this stress uses the state lock itself as the
  // mutual exclusion, by doing load+store under one pre_store critical
  // section... which the public API does not offer. Instead we verify the
  // weaker but real guarantee: concurrent tracked accesses never corrupt
  // metadata and every store is visible to a later exclusive reader.
  Runtime rt;
  PessimisticTracker<> tracker(rt);
  TrackedVar<std::uint64_t> var;

  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ThreadContext& ctx = rt.register_thread();
      if (ctx.id == 0) var.init(tracker, ctx, 0);
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kOps; ++i) {
        if (i % 3 == 0) {
          var.store(tracker, ctx, static_cast<std::uint64_t>(i));
        } else {
          (void)var.load(tracker, ctx);
        }
      }
      rt.unregister_thread(ctx);
    });
  }
  for (auto& th : threads) th.join();
  // Metadata must be a valid unlocked pessimistic state afterwards.
  const StateWord s = var.meta().load_state();
  EXPECT_TRUE(s.kind() == StateKind::kWrExPess ||
              s.kind() == StateKind::kRdExPess ||
              s.kind() == StateKind::kRdShPess)
      << s.to_string();
}

}  // namespace
}  // namespace ht
