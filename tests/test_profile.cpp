// Critical-path profiler tests (analysis/profile/): span stitching against
// hand-built traces, the innermost-wins attribution sweep, state-dwell
// residency folding, and — with telemetry compiled in — agreement between
// the dwell report and the trackers' own TransitionStats on a deterministic
// conflict pattern.
#include "analysis/profile/trace_profile.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/json.hpp"
#include "telemetry/telemetry.hpp"
#include "tracking/hybrid_tracker.hpp"
#include "tracking/tracked_var.hpp"

namespace ht::analysis::profile {
namespace {

using telemetry::Event;
using telemetry::EventKind;
using telemetry::ThreadTrace;
using telemetry::TraceSnapshot;

Event make_event(EventKind kind, std::uint64_t tsc, std::uint64_t arg0 = 0,
                 std::uint32_t arg1 = 0, std::uint32_t arg2 = 0,
                 std::uint16_t tid = 0) {
  Event e;
  e.tsc = tsc;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.arg2 = arg2;
  e.kind = static_cast<std::uint16_t>(kind);
  e.tid = tid;
  return e;
}

// --- span stitching ----------------------------------------------------------

TEST(SpanStitching, ScalarTicketJoinsWatermarkRange) {
  TraceSnapshot snap;
  ThreadTrace requester;
  requester.tid = 0;
  requester.events = {
      // Ticket 1 against owner 1, answered explicitly.
      make_event(EventKind::kCoordRequest, 100, /*ticket=*/1, /*owner=*/1, 0,
                 0),
      make_event(EventKind::kCoordRoundTrip, 200, /*cycles=*/100, /*owner=*/1,
                 /*implicit=*/0, 0),
  };
  ThreadTrace owner;
  owner.tid = 1;
  owner.events = {
      // Watermark range (0, 1]: answers ticket 1.
      make_event(EventKind::kSafePointResponse, 150, /*release=*/3,
                 /*after=*/1, /*before=*/0, 1),
  };
  snap.threads = {requester, owner};
  snap.rebase();

  const ProfileReport r = build_profile(snap);
  ASSERT_EQ(r.spans.size(), 1u);
  EXPECT_EQ(r.spans_scalar, 1u);
  EXPECT_EQ(r.spans_batch, 0u);
  const Span& sp = r.spans[0];
  EXPECT_EQ(sp.requester, 0u);
  EXPECT_EQ(sp.owner, 1u);
  EXPECT_EQ(sp.span_id, 1u);
  EXPECT_EQ(sp.request_tsc, 100u);
  EXPECT_EQ(sp.response_tsc, 150u);
  EXPECT_EQ(sp.close_tsc, 200u);
  EXPECT_FALSE(sp.batched);
  EXPECT_FALSE(sp.implicit);
  EXPECT_EQ(r.spans_response_matched, 1u);
  EXPECT_EQ(r.spans_closed, 1u);
}

TEST(SpanStitching, ScalarTicketOutsideWatermarkRangeStaysUnmatched) {
  TraceSnapshot snap;
  ThreadTrace requester;
  requester.tid = 0;
  requester.events = {
      make_event(EventKind::kCoordRequest, 100, /*ticket=*/5, /*owner=*/1, 0,
                 0),
      make_event(EventKind::kCoordRoundTrip, 200, 100, 1, /*implicit=*/1, 0),
  };
  ThreadTrace owner;
  owner.tid = 1;
  owner.events = {
      // Range (0, 3] does not cover ticket 5 (it was released by a
      // watermark jump with no ring event, e.g. a quarantine).
      make_event(EventKind::kPsro, 150, 0, /*after=*/3, /*before=*/0, 1),
  };
  snap.threads = {requester, owner};
  snap.rebase();

  const ProfileReport r = build_profile(snap);
  ASSERT_EQ(r.spans.size(), 1u);
  EXPECT_EQ(r.spans[0].response_tsc, 0u);
  EXPECT_TRUE(r.spans[0].implicit);
  EXPECT_EQ(r.spans_response_matched, 0u);
  EXPECT_EQ(r.spans_closed, 1u);
}

TEST(SpanStitching, BatchSpanJoinsDrainBySpanId) {
  TraceSnapshot snap;
  ThreadTrace requester;
  requester.tid = 2;
  requester.events = {
      make_event(EventKind::kCoordRequest, 300, /*span=*/7, /*owner=*/5,
                 /*batched=*/1, 2),
      make_event(EventKind::kCoordRoundTrip, 500, 200, 5, 0, 2),
      // Trailing work after the round trip so the critical path has a
      // non-degenerate compute hop before it crosses the span.
      make_event(EventKind::kThreadExit, 600, 0, 0, 0, 2),
  };
  ThreadTrace owner;
  owner.tid = 5;
  owner.events = {
      make_event(EventKind::kCoordBatchDrain, 400, /*span=*/7,
                 /*requester=*/2, /*objects=*/4, 5),
  };
  snap.threads = {requester, owner};
  snap.rebase();

  const ProfileReport r = build_profile(snap);
  ASSERT_EQ(r.spans.size(), 1u);
  EXPECT_EQ(r.spans_batch, 1u);
  EXPECT_TRUE(r.spans[0].batched);
  EXPECT_EQ(r.spans[0].response_tsc, 400u);
  EXPECT_EQ(r.spans[0].close_tsc, 500u);
  EXPECT_EQ(r.spans_response_matched, 1u);

  // The critical path crosses into the owner through the stitched span:
  // compute on T2 after the close, the wait hop, then compute on T5.
  ASSERT_GE(r.critical_path.size(), 2u);
  EXPECT_EQ(r.critical_path[0].tid, 2u);
  EXPECT_EQ(r.critical_path[0].category, Category::kAppCompute);
  EXPECT_EQ(r.critical_path[1].category, Category::kCoordWait);
  EXPECT_EQ(r.critical_path[1].via, 5u);
}

// --- attribution -------------------------------------------------------------

TEST(Attribution, ResidualIsAppComputeAndSumsToWindow) {
  TraceSnapshot snap;
  ThreadTrace t;
  t.tid = 0;
  t.events = {
      make_event(EventKind::kThreadStart, 0),
      // Pessimistic wait [300, 500].
      make_event(EventKind::kPessWait, 500, /*cycles=*/200, /*object=*/9),
      // Coordination wait [700, 800].
      make_event(EventKind::kCoordRoundTrip, 800, /*cycles=*/100, 1, 0),
      make_event(EventKind::kThreadExit, 1000),
  };
  snap.threads.push_back(t);
  snap.rebase();

  const ProfileReport r = build_profile(snap);
  EXPECT_EQ(r.total_cycles, 1000u);
  EXPECT_EQ(r.category_cycles[static_cast<int>(Category::kPessLockWait)],
            200u);
  EXPECT_EQ(r.category_cycles[static_cast<int>(Category::kCoordWait)], 100u);
  EXPECT_EQ(r.category_cycles[static_cast<int>(Category::kAppCompute)], 700u);
  EXPECT_EQ(r.attribution_error(), 0.0);

  const std::string json = profile_to_json(r);
  json::Value parsed;
  ASSERT_TRUE(json::parse(json, parsed));
  EXPECT_EQ(parsed.at("attribution")
                .at("categories")
                .at("app_compute")
                .at("cycles")
                .as_u64(),
            700u);
}

TEST(Attribution, InnermostIntervalWinsUnderNesting) {
  TraceSnapshot snap;
  ThreadTrace t;
  t.tid = 0;
  t.events = {
      make_event(EventKind::kThreadStart, 0),
      // Coordination wait [700, 800], performed inside the region attempt.
      make_event(EventKind::kCoordRoundTrip, 800, 100, 1, 0),
      // Aborted region attempt burned [600, 900].
      make_event(EventKind::kRegionRestart, 900, /*cycles=*/300,
                 /*attempt=*/0),
      make_event(EventKind::kThreadExit, 1000),
  };
  snap.threads.push_back(t);
  snap.rebase();

  const ProfileReport r = build_profile(snap);
  // The nested coordination keeps its 100 cycles; the restart is charged
  // only the remainder of its own interval.
  EXPECT_EQ(r.category_cycles[static_cast<int>(Category::kCoordWait)], 100u);
  EXPECT_EQ(r.category_cycles[static_cast<int>(Category::kRegionRestart)],
            200u);
  EXPECT_EQ(r.category_cycles[static_cast<int>(Category::kAppCompute)], 700u);
  EXPECT_EQ(r.attribution_error(), 0.0);

  const std::string folded = profile_to_collapsed(r);
  EXPECT_NE(folded.find("T0;coord_wait 100\n"), std::string::npos);
  EXPECT_NE(folded.find("T0;region_restart 200\n"), std::string::npos);
  EXPECT_NE(folded.find("T0;app_compute 700\n"), std::string::npos);
}

// --- state dwell -------------------------------------------------------------

TEST(StateDwell, ResidencyAccruesBetweenTransitions) {
  using telemetry::pack_transition;
  const auto wr_ex = static_cast<unsigned>(StateKind::kWrExOpt);
  const auto inter = static_cast<unsigned>(StateKind::kInt);
  const auto rd_sh = static_cast<unsigned>(StateKind::kRdShOpt);

  TraceSnapshot snap;
  ThreadTrace t;
  t.tid = 0;
  t.events = {
      make_event(EventKind::kStateTransition, 100,
                 pack_transition(wr_ex, inter), /*object=*/42),
      make_event(EventKind::kStateTransition, 300,
                 pack_transition(inter, rd_sh), 42),
      make_event(EventKind::kThreadExit, 500),
  };
  snap.threads.push_back(t);
  snap.rebase();

  const ProfileReport r = build_profile(snap);
  EXPECT_EQ(r.transitions_total, 2u);
  EXPECT_EQ(r.dwell_entries[static_cast<int>(Residency::kInt)], 1u);
  EXPECT_EQ(r.dwell_entries[static_cast<int>(Residency::kRdSh)], 1u);
  ASSERT_EQ(r.dwell.size(), 1u);
  const ObjectDwell& d = r.dwell[0];
  EXPECT_EQ(d.object, 42u);
  EXPECT_EQ(d.transitions, 2u);
  // Int from 100 to 300, then RdSh from 300 to the end of the trace (500).
  EXPECT_EQ(d.residency[static_cast<int>(Residency::kInt)], 200u);
  EXPECT_EQ(d.residency[static_cast<int>(Residency::kRdSh)], 200u);
  EXPECT_EQ(d.residency[static_cast<int>(Residency::kWrEx)], 0u);
  EXPECT_EQ(r.dwell_cycles[static_cast<int>(Residency::kInt)], 200u);
}

TEST(StateDwell, ResidencyClassesFoldAllPessimisticKinds) {
  EXPECT_EQ(residency_of_kind(static_cast<unsigned>(StateKind::kWrExOpt)),
            Residency::kWrEx);
  EXPECT_EQ(residency_of_kind(static_cast<unsigned>(StateKind::kRdExOpt)),
            Residency::kRdEx);
  EXPECT_EQ(residency_of_kind(static_cast<unsigned>(StateKind::kRdShOpt)),
            Residency::kRdSh);
  EXPECT_EQ(residency_of_kind(static_cast<unsigned>(StateKind::kInt)),
            Residency::kInt);
  for (auto k : {StateKind::kWrExPess, StateKind::kRdExPess,
                 StateKind::kRdShPess, StateKind::kWrExWLock,
                 StateKind::kWrExRLock, StateKind::kRdExRLock,
                 StateKind::kRdShRLock, StateKind::kPessLockedSentinel}) {
    EXPECT_EQ(residency_of_kind(static_cast<unsigned>(k)), Residency::kPess);
  }
}

// --- agreement with the trackers (telemetry builds only) ---------------------

#if HT_TELEM_AVAILABLE
// A deterministic implicit-conflict ping-pong: every hybrid conflicting
// transition passes through Int exactly once, so the profiler's count of
// transitions *into* Int must equal the trackers' own conflicting-transition
// statistics — the dwell report and TransitionStats describe one reality.
TEST(ProfilerAgreement, IntEntriesMatchConflictingTransitionStats) {
  telemetry::TelemetrySession session;
  RuntimeConfig rc;
  rc.telemetry = &session;
  Runtime rt(rc);
  HybridTracker</*kStats=*/true> trk(rt, HybridConfig{});
  ThreadContext& t0 = rt.register_thread();
  ThreadContext& t1 = rt.register_thread();
  trk.attach_thread(t0);
  trk.attach_thread(t1);
  TrackedVar<std::uint64_t> var;
  var.init(trk, t0, 1);

  constexpr int kRounds = 10;
  for (int i = 0; i < kRounds; ++i) {
    rt.begin_blocking(t0);
    var.store(trk, t1, static_cast<std::uint64_t>(i));  // implicit conflict
    rt.end_blocking(t0);
    rt.begin_blocking(t1);
    var.store(trk, t0, static_cast<std::uint64_t>(i));  // implicit conflict
    rt.end_blocking(t1);
  }

  const telemetry::TraceSnapshot snap = session.drain();
  ASSERT_EQ(snap.total_dropped(), 0u);
  const ProfileReport r = build_profile(snap);
  const std::uint64_t conflicts =
      t0.stats.opt_conflicting() + t1.stats.opt_conflicting();
  EXPECT_EQ(conflicts, 2u * kRounds);
  EXPECT_EQ(r.dwell_entries[static_cast<int>(Residency::kInt)], conflicts);
  // Every category is attributed: the residual construction keeps the sum
  // exact, which is what the CLI's tolerance check (exit code 6) guards.
  EXPECT_LE(r.attribution_error(), 0.05);
}

// An explicit round trip (owner polling at safe points) produces a
// stitchable request -> response -> close chain on real rings.
TEST(ProfilerAgreement, ExplicitCoordinationProducesStitchedSpan) {
  telemetry::TelemetrySession session;
  RuntimeConfig rc;
  rc.telemetry = &session;
  Runtime rt(rc);
  HybridTracker</*kStats=*/true> trk(rt, HybridConfig{});
  ThreadContext& t0 = rt.register_thread();
  ThreadContext& t1 = rt.register_thread();
  trk.attach_thread(t0);
  trk.attach_thread(t1);
  TrackedVar<std::uint64_t> var;
  var.init(trk, t0, 1);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    var.store(trk, t1, 9);  // explicit conflict with running t0
    done.store(true);
  });
  while (!done.load()) {
    rt.poll(t0);
    std::this_thread::yield();
  }
  writer.join();
  trk.flush(t1);

  const telemetry::TraceSnapshot snap = session.drain();
  ASSERT_EQ(snap.total_dropped(), 0u);
  const ProfileReport r = build_profile(snap);
  ASSERT_GE(r.spans_scalar, 1u);
  EXPECT_GE(r.spans_closed, 1u);
  EXPECT_GE(r.spans_response_matched, 1u);
  bool found = false;
  for (const Span& sp : r.spans) {
    if (sp.batched || sp.response_tsc == 0) continue;
    found = true;
    EXPECT_EQ(sp.requester, t1.id);
    EXPECT_EQ(sp.owner, t0.id);
    EXPECT_GE(sp.response_tsc, sp.request_tsc);
    EXPECT_GE(sp.close_tsc, sp.response_tsc);
  }
  EXPECT_TRUE(found);
}
#endif  // HT_TELEM_AVAILABLE

}  // namespace
}  // namespace ht::analysis::profile
