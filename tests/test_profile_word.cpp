// Unit tests for the adaptive-policy profile word: field round trips,
// saturation (counters must never wrap into neighbors), and the atomic
// update helper.
#include "metadata/profile_word.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ht {
namespace {

TEST(ProfileWord, StartsZeroed) {
  ProfileWord p;
  EXPECT_EQ(p.opt_conflicts(), 0u);
  EXPECT_EQ(p.pess_non_confl(), 0u);
  EXPECT_EQ(p.pess_confl(), 0u);
  EXPECT_FALSE(p.was_pess());
  EXPECT_FALSE(p.must_stay_opt());
  EXPECT_EQ(p.contended(), 0u);
}

TEST(ProfileWord, IncrementsAreIndependent) {
  ProfileWord p;
  p = p.with_opt_conflict_inc().with_opt_conflict_inc();
  p = p.with_pess_non_confl_inc();
  p = p.with_pess_confl_inc().with_pess_confl_inc().with_pess_confl_inc();
  p = p.with_contended_inc();
  EXPECT_EQ(p.opt_conflicts(), 2u);
  EXPECT_EQ(p.pess_non_confl(), 1u);
  EXPECT_EQ(p.pess_confl(), 3u);
  EXPECT_EQ(p.contended(), 1u);
  EXPECT_FALSE(p.was_pess());
}

TEST(ProfileWord, FlagsSetIndependently) {
  ProfileWord p;
  p = p.with_was_pess();
  EXPECT_TRUE(p.was_pess());
  EXPECT_FALSE(p.must_stay_opt());
  p = p.with_must_stay_opt();
  EXPECT_TRUE(p.must_stay_opt());
  EXPECT_TRUE(p.was_pess());
  EXPECT_EQ(p.opt_conflicts(), 0u);
}

TEST(ProfileWord, CountersSaturateWithoutBleeding) {
  ProfileWord p;
  for (int i = 0; i < 70000; ++i) p = p.with_opt_conflict_inc();
  EXPECT_EQ(p.opt_conflicts(), 0xFFFFu);
  EXPECT_EQ(p.pess_non_confl(), 0u);  // no overflow into the neighbor field
  for (int i = 0; i < 70000; ++i) p = p.with_pess_confl_inc();
  EXPECT_EQ(p.pess_confl(), 0xFFFFu);
  EXPECT_FALSE(p.was_pess());
  for (int i = 0; i < 100; ++i) p = p.with_contended_inc();
  EXPECT_EQ(p.contended(), 0x3Fu);
  EXPECT_FALSE(p.was_pess());
  EXPECT_FALSE(p.must_stay_opt());
}

TEST(ProfileWord, PessCountersClearedKeepsFlagsAndOptCount) {
  ProfileWord p;
  p = p.with_opt_conflict_inc().with_pess_confl_inc().with_pess_non_confl_inc();
  p = p.with_contended_inc().with_was_pess().with_must_stay_opt();
  p = p.with_pess_counters_cleared();
  EXPECT_EQ(p.opt_conflicts(), 1u);
  EXPECT_EQ(p.pess_non_confl(), 0u);
  EXPECT_EQ(p.pess_confl(), 0u);
  EXPECT_EQ(p.contended(), 0u);
  EXPECT_TRUE(p.was_pess());
  EXPECT_TRUE(p.must_stay_opt());
}

TEST(AtomicProfile, UpdateAppliesFunction) {
  AtomicProfile ap;
  ap.update([](ProfileWord w) { return w.with_opt_conflict_inc(); });
  ap.update([](ProfileWord w) { return w.with_opt_conflict_inc(); });
  EXPECT_EQ(ap.load().opt_conflicts(), 2u);
  ap.reset();
  EXPECT_EQ(ap.load().opt_conflicts(), 0u);
}

TEST(AtomicProfile, ConcurrentUpdatesLoseNothing) {
  AtomicProfile ap;
  constexpr int kThreads = 4, kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        ap.update([](ProfileWord w) { return w.with_pess_non_confl_inc(); });
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ap.load().pess_non_confl(),
            static_cast<std::uint32_t>(kThreads * kPer));
}

}  // namespace
}  // namespace ht
