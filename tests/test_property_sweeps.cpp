// Property sweeps (parameterized): after any workload run, under any
// tracker and any conflict mix, the metadata must be quiescent — no locked
// states, no Int states, empty lock buffers — and the access counts must be
// conserved. These invariants catch lost unlocks, leaked intermediate
// states, and buffer/readset desynchronization across a wide configuration
// space.
#include <gtest/gtest.h>

#include <deque>

#include "tracking/hybrid_tracker.hpp"
#include "tracking/ideal_tracker.hpp"
#include "tracking/optimistic_tracker.hpp"
#include "tracking/pessimistic_tracker.hpp"
#include "workload/apis.hpp"
#include "workload/workload.hpp"

namespace ht {
namespace {

enum class TrackerKind { kPessimistic, kOptimistic, kHybrid, kHybridInf,
                         kHybridEscape, kHybridPrototype, kIdeal };

struct SweepCase {
  const char* label;
  TrackerKind tracker;
  int threads;
  std::uint32_t hotsync_p100k;
  std::uint32_t hotracy_p100k;
  std::uint32_t hotglobal_p100k;
};

WorkloadConfig sweep_config(const SweepCase& c) {
  WorkloadConfig cfg;
  cfg.name = c.label;
  cfg.threads = c.threads;
  cfg.ops_per_thread = 6'000;
  cfg.readshare_p100k = 8'000;
  cfg.sharedgen_p100k = 500;
  cfg.readshare_write_pct = 1;
  cfg.hotsync_p100k = c.hotsync_p100k;
  cfg.hotracy_p100k = c.hotracy_p100k;
  cfg.hotglobal_p100k = c.hotglobal_p100k;
  cfg.hot_objects = 8;
  cfg.yield_every_regions = 16;
  return cfg;
}

void check_quiescent(WorkloadData& data, bool pessimistic_alone) {
  data.for_each_meta([&](ObjectMeta& m) {
    const StateWord s = m.load_state();
    if (pessimistic_alone) {
      EXPECT_NE(s.kind(), StateKind::kPessLockedSentinel) << s.to_string();
      EXPECT_TRUE(s.is_pess_unlocked()) << s.to_string();
    } else {
      EXPECT_FALSE(s.is_pess_locked()) << s.to_string();
      EXPECT_FALSE(s.is_intermediate()) << s.to_string();
      EXPECT_NE(s.kind(), StateKind::kPessLockedSentinel) << s.to_string();
    }
  });
}

class QuiescenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(QuiescenceSweep, MetadataQuiescentAndAccessesConserved) {
  const SweepCase& c = GetParam();
  const WorkloadConfig cfg = sweep_config(c);
  WorkloadData data(cfg);
  const std::uint64_t expected_accesses =
      cfg.ops_per_thread * static_cast<std::uint64_t>(cfg.threads);

  Runtime rt;
  TransitionStats stats;
  bool pessimistic_alone = false;

  switch (c.tracker) {
    case TrackerKind::kPessimistic: {
      pessimistic_alone = true;
      PessimisticTracker<true> trk(rt);
      stats = run_workload(cfg, data, [&](ThreadId) {
                return DirectApi<PessimisticTracker<true>>(rt, trk);
              }).stats;
      break;
    }
    case TrackerKind::kOptimistic: {
      OptimisticTracker<true> trk(rt);
      stats = run_workload(cfg, data, [&](ThreadId) {
                return DirectApi<OptimisticTracker<true>>(rt, trk);
              }).stats;
      break;
    }
    case TrackerKind::kIdeal: {
      IdealTracker<true> trk(rt);
      stats = run_workload(cfg, data, [&](ThreadId) {
                return DirectApi<IdealTracker<true>>(rt, trk);
              }).stats;
      break;
    }
    default: {
      HybridConfig hc;
      if (c.tracker == TrackerKind::kHybridInf)
        hc.policy = PolicyConfig::infinite();
      if (c.tracker == TrackerKind::kHybridEscape)
        hc.policy = PolicyConfig::with_escape(6);
      if (c.tracker == TrackerKind::kHybridPrototype)
        hc.wr_ex_read_mode = WrExReadMode::kOmitWrExRLock;
      HybridTracker<true> trk(rt, hc);
      stats = run_workload(cfg, data, [&](ThreadId) {
                return DirectApi<HybridTracker<true>>(rt, trk);
              }).stats;
      break;
    }
  }

  EXPECT_EQ(stats.accesses(), expected_accesses);
  check_quiescent(data, pessimistic_alone);

  if (c.tracker == TrackerKind::kHybridInf) {
    // Infinite cutoff: pessimistic states must never appear.
    EXPECT_EQ(stats.opt_to_pess, 0u);
    EXPECT_EQ(stats.pess_total(), 0u);
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const TrackerKind kinds[] = {
      TrackerKind::kPessimistic,   TrackerKind::kOptimistic,
      TrackerKind::kHybrid,        TrackerKind::kHybridInf,
      TrackerKind::kHybridEscape,  TrackerKind::kHybridPrototype,
      TrackerKind::kIdeal};
  const char* kind_names[] = {"pess", "opt", "hyb", "hybinf", "hybesc",
                              "hybproto", "ideal"};
  struct Mix {
    const char* name;
    std::uint32_t sync, racy, global;
  };
  const Mix mixes[] = {{"quiet", 0, 0, 0},
                       {"sync", 2000, 0, 0},
                       {"racy", 0, 1000, 0},
                       {"mixed", 1000, 500, 300}};
  // Stable label storage: std::deque never relocates elements, so the
  // c_str() pointers stored in SweepCase stay valid for the process
  // lifetime.
  static std::deque<std::string> labels;
  int ki = 0;
  for (TrackerKind k : kinds) {
    for (const Mix& m : mixes) {
      for (int threads : {2, 4}) {
        labels.push_back(std::string(kind_names[ki]) + "_" + m.name + "_t" +
                         std::to_string(threads));
        cases.push_back(
            SweepCase{labels.back().c_str(), k, threads, m.sync, m.racy,
                      m.global});
      }
    }
    ++ki;
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, QuiescenceSweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& pinfo) {
                           return std::string(pinfo.param.label);
                         });

}  // namespace
}  // namespace ht
